"""Tests for the perf observability layer (counters, timers, caches)."""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro import obs, perf


class TestCounters:
    def test_increment_outside_collection_is_noop(self):
        perf.increment("orphan")  # must not raise, must not record anywhere
        with perf.collect() as stats:
            pass
        assert stats.counter("orphan") == 0

    def test_increment_inside_collection(self):
        with perf.collect() as stats:
            perf.increment("events")
            perf.increment("events", 2)
        assert stats.counter("events") == 3

    def test_missing_counter_reads_zero(self):
        with perf.collect() as stats:
            pass
        assert stats.counter("never-touched") == 0

    def test_nested_collectors_each_see_their_window(self):
        with perf.collect() as outer:
            perf.increment("n")
            with perf.collect() as inner:
                perf.increment("n")
        assert outer.counter("n") == 2
        assert inner.counter("n") == 1

    def test_is_collecting(self):
        assert not perf.is_collecting()
        with perf.collect():
            assert perf.is_collecting()
        assert not perf.is_collecting()


class TestTimers:
    def test_timed_accumulates(self):
        with perf.collect() as stats:
            with perf.timed("work"):
                pass
            with perf.timed("work"):
                pass
        assert stats.timers["work"] >= 0.0

    def test_timed_is_noop_when_inactive(self):
        with perf.timed("ghost"):
            pass  # no collector: nothing recorded, nothing raised

    def test_render_mentions_sections(self):
        with perf.collect() as stats:
            perf.increment("a.count", 5)
            with perf.timed("a.time"):
                pass
        text = stats.render()
        assert "a.count" in text and "a.time" in text

    def test_render_empty_window(self):
        stats = perf.PerfStats()
        stats.snapshot_caches()  # baseline == now: zero deltas everywhere
        assert "nothing recorded" in stats.render()


class TestCacheReports:
    def test_register_requires_lru_cache(self):
        with pytest.raises(TypeError):
            perf.register_cache("plain", lambda x: x)

    def test_solver_caches_are_registered(self):
        import repro.core.constraints  # noqa: F401  (registers on import)

        names = set(perf.registered_caches())
        assert {
            "constraints.solve",
            "constraints.is_satisfiable",
            "constraints.is_valid",
            "constraints.locality",
            "constraints.basic_constraint",
        } <= names

    def test_deltas_are_windowed(self):
        @lru_cache(maxsize=None)
        def double(x):
            return 2 * x

        perf.register_cache("test.double", double)
        try:
            double(1)  # a miss before the window opens
            with perf.collect() as stats:
                double(1)  # hit
                double(2)  # miss
                double(2)  # hit
            report = {r.name: r for r in stats.cache_reports()}["test.double"]
            assert report.hits == 2
            assert report.misses == 1
            assert report.calls == 3
            assert report.hit_rate == pytest.approx(2 / 3)
        finally:
            del perf.counters._REGISTERED_CACHES["test.double"]

    def test_hit_rate_of_unknown_cache_raises(self):
        with perf.collect() as stats:
            pass
        with pytest.raises(KeyError):
            stats.hit_rate("no-such-cache")


class TestRenderVerbose:
    def test_default_render_hides_zero_call_caches(self):
        import repro.core.constraints  # noqa: F401  (registers on import)

        stats = perf.PerfStats()
        stats.snapshot_caches()  # baseline == now: zero deltas everywhere
        assert "constraints.solve" not in stats.render()

    def test_verbose_render_includes_zero_call_caches(self):
        import repro.core.constraints  # noqa: F401

        stats = perf.PerfStats()
        stats.snapshot_caches()
        text = stats.render(verbose=True)
        assert "constraints.solve" in text
        assert "0/0" in text

    def test_cache_order_is_deterministic_by_name(self):
        @lru_cache(maxsize=None)
        def zzz(x):
            return x

        @lru_cache(maxsize=None)
        def aaa(x):
            return x

        # registration order is deliberately reversed alphabetically
        perf.register_cache("test.zzz", zzz)
        perf.register_cache("test.aaa", aaa)
        try:
            with perf.collect() as stats:
                zzz(1)
                aaa(1)
            names = [r.name for r in stats.cache_reports()]
            assert names == sorted(names)
            text = stats.render(verbose=True)
            assert text.index("test.aaa") < text.index("test.zzz")
        finally:
            del perf.counters._REGISTERED_CACHES["test.zzz"]
            del perf.counters._REGISTERED_CACHES["test.aaa"]


class TestPerfAndTracingTogether:
    """Nested perf.collect() scopes interacting with the tracer: the two
    stacks are independent, and every active collector of each kind sees
    the instrumentation fired inside its window."""

    def test_nested_perf_scopes_with_active_tracer(self):
        from repro import run_program

        with obs.trace() as trace:
            with perf.collect() as outer:
                run_program("mkpar (fun i -> i)", p=2)
                first_runs = outer.counter("infer.runs")
                spans_after_first = len(trace.records)
                with perf.collect() as inner:
                    run_program("mkpar (fun i -> i + 1)", p=2)
        # both perf windows saw their own counter totals: the outer one
        # accumulated the first run plus everything the inner one saw
        assert first_runs > 0
        assert inner.counter("infer.runs") > 0
        assert outer.counter("infer.runs") == first_runs + inner.counter(
            "infer.runs"
        )
        # the tracer kept collecting across both perf scopes
        assert len(trace.records) > spans_after_first > 0

    def test_nested_tracers_with_active_perf_scope(self):
        from repro import run_program

        with perf.collect() as stats:
            with obs.trace() as outer:
                run_program("mkpar (fun i -> i)", p=2)
                with obs.trace() as inner:
                    run_program("mkpar (fun i -> i * 2)", p=2)
        assert stats.counter("infer.runs") > 0
        assert len(inner.records) > 0
        # the outer tracer saw everything the inner one saw, plus its own
        assert len(outer.records) > len(inner.records)
        assert outer.records[-len(inner.records):] == inner.records

    def test_perf_without_tracing_records_no_spans(self):
        from repro import run_program

        with perf.collect() as stats:
            run_program("mkpar (fun i -> i)", p=2)
        assert stats.counter("infer.runs") > 0
        assert not obs.is_tracing()

    def test_tracing_without_perf_counts_nothing(self):
        from repro import run_program

        with obs.trace() as trace:
            run_program("mkpar (fun i -> i)", p=2)
        assert not perf.is_collecting()
        assert trace.spans("judgment")


class TestStartStop:
    def test_open_ended_window(self):
        stats = perf.start()
        try:
            perf.increment("repl.events")
        finally:
            perf.stop(stats)
        assert stats.counter("repl.events") == 1
        assert not perf.is_collecting()

    def test_stop_is_idempotent(self):
        stats = perf.start()
        perf.stop(stats)
        perf.stop(stats)
        assert not perf.is_collecting()
