"""Shared plumbing for the service tests: an in-process server on a
daemon thread plus a tiny stdlib HTTP client."""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Optional, Tuple

import pytest

from repro.service import ServiceConfig, ServiceCore, start_in_background


class Client:
    """One request = one connection unless ``conn`` is passed."""

    def __init__(self, port: int) -> None:
        self.port = port

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        conn: Optional[http.client.HTTPConnection] = None,
        timeout: float = 60.0,
    ) -> Tuple[int, Any, Dict[str, str]]:
        own = conn is None
        if conn is None:
            conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=timeout)
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body=body)
        response = conn.getresponse()
        raw = response.read()
        headers = {name.lower(): value for name, value in response.getheaders()}
        if own:
            conn.close()
        return response.status, json.loads(raw) if raw else None, headers

    def connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection("127.0.0.1", self.port, timeout=60.0)


@pytest.fixture(scope="module")
def service():
    handle = start_in_background(
        ServiceCore(ServiceConfig(cache_capacity=4096)),
        max_concurrency=8,
        max_queue=64,
    )
    try:
        yield handle
    finally:
        handle.stop()


@pytest.fixture(scope="module")
def client(service):
    return Client(service.port)
