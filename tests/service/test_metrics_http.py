"""The /v1/metrics exposition and metrics behaviour under concurrent load.

Pins down the two-sided contract of the aggregation layer: the
process-global registry sums over *every* request (no lost increments),
while the contextvars-based perf/trace collectors stay request-isolated
(no cross-request leakage into windows opened elsewhere).
"""

from __future__ import annotations

import http.client
import threading

import pytest

from repro import obs, perf
from repro.obs import metrics
from repro.obs.metrics import parse_prometheus
from repro.service import ServiceConfig, ServiceCore, start_in_background


@pytest.fixture()
def server():
    metrics.global_registry().reset()
    handle = start_in_background(
        ServiceCore(ServiceConfig(cache_capacity=256)),
        max_concurrency=4,
        max_queue=32,
    )
    try:
        yield handle
    finally:
        handle.stop()
        metrics.global_registry().reset()


def fetch_metrics(port: int):
    """GET /v1/metrics raw — the body is Prometheus text, not JSON."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30.0)
    try:
        conn.request("GET", "/v1/metrics")
        response = conn.getresponse()
        body = response.read().decode("utf-8")
        headers = {name.lower(): value for name, value in response.getheaders()}
        return response.status, body, headers
    finally:
        conn.close()


def post_json(port: int, path: str, payload: dict):
    import json

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60.0)
    try:
        conn.request("POST", path, body=json.dumps(payload))
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestMetricsEndpoint:
    def test_serves_valid_prometheus_text(self, server):
        status, body, headers = fetch_metrics(server.port)
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        assert "version=0.0.4" in headers["content-type"]
        families = parse_prometheus(body)  # raises on any format violation
        for name in (
            "repro_request_seconds",
            "repro_requests_total",
            "repro_requests_rejected_total",
            "repro_response_cache_requests_total",
            "repro_inflight_requests",
            "repro_waiting_requests",
            "repro_sessions",
            "repro_superstep_phase_seconds",
            "repro_solver_cache_requests_total",
        ):
            assert name in families, f"family {name} missing from exposition"

    def test_request_latency_carries_route_engine_backend_cache(self, server):
        program = "bcast 0 (mkpar (fun i -> i + 1))"
        status, _ = post_json(server.port, "/v1/run", {"program": program, "engine": "compiled", "backend": "seq"})
        assert status == 200
        status, _ = post_json(server.port, "/v1/run", {"program": program, "engine": "compiled", "backend": "seq"})
        assert status == 200  # replay: cache hit
        _, body, _ = fetch_metrics(server.port)
        families = parse_prometheus(body)
        counts = {
            tuple(sorted(labels.items())): value
            for name, labels, value in families["repro_request_seconds"]["samples"]
            if name.endswith("_count")
        }
        miss_key = tuple(
            sorted(
                {
                    "route": "/v1/run",
                    "engine": "compiled",
                    "backend": "seq",
                    "cache": "miss",
                }.items()
            )
        )
        hit_key = tuple(
            sorted(
                {
                    "route": "/v1/run",
                    "engine": "compiled",
                    "backend": "seq",
                    "cache": "hit",
                }.items()
            )
        )
        assert counts.get(miss_key, 0) >= 1
        assert counts.get(hit_key, 0) >= 1

    def test_cache_hit_ratio_counters(self, server):
        program = "1 + 2"
        post_json(server.port, "/v1/typecheck", {"program": program})
        post_json(server.port, "/v1/typecheck", {"program": program})
        assert metrics.CACHE_REQUESTS_TOTAL.value(result="miss") >= 1
        assert metrics.CACHE_REQUESTS_TOTAL.value(result="hit") >= 1

    def test_superstep_histograms_fed_by_service_runs(self, server):
        before = metrics.SUPERSTEP_SECONDS.count(phase="exchange")
        status, _ = post_json(
            server.port,
            "/v1/run",
            {"program": "put (mkpar (fun i -> fun dst -> i))", "p": 2},
        )
        assert status == 200
        assert metrics.SUPERSTEP_SECONDS.count(phase="exchange") > before

    def test_sessions_gauge_tracks_create_and_delete(self, server):
        status, created = post_json(server.port, "/v1/session", {})
        assert status == 201
        assert metrics.SESSIONS.value() >= 1
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30.0)
        try:
            conn.request("DELETE", f"/v1/session/{created['session']}")
            assert conn.getresponse().status == 200
        finally:
            conn.close()
        assert metrics.SESSIONS.value() == 0

    def test_unknown_engine_label_bucketed_as_other(self, server):
        # An invalid engine is rejected 400, but its latency sample must
        # not mint a new label value from attacker-controlled input.
        status, _ = post_json(
            server.port, "/v1/run", {"program": "1", "engine": "zzz-evil"}
        )
        assert status == 400
        _, body, _ = fetch_metrics(server.port)
        families = parse_prometheus(body)
        engines = {
            labels["engine"]
            for name, labels, _ in families["repro_request_seconds"]["samples"]
            if name.endswith("_count")
        }
        assert "zzz-evil" not in engines
        assert "other" in engines

    def test_metrics_can_be_disabled_by_config(self):
        metrics.global_registry().reset()
        handle = start_in_background(
            ServiceCore(ServiceConfig(metrics=False)),
            max_concurrency=2,
            max_queue=8,
        )
        try:
            assert not metrics.is_enabled()
            post_json(handle.port, "/v1/typecheck", {"program": "1"})
            # The endpoint still answers (with whatever was collected —
            # here nothing), but no request was recorded.
            status, body, _ = fetch_metrics(handle.port)
            assert status == 200
            parse_prometheus(body)
            assert metrics.REQUESTS_TOTAL.value(route="/v1/typecheck", status="200") == 0
        finally:
            handle.stop()


class TestConcurrentAggregationAndIsolation:
    """Satellite: global aggregation is exact under concurrent load while
    context-local perf/trace windows see none of it."""

    def test_no_lost_increments_and_no_leakage(self, server):
        requests_per_worker = 6
        workers = 8
        errors = []
        barrier = threading.Barrier(workers)

        def drive(worker: int):
            try:
                barrier.wait(timeout=30)
                for i in range(requests_per_worker):
                    # Distinct programs per (worker, i): all cache misses,
                    # every one runs a real superstep.
                    program = f"bcast 0 (mkpar (fun i -> i + {worker * 100 + i}))"
                    status, _ = post_json(
                        server.port, "/v1/run", {"program": program, "p": 2}
                    )
                    if status != 200:
                        errors.append((worker, i, status))
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append((worker, repr(error)))

        before = metrics.REQUESTS_TOTAL.value(route="/v1/run", status="200")
        supersteps_before = metrics.SUPERSTEPS_TOTAL.value()

        # The observer's own context-local windows, opened while the load
        # runs on server worker threads.
        with perf.collect() as window_stats, obs.trace() as window_trace:
            threads = [
                threading.Thread(target=drive, args=(w,)) for w in range(workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)

        assert not errors, errors
        total = workers * requests_per_worker
        # Exact aggregation: every request counted, none double-counted.
        after = metrics.REQUESTS_TOTAL.value(route="/v1/run", status="200")
        assert after - before == total
        # Every run executed at least one superstep through the sink.
        assert metrics.SUPERSTEPS_TOTAL.value() - supersteps_before >= total
        # Isolation: the server's cache/solver activity is invisible to a
        # perf window opened in this (different) context...
        assert window_stats.counter("service.cache.hit") == 0
        assert window_stats.counter("service.cache.miss") == 0
        # ...and no server-side span leaked into this trace window.
        assert window_trace.records == []

    def test_histogram_count_matches_request_count(self, server):
        program_base = "fst (1, mkpar (fun i -> i))"
        n = 10
        threads = []

        def drive(k: int):
            post_json(
                server.port,
                "/v1/typecheck",
                {"program": f"fst ({k}, mkpar (fun i -> i))"},
            )

        before = sum(
            metrics.REQUEST_SECONDS.count(
                route="/v1/typecheck", engine=e, backend=b, cache=c
            )
            for e in ("-",)
            for b in ("-",)
            for c in ("hit", "miss", "-")
        )
        for k in range(n):
            thread = threading.Thread(target=drive, args=(k,))
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join(timeout=60)
        after = sum(
            metrics.REQUEST_SECONDS.count(
                route="/v1/typecheck", engine=e, backend=b, cache=c
            )
            for e in ("-",)
            for b in ("-",)
            for c in ("hit", "miss", "-")
        )
        assert after - before == n
