"""Protocol-level tests of the HTTP front end: routing, keep-alive,
caching headers, error mapping, admission control, sessions."""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.service import ServiceCore, start_in_background


class TestBasics:
    def test_healthz(self, client):
        status, body, _ = client.request("GET", "/healthz")
        assert (status, body) == (200, {"status": "ok"})

    def test_unknown_route_is_404(self, client):
        status, body, _ = client.request("POST", "/v1/nope", {})
        assert status == 404
        assert body["error"]["kind"] == "not-found"

    def test_typecheck(self, client):
        status, body, _ = client.request(
            "POST", "/v1/typecheck", {"program": "fun x -> x"}
        )
        assert status == 200
        assert body["type"] == "'a -> 'a"
        assert body["constraints"] == "True"
        assert body["scheme"].startswith("forall")
        assert len(body["digest"]) == 64

    def test_run_reports_type_value_cost(self, client):
        status, body, _ = client.request(
            "POST",
            "/v1/run",
            {"program": "bcast 2 (mkpar (fun i -> i * i))", "p": 4},
        )
        assert status == 200
        assert body["type"] == "int par"
        assert body["value"] == "<4, 4, 4, 4>"
        assert body["cost"]["p"] == 4
        assert body["cost"]["S"] >= 1
        assert body["cost"]["total"] == pytest.approx(
            body["cost"]["W"] + body["cost"]["H"] * 1.0 + body["cost"]["S"] * 20.0
        )
        assert "trace_summary" in body

    def test_keep_alive_serves_multiple_requests(self, client):
        conn = client.connect()
        try:
            for value in ("1 + 1", "2 + 2", "3 + 3"):
                status, body, headers = client.request(
                    "POST", "/v1/run", {"program": value}, conn=conn
                )
                assert status == 200
                assert headers.get("connection") == "keep-alive"
        finally:
            conn.close()

    def test_stats_endpoint_shape(self, client):
        client.request("POST", "/v1/run", {"program": "1 + 1"})
        status, body, _ = client.request("GET", "/v1/stats")
        assert status == 200
        for key in (
            "requests",
            "response_cache",
            "solver_caches",
            "intern_pools",
            "server",
        ):
            assert key in body
        assert body["server"]["max_concurrency"] == 8
        assert body["response_cache"]["capacity"] >= 4096

    def test_stats_lists_simplify_and_horn_caches(self, client):
        client.request("POST", "/v1/typecheck", {"program": "mkpar (fun i -> i)"})
        _, body, _ = client.request("GET", "/v1/stats")
        for name in ("constraints.simplify", "constraints.horn_satisfiable"):
            assert name in body["solver_caches"]
            assert "hits" in body["solver_caches"][name]

    def test_typecheck_infer_engine_knob(self, client):
        program = {"program": "let f = fun x -> x in (f 1, f true)"}
        _, body_w, _ = client.request(
            "POST", "/v1/typecheck", {**program, "infer_engine": "w"}
        )
        _, body_uf, _ = client.request(
            "POST", "/v1/typecheck", {**program, "infer_engine": "uf"}
        )
        assert body_w["type"] == body_uf["type"]
        assert body_w["constraints"] == body_uf["constraints"]
        assert body_w["scheme"] == body_uf["scheme"]
        # Each engine caches its own entry so cold latencies stay
        # measurable per engine.
        assert body_w["digest"] != body_uf["digest"]

    def test_typecheck_rejects_unknown_infer_engine(self, client):
        status, body, _ = client.request(
            "POST",
            "/v1/typecheck",
            {"program": "1 + 1", "infer_engine": "bogus"},
        )
        assert status == 400
        assert "infer_engine" in body["error"]["message"]


class TestCliIntegration:
    def test_serve_subcommand_is_registered(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--port", "0"])
        assert args.handler.__name__ == "_command_serve"
        assert args.max_concurrency == 8
        assert args.max_queue == 32


class TestCaching:
    def test_replay_is_byte_identical_and_flagged(self, client):
        request = {"program": "scan (fun ab -> fst ab + snd ab) (mkpar (fun i -> i))", "p": 4}
        s1, body1, h1 = client.request("POST", "/v1/run", request)
        s2, body2, h2 = client.request("POST", "/v1/run", request)
        assert (s1, s2) == (200, 200)
        assert h1["x-repro-cache"] == "miss"
        assert h2["x-repro-cache"] == "hit"
        assert body1 == body2  # byte-identical serialization parses equal

    def test_whitespace_variants_share_an_entry(self, client):
        s1, body1, _ = client.request(
            "POST", "/v1/run", {"program": "let x = 41 in x + 1"}
        )
        s2, body2, h2 = client.request(
            "POST", "/v1/run", {"program": "let x = 41 in\n  x + 1"}
        )
        assert body1["digest"] == body2["digest"]
        assert h2["x-repro-cache"] == "hit"

    def test_parameters_split_entries(self, client):
        base = {"program": "mkpar (fun i -> i + 1)"}
        _, body4, _ = client.request("POST", "/v1/run", {**base, "p": 4})
        _, body8, _ = client.request("POST", "/v1/run", {**base, "p": 8})
        assert body4["digest"] != body8["digest"]
        assert body4["value"] != body8["value"]


class TestErrorMapping:
    def test_parse_error_is_400(self, client):
        status, body, _ = client.request("POST", "/v1/run", {"program": "let = in"})
        assert status == 400
        assert body["error"]["kind"] == "parse"

    def test_type_error_is_422(self, client):
        status, body, _ = client.request(
            "POST", "/v1/run", {"program": "mkpar (fun i -> mkpar (fun j -> j))"}
        )
        assert status == 422
        assert body["error"]["kind"] == "type"

    def test_missing_program_is_400(self, client):
        status, body, _ = client.request("POST", "/v1/run", {})
        assert status == 400

    def test_bad_parameter_is_400(self, client):
        status, body, _ = client.request(
            "POST", "/v1/run", {"program": "1", "p": "four"}
        )
        assert status == 400

    def test_malformed_json_is_400(self, client):
        conn = client.connect()
        try:
            conn.request("POST", "/v1/run", body="{not json")
            response = conn.getresponse()
            body = json.loads(response.read())
            assert response.status == 400
            assert body["error"]["kind"] == "json"
        finally:
            conn.close()

    def test_malformed_request_line_is_rejected(self, service):
        with socket.create_connection(("127.0.0.1", service.port), timeout=10) as sock:
            sock.sendall(b"NONSENSE\r\n\r\n")
            data = sock.recv(4096)
        assert b"400" in data.split(b"\r\n", 1)[0]

    def test_fatal_fault_plan_is_422(self, client):
        status, body, _ = client.request(
            "POST",
            "/v1/run",
            {
                "program": "bcast 2 (mkpar (fun i -> i * i))",
                "faults": "seed=1,crash=0.95",
            },
        )
        assert status == 422
        assert body["error"]["kind"] == "fault"

    def test_bad_fault_spec_is_400(self, client):
        status, body, _ = client.request(
            "POST", "/v1/run", {"program": "1", "faults": "bogus=1"}
        )
        assert status == 400


class TestSessions:
    def test_incremental_editing_lifecycle(self, client):
        _, body, _ = client.request("POST", "/v1/session", {})
        sid = body["session"]

        _, body, _ = client.request(
            "POST",
            f"/v1/session/{sid}/define",
            {"name": "square", "source": "fun x -> x * x"},
        )
        assert body["definitions"][-1]["type"] == "int -> int"

        _, body, _ = client.request(
            "POST",
            f"/v1/session/{sid}/define",
            {"name": "quad", "source": "fun x -> square (square x)"},
        )
        # Upstream definition re-served from the chain cache.
        assert body["definitions"][0]["reused"] is True
        assert body["definitions"][1]["reused"] is False

        status, body, _ = client.request(
            "POST", f"/v1/session/{sid}/run", {"program": "quad 3"}
        )
        assert status == 200
        assert body["value"] == "81"

        # Edit the downstream definition only: square stays cached.
        _, body, _ = client.request(
            "POST",
            f"/v1/session/{sid}/define",
            {"name": "quad", "source": "fun x -> square x"},
        )
        assert [d["reused"] for d in body["definitions"]] == [True, False]

        status, _, _ = client.request("DELETE", f"/v1/session/{sid}")
        assert status == 200
        status, _, _ = client.request("GET", f"/v1/session/{sid}")
        assert status == 404

    def test_ill_typed_edit_is_rejected_and_rolled_back(self, client):
        _, body, _ = client.request("POST", "/v1/session", {})
        sid = body["session"]
        client.request(
            "POST",
            f"/v1/session/{sid}/define",
            {"name": "f", "source": "fun x -> x + 1"},
        )
        status, body, _ = client.request(
            "POST",
            f"/v1/session/{sid}/define",
            {"name": "bad", "source": "f true"},
        )
        assert status == 422
        _, body, _ = client.request("GET", f"/v1/session/{sid}")
        assert body["definitions"] == ["f"]

    def test_unknown_session_is_404(self, client):
        status, body, _ = client.request(
            "POST", "/v1/session/s999999/run", {"program": "1"}
        )
        assert status == 404


class TestAdmissionControl:
    def test_queue_overflow_answers_429(self):
        handle = start_in_background(
            ServiceCore(), max_concurrency=1, max_queue=0
        )
        try:
            from tests.service.conftest import Client

            client = Client(handle.port)
            barrier = threading.Barrier(6)
            results = []
            lock = threading.Lock()

            def fire(index: int) -> None:
                barrier.wait(timeout=10)
                # Distinct programs -> no cache hits -> real work each.
                status, body, headers = client.request(
                    "POST",
                    "/v1/run",
                    {"program": f"scan (fun ab -> fst ab + snd ab) (mkpar (fun i -> i + {index}))", "p": 16},
                )
                with lock:
                    results.append((status, headers.get("retry-after")))

            threads = [threading.Thread(target=fire, args=(i,)) for i in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            statuses = sorted(status for status, _ in results)
            assert statuses.count(200) >= 1
            assert statuses.count(429) >= 1, statuses
            assert all(
                retry == "1" for status, retry in results if status == 429
            )
            assert handle.server.rejected >= 1
        finally:
            handle.stop()
