"""Service conformance sweep: every corpus program served over the API
must agree *exactly* with the local sequential reference — type,
constraints, value rendering and abstract cost — including with a
survivable fault plan armed, and while >= 8 requests are in flight.
"""

from __future__ import annotations

import http.client
import os
import threading
import time

import pytest

from repro import BspParams, infer, prelude_env, run_costed
from repro.obs.metrics import parse_prometheus
from repro.core.schemes import generalize
from repro.lang import parse_program, with_prelude
from repro.service import ServiceCore, ServiceConfig, start_in_background
from repro.service.handlers import _cost_payload, _render_constrained, _value_text
from repro.testing.differential import conformance_corpus

from tests.service.conftest import Client

#: A fault plan every corpus program survives: transient drops with
#: enough retry budget.  Deterministic (seeded), so chaos responses are
#: as reproducible as clean ones.
SURVIVABLE_FAULTS = "seed=42,drop=0.15,timeout=0.05,attempts=8"

P = 4


def _reference(source: str):
    """What the service must answer for ``source``: computed with the
    same public pipeline, sequential backend, no service involved."""
    expr = parse_program(source)
    ct = infer(expr, prelude_env())
    type_text, constraint_text = _render_constrained(ct)
    result = run_costed(with_prelude(expr), BspParams(p=P, g=1.0, l=20.0))
    return {
        "type": type_text,
        "constraints": constraint_text,
        "value": _value_text(result),
        "cost": _cost_payload(result),
    }


@pytest.fixture(scope="module")
def sweep_service():
    handle = start_in_background(
        ServiceCore(ServiceConfig(p=P, cache_capacity=4096)),
        max_concurrency=8,
        max_queue=256,
    )
    try:
        yield handle
    finally:
        handle.stop()


def _sweep(handle, faults=None, threads=16):
    """Fire the whole corpus concurrently; return {name: (status, body)}."""
    corpus = conformance_corpus()
    client = Client(handle.port)
    results = {}
    errors = []
    lock = threading.Lock()
    barrier = threading.Barrier(threads)
    queue = list(enumerate(corpus))

    def worker(worker_index: int) -> None:
        try:
            barrier.wait(timeout=30)
            for index, (name, source) in queue:
                if index % threads != worker_index:
                    continue
                payload = {"program": source, "p": P}
                if faults:
                    payload["faults"] = faults
                status, body, _ = client.request("POST", "/v1/run", payload)
                while status == 429:
                    time.sleep(0.05)
                    status, body, _ = client.request("POST", "/v1/run", payload)
                with lock:
                    results[name] = (status, body)
        except Exception as error:  # pragma: no cover - failure path
            with lock:
                errors.append(error)

    pool = [threading.Thread(target=worker, args=(t,)) for t in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=300)
    assert not errors, errors
    assert len(results) == len(corpus)
    return results


def test_clean_sweep_matches_sequential_reference(sweep_service):
    served = _sweep(sweep_service)
    for name, source in conformance_corpus():
        status, body = served[name]
        assert status == 200, f"{name}: {body}"
        expected = _reference(source)
        assert body["type"] == expected["type"], name
        assert body["constraints"] == expected["constraints"], name
        assert body["value"] == expected["value"], name
        assert body["cost"] == expected["cost"], name

    # The sweep itself must have exercised real concurrency: the
    # acceptance floor is >= 8 requests simultaneously in flight.
    peak = sweep_service.server.peak_inflight
    assert peak >= 8, f"peak_inflight={peak}"


def test_vectorized_engine_sweep_matches_reference(sweep_service):
    """The whole corpus served with ``engine=vectorized`` answers the
    exact fields of the sequential tree-engine reference — the service
    surface of the engine-conformance property."""
    client = Client(sweep_service.port)
    for name, source in conformance_corpus():
        payload = {"program": source, "p": P, "engine": "vectorized"}
        status, body, _ = client.request("POST", "/v1/run", payload)
        while status == 429:  # pragma: no cover - saturation backoff
            time.sleep(0.05)
            status, body, _ = client.request("POST", "/v1/run", payload)
        assert status == 200, f"{name}: {body}"
        expected = _reference(source)
        assert body["type"] == expected["type"], name
        assert body["constraints"] == expected["constraints"], name
        assert body["value"] == expected["value"], name
        assert body["cost"] == expected["cost"], name


def test_engine_is_part_of_the_cache_key():
    """Identical programs under different engines are distinct cache
    entries (the digest folds the engine knob), replay byte-identically
    per engine, and agree on every deterministic field across engines."""
    handle = start_in_background(
        ServiceCore(ServiceConfig(p=P)), max_concurrency=4, max_queue=16
    )
    try:
        client = Client(handle.port)
        program = {"program": "scan (fun ab -> fst ab + snd ab) (mkpar (fun i -> i + 1))", "p": P}
        bodies = {}
        for engine in ("tree", "compiled", "vectorized"):
            payload = dict(program, engine=engine)
            s1, b1, h1 = client.request("POST", "/v1/run", payload)
            s2, b2, h2 = client.request("POST", "/v1/run", payload)
            assert (s1, s2) == (200, 200), (engine, b1, b2)
            # First sight of each engine is a miss: same program under
            # another engine did not poison the key.
            assert h1["x-repro-cache"] == "miss", engine
            assert h2["x-repro-cache"] == "hit", engine
            for field in ("type", "constraints", "value", "cost"):
                assert b1[field] == b2[field], (engine, field)
            bodies[engine] = b1
        for engine, body in bodies.items():
            for field in ("type", "constraints", "value", "cost"):
                assert body[field] == bodies["tree"][field], (engine, field)
    finally:
        handle.stop()


def test_unknown_engine_is_a_request_error():
    handle = start_in_background(
        ServiceCore(ServiceConfig(p=P)), max_concurrency=4, max_queue=16
    )
    try:
        client = Client(handle.port)
        status, body, _ = client.request(
            "POST", "/v1/run", {"program": "1 + 1", "engine": "turbo"}
        )
        assert status == 400
        assert "engine must be one of tree, compiled, vectorized" in body["error"]["message"]
    finally:
        handle.stop()


def test_chaos_sweep_is_bit_identical_to_clean(sweep_service):
    """With a survivable fault plan armed, every observable field equals
    the clean run: supersteps retry transactionally until they commit."""
    served = _sweep(sweep_service, faults=SURVIVABLE_FAULTS)
    for name, source in conformance_corpus():
        status, body = served[name]
        assert status == 200, f"{name}: {body}"
        expected = _reference(source)
        assert body["type"] == expected["type"], name
        assert body["value"] == expected["value"], name
        assert body["cost"] == expected["cost"], name


def test_mixed_load_stays_deterministic():
    """A burst of mixed clean/chaos traffic from many threads: no 5xx,
    no wrong answers, stats stay coherent.  CI stretches the duration
    via REPRO_SERVICE_LOAD_SECONDS (default: a quick smoke)."""
    duration = float(os.environ.get("REPRO_SERVICE_LOAD_SECONDS", "3"))
    handle = start_in_background(
        ServiceCore(ServiceConfig(p=P, cache_capacity=512)),
        max_concurrency=8,
        max_queue=32,
    )
    try:
        client = Client(handle.port)
        corpus = [
            (name, source)
            for name, source in conformance_corpus()
        ][:12]
        expected = {name: _reference(source) for name, source in corpus}
        stop_at = time.monotonic() + duration
        failures = []
        counts = {"ok": 0, "rejected": 0}
        lock = threading.Lock()

        def worker(worker_index: int) -> None:
            rounds = 0
            while time.monotonic() < stop_at:
                name, source = corpus[(worker_index + rounds) % len(corpus)]
                payload = {"program": source, "p": P}
                if (worker_index + rounds) % 3 == 0:
                    payload["faults"] = SURVIVABLE_FAULTS
                try:
                    status, body, _ = client.request("POST", "/v1/run", payload)
                except Exception as error:
                    with lock:
                        failures.append(f"{name}: transport {error}")
                    return
                rounds += 1
                if status == 429:
                    with lock:
                        counts["rejected"] += 1
                    time.sleep(0.02)
                    continue
                if status != 200:
                    with lock:
                        failures.append(f"{name}: status {status} {body}")
                    continue
                with lock:
                    counts["ok"] += 1
                if body["value"] != expected[name]["value"] or (
                    body["cost"] != expected[name]["cost"]
                ):
                    with lock:
                        failures.append(f"{name}: wrong answer under load")

        scrapes = {"count": 0, "last": ""}

        def scraper() -> None:
            # /v1/metrics is served before admission control: every scrape
            # must succeed and parse, even while the service is saturated.
            while time.monotonic() < stop_at:
                try:
                    conn = http.client.HTTPConnection(
                        "127.0.0.1", handle.port, timeout=30.0
                    )
                    try:
                        conn.request("GET", "/v1/metrics")
                        response = conn.getresponse()
                        body = response.read().decode("utf-8")
                    finally:
                        conn.close()
                    if response.status != 200:
                        raise RuntimeError(f"scrape status {response.status}")
                    parse_prometheus(body)  # raises on malformed exposition
                except Exception as error:  # noqa: BLE001 - surfaced below
                    with lock:
                        failures.append(f"metrics scrape: {error}")
                    return
                with lock:
                    scrapes["count"] += 1
                    scrapes["last"] = body
                time.sleep(0.05)

        pool = [threading.Thread(target=worker, args=(t,)) for t in range(12)]
        pool.append(threading.Thread(target=scraper))
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=duration + 120)
        assert not failures, failures[:5]
        assert counts["ok"] > 0
        stats = handle.server.stats()
        assert stats["requests"] >= counts["ok"]
        assert stats["response_cache"]["hits"] > 0  # repeats hit the cache
        assert scrapes["count"] > 0
        families = parse_prometheus(scrapes["last"])
        for family in (
            "repro_request_seconds",
            "repro_requests_total",
            "repro_inflight_requests",
            "repro_superstep_phase_seconds",
        ):
            assert family in families, f"{family} absent from scrape under load"
    finally:
        handle.stop()
