"""Unit tests for the sharded response cache."""

from __future__ import annotations

import threading

import pytest

from repro.service.cache import ShardedCache


def k(i: int) -> str:
    """A hex-digest-shaped key."""
    return f"{i:064x}"


def test_get_put_roundtrip():
    cache: ShardedCache[bytes] = ShardedCache(capacity=16, shards=4)
    cache.put(k(1), b"one")
    assert cache.get(k(1)) == b"one"
    assert cache.get(k(2)) is None
    assert k(1) in cache and k(2) not in cache


def test_eviction_is_lru_per_shard():
    cache: ShardedCache[int] = ShardedCache(capacity=4, shards=1)
    for i in range(4):
        cache.put(k(i), i)
    cache.get(k(0))  # refresh 0; 1 becomes the eviction victim
    cache.put(k(99), 99)
    assert cache.get(k(0)) == 0
    assert cache.get(k(1)) is None
    assert cache.stats()["evictions"] == 1


def test_capacity_is_enforced_across_shards():
    cache: ShardedCache[int] = ShardedCache(capacity=64, shards=8)
    for i in range(1000):
        cache.put(k(i), i)
    assert len(cache) <= 64 + 8  # per-shard rounding slack only
    assert cache.stats()["evictions"] >= 1000 - 72


def test_keys_spread_across_shards():
    cache: ShardedCache[int] = ShardedCache(capacity=1024, shards=8)
    # Real keys are uniform sha256 digests; simulate with hashed fill.
    import hashlib

    for i in range(400):
        cache.put(hashlib.sha256(str(i).encode()).hexdigest(), i)
    sizes = cache.shard_sizes()
    assert len(sizes) == 8
    assert all(size > 10 for size in sizes), sizes


def test_stats_shape():
    cache: ShardedCache[int] = ShardedCache(capacity=10, shards=2)
    cache.put(k(1), 1)
    cache.get(k(1))
    cache.get(k(2))
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["entries"] == 1
    assert stats["shards"] == 2
    assert stats["capacity"] >= 10


def test_rejects_degenerate_configuration():
    with pytest.raises(ValueError):
        ShardedCache(capacity=0)
    with pytest.raises(ValueError):
        ShardedCache(capacity=8, shards=0)


def test_concurrent_puts_and_gets_are_safe():
    cache: ShardedCache[int] = ShardedCache(capacity=128, shards=8)
    errors = []

    def worker(base: int) -> None:
        try:
            for i in range(500):
                cache.put(k(base * 1000 + i), i)
                cache.get(k(base * 1000 + (i // 2)))
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors
    assert len(cache) <= 128 + 8
