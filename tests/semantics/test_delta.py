"""Tests for the local delta-rules (Figure 1)."""

from __future__ import annotations

import pytest

from repro.lang.ast import NC, App, Const, Fun, Pair, Prim, Var
from repro.lang.parser import parse_expression as parse
from repro.semantics.delta import LOCAL_DELTA_PRIMS, delta_local
from repro.semantics.errors import DivisionByZeroError


def pair(a, b):
    return Pair(Const(a), Const(b))


class TestArithmetic:
    @pytest.mark.parametrize(
        "op,a,b,result",
        [
            ("+", 2, 3, 5),
            ("-", 2, 3, -1),
            ("*", 4, 5, 20),
            ("/", 7, 2, 3),
            ("/", -7, 2, -3),  # OCaml truncates toward zero
            ("mod", 7, 2, 1),
            ("mod", -7, 2, -1),  # OCaml: sign of the dividend
        ],
    )
    def test_delta(self, op, a, b, result):
        assert delta_local(op, pair(a, b)) == Const(result)

    def test_division_by_zero_raises(self):
        with pytest.raises(DivisionByZeroError):
            delta_local("/", pair(1, 0))

    def test_modulo_by_zero_raises(self):
        with pytest.raises(DivisionByZeroError):
            delta_local("mod", pair(1, 0))

    def test_no_rule_for_non_integer_pair(self):
        assert delta_local("+", pair(True, False)) is None
        assert delta_local("+", Const(1)) is None


class TestComparison:
    @pytest.mark.parametrize(
        "op,a,b,result",
        [
            ("=", 1, 1, True),
            ("=", 1, 2, False),
            ("<>", 1, 2, True),
            ("<", 1, 2, True),
            ("<=", 2, 2, True),
            (">", 1, 2, False),
            (">=", 3, 2, True),
        ],
    )
    def test_delta(self, op, a, b, result):
        assert delta_local(op, pair(a, b)) == Const(result)

    def test_booleans_are_not_integers(self):
        # bool payloads must not satisfy integer comparison redexes.
        assert delta_local("<", pair(True, False)) is None


class TestBooleans:
    @pytest.mark.parametrize(
        "op,a,b,result",
        [
            ("&&", True, True, True),
            ("&&", True, False, False),
            ("||", False, False, False),
            ("||", False, True, True),
        ],
    )
    def test_delta(self, op, a, b, result):
        assert delta_local(op, pair(a, b)) == Const(result)

    def test_not(self):
        assert delta_local("not", Const(True)) == Const(False)
        assert delta_local("not", Const(1)) is None

    def test_integers_are_not_booleans(self):
        assert delta_local("&&", pair(1, 0)) is None


class TestProjections:
    def test_fst(self):
        assert delta_local("fst", pair(1, 2)) == Const(1)

    def test_snd(self):
        assert delta_local("snd", pair(1, 2)) == Const(2)

    def test_projection_needs_value_pair(self):
        # (x, 2) is not a value: no delta-rule.
        assert delta_local("fst", Pair(Var("x"), Const(2))) is None

    def test_projection_of_nested_value(self):
        inner = Pair(Const(1), Const(2))
        assert delta_local("fst", Pair(inner, Const(3))) == inner


class TestFix:
    def test_unfolding(self):
        # fix (fun x -> e) -> e[x <- fix (fun x -> e)]
        loop = Fun("f", Const(1))
        assert delta_local("fix", loop) == Const(1)

    def test_recursive_unfolding_substitutes(self):
        body = Fun("f", App(Var("f"), Const(0)))
        result = delta_local("fix", body)
        assert result == App(App(Prim("fix"), body), Const(0))

    def test_fix_of_non_function(self):
        assert delta_local("fix", Const(1)) is None


class TestIsnc:
    def test_isnc_of_nc(self):
        assert delta_local("isnc", NC) == Const(True)

    def test_isnc_of_other_value(self):
        assert delta_local("isnc", Const(5)) == Const(False)
        assert delta_local("isnc", Fun("x", Var("x"))) == Const(False)

    def test_isnc_of_non_value(self):
        assert delta_local("isnc", Var("x")) is None


class TestCoverage:
    def test_all_local_delta_prims_listed(self):
        assert {"+", "fst", "snd", "fix", "isnc", "not", "mod"} <= LOCAL_DELTA_PRIMS

    def test_parallel_prims_have_no_local_rule(self):
        assert "mkpar" not in LOCAL_DELTA_PRIMS
        assert "put" not in LOCAL_DELTA_PRIMS
