"""Tests for the big-step evaluator, including agreement with small-step."""

from __future__ import annotations

import pytest

from repro.lang.ast import Const
from repro.lang.parser import parse_expression as parse, parse_program
from repro.lang.prelude import with_prelude
from repro.lang.substitution import alpha_equal
from repro.semantics.bigstep import Evaluator, run
from repro.semantics.errors import DynamicNestingError, EvalError
from repro.semantics.smallstep import evaluate as smallstep_evaluate
from repro.semantics.values import (
    NC_VALUE,
    VClosure,
    VDelivered,
    VPair,
    VParVec,
    reify,
    to_python,
)
from repro.testing.generators import ProgramGenerator, well_typed_corpus


def big(source: str, p: int = 2):
    return run(with_prelude(parse_program(source)), p)


class TestScalars:
    def test_arithmetic(self):
        assert big("2 * 3 + 4") == 10

    def test_booleans(self):
        assert big("1 < 2 && not (2 < 1)") is True

    def test_unit(self):
        assert to_python(big("()")) == ()

    def test_pair(self):
        assert to_python(big("(1, true)")) == (1, True)

    def test_closure(self):
        value = big("fun x -> x")
        assert isinstance(value, VClosure)

    def test_nc(self):
        assert big("nc ()") == NC_VALUE
        assert big("isnc (nc ())") is True
        assert big("isnc 1") is False

    def test_fix_factorial(self):
        source = "(fix (fun f -> fun n -> if n = 0 then 1 else n * f (n - 1))) 8"
        assert big(source) == 40320

    def test_fix_with_two_arguments(self):
        source = (
            "(fix (fun gcd -> fun a -> fun b ->"
            " if b = 0 then a else gcd b (a mod b))) 48 60"
        )
        assert big(source) == 12

    def test_booleans_are_not_confused_with_ints(self):
        with pytest.raises(EvalError):
            big("true + 1")


class TestParallel:
    def test_mkpar(self):
        assert to_python(big("mkpar (fun i -> i)", p=4)) == [0, 1, 2, 3]

    def test_apply(self):
        value = big("apply (mkpar (fun i -> fun x -> x * i), mkpar (fun i -> 10))", p=3)
        assert to_python(value) == [0, 10, 20]

    def test_put_returns_delivered_functions(self):
        value = big("put (mkpar (fun j -> fun dst -> j))", p=2)
        assert isinstance(value, VParVec)
        assert all(isinstance(item, VDelivered) for item in value.items)
        assert value.items[0].lookup(1) == 1
        assert value.items[0].lookup(99) == NC_VALUE

    def test_ifat(self):
        source = (
            "if mkpar (fun i -> i = 0) at 0 then mkpar (fun i -> 1)"
            " else mkpar (fun i -> 0)"
        )
        assert to_python(big(source)) == [1, 1]

    def test_ifat_out_of_range(self):
        source = (
            "if mkpar (fun i -> true) at 7 then mkpar (fun i -> 1)"
            " else mkpar (fun i -> 0)"
        )
        with pytest.raises(EvalError, match="out of range"):
            big(source, p=2)

    def test_nproc(self):
        assert big("nproc", p=5) == 5

    def test_prelude_scan(self):
        value = big("scan (fun ab -> fst ab + snd ab) (mkpar (fun i -> i))", p=8)
        assert to_python(value) == [0, 1, 3, 6, 10, 15, 21, 28]


class TestDynamicNesting:
    def test_mkpar_inside_mkpar(self):
        with pytest.raises(DynamicNestingError):
            big("mkpar (fun pid -> mkpar (fun i -> i))")

    def test_example2(self):
        with pytest.raises(DynamicNestingError):
            big("mkpar (fun pid -> let this = mkpar (fun i -> i) in pid)")

    def test_put_inside_component(self):
        with pytest.raises(DynamicNestingError):
            big("mkpar (fun pid -> put (mkpar (fun i -> fun d -> i)))")

    def test_fourth_projection_evaluates_the_vector(self):
        # Big-step evaluates both pair components, so the vector is built;
        # the value 1 comes out, but a vector was materialized on the way —
        # exactly the cost-model violation the paper describes.  The
        # static system rejects it; dynamically it "succeeds" here.
        assert big("fst (1, mkpar (fun i -> i))") == 1


class TestErrors:
    def test_unbound_variable(self):
        with pytest.raises(EvalError, match="unbound"):
            run(parse("x"), 2)

    def test_apply_non_function(self):
        with pytest.raises(EvalError, match="non-function"):
            big("1 2")

    def test_if_non_bool(self):
        with pytest.raises(EvalError, match="non-boolean"):
            big("if 1 then 2 else 3")

    def test_fix_needs_functional_body(self):
        with pytest.raises(EvalError, match="functional body"):
            big("fix (fun x -> x + 1)")

    def test_evaluator_p_must_match_machine(self):
        from repro.bsp import BspMachine, BspParams

        with pytest.raises(ValueError):
            Evaluator(3, BspMachine(BspParams(p=4)))


class TestAgreementWithSmallStep:
    @pytest.mark.parametrize("source", well_typed_corpus())
    def test_corpus_agreement(self, source):
        expr = with_prelude(parse_program(source))
        small = smallstep_evaluate(expr, 3)
        big_value = run(expr, 3)
        assert alpha_equal(small, reify(big_value))

    @pytest.mark.parametrize("seed", range(60))
    def test_random_agreement(self, seed):
        expr = ProgramGenerator(seed=seed, p_hint=2).expression(depth=4)
        small = smallstep_evaluate(expr, 2)
        big_value = run(expr, 2)
        assert alpha_equal(small, reify(big_value))

    @pytest.mark.parametrize("p", [1, 2, 3, 5])
    def test_agreement_across_machine_sizes(self, p):
        expr = with_prelude(
            parse_program("scan (fun ab -> fst ab + snd ab) (mkpar (fun i -> 1))")
        )
        small = smallstep_evaluate(expr, p)
        big_value = run(expr, p)
        assert alpha_equal(small, reify(big_value))
