"""Unit tests for the SPMD-vectorized evaluator: uniform batching,
divergence peeling on pid-dependent ``if``/``case``, per-pid error
timing, cross-engine closure interop, the chaos fallback, and the
``semantics.vectorized.*`` perf counters."""

from __future__ import annotations

import pytest

from repro import perf
from repro.bsp.faults import FaultPlan
from repro.bsp.machine import BspMachine
from repro.bsp.params import BspParams
from repro.lang.parser import parse_expression, parse_program
from repro.lang.prelude import with_prelude
from repro.lang.pretty import pretty
from repro.semantics.bigstep import Evaluator
from repro.semantics.compiled import CompiledEvaluator
from repro.semantics.errors import DivisionByZeroError
from repro.semantics.vectorized import (
    VectorizedEvaluator,
    VectorizedProgram,
    compile_vectorized,
)
from repro.semantics.values import (
    VClosure,
    VCompiledClosure,
    VParVec,
    reify,
)

PARAMS = BspParams(p=4, g=2.0, l=50.0)

ENGINE_CLASSES = (Evaluator, CompiledEvaluator, VectorizedEvaluator)


def _agree3(source, env=None):
    """Evaluate on all three engines with costed machines; assert the
    value fingerprint and the BspCost are identical, return the
    vectorized pair."""
    expr = parse_expression(source)
    results = []
    for engine_cls in ENGINE_CLASSES:
        machine = BspMachine(PARAMS)
        value = engine_cls(PARAMS.p, machine).eval(
            expr, dict(env) if env else None
        )
        results.append((value, machine.cost()))
    (_, tree_cost), (_, compiled_cost), (value, cost) = results
    assert cost == tree_cost == compiled_cost, source
    fingerprints = {pretty(reify(v)) for v, _ in results}
    assert len(fingerprints) == 1, source
    return value, cost


# -- uniform batching ---------------------------------------------------------


def test_uniform_mkpar_batches_once():
    with perf.collect() as stats:
        value, _ = _agree3("mkpar (fun i -> i * i)")
    assert isinstance(value, VParVec)
    assert value.items == (0, 1, 4, 9)
    # One batched superstep for the vectorized run; the happy path
    # never peels.
    assert stats.counter("semantics.vectorized.batched_steps") == 1
    assert stats.counter("semantics.vectorized.fallback_pids") == 0
    assert stats.counter("semantics.vectorized.peel_events") == 0


def test_every_parallel_primitive_batches():
    # mkpar + mkpar + apply, then mkpar + put: each parallel superstep
    # is one batch.
    with perf.collect() as stats:
        _agree3("apply (mkpar (fun i -> fun x -> i + x), mkpar (fun i -> i))")
    assert stats.counter("semantics.vectorized.batched_steps") == 3
    with perf.collect() as stats:
        _agree3("put (mkpar (fun src -> fun dst -> src * 10 + dst))")
    assert stats.counter("semantics.vectorized.batched_steps") == 2


def test_batched_closures_capture_lane_state():
    value, _ = _agree3(
        "let v = mkpar (fun i -> i + 1) in "
        "apply (apply (mkpar (fun i -> fun x -> fun y -> x * y + i), v), v)"
    )
    assert value.items == tuple((i + 1) * (i + 1) + i for i in range(4))


# -- divergence peeling -------------------------------------------------------


def test_pid_divergent_if_peels_minority():
    with perf.collect() as stats:
        value, _ = _agree3("mkpar (fun i -> if i = 0 then 100 else i)")
    assert value.items == (100, 1, 2, 3)
    # One split: pid 0 takes the minority branch and is peeled through
    # the compiled scalar twin; the other three lanes stay batched.
    assert stats.counter("semantics.vectorized.peel_events") == 1
    assert stats.counter("semantics.vectorized.fallback_pids") == 1


def test_pid_divergent_case_peels():
    with perf.collect() as stats:
        value, _ = _agree3(
            "mkpar (fun i -> "
            "case (if i = 0 then inl i else inr i) of "
            "inl x -> x + 100 | inr y -> y * 2)"
        )
    assert value.items == (100, 2, 4, 6)
    assert stats.counter("semantics.vectorized.peel_events") >= 1
    assert stats.counter("semantics.vectorized.fallback_pids") >= 1


def test_uniform_condition_does_not_peel():
    with perf.collect() as stats:
        value, _ = _agree3("mkpar (fun i -> if nproc = 4 then i else 0 - i)")
    assert value.items == (0, 1, 2, 3)
    assert stats.counter("semantics.vectorized.peel_events") == 0
    assert stats.counter("semantics.vectorized.fallback_pids") == 0


def test_mixed_uniform_and_divergent_supersteps():
    value, _ = _agree3(
        "let a = mkpar (fun i -> i * 2) in "
        "let b = mkpar (fun i -> if i < 2 then 10 else 20) in "
        "apply (mkpar (fun i -> fun x -> x + i), b)"
    )
    assert value.items == (10, 11, 22, 23)


# -- error timing -------------------------------------------------------------


def test_one_pid_raises_identically():
    expr = parse_expression("mkpar (fun i -> if i = 2 then 1 / 0 else i)")
    costs = []
    messages = []
    for engine_cls in ENGINE_CLASSES:
        machine = BspMachine(PARAMS)
        with pytest.raises(DivisionByZeroError) as info:
            engine_cls(PARAMS.p, machine).eval(expr)
        messages.append(str(info.value))
        costs.append(machine.cost())
    # Same error text, and the failed superstep commits nothing into
    # BspCost on any engine.
    assert len(set(messages)) == 1
    assert costs[0] == costs[1] == costs[2]


def test_killed_lane_stops_charging():
    # The failing lane dies at its own site; the surviving lanes'
    # results and charges are unaffected (checked via cost identity).
    expr = parse_expression(
        "mkpar (fun i -> if i = 0 then (1 / 0) + 1 else i + 1)"
    )
    for engine_cls in ENGINE_CLASSES:
        with pytest.raises(DivisionByZeroError):
            engine_cls(PARAMS.p, BspMachine(PARAMS)).eval(expr)


# -- cross-engine interop -----------------------------------------------------


def test_other_engines_apply_vectorized_closure():
    fn = VectorizedEvaluator(PARAMS.p).eval(parse_expression("fun x -> x * x"))
    assert isinstance(fn, VCompiledClosure)
    for engine_cls in (Evaluator, CompiledEvaluator):
        machine = BspMachine(PARAMS)
        assert engine_cls(PARAMS.p, machine).eval(
            parse_expression("f 9"), {"f": fn}
        ) == 81


def test_vectorized_batch_runs_foreign_closures():
    # A tree closure inside a vectorized mkpar routes through the
    # elementwise fallback; a compiled closure stays batch-eligible.
    # Values and costs match the other engines either way.
    fn_expr = parse_expression("fun i -> i * i + 1")
    for maker in (Evaluator, CompiledEvaluator):
        fn = maker(PARAMS.p).eval(fn_expr)
        costs = []
        for runner in ENGINE_CLASSES:
            machine = BspMachine(PARAMS)
            value = runner(PARAMS.p, machine).eval(
                parse_expression("mkpar f"), {"f": fn}
            )
            assert value.items == (1, 2, 5, 10)
            costs.append(machine.cost())
        assert costs[0] == costs[1] == costs[2]
    tree_fn = Evaluator(PARAMS.p).eval(fn_expr)
    assert isinstance(tree_fn, VClosure)


# -- chaos fallback -----------------------------------------------------------


def test_armed_fault_plan_disables_batching():
    # With a fault plan armed a retry may re-execute tasks, so replaying
    # memoized outcomes is unsound: the engine must fall back to the
    # compiled scalar path wholesale and say so in the counters.
    plan = FaultPlan(seed=0)  # all rates zero: survivable by definition
    expr = parse_expression("mkpar (fun i -> i * 3)")
    with perf.collect() as stats:
        machine = BspMachine(PARAMS, faults=plan)
        value = VectorizedEvaluator(PARAMS.p, machine).eval(expr)
    assert value.items == (0, 3, 6, 9)
    assert stats.counter("semantics.vectorized.batched_steps") == 0
    assert stats.counter("semantics.vectorized.fallback_pids") == PARAMS.p


# -- programs, prelude, reruns ------------------------------------------------


def test_prelude_fold_agrees():
    expr = with_prelude(
        parse_program("fold (fun ab -> fst ab + snd ab) (mkpar (fun i -> i))")
    )
    costs = []
    for engine_cls in ENGINE_CLASSES:
        machine = BspMachine(PARAMS)
        value = engine_cls(PARAMS.p, machine).eval(expr)
        costs.append(machine.cost())
        assert value.items == (6, 6, 6, 6)
    assert costs[0] == costs[1] == costs[2]


def test_vectorized_program_reruns():
    program = compile_vectorized(
        parse_expression("mkpar (fun i -> i + 1)"), PARAMS.p
    )
    assert isinstance(program, VectorizedProgram)
    for _ in range(3):
        machine = BspMachine(PARAMS)
        assert program.run(machine).items == (1, 2, 3, 4)


def test_vectorized_program_env_names():
    program = compile_vectorized(
        parse_expression("mkpar (fun i -> i * k)"), PARAMS.p, env_names=("k",)
    )
    machine = BspMachine(PARAMS)
    assert program.run(machine, env={"k": 5}).items == (0, 5, 10, 15)


def test_machine_width_check():
    program = compile_vectorized(parse_expression("1 + 1"), PARAMS.p)
    with pytest.raises(ValueError, match="machine width"):
        program.run(machine=BspMachine(BspParams(p=2)))
    with pytest.raises(ValueError, match="machine width"):
        VectorizedEvaluator(PARAMS.p, BspMachine(BspParams(p=2)))


def test_uncosted_eval_matches_compiled():
    # No machine means no supersteps to batch: the inline compiled path
    # runs, values still agree.
    source = "mkpar (fun i -> if i = 1 then 7 else i)"
    vec = VectorizedEvaluator(PARAMS.p).eval(parse_expression(source))
    com = CompiledEvaluator(PARAMS.p).eval(parse_expression(source))
    assert vec.items == com.items == (0, 7, 2, 3)
