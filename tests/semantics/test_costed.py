"""Tests for costed execution: BSP accounting of mini-BSML programs."""

from __future__ import annotations

import pytest

from repro.bsp.params import BspParams
from repro.semantics.costed import run_costed, run_source
from repro.lang.parser import parse_expression as parse


PARAMS = BspParams(p=4, g=2.0, l=100.0)


class TestSuperstepStructure:
    def test_pure_local_program_has_no_barrier(self):
        result = run_source("mkpar (fun i -> i * i)", PARAMS, use_prelude=False)
        assert result.cost.S == 0
        assert result.cost.H == 0
        assert result.cost.W > 0

    def test_put_is_one_superstep(self):
        result = run_source(
            "put (mkpar (fun j -> fun dst -> j))", PARAMS, use_prelude=False
        )
        assert result.cost.S == 1

    def test_ifat_is_one_superstep(self):
        result = run_source(
            "if mkpar (fun i -> true) at 0 then mkpar (fun i -> 1)"
            " else mkpar (fun i -> 0)",
            PARAMS,
            use_prelude=False,
        )
        assert result.cost.S == 1
        # The boolean is broadcast one-to-all: the sender moves p-1 words,
        # so the relation's arity is h = p - 1.
        assert result.cost.H == PARAMS.p - 1

    def test_two_puts_are_two_supersteps(self):
        result = run_source(
            "let a = put (mkpar (fun j -> fun d -> j)) in"
            " put (mkpar (fun j -> fun d -> j))",
            PARAMS,
            use_prelude=False,
            # note: this is rejected statically (let of global with global
            # body is fine — both are global), so it runs
        )
        assert result.cost.S == 2

    def test_scan_has_log2_p_supersteps(self):
        result = run_source(
            "scan (fun ab -> fst ab + snd ab) (mkpar (fun i -> i))", PARAMS
        )
        assert result.cost.S == 2  # log2(4)

    def test_scan_supersteps_grow_with_p(self):
        result = run_source(
            "scan (fun ab -> fst ab + snd ab) (mkpar (fun i -> i))",
            BspParams(p=8, g=2.0, l=100.0),
        )
        assert result.cost.S == 3  # log2(8)


class TestHRelations:
    def test_put_total_exchange_h(self):
        # Every process sends 1 word to the other p-1: h = p-1.
        result = run_source(
            "put (mkpar (fun j -> fun dst -> j))", PARAMS, use_prelude=False
        )
        assert result.cost.H == PARAMS.p - 1

    def test_nc_messages_are_free(self):
        result = run_source(
            "put (mkpar (fun j -> fun dst -> nc ()))", PARAMS, use_prelude=False
        )
        assert result.cost.H == 0
        assert result.cost.S == 1  # the barrier still happens

    def test_self_messages_are_free(self):
        result = run_source(
            "put (mkpar (fun j -> fun dst -> if dst = j then j else nc ()))",
            PARAMS,
            use_prelude=False,
        )
        assert result.cost.H == 0

    def test_single_point_to_point(self):
        result = run_source(
            "put (mkpar (fun j -> fun dst ->"
            " if j = 0 then if dst = 1 then 42 else nc () else nc ()))",
            PARAMS,
            use_prelude=False,
        )
        assert result.cost.H == 1

    def test_message_size_scales_h(self):
        # Sending a 3-word pair-of-pairs: h = 3 for one message.
        result = run_source(
            "put (mkpar (fun j -> fun dst ->"
            " if j = 0 then if dst = 1 then ((1, 2), 3) else nc () else nc ()))",
            PARAMS,
            use_prelude=False,
        )
        assert result.cost.H == 3


class TestBcastFormula:
    """Formula (1): cost of bcast = p + (p-1)*s*g + l."""

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_h_term_is_p_minus_1_times_s(self, p):
        params = BspParams(p=p, g=1.0, l=10.0)
        result = run_source("bcast 0 (mkpar (fun i -> i))", params)
        assert result.cost.H == (p - 1) * 1
        assert result.cost.S == 1

    def test_message_size_multiplies(self):
        # s = 2 (a pair of ints)
        result = run_source("bcast 0 (mkpar (fun i -> (i, i)))", PARAMS)
        assert result.cost.H == (PARAMS.p - 1) * 2

    def test_local_work_is_linear_in_p(self):
        w = {}
        for p in (2, 4, 8):
            params = BspParams(p=p, g=1.0, l=10.0)
            w[p] = run_source("bcast 0 (mkpar (fun i -> i))", params).cost.W
        # W = a + b*p (the put evaluates the send function at every
        # destination): perfectly linear across doubling machine sizes.
        assert w[8] - w[4] == pytest.approx(2 * (w[4] - w[2]))
        assert w[4] > w[2]


class TestResultPlumbing:
    def test_value_and_cost_together(self):
        result = run_source("bcast 2 (mkpar (fun i -> i * 3))", PARAMS)
        assert result.python_value == [6, 6, 6, 6]
        assert result.total_time == pytest.approx(
            result.cost.total(PARAMS)
        )

    def test_decomposition_consistency(self):
        result = run_source(
            "scan (fun ab -> fst ab + snd ab) (mkpar (fun i -> i))", PARAMS
        )
        assert result.cost.check_decomposition(PARAMS)

    def test_render_mentions_supersteps(self):
        result = run_source("bcast 0 (mkpar (fun i -> i))", PARAMS)
        text = result.render()
        assert "put" in text
        assert "W =" in text

    def test_run_costed_on_ast(self):
        result = run_costed(parse("mkpar (fun i -> i)"), PARAMS)
        assert result.python_value == [0, 1, 2, 3]


class TestDeepPrograms:
    def test_deep_let_tower_runs_costed(self):
        # Regression: run_costed recurses over the AST (prelude linking and
        # evaluation) and must guard the frame limit for deep programs.
        source = "".join(f"let x{i} = {i} in " for i in range(1500)) + "x0"
        result = run_source(source, PARAMS, use_prelude=False)
        assert result.python_value == 0
