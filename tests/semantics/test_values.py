"""Tests for runtime values: sizes (words), reification, projection."""

from __future__ import annotations

import pytest

from repro.lang.ast import NC, UNIT, Const, Fun, Var
from repro.lang.parser import parse_expression as parse
from repro.lang.substitution import alpha_equal
from repro.semantics.bigstep import run
from repro.semantics.errors import EvalError
from repro.semantics.values import (
    NC_VALUE,
    VClosure,
    VDelivered,
    VPair,
    VParVec,
    VPrim,
    VTuple,
    is_global_value,
    reify,
    to_python,
    words,
)


class TestWords:
    def test_scalars_weigh_one(self):
        assert words(5) == 1
        assert words(True) == 1
        assert words(UNIT) == 1
        assert words(NC_VALUE) == 1

    def test_pair_is_additive(self):
        assert words(VPair(1, VPair(2, 3))) == 3

    def test_tuple(self):
        assert words(VTuple((1, 2, 3, 4))) == 4

    def test_closure_counts_body_and_captures(self):
        closure = run(parse("let y = (1, 2) in fun x -> y"), 1)
        # 1 + body size (Var y = 1 node) + captured pair (2 words)
        assert words(closure) == 4

    def test_closure_without_captures(self):
        closure = run(parse("fun x -> x"), 1)
        assert words(closure) == 2

    def test_delivered_sums_messages(self):
        assert words(VDelivered((1, NC_VALUE, VPair(1, 2)))) == 4

    def test_parallel_vector_has_no_size(self):
        with pytest.raises(EvalError):
            words(VParVec((1, 2)))


class TestReify:
    def test_scalars(self):
        assert reify(3) == Const(3)
        assert reify(False) == Const(False)
        assert reify(UNIT) == Const(UNIT)
        assert reify(NC_VALUE) == NC

    def test_prim(self):
        from repro.lang.ast import Prim

        assert reify(VPrim("fst")) == Prim("fst")

    def test_pair(self):
        assert reify(VPair(1, 2)) == parse("(1, 2)")

    def test_vector(self):
        from repro.lang.ast import ParVec

        assert reify(VParVec((1, 2))) == ParVec((Const(1), Const(2)))

    def test_closure_substitutes_environment(self):
        closure = run(parse("let k = 5 in fun x -> x + k"), 1)
        assert alpha_equal(reify(closure), parse("fun x -> x + 5"))

    def test_closure_shadowed_param_not_substituted(self):
        closure = run(parse("let x = 5 in fun x -> x"), 1)
        assert alpha_equal(reify(closure), parse("fun x -> x"))

    def test_recursive_closure_raises(self):
        recursive = run(parse("fix (fun f -> fun n -> f n)"), 1)
        with pytest.raises(EvalError, match="recursive"):
            reify(recursive)

    def test_delivered_reifies_to_figure2_shape(self):
        value = VDelivered((7, NC_VALUE))
        expected = parse("fun x -> if x = 0 then 7 else if x = 1 then nc () else nc ()")
        assert alpha_equal(reify(value), expected)


class TestToPython:
    def test_ground(self):
        assert to_python(VPair(1, VPair(True, UNIT))) == (1, (True, ()))

    def test_nc_is_none(self):
        assert to_python(NC_VALUE) is None

    def test_vector_is_list(self):
        assert to_python(VParVec((1, 2, 3))) == [1, 2, 3]

    def test_functions_pass_through(self):
        closure = run(parse("fun x -> x"), 1)
        assert to_python(closure) is closure


class TestGlobality:
    def test_vector_is_global(self):
        assert is_global_value(VParVec((1,)))

    def test_pair_containing_vector(self):
        assert is_global_value(VPair(1, VParVec((1,))))

    def test_scalars_are_local(self):
        assert not is_global_value(42)
        assert not is_global_value(VPair(1, 2))
