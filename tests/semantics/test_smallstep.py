"""Tests for the small-step machine: the relation ->* of section 3."""

from __future__ import annotations

import pytest

from repro.lang.ast import Const, ParVec, is_value_syntax
from repro.lang.parser import parse_expression as parse, parse_program
from repro.lang.prelude import with_prelude
from repro.semantics.errors import StepLimitExceeded, StuckError
from repro.semantics.smallstep import (
    diagnose,
    evaluate,
    is_dynamic_nesting,
    step,
    step_count,
    trace,
)


def run(source: str, p: int = 2):
    return evaluate(with_prelude(parse_program(source)), p)


class TestScalars:
    def test_arithmetic(self):
        assert run("1 + 2 * 3") == Const(7)

    def test_beta(self):
        assert run("(fun x -> x * x) 6") == Const(36)

    def test_let(self):
        assert run("let x = 3 in x + x") == Const(6)

    def test_if(self):
        assert run("if 1 < 2 then 10 else 20") == Const(10)

    def test_shadowing(self):
        assert run("let x = 1 in let x = x + 1 in x") == Const(2)

    def test_factorial(self):
        source = "(fix (fun f -> fun n -> if n = 0 then 1 else n * f (n - 1))) 5"
        assert run(source) == Const(120)

    def test_mutual_style_recursion_via_pair(self):
        source = """
            let even = fix (fun even -> fun n ->
                if n = 0 then true else
                if n = 1 then false else even (n - 2)) in
            (even 10, even 7)
        """
        result = run(source)
        assert result == parse("(true, false)")


class TestParallel:
    def test_mkpar(self):
        assert run("mkpar (fun i -> i * 2)", p=3) == ParVec(
            (Const(0), Const(2), Const(4))
        )

    def test_apply(self):
        result = run(
            "apply (mkpar (fun i -> fun x -> x - i), mkpar (fun i -> 10))", p=3
        )
        assert result == ParVec((Const(10), Const(9), Const(8)))

    def test_ifat(self):
        source = (
            "if mkpar (fun i -> i = 1) at 1 then mkpar (fun i -> 1)"
            " else mkpar (fun i -> 0)"
        )
        assert run(source, p=2) == ParVec((Const(1), Const(1)))

    def test_nproc(self):
        assert run("mkpar (fun i -> nproc)", p=3) == ParVec(
            (Const(3), Const(3), Const(3))
        )

    def test_bcast(self):
        assert run("bcast 1 (mkpar (fun i -> i * 7))", p=3) == ParVec(
            (Const(7), Const(7), Const(7))
        )

    def test_semantics_depends_on_p(self):
        source = "fold (fun ab -> fst ab + snd ab) (mkpar (fun i -> 1))"
        assert run(source, p=2).items[0] == Const(2)
        assert run(source, p=5).items[0] == Const(5)


class TestStepRelation:
    def test_step_of_value_is_none(self):
        assert step(Const(1), 2) is None
        assert step(parse("fun x -> x"), 2) is None

    def test_step_is_deterministic_function(self):
        expr = parse("(1 + 2, 3 + 4)")
        assert step(expr, 2) == step(expr, 2)

    def test_trace_includes_endpoints(self):
        states = list(trace(parse("1 + 2"), 2))
        assert states[0] == parse("1 + 2")
        assert states[-1] == Const(3)

    def test_step_count(self):
        assert step_count(Const(1), 2) == 0
        assert step_count(parse("1 + 2"), 2) == 1

    def test_every_trace_state_but_last_is_not_a_value(self):
        states = list(trace(parse("(fun x -> x + 1) (2 * 3)"), 2))
        for state in states[:-1]:
            assert not is_value_syntax(state)
        assert is_value_syntax(states[-1])


class TestStuckness:
    def test_free_variable(self):
        with pytest.raises(StuckError, match="free variable"):
            evaluate(parse("x + 1"), 2)

    def test_apply_non_function(self):
        with pytest.raises(StuckError, match="cannot apply"):
            evaluate(parse("1 2"), 2)

    def test_if_non_bool(self):
        with pytest.raises(StuckError, match="non-boolean"):
            evaluate(parse("if 1 then 2 else 3"), 2)

    def test_dynamic_nesting_mkpar(self):
        expr = parse("mkpar (fun pid -> mkpar (fun i -> i))")
        with pytest.raises(StuckError, match="dynamic nesting"):
            evaluate(expr, 2)
        assert is_dynamic_nesting(expr, 2)

    def test_dynamic_nesting_example2(self):
        expr = parse("mkpar (fun pid -> let this = mkpar (fun i -> i) in pid)")
        assert is_dynamic_nesting(expr, 2)

    def test_dynamic_nesting_put(self):
        expr = parse("mkpar (fun pid -> put (mkpar (fun i -> fun d -> i)))")
        assert is_dynamic_nesting(expr, 2)

    def test_ifat_out_of_range(self):
        expr = parse(
            "if mkpar (fun i -> true) at 9 then mkpar (fun i -> 1)"
            " else mkpar (fun i -> 0)"
        )
        with pytest.raises(StuckError):
            evaluate(expr, 2)

    def test_well_typed_programs_are_not_nesting(self):
        assert not is_dynamic_nesting(parse("mkpar (fun i -> i)"), 2)

    def test_diagnose_mentions_the_culprit(self):
        message = diagnose(parse("zz"), 2)
        assert "zz" in message


class TestFuel:
    def test_divergence_hits_step_limit(self):
        omega = parse("(fix (fun f -> fun x -> f x)) 0")
        with pytest.raises(StepLimitExceeded):
            evaluate(omega, 1, max_steps=2_000)

    def test_trace_respects_limit(self):
        omega = parse("(fix (fun f -> fun x -> f x)) 0")
        with pytest.raises(StepLimitExceeded):
            list(trace(omega, 1, max_steps=500))


class TestDeepPrograms:
    """Regression: step/evaluate/diagnose recurse over the AST and used to
    blow CPython's default frame limit on deep (but legitimate) programs;
    they now guard themselves with deep_recursion like the parser does."""

    @staticmethod
    def _let_tower(depth: int) -> str:
        source = "".join(f"let x{i} = {i} in " for i in range(depth))
        return source + "x0"

    def test_deep_let_tower_evaluates(self):
        expr = parse(self._let_tower(1500))
        assert evaluate(expr, p=2) == Const(0)

    def test_deep_let_tower_single_step(self):
        expr = parse(self._let_tower(1500))
        assert step(expr, p=2) is not None
