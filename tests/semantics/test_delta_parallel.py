"""Tests for the parallel delta-rules (Figure 2)."""

from __future__ import annotations

import pytest

from repro.lang.ast import (
    App,
    Const,
    Fun,
    IfAt,
    Let,
    Pair,
    ParVec,
    Prim,
    Var,
)
from repro.lang.parser import parse_expression as parse
from repro.semantics.delta_parallel import (
    delta_apply,
    delta_ifat,
    delta_mkpar,
    delta_put,
)
from repro.semantics.smallstep import evaluate


class TestMkpar:
    def test_substitution_per_process(self):
        # mkpar (fun x -> x) -> <0, 1, 2>
        result = delta_mkpar(Fun("x", Var("x")), 3)
        assert result == ParVec((Const(0), Const(1), Const(2)))

    def test_body_is_substituted_not_applied(self):
        # Figure 2 substitutes directly: e[x <- i].
        result = delta_mkpar(Fun("x", Pair(Var("x"), Var("x"))), 2)
        assert result == ParVec(
            (Pair(Const(0), Const(0)), Pair(Const(1), Const(1)))
        )

    def test_non_lambda_functional_value_becomes_application(self):
        # mkpar isnc -> <isnc 0, isnc 1>, reduced inside components later.
        result = delta_mkpar(Prim("isnc"), 2)
        assert result == ParVec(
            (App(Prim("isnc"), Const(0)), App(Prim("isnc"), Const(1)))
        )

    def test_non_value_argument_has_no_rule(self):
        assert delta_mkpar(Var("f"), 2) is None

    def test_width_is_p(self):
        assert delta_mkpar(Fun("x", Const(1)), 7).width == 7


class TestApply:
    def test_componentwise(self):
        fns = ParVec((Fun("x", Var("x")), Fun("x", Const(9))))
        args = ParVec((Const(1), Const(2)))
        result = delta_apply(Pair(fns, args), 2)
        assert result == ParVec((Const(1), Const(9)))

    def test_wrong_width_has_no_rule(self):
        fns = ParVec((Fun("x", Var("x")),))
        args = ParVec((Const(1),))
        assert delta_apply(Pair(fns, args), 2) is None

    def test_needs_pair_of_vectors(self):
        assert delta_apply(ParVec((Const(1),)), 1) is None

    def test_unevaluated_components_have_no_rule(self):
        fns = ParVec((App(Fun("x", Var("x")), Fun("y", Var("y"))),))
        args = ParVec((Const(1),))
        assert delta_apply(Pair(fns, args), 1) is None


class TestPut:
    def test_structure_of_reduct(self):
        # put <fun dst -> 10, fun dst -> 20> builds per-process let-chains.
        senders = ParVec((Fun("dst", Const(10)), Fun("dst", Const(20))))
        result = delta_put(senders, 2)
        assert isinstance(result, ParVec)
        assert result.width == 2
        for component in result.items:
            assert isinstance(component, Let)  # the message let-chain

    def test_end_to_end_delivery(self):
        # Sender j sends j*10+dst to every dst; check full evaluation.
        program = parse(
            "apply (put (mkpar (fun j -> fun dst -> j * 10 + dst)),"
            " mkpar (fun i -> i))"
        )
        # Wait: apply expects functions left; build it the right way round:
        program = parse(
            "apply (apply (mkpar (fun i -> fun f -> (f 0, f 1)),"
            " put (mkpar (fun j -> fun dst -> j * 10 + dst))),"
            " mkpar (fun i -> i))"
        )
        # Simpler: evaluate the put and inspect via smallstep directly.
        delivered = evaluate(
            parse("put (mkpar (fun j -> fun dst -> j * 10 + dst))"), 2
        )
        # Component i maps source j to j*10+i.
        probe = evaluate(
            App(
                Prim("apply"),
                Pair(delivered, parse("mkpar (fun i -> 1)")),
            ),
            2,
        )
        # fd_i(1) = message from source 1 to process i = 10 + i.
        assert probe == ParVec((Const(10), Const(11)))

    def test_missing_message_is_nc(self):
        delivered = evaluate(
            parse("put (mkpar (fun j -> fun dst -> if j = 0 then j else nc ()))"),
            2,
        )
        probed = evaluate(
            App(Prim("apply"), Pair(delivered, parse("mkpar (fun i -> 1)"))), 2
        )
        from repro.lang.ast import NC

        assert probed == ParVec((NC, NC))

    def test_out_of_range_source_is_nc(self):
        delivered = evaluate(parse("put (mkpar (fun j -> fun dst -> j))"), 2)
        probed = evaluate(
            App(Prim("apply"), Pair(delivered, parse("mkpar (fun i -> 5)"))), 2
        )
        from repro.lang.ast import NC

        assert probed == ParVec((NC, NC))

    def test_fresh_names_respect_side_condition(self):
        # A sender with a free-ish bound name 'msg0' must not collide with
        # the generated message names.
        senders = ParVec(
            (
                Fun("dst", Let("msg0", Const(1), Var("msg0"))),
                Fun("dst", Const(2)),
            )
        )
        result = delta_put(senders, 2)
        final = evaluate(
            App(Prim("apply"), Pair(result, ParVec((Const(0), Const(0))))), 2
        )
        assert final == ParVec((Const(1), Const(1)))


class TestIfAt:
    def _vec(self, *values):
        return ParVec(tuple(Const(v) for v in values))

    def test_true_branch(self):
        expr = IfAt(self._vec(False, True), Const(1), Const(10), Const(20))
        assert delta_ifat(expr, 2) == Const(10)

    def test_false_branch(self):
        expr = IfAt(self._vec(False, True), Const(0), Const(10), Const(20))
        assert delta_ifat(expr, 2) == Const(20)

    def test_out_of_range_index_is_stuck(self):
        expr = IfAt(self._vec(True, True), Const(5), Const(1), Const(2))
        assert delta_ifat(expr, 2) is None

    def test_non_boolean_component_is_stuck(self):
        expr = IfAt(ParVec((Const(3),)), Const(0), Const(1), Const(2))
        assert delta_ifat(expr, 1) is None

    def test_boolean_index_is_stuck(self):
        expr = IfAt(self._vec(True), Const(True), Const(1), Const(2))
        assert delta_ifat(expr, 1) is None
