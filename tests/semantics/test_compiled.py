"""Unit tests for the closure-compiling evaluator: slot layout, constant
folding, cost identity with the tree engine, closure interop in both
directions, and the engine selection surface."""

from __future__ import annotations

import pytest

from repro.bsp.machine import BspMachine
from repro.bsp.params import BspParams
from repro.lang.parser import parse_expression
from repro.lang.pretty import pretty
from repro.semantics.bigstep import Evaluator
from repro.semantics.compiled import (
    ENGINES,
    CompiledEvaluator,
    CompiledProgram,
    compile_program,
    get_engine,
)
from repro.semantics.errors import DivisionByZeroError, EvalError
from repro.semantics.values import (
    VClosure,
    VCompiledClosure,
    VParVec,
    reify,
    words,
)

PARAMS = BspParams(p=4, g=2.0, l=50.0)


def _both(source, env=None):
    """Evaluate on both engines with costed machines; return
    ((tree_value, tree_cost), (compiled_value, compiled_cost))."""
    expr = parse_expression(source)
    results = []
    for engine_cls in (Evaluator, CompiledEvaluator):
        machine = BspMachine(PARAMS)
        value = engine_cls(PARAMS.p, machine).eval(
            expr, dict(env) if env else None
        )
        results.append((value, machine.cost()))
    return results


def _agree(source, env=None):
    (tree_value, tree_cost), (compiled_value, compiled_cost) = _both(source, env)
    assert compiled_cost == tree_cost, source
    if isinstance(tree_value, (bool, int)):
        assert compiled_value == tree_value, source
    else:
        assert pretty(reify(compiled_value)) == pretty(reify(tree_value)), source
    return compiled_value, compiled_cost


# -- slots, shadowing, captures ----------------------------------------------


def test_let_slots_and_shadowing():
    value, _ = _agree("let x = 1 in let x = x + 1 in x * 10")
    assert value == 20


def test_case_branch_slots():
    value, _ = _agree("case inl 5 of inl x -> x + 1 | inr y -> y - 1")
    assert value == 6


def test_nested_captures():
    value, _ = _agree("let a = 5 in (fun x -> fun y -> x + y + a) 1 2")
    assert value == 8


def test_parvec_literal_items_share_outer_frame():
    # Parallel-vector literals have no surface syntax; build the AST
    # directly: let a = 10 in <a + 0, a + 1, a + 2, a + 3>.
    from repro.lang.ast import App, Const, Let, Pair, ParVec, Prim, Var

    expr = Let(
        "a",
        Const(10),
        ParVec(
            tuple(
                App(Prim("+"), Pair(Var("a"), Const(i)))
                for i in range(PARAMS.p)
            )
        ),
    )
    costs = []
    values = []
    for engine_cls in (Evaluator, CompiledEvaluator):
        machine = BspMachine(PARAMS)
        values.append(engine_cls(PARAMS.p, machine).eval(expr))
        costs.append(machine.cost())
    assert costs[0] == costs[1]
    assert all(isinstance(value, VParVec) for value in values)
    assert values[0].items == values[1].items == (10, 11, 12, 13)


def test_fix_recursion():
    value, _ = _agree(
        "(fix (fun f -> fun n -> if n <= 1 then 1 else n * f (n - 1))) 6"
    )
    assert value == 720


def test_unbound_variable_raises_at_runtime_only():
    # The dead branch references an unbound name; neither engine may
    # fail at compile/startup time.
    value, _ = _agree("if true then 1 else nowhere")
    assert value == 1
    with pytest.raises(EvalError, match="unbound variable 'nowhere'"):
        CompiledEvaluator(PARAMS.p).eval(parse_expression("nowhere"))


# -- constant folding ---------------------------------------------------------


def test_folding_preserves_cost_exactly():
    # A closed scalar subtree folds, but the folded step charges the ops
    # a tree evaluation would have charged — cost stays bit-identical.
    _agree("(1 + 2) * (3 + 4)")
    _agree("let x = 2 + 3 in x * x")
    _agree("nproc + 1")


def test_folding_keeps_error_timing():
    # 1/0 in a dead branch: folding must abort (compile-time evaluation
    # raises), and the branch must never run — on either engine.
    value, _ = _agree("if true then 1 else 1 / 0")
    assert value == 1
    # ... and in a live branch both engines raise the same error.
    expr = parse_expression("if false then 1 else 1 / 0")
    for engine_cls in (Evaluator, CompiledEvaluator):
        with pytest.raises(DivisionByZeroError):
            engine_cls(PARAMS.p).eval(expr)


def test_folding_never_rewrites_closure_bodies():
    # The stored body is the original source AST, so reification (and
    # the words() communication size) match the tree engine exactly.
    expr = parse_expression("fun x -> x + (1 + 2)")
    tree = Evaluator(PARAMS.p).eval(expr)
    compiled = CompiledEvaluator(PARAMS.p).eval(expr)
    assert isinstance(compiled, VCompiledClosure)
    assert pretty(reify(compiled)) == pretty(reify(tree))
    assert words(compiled) == words(tree)


# -- value model --------------------------------------------------------------


def test_compiled_closure_words_match_tree():
    source = "let a = 5 in let b = (1, 2) in fun x -> (a + x, b)"
    expr = parse_expression(source)
    tree = Evaluator(PARAMS.p).eval(expr)
    compiled = CompiledEvaluator(PARAMS.p).eval(expr)
    assert isinstance(tree, VClosure)
    assert isinstance(compiled, VCompiledClosure)
    assert words(compiled) == words(tree)
    assert pretty(reify(compiled)) == pretty(reify(tree))


def test_recursive_closure_reify_raises_like_tree():
    expr = parse_expression("fix (fun f -> fun n -> f n)")
    tree = Evaluator(PARAMS.p).eval(expr)
    compiled = CompiledEvaluator(PARAMS.p).eval(expr)
    for value in (tree, compiled):
        with pytest.raises(EvalError, match="recursive closure"):
            reify(value)


# -- engine interop -----------------------------------------------------------


def test_tree_evaluator_applies_compiled_closure():
    fn = CompiledEvaluator(PARAMS.p).eval(parse_expression("fun x -> x * x"))
    assert isinstance(fn, VCompiledClosure)
    machine = BspMachine(PARAMS)
    tree = Evaluator(PARAMS.p, machine)
    assert tree.eval(parse_expression("f 9"), {"f": fn}) == 81


def test_compiled_evaluator_applies_tree_closure():
    fn = Evaluator(PARAMS.p).eval(parse_expression("fun x -> x * x"))
    assert isinstance(fn, VClosure)
    machine = BspMachine(PARAMS)
    compiled = CompiledEvaluator(PARAMS.p, machine)
    assert compiled.eval(parse_expression("f 9"), {"f": fn}) == 9 * 9


def test_mixed_engine_costs_agree():
    # Cross-engine application charges exactly what a same-engine
    # application would: compare f 9 under each pairing.
    fn_sources = "fun x -> let y = x + 1 in y * y"
    costs = []
    for maker in (Evaluator, CompiledEvaluator):
        fn = maker(PARAMS.p).eval(parse_expression(fn_sources))
        for runner in (Evaluator, CompiledEvaluator):
            machine = BspMachine(PARAMS)
            value = runner(PARAMS.p, machine).eval(
                parse_expression("f 9"), {"f": fn}
            )
            assert value == 100
            costs.append(machine.cost())
    assert all(cost == costs[0] for cost in costs[1:])


def test_mixed_closures_inside_parallel_tasks():
    # A tree closure captured into a compiled-engine mkpar (and vice
    # versa) runs inside the per-process tasks with identical costs.
    fn_expr = parse_expression("fun i -> i * i")
    for maker, runner in (
        (Evaluator, CompiledEvaluator),
        (CompiledEvaluator, Evaluator),
    ):
        fn = maker(PARAMS.p).eval(fn_expr)
        machine = BspMachine(PARAMS)
        value = runner(PARAMS.p, machine).eval(
            parse_expression("mkpar f"), {"f": fn}
        )
        assert isinstance(value, VParVec)
        assert value.items == (0, 1, 4, 9)


# -- compile once, run many ---------------------------------------------------


def test_compiled_program_reruns():
    program = compile_program(parse_expression("let x = 3 in x * x"), PARAMS.p)
    assert isinstance(program, CompiledProgram)
    assert program.run() == 9
    assert program.run() == 9


def test_compiled_program_env_names():
    program = compile_program(
        parse_expression("a + b"), PARAMS.p, env_names=("a", "b")
    )
    assert program.run(env={"a": 30, "b": 12}) == 42
    assert program.run(env={"a": 1, "b": 2}) == 3


def test_compiled_program_machine_width_check():
    program = compile_program(parse_expression("1 + 1"), PARAMS.p)
    with pytest.raises(ValueError, match="machine width"):
        program.run(machine=BspMachine(BspParams(p=2)))


# -- engine selection surface -------------------------------------------------


def test_get_engine():
    assert ENGINES == ("tree", "compiled", "vectorized")
    assert get_engine("tree") is Evaluator
    assert get_engine("compiled") is CompiledEvaluator
    with pytest.raises(ValueError, match="unknown engine 'x86'"):
        get_engine("x86")


def test_run_costed_engine_parameter():
    from repro.semantics.costed import run_costed

    expr = parse_expression("bcast 2 (mkpar (fun i -> i * i))")
    tree = run_costed(expr, PARAMS, use_prelude=True)
    compiled = run_costed(expr, PARAMS, use_prelude=True, engine="compiled")
    assert compiled.python_value == tree.python_value == [4, 4, 4, 4]
    assert compiled.cost == tree.cost


def test_cli_engine_flag(capsys):
    from repro.cli import main

    status = main(
        [
            "run",
            "-e",
            "bcast 1 (mkpar (fun i -> i + 10))",
            "--engine",
            "compiled",
        ]
    )
    assert status == 0
    assert capsys.readouterr().out.strip() == "[11, 11, 11, 11]"


def test_repl_engine_command():
    import io

    from repro.repl import run_repl

    out = io.StringIO()
    source = io.StringIO(
        "let v = mkpar (fun i -> i * i)\n"
        ":engine compiled\n"
        "bcast 2 v\n"
        ":engine\n"
        ":engine turbo\n"
        ":quit\n"
    )
    assert run_repl(source, out, banner=False) == 0
    text = out.getvalue()
    assert "engine switched to compiled" in text
    assert "- : int par = <4, 4, 4, 4>" in text
    assert "engine: compiled (available: tree, compiled, vectorized)" in text
    assert "unknown engine 'turbo'" in text
