"""Tests for evaluation contexts (Figure 5): unique decomposition."""

from __future__ import annotations

import pytest

from repro.lang.ast import (
    App,
    Const,
    Fun,
    If,
    Let,
    Pair,
    ParVec,
    Prim,
    Var,
    is_value_syntax,
)
from repro.lang.parser import parse_expression as parse
from repro.semantics.contexts import decompose, evaluation_positions, plug
from repro.testing.generators import ProgramGenerator


class TestDecompose:
    def test_value_has_no_decomposition(self):
        assert decompose(Const(1)) is None
        assert decompose(parse("fun x -> x + 1")) is None

    def test_head_redex(self):
        expr = parse("(fun x -> x) 1")
        decomposition = decompose(expr)
        assert decomposition.path == ()
        assert decomposition.redex == expr
        assert not decomposition.local

    def test_left_to_right_in_application(self):
        # ((fun x -> x) 1) ((fun y -> y) 2): the redex is the left one.
        expr = parse("((fun x -> x) 1) ((fun y -> y) 2)")
        decomposition = decompose(expr)
        assert decomposition.path == (0,)

    def test_argument_after_function(self):
        expr = parse("(fun x -> x) ((fun y -> y) 2)")
        decomposition = decompose(expr)
        assert decomposition.path == (1,)

    def test_pair_left_first(self):
        expr = parse("(1 + 1, 2 + 2)")
        assert decompose(expr).path == (0,)

    def test_pair_right_when_left_is_value(self):
        expr = parse("(1, 2 + 2)")
        assert decompose(expr).path == (1,)

    def test_let_bound_position(self):
        expr = parse("let x = 1 + 1 in x")
        assert decompose(expr).path == (0,)

    def test_let_with_value_is_head_redex(self):
        expr = parse("let x = 1 in x")
        assert decompose(expr).path == ()

    def test_if_condition_position(self):
        expr = parse("if 1 < 2 then 1 else 2")
        assert decompose(expr).path == (0,)

    def test_ifat_vector_then_index(self):
        expr = parse("if mkpar (fun i -> true) at 1 + 1 then x else y")
        first = decompose(expr)
        assert first.path == (0,)

    def test_inside_parallel_vector_is_local(self):
        vec = ParVec((Const(1), App(Fun("x", Var("x")), Const(2))))
        decomposition = decompose(vec)
        assert decomposition.path == (1,)
        assert decomposition.local

    def test_outside_vector_is_global(self):
        expr = App(Prim("mkpar"), Fun("x", Var("x")))
        assert not decompose(expr).local

    def test_stuck_leaf_is_the_candidate_redex(self):
        # A free variable in redex position becomes the candidate redex;
        # no head rule applies to it, so the step relation is stuck there.
        decomposition = decompose(App(Var("x"), Const(1)))
        assert decomposition.path == (0,)
        assert decomposition.redex == Var("x")
        from repro.semantics.smallstep import head_reduce, step

        assert head_reduce(decomposition.redex, 2, decomposition.local) is None
        assert step(App(Var("x"), Const(1)), 2) is None


class TestPlug:
    def test_plug_at_root(self):
        assert plug(Const(1), (), Const(2)) == Const(2)

    def test_plug_deep(self):
        expr = parse("(1 + 1, 2)")
        result = plug(expr, (0,), Const(2))
        assert result == parse("(2, 2)")

    def test_plug_inverse_of_decompose(self):
        expr = parse("let x = (fun y -> y) 1 in x + x")
        decomposition = decompose(expr)
        rebuilt = plug(expr, decomposition.path, decomposition.redex)
        assert rebuilt == expr


class TestUniqueness:
    """The decomposition (hence the step relation) is a function."""

    @pytest.mark.parametrize("seed", range(30))
    def test_unique_decomposition_on_random_programs(self, seed):
        from repro.semantics.smallstep import step

        expr = ProgramGenerator(seed=seed).expression(depth=4)
        for _ in range(300):
            decomposition = decompose(expr)
            if decomposition is None:
                break
            # Everything strictly left of the hole path is a value.
            self._check_left_of_hole(expr, decomposition.path)
            reduced = step(expr, 2)
            if reduced is None:
                break
            expr = reduced

    def _check_left_of_hole(self, expr, path):
        if not path:
            return
        index = path[0]
        children = expr.children()
        for position in evaluation_positions(expr):
            if position == index:
                break
            assert is_value_syntax(children[position])
        self._check_left_of_hole(children[index], path[1:])


class TestEvaluationPositions:
    def test_app(self):
        assert evaluation_positions(App(Var("f"), Var("x"))) == (0, 1)

    def test_let_only_bound(self):
        assert evaluation_positions(Let("x", Const(1), Var("x"))) == (0,)

    def test_if_only_condition(self):
        assert evaluation_positions(If(Const(True), Const(1), Const(2))) == (0,)

    def test_values_have_none(self):
        assert evaluation_positions(Const(1)) == ()
        assert evaluation_positions(Fun("x", Var("x"))) == ()
