"""Tests for the shared scalar-operator semantics (primops)."""

from __future__ import annotations

import pytest

from repro.semantics.errors import DivisionByZeroError, EvalError
from repro.semantics.primops import (
    ARITHMETIC,
    BINARY_SCALAR,
    BOOLEAN,
    COMPARISON,
    PARALLEL_PRIMS,
    apply_binary,
)


class TestTables:
    def test_no_overlap_between_kinds(self):
        assert not set(ARITHMETIC) & set(COMPARISON)
        assert not set(ARITHMETIC) & set(BOOLEAN)
        assert not set(COMPARISON) & set(BOOLEAN)

    def test_binary_scalar_is_the_union(self):
        assert set(BINARY_SCALAR) == set(ARITHMETIC) | set(COMPARISON) | set(BOOLEAN)

    def test_parallel_prims(self):
        assert PARALLEL_PRIMS == {"mkpar", "apply", "put"}


class TestOcamlArithmetic:
    """Division and modulo follow OCaml (truncation toward zero)."""

    @pytest.mark.parametrize(
        "a,b,quotient,remainder",
        [
            (7, 2, 3, 1),
            (-7, 2, -3, -1),
            (7, -2, -3, 1),
            (-7, -2, 3, -1),
            (6, 3, 2, 0),
        ],
    )
    def test_div_mod(self, a, b, quotient, remainder):
        assert ARITHMETIC["/"](a, b) == quotient
        assert ARITHMETIC["mod"](a, b) == remainder

    def test_div_mod_identity(self):
        for a in range(-20, 21):
            for b in (-7, -3, 2, 5):
                assert ARITHMETIC["/"](a, b) * b + ARITHMETIC["mod"](a, b) == a

    def test_division_by_zero(self):
        with pytest.raises(DivisionByZeroError):
            ARITHMETIC["/"](1, 0)
        with pytest.raises(DivisionByZeroError):
            ARITHMETIC["mod"](1, 0)


class TestApplyBinary:
    def test_arithmetic(self):
        assert apply_binary("+", 2, 3) == 5

    def test_comparison(self):
        assert apply_binary("<", 1, 2) is True

    def test_boolean(self):
        assert apply_binary("&&", True, False) is False

    def test_rejects_bool_as_int(self):
        with pytest.raises(EvalError, match="expects integers"):
            apply_binary("+", True, 1)

    def test_rejects_int_as_bool(self):
        with pytest.raises(EvalError, match="expects booleans"):
            apply_binary("||", 1, 0)

    def test_unknown_operator(self):
        with pytest.raises(EvalError, match="unknown binary"):
            apply_binary("**", 1, 2)
