"""Meta-properties of the inference engine itself."""

from __future__ import annotations

import pytest

from repro.core.constraints import is_satisfiable
from repro.core.infer import infer, infer_scheme
from repro.core.schemes import TypeEnv, generalize, instantiate
from repro.core.types import render_type
from repro.core.unify import unifiable, unify
from repro.testing.generators import ProgramGenerator


@pytest.mark.parametrize("seed", range(40))
def test_inference_is_deterministic_up_to_renaming(seed):
    """Two runs of inference give the same type up to variable names."""
    expr = ProgramGenerator(seed=seed).expression(depth=4)
    first = infer(expr)
    second = infer(expr)
    assert render_type(first.type) == render_type(second.type)


@pytest.mark.parametrize("seed", range(40))
def test_inferred_constraints_are_satisfiable(seed):
    """An accepted program's constraint is satisfiable by definition of
    acceptance — the engine must never hand back a False constraint."""
    expr = ProgramGenerator(seed=seed).expression(depth=4)
    ct = infer(expr)
    assert is_satisfiable(ct.constraint)


@pytest.mark.parametrize("seed", range(30))
def test_generalize_instantiate_round_trip(seed):
    """Instantiating a generalized scheme unifies with the original type."""
    expr = ProgramGenerator(seed=seed).expression(depth=3)
    ct = infer(expr)
    scheme = generalize(ct, TypeEnv.empty())
    instance = instantiate(scheme)
    assert unifiable(instance.type, ct.type)
    assert is_satisfiable(instance.constraint)


@pytest.mark.parametrize("seed", range(30))
def test_inference_finds_a_principal_type(seed):
    """Any two independent instantiations of the inferred scheme unify
    (they are renamings of a common shape)."""
    expr = ProgramGenerator(seed=seed).expression(depth=3)
    scheme = infer_scheme(expr)
    first = instantiate(scheme)
    second = instantiate(scheme)
    assert unifiable(first.type, second.type)


@pytest.mark.parametrize("seed", range(30))
def test_annotating_with_the_inferred_type_is_accepted(seed):
    """Self-ascription: (e : inferred-type-of-e) must typecheck whenever
    the type is expressible in the surface syntax."""
    from repro.lang.ast import Annot
    from repro.lang.parser import parse_expression

    expr = ProgramGenerator(seed=seed).expression(depth=3)
    ct = infer(expr)
    rendered = render_type(ct.type)
    if "'" in rendered:
        return  # inferred type has free vars named internally; skip
    from repro.lang.pretty import pretty

    annotated_source = f"({pretty(expr)} : {rendered})"
    try:
        annotated = parse_expression(annotated_source)
    except Exception:  # pragma: no cover - surface syntax gap
        pytest.fail(f"inferred type not parseable: {rendered}")
    result = infer(annotated)
    assert render_type(result.type) == rendered
