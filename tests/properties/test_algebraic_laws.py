"""Hypothesis property tests for the algebraic laws the paper relies on.

The paper works "modulo these following equations that are natural for
the /\\ operators": True /\\ C = C, C /\\ C = C, commutativity.  These and
the substitution laws (composition, idempotence on fresh vars) are the
soundness bedrock of Definition 1; here they are tested as laws, not on
examples.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.constraints import (
    FALSE,
    TRUE,
    CLoc,
    conj,
    constraint_atoms,
    evaluate,
    imp,
    locality,
    subst_constraint,
)
from repro.core.schemes import Subst
from repro.core.types import (
    BOOL,
    INT,
    TArrow,
    TPair,
    TPar,
    TSum,
    TVar,
    apply_type_subst,
    free_type_vars,
)

# -- strategies -------------------------------------------------------------

_var_names = st.sampled_from(["a", "b", "c", "d"])

_types = st.recursive(
    st.one_of(st.just(INT), st.just(BOOL), _var_names.map(TVar)),
    lambda inner: st.one_of(
        st.tuples(inner, inner).map(lambda p: TArrow(*p)),
        st.tuples(inner, inner).map(lambda p: TPair(*p)),
        st.tuples(inner, inner).map(lambda p: TSum(*p)),
        inner.map(TPar),
    ),
    max_leaves=6,
)

_atom_conjs = st.lists(_var_names, min_size=0, max_size=2).map(
    lambda names: conj(*[CLoc(n) for n in names])
)
_constraints = st.lists(
    st.one_of(
        _var_names.map(CLoc),
        st.tuples(_atom_conjs, st.one_of(_atom_conjs, st.just(FALSE))).map(
            lambda p: imp(*p)
        ),
    ),
    min_size=0,
    max_size=4,
).map(lambda cs: conj(*cs))

_assignments = st.fixed_dictionaries(
    {name: st.booleans() for name in ("a", "b", "c", "d")}
)


def _equivalent(left, right, assignment):
    return evaluate(left, assignment) == evaluate(right, assignment)


# -- conjunction laws --------------------------------------------------------


@given(_constraints, _assignments)
def test_conj_unit(c, assignment):
    assert _equivalent(conj(TRUE, c), c, assignment)


@given(_constraints, _assignments)
def test_conj_idempotent(c, assignment):
    assert conj(c, c) == c  # structurally, per the paper's equations


@given(_constraints, _constraints)
def test_conj_commutative_structurally(c1, c2):
    assert conj(c1, c2) == conj(c2, c1)


@given(_constraints, _constraints, _constraints, _assignments)
def test_conj_associative_semantically(c1, c2, c3, assignment):
    left = conj(conj(c1, c2), c3)
    right = conj(c1, conj(c2, c3))
    assert left == right  # flattened sets make this structural too


@given(_constraints)
def test_conj_absorbs_false(c):
    assert conj(c, FALSE) == FALSE


# -- implication laws ----------------------------------------------------------


@given(_constraints, _assignments)
def test_imp_true_antecedent(c, assignment):
    assert _equivalent(imp(TRUE, c), c, assignment)


@given(_constraints)
def test_imp_reflexivity(c):
    assert imp(c, c) == TRUE


@given(_atom_conjs, _atom_conjs, _assignments)
def test_imp_matches_boolean_semantics(a, b, assignment):
    expected = (not evaluate(a, assignment)) or evaluate(b, assignment)
    assert evaluate(imp(a, b), assignment) == expected


# -- substitution laws ----------------------------------------------------------


@given(_types, _var_names, _types)
def test_type_substitution_removes_the_variable(ty, var, image):
    if var in free_type_vars(image):
        return  # would reintroduce it
    result = apply_type_subst({var: image}, ty)
    assert var not in free_type_vars(result)


@given(_types, _var_names, _types, _var_names, _types)
def test_substitution_composition(ty, v1, t1, v2, t2):
    """(phi2 . phi1)(ty) == phi2(phi1(ty)) via Subst.compose."""
    phi1 = Subst({v1: t1})
    phi2 = Subst({v2: t2})
    composed = phi2.compose(phi1)
    assert composed.apply_type(ty) == phi2.apply_type(phi1.apply_type(ty))


@given(_constraints, _var_names, _types, _assignments)
def test_constraint_substitution_commutes_with_locality_semantics(
    c, var, image, assignment
):
    """Substituting then evaluating == evaluating with the image's
    locality value plugged in for the atom (Definition 1's atom law)."""
    substituted = subst_constraint({var: image}, c)
    image_locality = locality(image)
    atoms = constraint_atoms(image_locality)
    image_value = evaluate(image_locality, assignment) if atoms or True else True
    modified = dict(assignment)
    modified[var] = image_value
    # Free atoms of the substituted constraint evaluate under `assignment`.
    assert evaluate(substituted, assignment) == evaluate(c, modified)


@given(_types)
def test_identity_substitution(ty):
    assert Subst.identity().apply_type(ty) == ty


@given(_types, _assignments)
def test_locality_is_monotone_under_par(ty, assignment):
    """Wrapping in par always makes a type non-local."""
    assert evaluate(locality(TPar(ty)), assignment) is False
