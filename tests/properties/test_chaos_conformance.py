"""The chaos conformance sweep (ISSUE acceptance criterion).

For many seeded fault plans, run the same program cleanly and under
injection on every backend: survivable plans must be observationally
invisible (bit-identical value and ``BspCost``), unsurvivable plans must
fail atomically and identically everywhere.

``CHAOS_SEEDS`` scales the sweep (the CI chaos job raises it); the
default keeps the acceptance floor of 100 seeded plans.
"""

from __future__ import annotations

import os
from functools import partial

from repro.bsp.faults import RetryPolicy
from repro.bsp.machine import NO_MESSAGE
from repro.testing import assert_chaos_conformance

SEEDS = int(os.environ.get("CHAOS_SEEDS", "104"))

#: Generous retries so the default-rate plans are (deterministically)
#: survivable — the sweep's point is that surviving leaves no trace.
SWEEP_POLICY = RetryPolicy(max_attempts=6)


# -- chaos corpus -------------------------------------------------------------
#
# BSMLlib programs built from module-level functions (and partials over
# them) so their tasks pickle and genuinely cross into process-pool
# workers, plus interpreter sources whose closures exercise the inline
# fallback path.  Every program is deterministic.


def _square(i):
    return i * i


def _mk_add(i):
    return partial(_add, i)


def _add(i, x):
    return i + x


def _ring_sender(p, j, dst):
    return j * j if dst == (j + 1) % p else NO_MESSAGE


def _mk_ring_sender(p, j):
    return partial(_ring_sender, p, j)


def _prev(p, j):
    return (j - 1) % p


def _total_sender(j, dst):
    return j * 10 + dst


def _mk_total_sender(j):
    return partial(_total_sender, j)


def _sum_received(p, recv):
    return sum(
        value
        for value in (recv(src) for src in range(p))
        if value is not NO_MESSAGE
    )


def _mk_sum_received(p, _proc):
    return partial(_sum_received, p)


def _prog_map(ctx):
    """Pure compute: two supersteps of mkpar/apply."""
    return ctx.apply(ctx.mkpar(_mk_add), ctx.mkpar(_square)).to_list()


def _prog_ring(ctx):
    """A ring shift through put: each proc passes its square rightwards."""
    p = ctx.p
    received = ctx.put(ctx.mkpar(partial(_mk_ring_sender, p)))
    takers = ctx.mkpar(partial(_prev, p))
    return [recv(src) for recv, src in zip(received, takers)]


def _prog_total_exchange(ctx):
    """All-to-all put followed by a local reduction per process."""
    p = ctx.p
    received = ctx.put(ctx.mkpar(_mk_total_sender))
    summed = ctx.apply(ctx.mkpar(partial(_mk_sum_received, p)), received)
    return summed.to_list()


PROGRAMS = [
    _prog_map,
    _prog_ring,
    _prog_total_exchange,
    "bcast 1 (mkpar (fun i -> i * i))",
    "let v = mkpar (fun i -> i + 1) in bcast 0 v",
]


# -- the sweep ----------------------------------------------------------------


def test_chaos_sweep_over_seeded_plans():
    """Acceptance: >= 100 seeded survivable plans, values and cost
    bit-identical across seq/thread/process; any unsurvivable plan in
    the sweep fails atomically on every backend."""
    survivable = 0
    for seed in range(SEEDS):
        program = PROGRAMS[seed % len(PROGRAMS)]
        report = assert_chaos_conformance(program, seed=seed, policy=SWEEP_POLICY)
        survivable += 1 if report.survivable else 0
    assert survivable >= min(SEEDS, 100), (
        f"only {survivable}/{SEEDS} plans were survivable — the sweep "
        "needs >= 100 survivable conforming plans"
    )


def test_chaos_unsurvivable_plans_fail_atomically():
    """With brutal rates and a single attempt, most plans are fatal:
    conformance then means every backend raised the identical
    SuperstepFault with the machine rolled back."""
    unsurvivable = 0
    for seed in range(12):
        report = assert_chaos_conformance(
            _prog_map,
            seed=seed,
            rates={"crash": 0.7, "drop": 0.5},
            policy=RetryPolicy(max_attempts=1),
        )
        if not report.survivable:
            unsurvivable += 1
            for run in report.runs:
                assert run.faulted and run.state_restored
    assert unsurvivable >= 6


def test_chaos_zero_rate_plan_is_invisible():
    """An armed plan with all-zero rates must change nothing at all."""
    report = assert_chaos_conformance(
        _prog_total_exchange, seed=1, rates={}, policy=SWEEP_POLICY
    )
    assert report.survivable
