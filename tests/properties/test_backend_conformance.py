"""Differential property sweep: every execution backend must observe the
same values and the same BSP cost decomposition as the sequential
reference, on generated programs and on the whole shipped corpus."""

from __future__ import annotations

import pytest

from repro.bsp.params import BspParams
from repro.core.infer import infer_scheme
from repro.lang.pretty import pretty
from repro.testing import (
    ProgramGenerator,
    assert_conformance,
    conformance_corpus,
    run_differential,
)

PARAMS = BspParams(p=4, g=2.0, l=50.0)


def _generated(seed):
    return ProgramGenerator(seed=seed, p_hint=PARAMS.p).expression(depth=4)


@pytest.mark.parametrize("seed", range(200))
def test_generated_program_conforms(seed):
    """≥200 random well-typed programs: identical value (by repr) and
    identical BspCost superstep list on seq, thread and process."""
    expr = _generated(seed)
    try:
        assert_conformance(expr, params=PARAMS, use_prelude=False)
    except AssertionError as error:  # pragma: no cover - diagnostic path
        raise AssertionError(f"seed {seed}: {error}") from error


@pytest.mark.parametrize(
    "name,source", conformance_corpus(), ids=[n for n, _ in conformance_corpus()]
)
def test_corpus_program_conforms(name, source):
    """The curated corpora (CORPUS_LOCAL and friends) and every shipped
    programs/*.bsml file conform across all three backends."""
    report = assert_conformance(source, params=PARAMS)
    assert report.succeeded, report.explain()


@pytest.mark.parametrize("seed", (0, 7, 42, 123, 199))
def test_determinism_across_backends_and_reruns(seed):
    """The same seed yields the same program, the same inferred scheme and
    the same cost on every backend — twice in a row."""
    first, second = _generated(seed), _generated(seed)
    assert pretty(first) == pretty(second), f"seed {seed}: generator not stable"
    assert str(infer_scheme(first)) == str(infer_scheme(second)), (
        f"seed {seed}: inference not stable"
    )
    baseline = run_differential(first, params=PARAMS, use_prelude=False)
    rerun = run_differential(second, params=PARAMS, use_prelude=False)
    for before, after in zip(baseline.runs, rerun.runs):
        assert before.backend == after.backend
        assert before.value_repr == after.value_repr, f"seed {seed}"
        assert before.cost == after.cost, f"seed {seed}"
        assert before.error == after.error, f"seed {seed}"
    assert baseline.conforms, baseline.explain()
