"""Robustness properties of the frontend: no crash is ever unstructured.

Whatever bytes come in, the lexer/parser must either succeed or raise the
library's own structured errors (LexError/ParseError with a location) —
never an arbitrary Python exception.  Same for the full pipeline: any
outcome must be a ReproError subclass or a value.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import TypingError
from repro.core.infer import infer
from repro.lang.errors import LexError, ParseError, ReproError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_expression
from repro.lang.pretty import pretty
from repro.semantics.errors import EvalError
from repro.semantics.smallstep import evaluate

_source_alphabet = st.text(
    alphabet="abcxyz01 ()->=<>*+-/,;:!|'funletincaseofmkparputrefthenelseattrue",
    max_size=60,
)


@settings(max_examples=300, deadline=None)
@given(_source_alphabet)
def test_lexer_never_crashes_unstructured(source):
    try:
        tokenize(source)
    except LexError:
        pass  # structured failure is fine


@settings(max_examples=300, deadline=None)
@given(_source_alphabet)
def test_parser_never_crashes_unstructured(source):
    try:
        parse_expression(source)
    except (LexError, ParseError):
        pass


@settings(max_examples=150, deadline=None)
@given(_source_alphabet)
def test_full_pipeline_is_structured(source):
    try:
        expr = parse_expression(source)
    except (LexError, ParseError):
        return
    try:
        infer(expr)
    except TypingError:
        return
    try:
        evaluate(expr, 2, max_steps=5_000)
    except (EvalError, ReproError):
        pass


@settings(max_examples=150, deadline=None)
@given(_source_alphabet)
def test_parse_pretty_parse_is_stable(source):
    """Whenever a string parses, pretty-printing reaches a fixpoint."""
    try:
        expr = parse_expression(source)
    except (LexError, ParseError):
        return
    printed = pretty(expr)
    reparsed = parse_expression(printed)
    assert reparsed == expr
    assert pretty(reparsed) == printed


def test_error_messages_carry_locations():
    with pytest.raises(ParseError) as error:
        parse_expression("fun 1 -> x")
    assert error.value.loc is not None
    assert str(error.value.loc.line) in str(error.value)
