"""Empirical validation of Theorem 1 (typing safety) and related
meta-properties, over randomly generated programs.

Theorem 1: if ``{} |- e : [tau/C]`` and ``e ->* e'`` with ``e'`` in normal
form, then ``e'`` is a value ``v`` and ``{} |- v : [tau/C']`` for some
``C'`` compatible with ``C``.

The generator (:mod:`repro.testing.generators`) produces closed, strongly
normalizing, well-typed programs by construction; we *verify* they are
well typed (the generator and the type system are independent artifacts),
reduce them, and retype the results.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import NestingError, TypingError
from repro.core.infer import infer, typechecks
from repro.core.milner import milner_typechecks
from repro.core.types import render_type
from repro.core.unify import unifiable
from repro.lang.ast import is_value_syntax
from repro.lang.substitution import alpha_equal
from repro.semantics.bigstep import run
from repro.semantics.errors import EvalError, StuckError
from repro.semantics.smallstep import evaluate, step
from repro.semantics.values import reify
from repro.testing.generators import ProgramGenerator

SEEDS = range(80)
P_VALUES = (1, 2, 3, 4)


@pytest.mark.parametrize("seed", SEEDS)
def test_theorem1_progress_and_preservation(seed):
    """Well-typed generated programs (a) typecheck, (b) never get stuck,
    and (c) their values retype at the same type."""
    generator = ProgramGenerator(seed=seed, p_hint=min(P_VALUES))
    expr = generator.expression(depth=4)
    ct = infer(expr)  # (a) accepted
    for p in P_VALUES:
        value = evaluate(expr, p)  # (b) raises StuckError if stuck
        assert is_value_syntax(value)
        value_ct = infer(value)  # (c) the value retypes...
        assert unifiable(value_ct.type, ct.type), (
            f"type not preserved at p={p}: "
            f"{render_type(value_ct.type)} vs {render_type(ct.type)}"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_subject_reduction_stepwise(seed):
    """Each individual step preserves typability (not only the result)."""
    expr = ProgramGenerator(seed=seed, p_hint=2).expression(depth=3)
    ct = infer(expr)
    current = expr
    for _ in range(200):
        reduced = step(current, 2)
        if reduced is None:
            break
        current = reduced
        stepped_ct = infer(current)
        assert unifiable(stepped_ct.type, ct.type)


@pytest.mark.parametrize("seed", SEEDS)
def test_evaluators_agree(seed):
    expr = ProgramGenerator(seed=seed, p_hint=2).expression(depth=4)
    small = evaluate(expr, 2)
    big = reify(run(expr, 2))
    assert alpha_equal(small, big)


@pytest.mark.parametrize("seed", SEEDS)
def test_our_system_is_stricter_than_milner(seed):
    """Everything we accept, Milner accepts (conservativity direction)."""
    expr = ProgramGenerator(seed=seed, p_hint=2).expression(depth=4)
    if typechecks(expr):
        assert milner_typechecks(expr)


@pytest.mark.parametrize("seed", range(40))
def test_nesting_mutants_are_rejected_statically(seed):
    """The example1/example2/fst-shaped mutants must all be rejected."""
    expr = ProgramGenerator(seed=seed, p_hint=2).mutate_to_nesting(depth=3)
    with pytest.raises(NestingError):
        infer(expr)


@pytest.mark.parametrize("seed", range(40))
def test_nesting_mutants_pass_milner(seed):
    """...while classic ML typing accepts every one of them."""
    expr = ProgramGenerator(seed=seed, p_hint=2).mutate_to_nesting(depth=3)
    assert milner_typechecks(expr)


@pytest.mark.parametrize("seed", range(30))
def test_rejected_mutants_misbehave_or_nest_dynamically(seed):
    """The rejected programs really are operationally problematic: the
    mkpar-shaped mutants get dynamically stuck on nesting; the projection
    ones force a hidden parallel vector to be materialized (the big-step
    evaluator builds it even though the type says 'int')."""
    generator = ProgramGenerator(seed=seed, p_hint=2)
    expr = generator.mutate_to_nesting(depth=3)
    try:
        evaluate(expr, 2)
        small_ok = True
    except (StuckError, EvalError):
        small_ok = False
    if small_ok:
        # The fst-shape: evaluation "succeeds" but only by evaluating a
        # parallel vector inside a supposedly-local expression.
        from repro.lang.ast import App, Pair, Prim

        assert isinstance(expr, App) and expr.fn == Prim("fst")


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=100_000), st.integers(min_value=1, max_value=6))
def test_theorem1_hypothesis_sweep(seed, p):
    """Hypothesis-driven wider sweep of the safety property."""
    expr = ProgramGenerator(seed=seed, p_hint=1).expression(depth=3)
    ct = infer(expr)
    value = evaluate(expr, p)
    assert is_value_syntax(value)
    assert unifiable(infer(value).type, ct.type)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_pruning_never_changes_the_verdict(seed):
    """Acceptance is identical with and without constraint pruning, on
    well-typed programs and on nesting mutants alike."""
    generator = ProgramGenerator(seed=seed, p_hint=2)
    for expr in (generator.expression(depth=3), generator.mutate_to_nesting(2)):
        verdicts = []
        for prune in (True, False):
            try:
                infer(expr, prune=prune)
                verdicts.append(True)
            except TypingError:
                verdicts.append(False)
        assert verdicts[0] == verdicts[1]
