"""Trace conformance across execution backends (ISSUE acceptance
criterion).

The abstract projection of a structured trace — superstep structure,
h-relations per superstep, abstract op counts, fault draws and retry
outcomes — is deterministic for a deterministic program, so it must be
bit-identical whichever backend ran the computation phases.  Timestamps,
durations and backend lifecycle records (``backend.*``) are excluded by
construction (:meth:`repro.obs.Trace.abstract_signature`).
"""

from __future__ import annotations

import os

from repro import obs
from repro.bsp.faults import RetryPolicy
from repro.bsp.params import BspParams
from repro.testing import (
    assert_chaos_conformance,
    assert_conformance,
    run_chaos,
    run_differential,
)

PROGRAMS = (
    "bcast 2 (mkpar (fun i -> i * i))",
    "apply (mkpar (fun i -> fun x -> x + i), mkpar (fun i -> i))",
    "let v = mkpar (fun i -> i + 1) in bcast 0 v",
)

CHAOS_SEEDS = int(os.environ.get("TRACE_CHAOS_SEEDS", "12"))


class TestDifferentialTraceConformance:
    def test_signatures_collected_and_identical(self):
        report = run_differential(PROGRAMS[0], check_trace=True)
        assert all(run.trace_signature is not None for run in report.runs)
        reference = report.reference.trace_signature
        assert reference  # non-empty: the machine emitted abstract records
        for run in report.runs[1:]:
            assert run.trace_signature == reference
        assert report.conforms

    def test_signatures_absent_without_check_trace(self):
        report = run_differential(PROGRAMS[0])
        assert all(run.trace_signature is None for run in report.runs)

    def test_corpus_conforms_with_traces(self):
        for source in PROGRAMS:
            assert_conformance(source, check_trace=True, require_success=True)

    def test_divergent_signature_fails_conformance(self):
        report = run_differential(PROGRAMS[0], check_trace=True)
        assert report.conforms
        doctored = report.runs[1].trace_signature + (
            ("fault", "proc 0", (("kind", "crash"),)),
        )
        report.runs[1].trace_signature = doctored
        assert not report.conforms
        assert "trace diverges" in report.explain()

    def test_divergence_pinpoints_first_record(self):
        report = run_differential(PROGRAMS[0], check_trace=True)
        signature = list(report.runs[1].trace_signature)
        signature[0] = ("task", "proc 999", ())
        report.runs[1].trace_signature = tuple(signature)
        assert "at record 0" in report.explain()


class TestChaosTraceConformance:
    def test_fault_schedule_identical_across_backends(self):
        for seed in range(CHAOS_SEEDS):
            report = run_chaos(
                PROGRAMS[0],
                seed=seed,
                policy=RetryPolicy(max_attempts=6, base_delay=0.0),
                check_trace=True,
            )
            signatures = [
                run.trace_signature for run in report.runs if run.ok
            ]
            for signature in signatures[1:]:
                assert signature == signatures[0]
            assert report.conforms, report.explain()

    def test_survivable_chaos_trace_contains_fault_events(self):
        # Seeds chosen so the default rates inject at least one fault
        # while the generous policy still survives; the point is that the
        # injected schedule itself is part of the conforming signature.
        seen_fault = False
        for seed in range(CHAOS_SEEDS):
            report = assert_chaos_conformance(
                PROGRAMS[1],
                seed=seed,
                policy=RetryPolicy(max_attempts=6, base_delay=0.0),
                check_trace=True,
            )
            if not report.survivable:
                continue
            signature = report.runs[0].trace_signature
            if any(entry[0] == "fault" for entry in signature):
                seen_fault = True
        assert seen_fault

    def test_clean_reference_lacks_fault_events_yet_conforms(self):
        report = run_chaos(PROGRAMS[0], seed=1, check_trace=True)
        # the clean reference run is not traced; conformance is judged
        # between the chaos runs themselves
        assert report.reference.trace_signature is None
        assert report.conforms, report.explain()


class TestTraceVersusCost:
    def test_commit_events_agree_with_cost_totals(self):
        params = BspParams(p=4)
        with obs.trace() as t:
            from repro.semantics.costed import run_costed
            from repro.lang.parser import parse_program

            result = run_costed(
                parse_program(PROGRAMS[0]), params, use_prelude=True
            )
        commits = t.events("superstep")
        synchronized = [s for s in result.cost.supersteps if s.synchronized]
        assert len(commits) >= len(synchronized)
        traced_h = sum(c.arg("h") for c in commits)
        assert traced_h == result.cost.H
