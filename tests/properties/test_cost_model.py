"""Property tests for the BSP cost model and the simulator's accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bsp.cost import BspCost
from repro.bsp.machine import BspMachine
from repro.bsp.network import h_relation_of_matrix
from repro.bsp.params import BspParams
from repro.bsml.primitives import Bsml
from repro.bsml.stdlib import bcast_direct, scan, totex


_small = st.integers(min_value=0, max_value=20)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=2, max_value=6), st.data())
def test_h_relation_bounds(p, data):
    matrix = [
        [data.draw(_small) if i != j else 0 for j in range(p)] for i in range(p)
    ]
    relation = h_relation_of_matrix(matrix)
    total = sum(sum(row) for row in matrix)
    # h is at least the average load and at most the total traffic.
    assert relation.h * p >= total / p or total == 0
    assert relation.h <= total
    # h_i = max(in, out) for each process.
    for i in range(p):
        sent = sum(matrix[i][j] for j in range(p) if j != i)
        received = sum(matrix[j][i] for j in range(p) if j != i)
        assert relation.per_process[i] == max(sent, received)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=8),
    st.floats(min_value=0, max_value=50),
    st.floats(min_value=0, max_value=500),
)
def test_total_equals_sum_of_superstep_times(p, g, l):
    params = BspParams(p=p, g=g, l=l)
    machine = BspMachine(params)
    machine.replicated(3)
    if p > 1:
        matrix = [[0] * p for _ in range(p)]
        matrix[0][p - 1] = 4
        machine.exchange(matrix)
    machine.local(0, 2)
    cost = machine.cost()
    assert cost.check_decomposition(params)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=16))
def test_cost_is_monotone_in_g_and_l(p):
    """For any fixed communicating program, raising g or l never makes it
    cheaper (a sanity property of W + H*g + S*l)."""
    base = BspParams(p=p, g=1.0, l=10.0)
    ctx = Bsml(base)
    vector = ctx.mkpar(lambda i: i)
    ctx.reset_cost()
    bcast_direct(ctx, 0, vector)
    cost = ctx.cost()
    cheap = cost.total(base)
    assert cost.total(BspParams(p=p, g=2.0, l=10.0)) >= cheap
    assert cost.total(BspParams(p=p, g=1.0, l=20.0)) >= cheap


@pytest.mark.parametrize("p", [2, 3, 4, 8, 16])
def test_cost_is_deterministic(p):
    """Two identical runs account identical costs."""
    totals = []
    for _ in range(2):
        ctx = Bsml(BspParams(p=p, g=2.0, l=30.0))
        vector = ctx.mkpar(lambda i: [i] * 3)
        scan(ctx, lambda a, b: a + b, vector)
        totex(ctx, ctx.mkpar(lambda i: i))
        totals.append(ctx.total_time())
    assert totals[0] == totals[1]


@pytest.mark.parametrize("p", [2, 4, 8])
def test_mini_bsml_and_python_bsml_agree_on_structure(p):
    """The same algorithm (direct broadcast) run through the mini-BSML
    interpreter and through the Python library produces the same number
    of supersteps and the same H."""
    from repro.semantics.costed import run_source

    params = BspParams(p=p, g=2.0, l=30.0)
    interpreted = run_source("bcast 0 (mkpar (fun i -> i))", params)
    ctx = Bsml(params)
    vector = ctx.mkpar(lambda i: i)
    ctx.reset_cost()
    bcast_direct(ctx, 0, vector)
    library_cost = ctx.cost()
    assert interpreted.cost.S == library_cost.S == 1
    assert interpreted.cost.H == library_cost.H == p - 1


@pytest.mark.parametrize("p", [2, 4, 8])
def test_cost_structure_independent_of_g_and_l(p):
    """W, H and S are structural: they depend on the program and p only;
    g and l enter solely through the final formula."""
    from repro.semantics.costed import run_source

    structures = []
    for g, l in ((1.0, 10.0), (32.0, 5000.0)):
        params = BspParams(p=p, g=g, l=l)
        cost = run_source(
            "scan (fun ab -> fst ab + snd ab) (mkpar (fun i -> i))", params
        ).cost
        structures.append((cost.W, cost.H, cost.S))
    assert structures[0] == structures[1]
