"""Differential property sweep for the evaluation engines: the
closure-compiling engine (:mod:`repro.semantics.compiled`) must observe
the same values, the same BspCost decomposition and the same abstract
trace signature as the tree-walking reference — on generated programs,
on the whole shipped corpus, across every backend, and under armed chaos
plans.  The unsafe corpus must fail identically (same error type, same
message) on both engines."""

from __future__ import annotations

import pytest

from repro.bsp.params import BspParams
from repro.testing import (
    ProgramGenerator,
    assert_engine_chaos_conformance,
    assert_engine_conformance,
    conformance_corpus,
    run_engines,
    unsafe_corpus,
)

PARAMS = BspParams(p=4, g=2.0, l=50.0)


def _generated(seed):
    return ProgramGenerator(seed=seed, p_hint=PARAMS.p).expression(depth=4)


@pytest.mark.parametrize("seed", range(200))
def test_generated_program_engines_agree(seed):
    """≥200 random well-typed programs: identical value fingerprint,
    identical BspCost superstep list and identical abstract trace
    signature under both engines."""
    expr = _generated(seed)
    try:
        assert_engine_conformance(
            expr,
            params=PARAMS,
            backends=("seq",),
            use_prelude=False,
            check_trace=True,
        )
    except AssertionError as error:  # pragma: no cover - diagnostic path
        raise AssertionError(f"seed {seed}: {error}") from error


@pytest.mark.parametrize(
    "name,source", conformance_corpus(), ids=[n for n, _ in conformance_corpus()]
)
def test_corpus_program_engines_agree(name, source):
    """The curated corpora and every shipped programs/*.bsml file agree
    between engines on every backend, traces included."""
    report = assert_engine_conformance(source, params=PARAMS, check_trace=True)
    assert report.succeeded, report.explain()


@pytest.mark.parametrize(
    "index,source",
    list(enumerate(unsafe_corpus())),
    ids=[f"rejected[{i}]" for i in range(len(unsafe_corpus()))],
)
def test_unsafe_corpus_error_parity(index, source):
    """The statically-rejected programs behave identically on both
    engines.  Some of them (dynamic nesting, component-side
    communication) also fail at run time — those must raise the same
    error type (DynamicNestingError / EvalError) with the same message on
    the compiled engine, which may not "optimize away" a failure; the
    rest (caught only by the type system, e.g. a discarded vector under
    ``fst``) must produce the same value and cost."""
    report = run_engines(source, params=PARAMS, backends=("seq",))
    assert report.conforms, report.explain()
    reference = report.reference
    for run in report.runs[1:]:
        assert run.error == reference.error, report.explain()


def test_unsafe_corpus_exercises_runtime_errors():
    """Sanity: the parity sweep above really covers dynamic failures —
    a good share of the rejected corpus raises DynamicNestingError."""
    errors = [
        run_engines(source, params=PARAMS, backends=("seq",)).reference.error
        for source in unsafe_corpus()
    ]
    nesting = [error for error in errors if error and "DynamicNesting" in error]
    assert len(nesting) >= 4, errors


CHAOS_PROGRAMS = (
    "bcast 2 (mkpar (fun i -> i * i))",
    "scan (fun a -> fun b -> a + b) (mkpar (fun i -> i + 1))",
    "put (mkpar (fun src -> fun dst -> if dst = src then nc () else src))",
)


@pytest.mark.parametrize("seed", (0, 7))
@pytest.mark.parametrize("source", CHAOS_PROGRAMS)
def test_chaos_engines_agree(source, seed):
    """The same seeded fault plan is observationally identical whichever
    engine evaluates the program: per-backend values, costs, errors and
    trace signatures (fault and retry events included) match pairwise."""
    assert_engine_chaos_conformance(
        source, params=PARAMS, seed=seed, check_trace=True
    )
