"""Differential property sweep for the evaluation engines: the
closure-compiling engine (:mod:`repro.semantics.compiled`) and the
SPMD-vectorized engine (:mod:`repro.semantics.vectorized`) must observe
the same values, the same BspCost decomposition and the same abstract
trace signature as the tree-walking reference — on generated programs
(uniform and pid-divergent), on the whole shipped corpus, across every
backend, and under armed chaos plans.  The unsafe corpus and the
per-pid partial-failure programs must fail identically (same error
type, same message) on every engine."""

from __future__ import annotations

import pytest

from repro import perf
from repro.bsp.params import BspParams
from repro.testing import (
    ProgramGenerator,
    assert_engine_chaos_conformance,
    assert_engine_conformance,
    conformance_corpus,
    run_engines,
    unsafe_corpus,
)

PARAMS = BspParams(p=4, g=2.0, l=50.0)


def _generated(seed):
    return ProgramGenerator(seed=seed, p_hint=PARAMS.p).expression(depth=4)


def _divergent(seed):
    """Weighted toward branch-on-pid control flow and let-bound vectors
    (mixed uniform/divergent supersteps): the workload that drives the
    vectorized engine off the uniform batch path into peeling."""
    return ProgramGenerator(
        seed=seed, p_hint=PARAMS.p, divergence=0.7
    ).expression(depth=4)


@pytest.mark.parametrize("seed", range(200))
def test_generated_program_engines_agree(seed):
    """≥200 random well-typed programs: identical value fingerprint,
    identical BspCost superstep list and identical abstract trace
    signature under both engines."""
    expr = _generated(seed)
    try:
        assert_engine_conformance(
            expr,
            params=PARAMS,
            backends=("seq",),
            use_prelude=False,
            check_trace=True,
        )
    except AssertionError as error:  # pragma: no cover - diagnostic path
        raise AssertionError(f"seed {seed}: {error}") from error


@pytest.mark.parametrize("seed", range(100))
def test_divergent_program_engines_agree(seed):
    """≥100 divergence-weighted programs: pid-dependent ``if``/``case``
    scrutinees and mixed supersteps still produce identical value
    fingerprints, BspCost superstep lists and trace signatures on all
    three engines."""
    expr = _divergent(seed)
    try:
        assert_engine_conformance(
            expr,
            params=PARAMS,
            backends=("seq",),
            use_prelude=False,
            check_trace=True,
        )
    except AssertionError as error:  # pragma: no cover - diagnostic path
        raise AssertionError(f"seed {seed}: {error}") from error


def test_divergent_sweep_exercises_peeling():
    """Sanity: the divergence-weighted sweep really drives the
    vectorized engine through its peel/fallback lanes — a sweep that
    only ever hits the happy batch path would prove nothing about
    divergence handling."""
    from repro.semantics import run_costed

    with perf.collect() as stats:
        for seed in range(40):
            run_costed(_divergent(seed), PARAMS, engine="vectorized")
    assert stats.counter("semantics.vectorized.batched_steps") > 0
    assert stats.counter("semantics.vectorized.peel_events") > 0
    assert stats.counter("semantics.vectorized.fallback_pids") > 0


@pytest.mark.parametrize("seed", range(30))
def test_partial_failure_error_parity(seed):
    """Programs where exactly one pid raises: every engine surfaces the
    same error string, and the failed superstep commits nothing into
    the cost on any engine (the report's cost comparison covers the
    supersteps before the failure)."""
    expr = ProgramGenerator(seed=seed, p_hint=PARAMS.p).partial_failure()
    report = run_engines(expr, params=PARAMS, backends=("seq",))
    assert report.conforms, report.explain()
    reference = report.reference
    assert reference.error is not None, "partial_failure must raise"
    for run in report.runs[1:]:
        assert run.error == reference.error, report.explain()


@pytest.mark.parametrize(
    "name,source", conformance_corpus(), ids=[n for n, _ in conformance_corpus()]
)
def test_corpus_program_engines_agree(name, source):
    """The curated corpora and every shipped programs/*.bsml file agree
    between engines on every backend, traces included."""
    report = assert_engine_conformance(source, params=PARAMS, check_trace=True)
    assert report.succeeded, report.explain()


@pytest.mark.parametrize(
    "index,source",
    list(enumerate(unsafe_corpus())),
    ids=[f"rejected[{i}]" for i in range(len(unsafe_corpus()))],
)
def test_unsafe_corpus_error_parity(index, source):
    """The statically-rejected programs behave identically on both
    engines.  Some of them (dynamic nesting, component-side
    communication) also fail at run time — those must raise the same
    error type (DynamicNestingError / EvalError) with the same message on
    the compiled engine, which may not "optimize away" a failure; the
    rest (caught only by the type system, e.g. a discarded vector under
    ``fst``) must produce the same value and cost."""
    report = run_engines(source, params=PARAMS, backends=("seq",))
    assert report.conforms, report.explain()
    reference = report.reference
    for run in report.runs[1:]:
        assert run.error == reference.error, report.explain()


def test_unsafe_corpus_exercises_runtime_errors():
    """Sanity: the parity sweep above really covers dynamic failures —
    a good share of the rejected corpus raises DynamicNestingError."""
    errors = [
        run_engines(source, params=PARAMS, backends=("seq",)).reference.error
        for source in unsafe_corpus()
    ]
    nesting = [error for error in errors if error and "DynamicNesting" in error]
    assert len(nesting) >= 4, errors


CHAOS_PROGRAMS = (
    "bcast 2 (mkpar (fun i -> i * i))",
    "scan (fun a -> fun b -> a + b) (mkpar (fun i -> i + 1))",
    "put (mkpar (fun src -> fun dst -> if dst = src then nc () else src))",
)


@pytest.mark.parametrize("seed", (0, 7))
@pytest.mark.parametrize("source", CHAOS_PROGRAMS)
def test_chaos_engines_agree(source, seed):
    """The same seeded fault plan is observationally identical whichever
    engine evaluates the program: per-backend values, costs, errors and
    trace signatures (fault and retry events included) match pairwise."""
    assert_engine_chaos_conformance(
        source, params=PARAMS, seed=seed, check_trace=True
    )
