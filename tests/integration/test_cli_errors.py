"""Regression: every CLI failure maps to a one-line diagnostic + exit
code, never a raw traceback.

``main()`` is the single error boundary: syntax errors exit 2, type and
evaluation errors exit 1, environment problems (missing files,
unwritable trace targets) exit 2, runaway recursion exits 1.  These
tests drive every subcommand over the rejected corpus and the
traceback-leaking inputs found in the wild (missing source file,
unwritable ``--trace``, ``fix``-driven infinite recursion).
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.testing.generators import CORPUS_REJECTED

#: Subcommands that read a program, with the extra flags each needs.
PROGRAM_COMMANDS = (
    ("typecheck", ()),
    ("run", ()),
    ("profile", ()),
    ("trace", ()),
    ("explain", ()),
)


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestRejectedCorpus:
    @pytest.mark.parametrize("source", CORPUS_REJECTED)
    @pytest.mark.parametrize("command", ["typecheck", "run", "profile"])
    def test_type_rejections_exit_one_with_diagnostic(
        self, capsys, command, source
    ):
        code, out, err = run_cli(capsys, command, "-e", source)
        assert code == 1
        assert "type error:" in err
        assert "Traceback" not in err and "Traceback" not in out

    @pytest.mark.parametrize("source", CORPUS_REJECTED[:3])
    def test_explain_renders_rejection_and_exits_one(self, capsys, source):
        code, out, err = run_cli(capsys, "explain", "-e", source)
        assert code == 1
        assert "Traceback" not in err


class TestEnvironmentErrors:
    @pytest.mark.parametrize("command,extra", PROGRAM_COMMANDS)
    def test_missing_source_file_is_a_clean_io_error(
        self, capsys, command, extra
    ):
        code, out, err = run_cli(
            capsys, command, *extra, "/nonexistent/program.bsml"
        )
        assert code == 2
        assert "io error:" in err
        assert "Traceback" not in err

    @pytest.mark.parametrize("command", ["run", "profile"])
    def test_unwritable_trace_target_is_a_clean_io_error(self, capsys, command):
        code, out, err = run_cli(
            capsys,
            command,
            "-e",
            "1 + 1",
            "--trace",
            "/nonexistent-dir/trace.json",
        )
        assert code == 2
        assert "io error:" in err
        assert "Traceback" not in err

    def test_bad_fault_spec_is_a_clean_error(self, capsys):
        code, out, err = run_cli(
            capsys, "run", "-e", "1", "--faults", "bogus=0.5"
        )
        assert code == 1
        assert "error:" in err
        assert "Traceback" not in err


class TestRecursionBlowup:
    def test_untyped_infinite_recursion_is_a_clean_error(self, capsys):
        source = "let rec = fix (fun f -> fun n -> f n) in rec 1"
        code, out, err = run_cli(capsys, "run", "--untyped", "-e", source)
        assert code == 1
        assert "recursion depth" in err
        assert "Traceback" not in err


class TestSyntaxErrors:
    @pytest.mark.parametrize("command,extra", PROGRAM_COMMANDS)
    def test_malformed_program_exits_two(self, capsys, command, extra):
        code, out, err = run_cli(capsys, command, *extra, "-e", "let x = in")
        assert code == 2
        assert "syntax error:" in err
        assert "Traceback" not in err
