"""The shipped .bsml programs: typecheck, run, and check their outputs."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import run_program, typecheck
from repro.lang.parser import parse_program

PROGRAMS_DIR = Path(__file__).resolve().parents[2] / "programs"


def load(name: str):
    return parse_program((PROGRAMS_DIR / name).read_text(), filename=name)


class TestAllPrograms:
    @pytest.mark.parametrize("path", sorted(PROGRAMS_DIR.glob("*.bsml")))
    def test_typechecks(self, path):
        typecheck(parse_program(path.read_text(), filename=path.name))

    @pytest.mark.parametrize("path", sorted(PROGRAMS_DIR.glob("*.bsml")))
    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_runs_at_every_machine_size(self, path, p):
        expr = parse_program(path.read_text(), filename=path.name)
        result = run_program(expr, p=p)
        assert result.value is not None

    def test_directory_is_not_empty(self):
        assert len(list(PROGRAMS_DIR.glob("*.bsml"))) >= 5


class TestBroadcast:
    def test_value(self):
        result = run_program(load("broadcast.bsml"), p=4)
        assert result.python_value == [107] * 4

    def test_formula_1_cost_shape(self):
        result = run_program(load("broadcast.bsml"), p=8, g=2.0, l=50.0)
        assert result.cost.S == 1
        assert result.cost.H == 7  # (p-1) * s


class TestMaximum:
    def test_value(self):
        result = run_program(load("maximum.bsml"), p=8)
        expected = max((i * 7 + 3) % 11 for i in range(8))
        assert result.python_value == [expected] * 8


class TestInnerProduct:
    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_value(self, p):
        result = run_program(load("inner_product.bsml"), p=p)
        expected = sum((i + 1) * 2 * i for i in range(p))
        assert result.python_value == [expected] * p


class TestOddEvenSort:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_sorts(self, p):
        result = run_program(load("odd_even_sort.bsml"), p=p)
        expected = sorted((i * 5 + 3) % 8 for i in range(p))
        assert result.python_value == expected

    def test_p_supersteps_of_1_relations(self):
        result = run_program(load("odd_even_sort.bsml"), p=8)
        assert result.cost.S == 8  # one exchange round per process
        assert result.cost.H == 8  # each round is a 1-relation


class TestParallelPrefix:
    def test_value(self):
        result = run_program(load("parallel_prefix.bsml"), p=8)
        sums, total = result.python_value
        assert sums == [1, 3, 6, 10, 15, 21, 28, 36]
        assert total == [36] * 8
