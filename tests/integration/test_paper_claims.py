"""End-to-end checks of every claim the paper makes, via the public API.

One test per claim; the benchmark suite regenerates the corresponding
figures/tables with full output.
"""

from __future__ import annotations

import pytest

from repro import (
    NestingError,
    TypingError,
    milner_infer,
    run_program,
    typecheck,
    typecheck_scheme,
)
from repro.core import explain, render_type
from repro.lang import parse_expression, parse_program, with_prelude


class TestSection2_BSMLPrimitives:
    """Section 2: the informal semantics of the four primitives."""

    def test_mkpar_stores_f_i_on_process_i(self):
        result = run_program("mkpar (fun i -> i * i)", p=5)
        assert result.python_value == [0, 1, 4, 9, 16]

    def test_apply_is_pointwise(self):
        result = run_program(
            "apply (mkpar (fun i -> fun x -> x + i), mkpar (fun i -> i))", p=4
        )
        assert result.python_value == [0, 2, 4, 6]

    def test_put_exchanges_and_delivers(self):
        result = run_program(
            "parfun (fun f -> f 0) (put (mkpar (fun j -> fun dst -> j + 100)))",
            p=3,
        )
        assert result.python_value == [100, 100, 100]

    def test_ifat_takes_the_branch_of_process_n(self):
        result = run_program(
            "if mkpar (fun i -> i = 2) at 2 then mkpar (fun i -> 1)"
            " else mkpar (fun i -> 0)",
            p=4,
        )
        assert result.python_value == [1, 1, 1, 1]

    def test_bsp_p_is_static(self):
        assert run_program("nproc", p=7, typed=False).python_value == 7


class TestSection21_Bcast:
    """Section 2.1: bcast and formula (1)."""

    def test_bcast_broadcasts(self):
        result = run_program("bcast 2 (mkpar (fun i -> i * 10))", p=4)
        assert result.python_value == [20, 20, 20, 20]

    def test_bcast_type(self):
        scheme = typecheck_scheme("bcast")
        assert "int -> 'a par -> 'a par" in str(scheme)
        assert "L('a)" in str(scheme)

    @pytest.mark.parametrize("p", [2, 4, 8, 16])
    def test_formula_1_h_and_s_terms(self, p):
        result = run_program("bcast 0 (mkpar (fun i -> i))", p=p, g=1.0, l=10.0)
        assert result.cost.H == p - 1  # (p-1) * s with s = 1
        assert result.cost.S == 1  # one l term

    def test_example1_is_rejected(self):
        with pytest.raises(NestingError):
            typecheck("mkpar (fun pid -> bcast pid (mkpar (fun i -> i)))")

    def test_example1_milner_type_is_nested(self):
        expr = with_prelude(
            parse_program("mkpar (fun pid -> bcast pid (mkpar (fun i -> i)))")
        )
        assert render_type(milner_infer(expr)) == "int par par"

    def test_example2_is_rejected(self):
        with pytest.raises(NestingError):
            typecheck("mkpar (fun pid -> let this = mkpar (fun i -> i) in pid)")

    def test_example2_milner_type_hides_the_nesting(self):
        expr = parse_expression(
            "mkpar (fun pid -> let this = mkpar (fun i -> i) in pid)"
        )
        assert render_type(milner_infer(expr)) == "int par"

    def test_four_projection_cases(self):
        assert render_type(typecheck("fst (1, 2)").type) == "int"
        assert (
            render_type(
                typecheck("fst (mkpar (fun i -> i), mkpar (fun i -> i))").type
            )
            == "int par"
        )
        assert render_type(typecheck("fst (mkpar (fun i -> i), 1)").type) == "int par"
        with pytest.raises(NestingError):
            typecheck("fst (1, mkpar (fun i -> i))")

    def test_one_polymorphic_fst_serves_all_valid_cases(self):
        # The paper's point against the syntactic (Haskell-monadic)
        # approach: no need for three versions of fst.
        source = (
            "let use1 = fst (1, 2) in"
            " let use2 = fst (mkpar (fun i -> i), mkpar (fun i -> true)) in"
            " let use3 = fst (mkpar (fun i -> i), 1) in"
            " use3"
        )
        assert render_type(typecheck(source).type) == "int par"

    def test_mismatched_barrier_example_is_rejected(self):
        source = """
            let vec1 = mkpar (fun pid -> pid) in
            let vec2 = put (mkpar (fun pid -> fun src -> 1 + src)) in
            let c1 = (vec1, 1) in let c2 = (vec2, 2) in
            mkpar (fun pid -> if pid < (nproc / 2) then snd c1 else snd c2)
        """
        with pytest.raises(NestingError):
            typecheck(source)


class TestSection4_TypeSystem:
    """Section 4: the type system's distinguishing judgements."""

    def test_parallel_identity_scheme(self):
        scheme = typecheck_scheme(
            "fun x -> if mkpar (fun i -> true) at 0 then x else x"
        )
        text = str(scheme)
        assert "'a -> 'a" in text
        assert "L('a) => False" in text

    def test_paper_example_let_f_in_1(self):
        # "let f = (fun a -> fun b -> a) in 1 has the type
        #  [int / L(a) => L(b)]" — with pruning the dead constraint goes;
        # without pruning it is retained, exactly as the paper says.
        from repro.core.infer import infer

        expr = parse_expression("let f = (fun a -> fun b -> a) in 1")
        unpruned = infer(expr, prune=False)
        assert render_type(unpruned.type) == "int"
        assert "=>" in str(unpruned.constraint)
        pruned = infer(expr, prune=True)
        assert str(pruned.constraint) == "True"

    def test_figure8_judgement_fails_at_let(self):
        from repro.core.schemes import TypeEnv, mono
        from repro.core.types import INT

        env = TypeEnv.empty().extend("pid", mono(INT))
        explanation = explain(
            parse_expression("let this = mkpar (fun i -> i) in pid"), env
        )
        assert not explanation.accepted
        assert explanation.derivation.rule == "Let"


class TestTheorem1:
    """Typing safety, on the curated corpus (the random sweep lives in
    tests/properties/test_safety.py)."""

    def test_well_typed_corpus_runs_to_values(self):
        from repro.testing.generators import well_typed_corpus

        for source in well_typed_corpus():
            result = run_program(source, p=3)
            assert result.value is not None, source

    def test_rejected_corpus_would_misbehave(self):
        from repro.semantics.smallstep import is_dynamic_nesting
        from repro.testing.generators import unsafe_corpus

        dynamic_failures = 0
        for source in unsafe_corpus():
            expr = with_prelude(parse_program(source))
            if is_dynamic_nesting(expr, 2):
                dynamic_failures += 1
        # Most (not all) rejected programs visibly nest at runtime; the
        # others (fst-shaped, ifat-local) corrupt the cost model silently.
        assert dynamic_failures >= 5


class TestImperativeCorpus:
    """The imperative corpus (extension): typed and evaluated by big-step."""

    def test_all_accepted_and_runnable(self):
        from repro.core.prelude_env import prelude_env
        from repro.core.infer import infer
        from repro.lang import parse_program, with_prelude
        from repro.semantics.bigstep import run
        from repro.testing.generators import CORPUS_IMPERATIVE

        for source in CORPUS_IMPERATIVE:
            expr = parse_program(source)
            infer(expr, prelude_env())
            value = run(with_prelude(expr), 3)
            assert value is not None, source

    def test_expected_values(self):
        from repro.lang import parse_program, with_prelude
        from repro.semantics.bigstep import run
        from repro.semantics.values import to_python

        cases = {
            "let r = ref 0 in r := !r + 1 ; !r": 1,
            "let a = ref 1 in let b = a in b := 5 ; !a": 5,
            "let r = ref (1, 2) in r := (3, 4) ; fst !r + snd !r": 7,
        }
        for source, expected in cases.items():
            value = run(with_prelude(parse_program(source)), 2)
            assert to_python(value) == expected, source
