"""Tests for the interactive session (``minibsml repl``)."""

from __future__ import annotations

import io

import pytest

from repro.bsp.params import BspParams
from repro.repl import Session, run_repl


def drive(*lines, params=None):
    """Feed lines to a fresh session; return the output text."""
    from repro import obs

    out = io.StringIO()
    session = Session(params)
    try:
        for line in lines:
            if not session.handle(line, out):
                break
    finally:
        # run_repl owns this teardown in production; a bare Session test
        # must not leak an active trace collector into later tests.
        if session.trace_collector is not None:
            obs.stop(session.trace_collector)
    return out.getvalue()


class TestEvaluation:
    def test_expression(self):
        assert "- : int = 3" in drive("1 + 2")

    def test_definition_then_use(self):
        output = drive("let sq = fun x -> x * x", "sq 9")
        assert "val sq :" in output
        assert "- : int = 81" in output

    def test_parallel_values_render_with_brackets(self):
        output = drive("mkpar (fun i -> i)")
        assert "<0, 1, 2, 3>" in output

    def test_prelude_available(self):
        output = drive("bcast 1 (mkpar (fun i -> i * 7))")
        assert "<7, 7, 7, 7>" in output

    def test_definitions_persist(self):
        output = drive(
            "let v = mkpar (fun i -> i)",
            "let w = apply (mkpar (fun i -> fun x -> x + 1), v)",
            "w",
        )
        assert "<1, 2, 3, 4>" in output

    def test_references_work(self):
        output = drive("let r = ref 10", "r := !r + 5 ; !r")
        assert "- : int = 15" in output

    def test_type_errors_are_reported_not_fatal(self):
        output = drive("fst (1, mkpar (fun i -> i))", "1 + 1")
        assert "error:" in output
        assert "- : int = 2" in output

    def test_eval_errors_are_reported_not_fatal(self):
        output = drive("1 / 0", "2 + 2")
        assert "error:" in output
        assert "- : int = 4" in output

    def test_parse_error_reported(self):
        assert "error:" in drive("fun ->")


class TestMetaCommands:
    def test_type(self):
        output = drive(":type fun x -> x")
        assert "'a -> 'a" in output

    def test_type_does_not_evaluate(self):
        output = drive(":type mkpar (fun i -> i)", ":cost")
        assert "W = 0.0" in output

    def test_explain(self):
        output = drive(":explain fst (mkpar (fun i -> i), 1)")
        assert "(App)" in output

    def test_trace(self):
        output = drive(":trace 1 + 2")
        assert "1 + 2" in output and "3" in output

    def test_trace_uses_session_definitions(self):
        output = drive("let two = 2", ":trace two + two")
        assert "4" in output

    def test_cost_accumulates(self):
        output = drive("put (mkpar (fun j -> fun d -> j))", ":cost")
        assert "S = 1" in output

    def test_reset(self):
        output = drive("let x = 1", ":reset", "x")
        assert "session reset" in output
        assert "error:" in output  # x is gone

    def test_env(self):
        output = drive("let x = 1", ":env")
        assert "let x" in output

    def test_p_restarts_machine(self):
        output = drive(":p 8", "mkpar (fun i -> i)")
        assert "p=8" in output
        assert "<0, 1, 2, 3, 4, 5, 6, 7>" in output

    def test_p_shows_current(self):
        assert "p=4" in drive(":p")

    def test_unknown_command(self):
        assert "unknown command" in drive(":frobnicate")

    def test_quit_stops(self):
        out = io.StringIO()
        session = Session()
        assert session.handle("1 + 1", out)
        assert not session.handle(":quit", out)


class TestRunRepl:
    def test_scripted_session(self):
        stdin = io.StringIO("let v = mkpar (fun i -> i)\nbcast 0 v\n:quit\n")
        out = io.StringIO()
        code = run_repl(stdin, out, params=BspParams(p=2))
        assert code == 0
        text = out.getvalue()
        assert "val v" in text
        assert "<0, 0>" in text

    def test_eof_terminates(self):
        code = run_repl(io.StringIO(""), io.StringIO())
        assert code == 0

    def test_banner_mentions_machine(self):
        out = io.StringIO()
        run_repl(io.StringIO(""), out, params=BspParams(p=3, g=2.0, l=9.0))
        assert "p=3" in out.getvalue()


class TestStats:
    def test_stats_command_reports_collection(self):
        stdin = io.StringIO("let v = mkpar (fun i -> i)\n:stats\n:quit\n")
        out = io.StringIO()
        code = run_repl(stdin, out, params=BspParams(p=2), banner=False)
        assert code == 0
        text = out.getvalue()
        assert "perf stats:" in text
        assert "infer.runs" in text

    def test_stats_at_exit(self):
        stdin = io.StringIO("1 + 1\n")
        out = io.StringIO()
        run_repl(
            stdin, out, params=BspParams(p=2), banner=False, stats_at_exit=True
        )
        assert "perf stats:" in out.getvalue()

    def test_stats_window_closed_after_exit(self):
        from repro import perf

        run_repl(io.StringIO(""), io.StringIO(), params=BspParams(p=2))
        assert not perf.is_collecting()


class TestBackendCommand:
    def test_backend_shows_current_and_available(self):
        out = drive(":backend")
        assert "backend: seq" in out
        assert "thread" in out and "process" in out

    def test_backend_switch_preserves_session_state(self):
        out = drive(
            "let v = mkpar (fun i -> i * i)",
            ":backend thread",
            "bcast 3 v",
            ":backend process",
            "bcast 3 v",
        )
        assert "backend switched to thread" in out
        assert "backend switched to process" in out
        assert out.count("- : int par = <9, 9, 9, 9>") == 2

    def test_backend_results_match_sequential(self):
        program = "put (mkpar (fun s -> fun d -> s + d))"
        expected = drive(program)
        for backend in ("thread", "process"):
            assert drive(f":backend {backend}", program).endswith(expected)

    def test_unknown_backend_is_reported_not_fatal(self):
        out = drive(":backend gpu", "1 + 1")
        assert "error: unknown backend" in out
        assert "- : int = 2" in out

    def test_initial_backend_parameter(self):
        out = io.StringIO()
        session = Session(backend="thread")
        session.handle(":backend", out)
        assert "backend: thread" in out.getvalue()


class TestInferEngineCommand:
    def test_shows_current_and_available(self):
        out = drive(":infer-engine")
        assert "infer-engine: uf" in out
        assert "(available: w, uf)" in out

    def test_switch_and_same_types(self):
        program = "let f = fun x -> x in (f 1, f true)"
        out = drive(
            program,
            ":infer-engine w",
            program,
        )
        assert "infer-engine switched to w" in out
        assert out.count("- : int * bool") == 2

    def test_type_command_uses_selected_engine(self):
        for engine in ("w", "uf"):
            out = drive(f":infer-engine {engine}", ":type fun x -> x")
            assert "- : forall 'a. 'a -> 'a" in out

    def test_unknown_engine_is_reported_not_fatal(self):
        out = drive(":infer-engine turbo", "1 + 1")
        assert "error: unknown infer engine" in out
        assert "- : int = 2" in out

    def test_initial_infer_engine_parameter(self):
        out = io.StringIO()
        session = Session(infer_engine="w")
        session.handle(":infer-engine", out)
        assert "infer-engine: w" in out.getvalue()


class TestFaultsCommand:
    def test_faults_default_off(self):
        assert "faults: off" in drive(":faults")

    def test_arm_show_disarm(self):
        out = drive(
            ":faults seed=3,crash=0.1,attempts=8",
            ":faults",
            ":faults off",
            ":faults",
        )
        assert "faults armed:" in out
        assert "seed=3" in out and "crash=0.1" in out
        assert "faults disarmed" in out
        assert out.rstrip().endswith("faults: off")

    def test_bad_spec_is_an_error_line_not_fatal(self):
        out = drive(":faults crash=lots", "1 + 1")
        assert "error:" in out
        assert "- : int = 2" in out  # the session survived

    def test_survivable_faults_leave_results_identical(self):
        program = "bcast 1 (mkpar (fun i -> i * i))"
        clean = drive(program)
        chaotic = drive(":faults seed=9,crash=0.3,drop=0.2,attempts=6", program)
        assert clean.strip() in chaotic

    def test_unsurvivable_fault_is_one_error_line_then_recovers(self):
        out = drive(
            ":faults seed=1,crash=1.0",
            "mkpar (fun i -> i)",
            ":faults off",
            "mkpar (fun i -> i)",
        )
        assert "error: superstep compute phase failed" in out
        assert "rolled back" in out
        assert "<0, 1, 2, 3>" in out  # works again once disarmed

    def test_reset_rearms_the_session_spec(self):
        out = drive(":faults seed=5,crash=0.05", ":reset", ":faults")
        assert "session reset" in out
        # The spec survives :reset (fresh plan, same seed).
        assert out.rstrip().endswith("faults: seed=5, crash=0.05; no retry")

    def test_initial_fault_spec_parameter(self):
        out = io.StringIO()
        run_repl(
            input_stream=io.StringIO(":faults\n"),
            output_stream=out,
            banner=False,
            fault_spec="seed=2,timeout=0.1,attempts=3",
        )
        text = out.getvalue()
        assert "faults: seed=2, timeout=0.1" in text


class TestBackendErrors:
    def test_unavailable_backend_restores_previous(self, monkeypatch):
        import repro.bsp.executor as executor_mod

        class _NoPool:
            def __init__(self, *args, **kwargs):
                raise OSError("thread creation forbidden")

        monkeypatch.delitem(executor_mod._SHARED, "thread", raising=False)
        monkeypatch.setattr(executor_mod, "ThreadPoolExecutor", _NoPool)
        out = drive(":backend thread", ":backend", "1 + 1")
        monkeypatch.delitem(executor_mod._SHARED, "thread", raising=False)
        assert "error: backend 'thread' is unavailable" in out
        assert "backend: seq" in out  # still on the previous backend
        assert "- : int = 2" in out


class TestTraceCommand:
    """``:trace on|off|save|status`` (``:trace <expr>`` still small-steps)."""

    def test_trace_expr_still_small_steps(self):
        output = drive(":trace 1 + 2")
        assert "1 + 2" in output
        assert "3" in output

    def test_status_off_by_default(self):
        assert "tracing: off" in drive(":trace status")

    def test_on_collects_and_save_writes(self, tmp_path):
        from repro import obs

        target = tmp_path / "session.json"
        output = drive(
            ":trace on",
            "bcast 2 (mkpar (fun i -> i * i))",
            ":trace status",
            f":trace save {target}",
        )
        assert "tracing on" in output
        assert "tracing: on" in output
        assert "records ->" in output
        assert obs.validate_chrome_trace(target) > 0

    def test_off_pauses_and_on_resumes(self):
        output = drive(
            ":trace on",
            "mkpar (fun i -> i)",
            ":trace off",
            ":trace status",
            ":trace on",
            ":trace status",
        )
        assert "tracing paused" in output
        assert "tracing: paused" in output
        assert "tracing resumed" in output

    def test_window_survives_reset(self):
        output = drive(
            ":trace on",
            "mkpar (fun i -> i)",
            ":reset",
            "mkpar (fun i -> i)",
            ":trace status",
        )
        assert "session reset" in output
        assert "tracing: on" in output

    def test_save_before_on_is_friendly(self, tmp_path):
        output = drive(f":trace save {tmp_path / 'x.json'}")
        assert "nothing to save" in output

    def test_save_without_path_shows_usage(self):
        output = drive(":trace on", ":trace save")
        assert "usage: :trace save" in output

    def test_save_with_explicit_format(self, tmp_path):
        target = tmp_path / "t.json"
        output = drive(
            ":trace on", "1 + 1", f":trace save {target} summary"
        )
        assert "records ->" in output
        assert target.read_text().startswith("trace summary")

    def test_save_with_unknown_format_is_rejected(self, tmp_path):
        output = drive(
            ":trace on", f":trace save {tmp_path / 't.json'} xml"
        )
        assert "unknown trace format" in output

    def test_trace_already_on(self):
        output = drive(":trace on", ":trace on")
        assert "already on" in output

    def test_off_before_on_is_friendly(self):
        output = drive(":trace off")
        assert "never on" in output

    def test_session_trace_stack_unwinds(self):
        from repro import obs

        stdin = io.StringIO(":trace on\n1 + 1\n")
        run_repl(stdin, io.StringIO(), params=BspParams(p=2), banner=False)
        assert not obs.is_tracing()


class TestRunReplTraceFile:
    def test_trace_file_written_at_exit(self, tmp_path):
        from repro import obs

        target = tmp_path / "repl.json"
        stdin = io.StringIO("bcast 0 (mkpar (fun i -> i))\n:quit\n")
        out = io.StringIO()
        code = run_repl(
            stdin,
            out,
            params=BspParams(p=2),
            banner=False,
            trace_file=str(target),
        )
        assert code == 0
        assert "records ->" in out.getvalue()
        assert obs.validate_chrome_trace(target) > 0

    def test_trace_format_respected(self, tmp_path):
        target = tmp_path / "repl.out"
        stdin = io.StringIO("1 + 1\n")
        run_repl(
            stdin,
            io.StringIO(),
            params=BspParams(p=2),
            banner=False,
            trace_file=str(target),
            trace_format="jsonl",
        )
        import json

        first = json.loads(target.read_text().splitlines()[0])
        assert {"name", "track", "ts", "dur", "args"} == set(first)

    def test_trace_window_closed_after_exit(self, tmp_path):
        from repro import obs

        run_repl(
            io.StringIO(""),
            io.StringIO(),
            params=BspParams(p=2),
            trace_file=str(tmp_path / "t.json"),
        )
        assert not obs.is_tracing()


class TestStatsVerbose:
    def _run(self, *lines):
        stdin = io.StringIO("".join(line + "\n" for line in lines))
        out = io.StringIO()
        run_repl(stdin, out, params=BspParams(p=2), banner=False)
        return out.getvalue()

    def test_stats_verbose_lists_idle_caches(self):
        output = self._run("1 + 1", ":stats verbose")
        assert "perf stats:" in output
        assert "0/0" in output

    def test_plain_stats_hides_idle_caches(self):
        output = self._run("1 + 1", ":stats")
        assert "perf stats:" in output
        assert "0/0" not in output
