"""Tests for the ``minibsml`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def strip_measured(text):
    """Remove every measured-wall-clock artifact from a ``--cost`` table:
    the summary lines, the ``measured ms`` column header and the per-row
    cells.  What is left is the abstract, backend-independent output."""
    import re

    lines = []
    for line in text.splitlines():
        if "measured compute" in line or "wall" in line:
            continue
        line = line.replace("   measured ms", "")
        line = re.sub(r"(?<=(?: yes|  no))\s{2,}(?:\d+\.\d{3}|-)(?=  )", "", line)
        lines.append(line)
    return "\n".join(lines)


class TestTypecheck:
    def test_accepts(self, capsys):
        code, out, _ = run_cli(capsys, "typecheck", "-e", "fun x -> x + 1")
        assert code == 0
        assert "int -> int" in out

    def test_prelude_names_available(self, capsys):
        code, out, _ = run_cli(capsys, "typecheck", "-e", "bcast")
        assert code == 0
        assert "int -> 'a par -> 'a par" in out

    def test_rejects_nesting(self, capsys):
        code, _, err = run_cli(
            capsys, "typecheck", "-e", "fst (1, mkpar (fun i -> i))"
        )
        assert code == 1
        assert "nesting" in err

    def test_syntax_error(self, capsys):
        code, _, err = run_cli(capsys, "typecheck", "-e", "fun ->")
        assert code == 2
        assert "syntax error" in err

    def test_no_prelude_flag(self, capsys):
        code, _, err = run_cli(capsys, "typecheck", "--no-prelude", "-e", "bcast")
        assert code == 1  # unbound without the prelude


class TestInferEngineFlag:
    @pytest.mark.parametrize("engine", ("w", "uf"))
    def test_typecheck_same_output_per_engine(self, capsys, engine):
        code, out, _ = run_cli(
            capsys, "typecheck", "--infer-engine", engine, "-e",
            "let f = fun x -> x in (f 1, f true)",
        )
        assert code == 0
        assert "int * bool" in out

    @pytest.mark.parametrize("engine", ("w", "uf"))
    def test_rejection_identical_per_engine(self, capsys, engine):
        code, _, err = run_cli(
            capsys, "typecheck", "--infer-engine", engine, "-e",
            "fst (1, mkpar (fun i -> i))",
        )
        assert code == 1
        assert "nesting" in err

    def test_run_accepts_flag(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "--infer-engine", "w", "-e", "1 + 2"
        )
        assert code == 0
        assert "3" in out

    def test_unknown_engine_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "typecheck", "--infer-engine", "turbo", "-e", "1")


class TestRun:
    def test_runs_and_prints_value(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "-e", "bcast 1 (mkpar (fun i -> i * 5))", "-p", "4"
        )
        assert code == 0
        assert "[5, 5, 5, 5]" in out

    def test_cost_flag(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "--cost", "-e", "put (mkpar (fun j -> fun d -> j))"
        )
        assert code == 0
        assert "BSP cost" in out
        assert "put" in out

    def test_typecheck_guards_run(self, capsys):
        code, _, err = run_cli(
            capsys, "run", "-e", "mkpar (fun i -> mkpar (fun j -> j))"
        )
        assert code == 1
        assert "type error" in err

    def test_untyped_run_gets_dynamically_stuck(self, capsys):
        code, _, err = run_cli(
            capsys,
            "run",
            "--untyped",
            "-e",
            "mkpar (fun i -> mkpar (fun j -> j))",
        )
        assert code == 1
        assert "parallel" in err.lower()

    def test_file_input(self, capsys, tmp_path):
        source = tmp_path / "prog.bsml"
        source.write_text("let double x = x * 2 ;; double 21")
        code, out, _ = run_cli(capsys, "run", str(source))
        assert code == 0
        assert "42" in out


class TestTrace:
    def test_shows_steps(self, capsys):
        code, out, _ = run_cli(capsys, "trace", "-e", "1 + 2 * 3", "-p", "2")
        assert code == 0
        assert "1 + 2 * 3" in out
        assert "7" in out

    def test_limit(self, capsys):
        code, out, _ = run_cli(
            capsys, "trace", "--limit", "3", "-e",
            "(fix (fun f -> fun n -> if n = 0 then 0 else f (n - 1))) 50",
        )
        assert code == 0
        assert "truncated" in out


class TestExplain:
    def test_accepted_tree(self, capsys):
        code, out, _ = run_cli(
            capsys, "explain", "-e", "fst (mkpar (fun i -> i), 1)"
        )
        assert code == 0
        assert "well-typed" in out
        assert "(App)" in out

    def test_rejected_tree(self, capsys):
        code, out, _ = run_cli(
            capsys, "explain", "-e", "fst (1, mkpar (fun i -> i))"
        )
        assert code == 1
        assert "rejected" in out
        assert ": ?" in out


class TestEffectsFlag:
    def test_clean_program_exits_zero(self, capsys):
        code, out, err = run_cli(
            capsys, "typecheck", "--effects", "-e", "let r = ref 0 in r := 1 ; !r"
        )
        assert code == 0
        assert "effect:" not in err

    def test_diverging_program_exits_nonzero(self, capsys):
        code, _, err = run_cli(
            capsys,
            "typecheck",
            "--effects",
            "-e",
            "let r = ref 0 in fst (mkpar (fun i -> r := i ; i), !r)",
        )
        assert code == 1
        assert "component assignment" in err
        assert "global deref" in err


class TestAscriptionsOnCli:
    def test_annotation_accepted(self, capsys):
        code, out, _ = run_cli(
            capsys, "typecheck", "-e", "(mkpar (fun i -> i) : int par)"
        )
        assert code == 0
        assert "int par" in out

    def test_bad_annotation_rejected(self, capsys):
        code, _, err = run_cli(capsys, "typecheck", "-e", "(1 : bool)")
        assert code == 1

    def test_nested_annotation_rejected_as_nesting(self, capsys):
        code, _, err = run_cli(capsys, "typecheck", "-e", "(nc () : int par par)")
        assert code == 1
        assert "nesting" in err


class TestReplSubcommand:
    def test_repl_is_registered(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["repl", "-p", "2"])
        assert args.p == 2


class TestStatsFlag:
    def test_run_stats_reports_nonzero_hit_rate(self, capsys):
        code, out, err = run_cli(
            capsys,
            "run",
            "--stats",
            "-e",
            "bcast 2 (mkpar (fun i -> i * i))",
            "-p",
            "8",
        )
        assert code == 0
        assert "[4, 4, 4, 4, 4, 4, 4, 4]" in out
        assert "perf stats:" in err
        assert "constraints.is_satisfiable" in err
        # The solver caches must actually be hit on an examples-scale
        # program, not merely reported.
        hit_rates = [
            float(line.split("%")[0].split()[-1])
            for line in err.splitlines()
            if "constraints." in line and "%" in line
        ]
        assert hit_rates and max(hit_rates) > 0.0
        assert "supersteps" in err

    def test_typecheck_stats_counts_inference(self, capsys):
        code, _, err = run_cli(
            capsys, "typecheck", "--stats", "-e", "fun x -> x + 1"
        )
        assert code == 0
        assert "infer.runs" in err
        assert "unify.calls" in err

    def test_stats_off_by_default(self, capsys):
        code, _, err = run_cli(capsys, "typecheck", "-e", "fun x -> x + 1")
        assert code == 0
        assert "perf stats" not in err


class TestBackendFlag:
    PROGRAM = "put (mkpar (fun src -> fun dst -> src * 10 + dst))"

    def test_every_backend_prints_the_same_result(self, capsys):
        outputs = {}
        for backend in ("seq", "thread", "process"):
            code, out, _ = run_cli(
                capsys,
                "run",
                "--backend",
                backend,
                "--cost",
                "-e",
                self.PROGRAM,
                "-p",
                "3",
            )
            assert code == 0
            outputs[backend] = out
        # Value line and the whole cost table must be reproduced verbatim
        # by the concurrent backends once the wall-clock artifacts (the
        # measured ms column and the measured-compute summary) are
        # stripped — those legitimately vary per backend.
        assert strip_measured(outputs["thread"]) == strip_measured(outputs["seq"])
        assert strip_measured(outputs["process"]) == strip_measured(outputs["seq"])

    def test_backend_defaults_to_sequential(self, capsys):
        code, out, _ = run_cli(capsys, "run", "-e", "1 + 2")
        assert code == 0
        assert "3" in out

    def test_unknown_backend_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(capsys, "run", "--backend", "gpu", "-e", "1")
        assert excinfo.value.code == 2


class TestFaultsFlag:
    PROGRAM = "bcast 1 (mkpar (fun i -> i * i))"

    @staticmethod
    def _abstract(out):
        """Drop measured wall-clock artifacts: only the *abstract* value
        and cost are promised to be identical under survivable faults."""
        return strip_measured(out)

    def test_survivable_faults_change_nothing_observable(self, capsys):
        clean = run_cli(capsys, "run", "-e", self.PROGRAM, "--cost")
        chaotic = run_cli(
            capsys,
            "run",
            "-e",
            self.PROGRAM,
            "--cost",
            "--faults",
            "seed=9,crash=0.3,drop=0.2,attempts=6",
        )
        assert clean[0] == chaotic[0] == 0
        # stdout (value + abstract cost table) identical
        assert self._abstract(clean[1]) == self._abstract(chaotic[1])

    def test_faults_work_on_every_backend(self, capsys):
        outputs = []
        for backend in ("seq", "thread", "process"):
            code, out, _ = run_cli(
                capsys,
                "run",
                "-e",
                self.PROGRAM,
                "--cost",
                "--backend",
                backend,
                "--faults",
                "seed=9,crash=0.3,drop=0.2,attempts=6",
            )
            assert code == 0
            outputs.append(self._abstract(out))
        assert outputs[0] == outputs[1] == outputs[2]

    def test_bad_spec_is_a_one_line_error(self, capsys):
        code, _, err = run_cli(
            capsys, "run", "-e", "1", "--faults", "crash=lots"
        )
        assert code == 1
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_unknown_spec_key_names_the_valid_keys(self, capsys):
        code, _, err = run_cli(
            capsys, "run", "-e", "1", "--faults", "warp=0.5"
        )
        assert code == 1
        assert "warp" in err and "crash" in err

    def test_unsurvivable_plan_is_a_one_line_error(self, capsys):
        code, _, err = run_cli(
            capsys,
            "run",
            "-e",
            self.PROGRAM,
            "--faults",
            "seed=1,crash=1.0",
        )
        assert code == 1
        assert err.startswith("error: superstep")
        assert "rolled back" in err
        assert "Traceback" not in err


class TestBackendErrors:
    """Satellite: a backend that cannot start must be one clear line."""

    def test_unavailable_backend_is_a_one_line_error(self, capsys, monkeypatch):
        import repro.bsp.executor as executor_mod

        class _NoPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no threads allowed in this sandbox")

        monkeypatch.delitem(executor_mod._SHARED, "thread", raising=False)
        monkeypatch.setattr(executor_mod, "ThreadPoolExecutor", _NoPool)
        code, _, err = run_cli(
            capsys, "run", "-e", "mkpar (fun i -> i)", "--backend", "thread"
        )
        monkeypatch.delitem(executor_mod._SHARED, "thread", raising=False)
        assert code == 1
        assert err.startswith("error: backend 'thread' is unavailable")
        assert "valid backends: seq, thread, process" in err
        assert "Traceback" not in err


class TestTraceFlag:
    """``--trace FILE`` / ``--trace-format`` on run, and ``profile``."""

    def test_run_trace_writes_valid_chrome_json(self, capsys, tmp_path):
        from repro import obs

        target = tmp_path / "out.json"
        code, out, err = run_cli(
            capsys,
            "run",
            "-e",
            "bcast 2 (mkpar (fun i -> i * i))",
            "--trace",
            str(target),
        )
        assert code == 0
        assert "[4, 4, 4, 4]" in out
        assert "records ->" in err
        assert obs.validate_chrome_trace(target) > 0

    def test_run_trace_jsonl_by_suffix(self, capsys, tmp_path):
        import json

        target = tmp_path / "out.jsonl"
        code, _, _ = run_cli(
            capsys, "run", "-e", "mkpar (fun i -> i)", "--trace", str(target)
        )
        assert code == 0
        lines = target.read_text().strip().splitlines()
        assert lines
        record = json.loads(lines[0])
        assert {"name", "track", "ts", "dur", "args"} == set(record)

    def test_run_trace_format_overrides_suffix(self, capsys, tmp_path):
        target = tmp_path / "out.json"
        code, _, _ = run_cli(
            capsys,
            "run",
            "-e",
            "mkpar (fun i -> i)",
            "--trace",
            str(target),
            "--trace-format",
            "summary",
        )
        assert code == 0
        assert target.read_text().startswith("trace summary")

    def test_run_without_trace_writes_nothing(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "run", "-e", "mkpar (fun i -> i)")
        assert code == 0
        assert "trace" not in err
        assert list(tmp_path.iterdir()) == []


class TestProfileSubcommand:
    def test_prints_cost_table_and_histograms(self, capsys):
        code, out, _ = run_cli(
            capsys, "profile", "-e", "bcast 2 (mkpar (fun i -> i * i))"
        )
        assert code == 0
        assert "[4, 4, 4, 4]" in out
        assert "BSP cost over p=4 processes" in out
        assert "measured ms" in out  # satellite: measured column
        assert "trace summary" in out
        assert "span latencies (ms):" in out
        assert "judgment" in out  # inference side is in the profile
        assert "superstep.compute" in out  # and the machine side

    def test_profile_with_trace_file(self, capsys, tmp_path):
        from repro import obs

        target = tmp_path / "profile.json"
        code, _, err = run_cli(
            capsys,
            "profile",
            "-e",
            "put (mkpar (fun j -> fun d -> j))",
            "--trace",
            str(target),
        )
        assert code == 0
        assert "records ->" in err
        assert obs.validate_chrome_trace(target) > 0

    def test_profile_under_faults(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "profile",
            "-e",
            "bcast 2 (mkpar (fun i -> i * i))",
            "--faults",
            "seed=3,crash=0.2,attempts=5",
        )
        assert code == 0
        assert "trace summary" in out


class TestStatsVerboseFlag:
    def test_verbose_includes_zero_call_caches(self, capsys):
        code, _, err = run_cli(
            capsys, "typecheck", "-e", "1 + 2", "--stats-verbose"
        )
        assert code == 0
        assert "perf stats" in err
        assert "0/0" in err  # at least one registered cache saw no calls

    def test_plain_stats_hides_zero_call_caches(self, capsys):
        code, _, err = run_cli(capsys, "typecheck", "-e", "1 + 2", "--stats")
        assert code == 0
        assert "perf stats" in err
        assert "0/0" not in err
