"""The example scripts must run cleanly end to end."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = [
    "quickstart.py",
    "broadcast_cost.py",
    "parallel_sort.py",
    "nesting_gallery.py",
    "extensions_tour.py",
    "graph_algorithms.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_quickstart_shows_the_headline_claims():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "int -> 'a par -> 'a par" in result.stdout  # bcast's scheme
    assert "rejected" in result.stdout  # the section 2.1 rejections
    assert "BSP cost" in result.stdout  # cost accounting


def test_gallery_shows_milner_vs_bsml():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "nesting_gallery.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "ACCEPTS" in result.stdout  # Milner column
    assert "REJECTS" in result.stdout  # BSML column
    assert "int par par" in result.stdout  # example1's Milner type
