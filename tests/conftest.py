"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.prelude_env import prelude_env
from repro.lang.parser import parse_expression, parse_program
from repro.lang.prelude import with_prelude


@pytest.fixture(scope="session")
def prelude_typing_env():
    """The prelude schemes as a typing environment (built once)."""
    return prelude_env()


def parse(source: str):
    """Parse a single expression (test shorthand)."""
    return parse_expression(source)


def program(source: str):
    """Parse a full program (definitions + final expression)."""
    return parse_program(source)


def loaded(source: str):
    """Parse a program and link the prelude definitions it uses."""
    return with_prelude(parse_program(source))
