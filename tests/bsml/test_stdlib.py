"""Tests for the derived BSML operations (Python stdlib)."""

from __future__ import annotations

import pytest

from repro.bsp.params import BspParams
from repro.bsml.predictions import (
    cost_bcast_direct,
    cost_bcast_two_phase,
    cost_scan_direct,
    cost_scan_log,
)
from repro.bsml.primitives import Bsml
from repro.bsml.stdlib import (
    applyat,
    bcast_direct,
    bcast_two_phase,
    fold,
    gather_to,
    parfun,
    parfun2,
    replicate,
    scan,
    scan_direct,
    scatter_from,
    shift,
    totex,
)


@pytest.fixture
def ctx():
    return Bsml(BspParams(p=4, g=2.0, l=50.0))


class TestMapping:
    def test_replicate(self, ctx):
        assert replicate(ctx, "x").to_list() == ["x"] * 4

    def test_parfun(self, ctx):
        doubled = parfun(ctx, lambda x: 2 * x, ctx.mkpar(lambda i: i))
        assert doubled.to_list() == [0, 2, 4, 6]

    def test_parfun2(self, ctx):
        result = parfun2(
            ctx, lambda a, b: a - b, ctx.mkpar(lambda i: 10), ctx.mkpar(lambda i: i)
        )
        assert result.to_list() == [10, 9, 8, 7]

    def test_applyat(self, ctx):
        result = applyat(ctx, 2, lambda x: -x, lambda x: x, ctx.mkpar(lambda i: i + 1))
        assert result.to_list() == [1, 2, -3, 4]

    def test_mapping_needs_no_communication(self, ctx):
        parfun(ctx, lambda x: x, replicate(ctx, 1))
        assert ctx.cost().S == 0


class TestBroadcast:
    def test_direct_value(self, ctx):
        result = bcast_direct(ctx, 2, ctx.mkpar(lambda i: i * 11))
        assert result.to_list() == [22] * 4

    def test_direct_superstep_and_h(self, ctx):
        ctx.mkpar(lambda i: i)  # build input first
        ctx.reset_cost()
        vector = ctx.vector([5, 0, 0, 0])
        bcast_direct(ctx, 0, vector)
        cost = ctx.cost()
        assert cost.S == 1
        assert cost.H == 3  # (p-1) * s with s = 1

    def test_two_phase_value(self, ctx):
        data = list(range(16))
        vector = ctx.mkpar(lambda i: data if i == 1 else None)
        result = bcast_two_phase(ctx, 1, vector)
        assert result.to_list() == [data] * 4

    def test_two_phase_uses_two_supersteps(self, ctx):
        vector = ctx.mkpar(lambda i: list(range(16)) if i == 0 else None)
        ctx.reset_cost()
        bcast_two_phase(ctx, 0, vector)
        assert ctx.cost().S == 2

    def test_two_phase_moves_less_per_superstep(self, ctx):
        data = list(range(64))
        vector = ctx.mkpar(lambda i: data if i == 0 else None)
        ctx.reset_cost()
        bcast_two_phase(ctx, 0, vector)
        two_phase_h = ctx.cost().H
        ctx.reset_cost()
        vector2 = ctx.mkpar(lambda i: data if i == 0 else None)
        ctx.reset_cost()
        bcast_direct(ctx, 0, vector2)
        direct_h = ctx.cost().H
        assert two_phase_h < direct_h


class TestCommunicationPatterns:
    def test_totex(self, ctx):
        result = totex(ctx, ctx.mkpar(lambda i: i * 2))
        assert result.to_list() == [[0, 2, 4, 6]] * 4

    def test_shift(self, ctx):
        assert shift(ctx, 1, ctx.mkpar(lambda i: i)).to_list() == [3, 0, 1, 2]

    def test_shift_wraps(self, ctx):
        assert shift(ctx, 5, ctx.mkpar(lambda i: i)).to_list() == [3, 0, 1, 2]

    def test_shift_zero(self, ctx):
        assert shift(ctx, 0, ctx.mkpar(lambda i: i)).to_list() == [0, 1, 2, 3]

    def test_gather(self, ctx):
        result = gather_to(ctx, 1, ctx.mkpar(lambda i: i * i))
        assert result.to_list() == [None, [0, 1, 4, 9], None, None]

    def test_scatter(self, ctx):
        vector = ctx.mkpar(lambda i: list(range(8)) if i == 0 else None)
        result = scatter_from(ctx, 0, vector)
        assert result.to_list() == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_scatter_uneven(self, ctx):
        vector = ctx.mkpar(lambda i: list(range(6)) if i == 0 else None)
        result = scatter_from(ctx, 0, vector)
        assert [len(block) for block in result] == [1, 2, 1, 2]
        assert sum(result.to_list(), []) == list(range(6))


class TestScanAndFold:
    def test_scan(self, ctx):
        result = scan(ctx, lambda a, b: a + b, ctx.mkpar(lambda i: i + 1))
        assert result.to_list() == [1, 3, 6, 10]

    def test_scan_direct(self, ctx):
        result = scan_direct(ctx, lambda a, b: a + b, ctx.mkpar(lambda i: i + 1))
        assert result.to_list() == [1, 3, 6, 10]

    def test_scan_non_commutative(self, ctx):
        # String concatenation is associative but not commutative: order
        # of processes must be respected.
        result = scan(ctx, lambda a, b: a + b, ctx.mkpar(lambda i: str(i)))
        assert result.to_list() == ["0", "01", "012", "0123"]

    def test_scans_agree(self, ctx):
        left = scan(ctx, lambda a, b: a + b, ctx.mkpar(lambda i: i * 3))
        right = scan_direct(ctx, lambda a, b: a + b, ctx.mkpar(lambda i: i * 3))
        assert left.to_list() == right.to_list()

    def test_scan_superstep_counts(self):
        for p, rounds in [(2, 1), (4, 2), (8, 3), (16, 4)]:
            ctx = Bsml(BspParams(p=p))
            vector = ctx.mkpar(lambda i: i)
            ctx.reset_cost()
            scan(ctx, lambda a, b: a + b, vector)
            assert ctx.cost().S == rounds, p

    def test_scan_direct_is_one_superstep(self, ctx):
        vector = ctx.mkpar(lambda i: i)
        ctx.reset_cost()
        scan_direct(ctx, lambda a, b: a + b, vector)
        assert ctx.cost().S == 1

    def test_fold(self, ctx):
        result = fold(ctx, lambda a, b: a + b, ctx.mkpar(lambda i: i))
        assert result.to_list() == [6, 6, 6, 6]

    def test_fold_single_process(self):
        ctx = Bsml(BspParams(p=1))
        assert fold(ctx, lambda a, b: a + b, ctx.mkpar(lambda i: 7)).to_list() == [7]


class TestPredictions:
    def test_bcast_direct_prediction_is_exact(self):
        for p in (2, 4, 8):
            params = BspParams(p=p, g=3.0, l=77.0)
            ctx = Bsml(params)
            vector = ctx.mkpar(lambda i: 5 if i == 0 else None)
            ctx.reset_cost()
            bcast_direct(ctx, 0, vector)
            measured = ctx.total_time()
            assert measured == pytest.approx(cost_bcast_direct(params, 1)), p

    def test_scan_log_prediction_is_exact(self):
        for p in (2, 4, 8, 16):
            params = BspParams(p=p, g=2.0, l=31.0)
            ctx = Bsml(params)
            vector = ctx.mkpar(lambda i: i)
            ctx.reset_cost()
            scan(ctx, lambda a, b: a + b, vector)
            assert ctx.total_time() == pytest.approx(cost_scan_log(params, 1)), p

    def test_two_phase_prediction_shape(self):
        # Approximate (framing words ignored): within 20%.
        params = BspParams(p=4, g=2.0, l=10.0)
        ctx = Bsml(params)
        data = list(range(128))
        vector = ctx.mkpar(lambda i: data if i == 0 else None)
        ctx.reset_cost()
        bcast_two_phase(ctx, 0, vector)
        predicted = cost_bcast_two_phase(params, len(data))
        assert ctx.total_time() == pytest.approx(predicted, rel=0.2)


class TestProj:
    def test_inverse_of_mkpar(self, ctx):
        from repro.bsml.stdlib import proj

        lookup = proj(ctx, ctx.mkpar(lambda i: i * i))
        assert [lookup(i) for i in range(ctx.p)] == [0, 1, 4, 9]

    def test_costs_one_superstep(self, ctx):
        from repro.bsml.stdlib import proj

        vector = ctx.mkpar(lambda i: i)
        ctx.reset_cost()
        proj(ctx, vector)
        assert ctx.cost().S == 1

    def test_out_of_range(self, ctx):
        from repro.bsml.stdlib import proj

        lookup = proj(ctx, ctx.mkpar(lambda i: i))
        with pytest.raises(IndexError):
            lookup(99)
