"""Tests for the level-synchronous BSP graph algorithms."""

from __future__ import annotations

import random

import pytest

from repro.bsp.params import BspParams
from repro.bsml.algorithms import collect
from repro.bsml.graphs import (
    UNREACHED,
    bfs,
    connected_components,
    distribute_graph,
)
from repro.bsml.primitives import Bsml


@pytest.fixture
def ctx():
    return Bsml(BspParams(p=4, g=2.0, l=50.0))


def sequential_bfs(n, edges, root, directed=False):
    adjacency = [[] for _ in range(n)]
    for u, v in edges:
        adjacency[u].append(v)
        if not directed:
            adjacency[v].append(u)
    levels = [UNREACHED] * n
    levels[root] = 0
    frontier = [root]
    level = 0
    while frontier:
        level += 1
        nxt = []
        for u in frontier:
            for v in adjacency[u]:
                if levels[v] == UNREACHED:
                    levels[v] = level
                    nxt.append(v)
        frontier = nxt
    return levels


class TestDistribute:
    def test_undirected_symmetrizes(self, ctx):
        graph = distribute_graph(ctx, 4, [(0, 3)])
        blocks = graph.to_list()
        assert blocks[0]["adjacency"][0] == [3]
        assert blocks[3]["adjacency"][0] == [0]

    def test_directed(self, ctx):
        graph = distribute_graph(ctx, 4, [(0, 3)], directed=True)
        assert graph.to_list()[3]["adjacency"][0] == []

    def test_edge_validation(self, ctx):
        with pytest.raises(ValueError, match="outside"):
            distribute_graph(ctx, 3, [(0, 7)])


class TestBfs:
    def test_path_graph(self, ctx):
        n = 8
        edges = [(i, i + 1) for i in range(n - 1)]
        graph = distribute_graph(ctx, n, edges)
        levels = collect(bfs(ctx, n, graph, 0))
        assert levels == list(range(n))

    def test_star_graph(self, ctx):
        n = 9
        edges = [(0, i) for i in range(1, n)]
        graph = distribute_graph(ctx, n, edges)
        levels = collect(bfs(ctx, n, graph, 0))
        assert levels == [0] + [1] * (n - 1)

    def test_disconnected_vertices_unreached(self, ctx):
        graph = distribute_graph(ctx, 6, [(0, 1), (2, 3)])
        levels = collect(bfs(ctx, 6, graph, 0))
        assert levels[0:2] == [0, 1]
        assert levels[2:] == [UNREACHED] * 4

    def test_root_in_any_block(self, ctx):
        n = 8
        edges = [(i, i + 1) for i in range(n - 1)]
        graph = distribute_graph(ctx, n, edges)
        levels = collect(bfs(ctx, n, graph, 5))
        assert levels == [5, 4, 3, 2, 1, 0, 1, 2]

    @pytest.mark.parametrize("seed", range(5))
    def test_against_sequential_on_random_graphs(self, ctx, seed):
        rng = random.Random(seed)
        n = 24
        edges = [
            (rng.randrange(n), rng.randrange(n)) for _ in range(40)
        ]
        edges = [(u, v) for u, v in edges if u != v]
        graph = distribute_graph(ctx, n, edges)
        root = rng.randrange(n)
        assert collect(bfs(ctx, n, graph, root)) == sequential_bfs(n, edges, root)

    def test_superstep_count_tracks_depth(self, ctx):
        # A path of length 7: one (fold + put) round per BFS level, one
        # trailing round where the last frontier finds nothing new, and a
        # final fold that detects quiescence.
        n = 8
        edges = [(i, i + 1) for i in range(n - 1)]
        graph = distribute_graph(ctx, n, edges)
        ctx.reset_cost()
        bfs(ctx, n, graph, 0)
        depth = n - 1
        rounds = depth + 1  # levels 1..7 plus the empty trailing round
        assert ctx.cost().S == 2 * rounds + 1  # (fold+put) per round + final fold

    def test_bad_root(self, ctx):
        graph = distribute_graph(ctx, 4, [])
        with pytest.raises(ValueError, match="root"):
            bfs(ctx, 4, graph, 9)


class TestConnectedComponents:
    def _components(self, ctx, n, edges):
        graph = distribute_graph(ctx, n, edges)
        labels = collect(connected_components(ctx, n, graph))
        # Normalize: map labels to canonical component ids.
        return labels

    def test_two_components(self, ctx):
        labels = self._components(ctx, 6, [(0, 1), (1, 2), (3, 4)])
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]
        assert labels[5] not in (labels[0], labels[3])

    def test_single_component_min_label(self, ctx):
        labels = self._components(ctx, 5, [(i, i + 1) for i in range(4)])
        assert labels == [0, 0, 0, 0, 0]

    def test_isolated_vertices(self, ctx):
        labels = self._components(ctx, 4, [])
        assert labels == [0, 1, 2, 3]

    @pytest.mark.parametrize("seed", range(5))
    def test_against_union_find(self, ctx, seed):
        rng = random.Random(100 + seed)
        n = 20
        edges = [(rng.randrange(n), rng.randrange(n)) for _ in range(15)]
        edges = [(u, v) for u, v in edges if u != v]

        parent = list(range(n))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for u, v in edges:
            parent[find(u)] = find(v)
        expected_groups = {}
        for v in range(n):
            expected_groups.setdefault(find(v), []).append(v)

        labels = self._components(ctx, n, edges)
        actual_groups = {}
        for v, label in enumerate(labels):
            actual_groups.setdefault(label, []).append(v)
        assert sorted(map(sorted, expected_groups.values())) == sorted(
            map(sorted, actual_groups.values())
        )

    def test_rounds_bounded_by_diameter(self, ctx):
        # A path: labels flow from vertex 0 down the line, one hop per
        # round — O(n) rounds, each round = 1 fold + 1 put superstep.
        n = 8
        edges = [(i, i + 1) for i in range(n - 1)]
        graph = distribute_graph(ctx, n, edges)
        ctx.reset_cost()
        connected_components(ctx, n, graph)
        assert ctx.cost().S <= 2 * (n + 2)
