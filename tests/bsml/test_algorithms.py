"""Tests for the BSP algorithms built on the Python BSMLlib."""

from __future__ import annotations

import random

import pytest

from repro.bsp.params import BspParams
from repro.bsml.algorithms import (
    block_distribute,
    collect,
    inner_product,
    matrix_vector,
    prefix_sums,
    sample_sort,
)
from repro.bsml.primitives import Bsml


@pytest.fixture
def ctx():
    return Bsml(BspParams(p=4, g=2.0, l=50.0))


class TestBlockDistribution:
    def test_even_split(self, ctx):
        blocks = block_distribute(ctx, list(range(8)))
        assert blocks.to_list() == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_uneven_split_covers_everything(self, ctx):
        data = list(range(10))
        blocks = block_distribute(ctx, data)
        assert collect(blocks) == data

    def test_fewer_items_than_processes(self, ctx):
        blocks = block_distribute(ctx, [1, 2])
        assert collect(blocks) == [1, 2]
        assert any(block == [] for block in blocks)


class TestPrefixSums:
    def test_small(self, ctx):
        blocks = block_distribute(ctx, [1, 2, 3, 4, 5])
        result = prefix_sums(ctx, blocks)
        assert collect(result) == [1, 3, 6, 10, 15]

    def test_against_sequential(self, ctx):
        rng = random.Random(7)
        data = [rng.randrange(-50, 50) for _ in range(37)]
        expected, total = [], 0
        for value in data:
            total += value
            expected.append(total)
        result = prefix_sums(ctx, block_distribute(ctx, data))
        assert collect(result) == expected

    def test_uses_log_supersteps(self, ctx):
        blocks = block_distribute(ctx, list(range(16)))
        ctx.reset_cost()
        prefix_sums(ctx, blocks)
        assert ctx.cost().S == 2  # log2(4) scan rounds


class TestSampleSort:
    @pytest.mark.parametrize("n", [0, 1, 10, 100, 500])
    def test_sorts(self, ctx, n):
        rng = random.Random(n)
        data = [rng.randrange(10_000) for _ in range(n)]
        result = sample_sort(ctx, block_distribute(ctx, data))
        assert collect(result) == sorted(data)

    def test_with_duplicates(self, ctx):
        data = [5, 1, 5, 5, 2, 5, 1] * 10
        result = sample_sort(ctx, block_distribute(ctx, data))
        assert collect(result) == sorted(data)

    def test_already_sorted(self, ctx):
        data = list(range(64))
        result = sample_sort(ctx, block_distribute(ctx, data))
        assert collect(result) == data

    def test_two_communication_supersteps(self, ctx):
        blocks = block_distribute(ctx, [3, 1, 4, 1, 5, 9, 2, 6])
        ctx.reset_cost()
        sample_sort(ctx, blocks)
        assert ctx.cost().S == 2  # sample exchange + bucket all-to-all

    def test_balanced_buckets_on_uniform_data(self):
        ctx = Bsml(BspParams(p=4))
        rng = random.Random(3)
        data = [rng.random() for _ in range(2000)]
        result = sample_sort(ctx, block_distribute(ctx, data))
        sizes = [len(block) for block in result]
        assert max(sizes) < 2.5 * (len(data) / ctx.p)

    def test_single_process(self):
        ctx = Bsml(BspParams(p=1))
        data = [3, 1, 2]
        result = sample_sort(ctx, block_distribute(ctx, data))
        assert collect(result) == [1, 2, 3]


class TestLinearAlgebra:
    def test_matrix_vector(self, ctx):
        matrix = [[1, 0], [0, 2], [3, 4], [1, 1]]
        result = matrix_vector(ctx, matrix, [5, 6])
        assert collect(result) == [5, 12, 39, 11]

    def test_matrix_vector_identity(self, ctx):
        n = 8
        eye = [[1 if i == j else 0 for j in range(n)] for i in range(n)]
        x = list(range(n))
        assert collect(matrix_vector(ctx, eye, x)) == x

    def test_matrix_vector_costs_one_broadcast(self, ctx):
        matrix = [[1] * 4] * 8
        ctx.reset_cost()
        matrix_vector(ctx, matrix, [1, 1, 1, 1])
        assert ctx.cost().S == 1  # the bcast of x

    def test_inner_product(self, ctx):
        left = block_distribute(ctx, [1, 2, 3, 4])
        right = block_distribute(ctx, [10, 20, 30, 40])
        result = inner_product(ctx, left, right)
        assert result.to_list() == [300] * 4


class TestHistogram:
    def _ctx(self):
        from repro.bsp.params import BspParams
        from repro.bsml.primitives import Bsml

        return Bsml(BspParams(p=4))

    def test_uniform_data(self):
        from repro.bsml.algorithms import histogram

        ctx = self._ctx()
        data = [0.1 * i for i in range(100)]  # 0.0 .. 9.9
        result = histogram(ctx, block_distribute(ctx, data), 5, 0.0, 10.0)
        assert result.to_list() == [[20, 20, 20, 20, 20]] * 4

    def test_counts_total_matches_in_range_data(self):
        import random as rnd

        from repro.bsml.algorithms import histogram

        ctx = self._ctx()
        rng = rnd.Random(11)
        data = [rng.uniform(-5, 15) for _ in range(500)]
        counts = histogram(ctx, block_distribute(ctx, data), 7, 0.0, 10.0)[0]
        expected = sum(1 for x in data if 0.0 <= x <= 10.0)
        assert sum(counts) == expected

    def test_upper_edge_goes_to_last_bin(self):
        from repro.bsml.algorithms import histogram

        ctx = self._ctx()
        counts = histogram(ctx, block_distribute(ctx, [10.0]), 5, 0.0, 10.0)[0]
        assert counts[-1] == 1

    def test_one_superstep(self):
        from repro.bsml.algorithms import histogram

        ctx = self._ctx()
        blocks = block_distribute(ctx, list(range(40)))
        ctx.reset_cost()
        histogram(ctx, blocks, 4, 0, 40)
        assert ctx.cost().S == 1

    def test_bad_bins(self):
        from repro.bsml.algorithms import histogram

        with pytest.raises(ValueError):
            histogram(self._ctx(), block_distribute(self._ctx(), []), 0, 0, 1)


class TestMatrixMultiply:
    def _ctx(self):
        from repro.bsp.params import BspParams
        from repro.bsml.primitives import Bsml

        return Bsml(BspParams(p=4))

    def test_small(self):
        from repro.bsml.algorithms import matrix_multiply

        ctx = self._ctx()
        C = collect(matrix_multiply(ctx, [[1, 2], [3, 4], [5, 6]], [[7, 8], [9, 10]]))
        assert C == [[25, 28], [57, 64], [89, 100]]

    def test_identity(self):
        from repro.bsml.algorithms import matrix_multiply

        ctx = self._ctx()
        n = 6
        eye = [[1 if i == j else 0 for j in range(n)] for i in range(n)]
        A = [[i * n + j for j in range(n)] for i in range(n)]
        assert collect(matrix_multiply(ctx, A, eye)) == A

    def test_against_numpy(self):
        numpy = pytest.importorskip("numpy")
        from repro.bsml.algorithms import matrix_multiply

        ctx = self._ctx()
        rng = numpy.random.default_rng(3)
        A = rng.integers(-5, 5, size=(9, 4)).tolist()
        B = rng.integers(-5, 5, size=(4, 7)).tolist()
        C = collect(matrix_multiply(ctx, A, B))
        assert (numpy.array(C) == numpy.array(A) @ numpy.array(B)).all()

    def test_dimension_mismatch(self):
        from repro.bsml.algorithms import matrix_multiply

        with pytest.raises(ValueError, match="inner dimensions"):
            matrix_multiply(self._ctx(), [[1, 2]], [[1, 2]])

    def test_one_broadcast_superstep(self):
        from repro.bsml.algorithms import matrix_multiply

        ctx = self._ctx()
        ctx.reset_cost()
        matrix_multiply(ctx, [[1] * 3] * 6, [[1] * 2] * 3)
        assert ctx.cost().S == 1
