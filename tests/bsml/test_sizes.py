"""Tests for the Python-value word-size model."""

from __future__ import annotations

import pytest

from repro.bsp.machine import NO_MESSAGE
from repro.bsml.sizes import words_of


class TestScalars:
    def test_no_message_weighs_nothing(self):
        assert words_of(NO_MESSAGE) == 0

    def test_none_is_a_real_one_word_value(self):
        # Regression: None used to be conflated with "no message" (size 0);
        # it is now an ordinary unit-like payload.
        assert words_of(None) == 1

    def test_numbers(self):
        assert words_of(0) == 1
        assert words_of(3.14) == 1
        assert words_of(True) == 1

    def test_strings(self):
        assert words_of("") == 1
        assert words_of("abcdefgh") == 1
        assert words_of("abcdefghi") == 2  # 9 chars -> 2 words

    def test_bytes(self):
        assert words_of(b"12345678") == 1
        assert words_of(b"123456789") == 2


class TestContainers:
    def test_list_framing_plus_elements(self):
        assert words_of([1, 2, 3]) == 4

    def test_empty_list(self):
        assert words_of([]) == 1

    def test_nested(self):
        assert words_of([[1], [2, 3]]) == 1 + 2 + 3

    def test_tuple_and_set(self):
        assert words_of((1, 2)) == 3
        assert words_of({1, 2}) == 3

    def test_dict(self):
        assert words_of({"k": 1}) == 1 + 1 + 1

    def test_none_inside_container_counts(self):
        # None *inside* a payload is a transmitted value like any other.
        assert words_of([None]) == 2


class TestBuffers:
    def test_numpy_arrays_by_nbytes(self):
        numpy = pytest.importorskip("numpy")
        array = numpy.zeros(16, dtype=numpy.float64)  # 128 bytes
        assert words_of(array) == 16

    def test_unknown_type_raises(self):
        class Weird:
            pass

        with pytest.raises(TypeError, match="word-size model"):
            words_of(Weird())

    def test_additivity(self):
        a, b = [1, 2], ["xx", 3.5]
        assert words_of([a, b]) == 1 + words_of(a) + words_of(b)
