"""Tests for the Python BSMLlib primitives."""

from __future__ import annotations

import pytest

from repro.bsp.params import BspParams
from repro.bsml.errors import ForeignVectorError, NestingViolation, VectorWidthError
from repro.bsml.primitives import NO_MESSAGE, Bsml, ParVector


@pytest.fixture
def ctx():
    return Bsml(BspParams(p=4, g=2.0, l=50.0))


class TestMkpar:
    def test_values_per_process(self, ctx):
        assert ctx.mkpar(lambda i: i * i).to_list() == [0, 1, 4, 9]

    def test_p(self, ctx):
        assert ctx.p == 4

    def test_mkpar_charges_local_work(self, ctx):
        ctx.mkpar(lambda i: i)
        assert ctx.cost().W == 1.0  # one op on each process, max = 1

    def test_vector_protocol(self, ctx):
        vector = ctx.mkpar(lambda i: i)
        assert len(vector) == 4
        assert vector[2] == 2
        assert list(vector) == [0, 1, 2, 3]

    def test_vectors_are_immutable_values(self, ctx):
        left = ctx.mkpar(lambda i: i)
        right = ctx.mkpar(lambda i: i)
        assert left == right
        assert hash(left) == hash(right)


class TestApply:
    def test_componentwise(self, ctx):
        fns = ctx.mkpar(lambda i: (lambda x: x + i))
        args = ctx.mkpar(lambda i: 100)
        assert ctx.apply(fns, args).to_list() == [100, 101, 102, 103]

    def test_no_barrier(self, ctx):
        fns = ctx.mkpar(lambda i: (lambda x: x))
        ctx.apply(fns, ctx.mkpar(lambda i: i))
        assert ctx.cost().S == 0

    def test_foreign_vector_rejected(self, ctx):
        other = Bsml(BspParams(p=4))
        vector = other.mkpar(lambda i: i)
        with pytest.raises(ForeignVectorError):
            ctx.apply(ctx.mkpar(lambda i: (lambda x: x)), vector)


class TestPut:
    def test_delivery(self, ctx):
        senders = ctx.mkpar(lambda j: (lambda dst: j * 10 + dst))
        delivered = ctx.put(senders)
        # Process i receives from j the value j*10+i.
        assert [f(1) for f in delivered] == [10 + i for i in range(4)]

    def test_no_message_sentinel(self, ctx):
        senders = ctx.mkpar(lambda j: (lambda dst: j if j == 0 else NO_MESSAGE))
        delivered = ctx.put(senders)
        assert [f(0) for f in delivered] == [0, 0, 0, 0]
        assert [f(1) for f in delivered] == [NO_MESSAGE] * 4

    def test_transmitted_none_is_delivered_as_none(self, ctx):
        # Regression: None is an ordinary value, NOT "no message" — the
        # OCaml library's Some None vs None distinction.
        senders = ctx.mkpar(lambda j: (lambda dst: None if j == 0 else NO_MESSAGE))
        delivered = ctx.put(senders)
        assert [f(0) for f in delivered] == [None] * 4
        assert [f(1) for f in delivered] == [NO_MESSAGE] * 4
        assert ctx.cost().H == 3  # one word of None to each of 3 peers

    def test_out_of_range_source_is_no_message(self, ctx):
        delivered = ctx.put(ctx.mkpar(lambda j: (lambda dst: j)))
        assert delivered[0](99) is NO_MESSAGE
        assert delivered[0](-1) is NO_MESSAGE

    def test_put_is_one_superstep(self, ctx):
        ctx.put(ctx.mkpar(lambda j: (lambda dst: j)))
        cost = ctx.cost()
        assert cost.S == 1
        assert cost.H == 3  # everyone sends one word to 3 others

    def test_no_message_costs_nothing(self, ctx):
        ctx.put(ctx.mkpar(lambda j: (lambda dst: NO_MESSAGE)))
        assert ctx.cost().H == 0

    def test_transmitted_none_costs_one_word(self, ctx):
        # Regression: a sent None used to be dropped from the h-relation.
        senders = ctx.mkpar(
            lambda j: (lambda dst: None if j == 0 and dst == 1 else NO_MESSAGE)
        )
        ctx.put(senders)
        assert ctx.cost().H == 1

    def test_message_sizes_counted(self, ctx):
        # Process 0 sends a 4-element list (4 + 1 framing words) to 1.
        senders = ctx.mkpar(
            lambda j: (
                lambda dst: [1, 2, 3, 4] if j == 0 and dst == 1 else NO_MESSAGE
            )
        )
        ctx.put(senders)
        assert ctx.cost().H == 5


class TestAt:
    def test_reads_the_value_at_proc(self, ctx):
        booleans = ctx.mkpar(lambda i: i == 2)
        assert ctx.at(booleans, 2) is True
        assert ctx.at(booleans, 1) is False

    def test_costs_a_superstep(self, ctx):
        ctx.at(ctx.mkpar(lambda i: True), 0)
        cost = ctx.cost()
        assert cost.S == 1
        assert cost.H == ctx.p - 1

    def test_index_validation(self, ctx):
        with pytest.raises(ValueError):
            ctx.at(ctx.mkpar(lambda i: True), 9)

    def test_type_validation(self, ctx):
        with pytest.raises(TypeError):
            ctx.at(ctx.mkpar(lambda i: i), 0)

    def test_usable_in_global_if(self, ctx):
        # The paper's intended idiom: if (at vec pid) then ... else ...
        booleans = ctx.mkpar(lambda i: i < 2)
        if ctx.at(booleans, 0):
            result = ctx.mkpar(lambda i: "small")
        else:  # pragma: no cover
            result = ctx.mkpar(lambda i: "big")
        assert result.to_list() == ["small"] * 4


class TestNestingRejection:
    def test_direct_nesting(self, ctx):
        with pytest.raises(NestingViolation):
            ctx.mkpar(lambda i: ctx.mkpar(lambda j: j))

    def test_nesting_inside_container(self, ctx):
        inner = ctx.mkpar(lambda i: i)
        with pytest.raises(NestingViolation):
            ctx.mkpar(lambda i: [1, inner])

    def test_nesting_inside_dict(self, ctx):
        inner = ctx.mkpar(lambda i: i)
        with pytest.raises(NestingViolation):
            ctx.mkpar(lambda i: {"v": inner})

    def test_fourth_projection_equivalent(self, ctx):
        # In Python the pair (1, vec) is fine; putting it INSIDE a vector
        # is what gets rejected, mirroring the type system's verdict on
        # mkpar contexts.
        vec = ctx.mkpar(lambda i: i)
        pair = (1, vec)  # legal: a global pair, like the type int * int par
        with pytest.raises(NestingViolation):
            ctx.mkpar(lambda i: pair)


class TestVectorHelper:
    def test_vector_builder(self, ctx):
        assert ctx.vector([1, 2, 3, 4]).to_list() == [1, 2, 3, 4]

    def test_wrong_width(self, ctx):
        with pytest.raises(VectorWidthError):
            ctx.vector([1, 2])

    def test_repr(self, ctx):
        assert repr(ctx.vector([1, 2, 3, 4])) == "<1, 2, 3, 4>"
