"""Regression: perf/trace collection windows are context-isolated.

Before the :mod:`contextvars` refactor, the active-collector stacks of
:mod:`repro.perf.counters` and :mod:`repro.obs.tracer` were module-global
lists: two inferences traced concurrently (the long-running service's
normal situation) appended every record to *both* collectors, producing
interleaved span stacks and double-counted counters.  These tests run
two traced/collected inferences concurrently on separate threads and
assert each window saw exactly — and only — its own work.
"""

from __future__ import annotations

import threading

import pytest

from repro import obs, perf
from repro.core.infer import infer
from repro.lang.parser import parse_program

#: Two programs with deliberately different AST sizes so each trace's
#: judgment-span count uniquely identifies which program produced it.
SMALL = "1 + 2"
LARGE = "let f = fun x -> x + 1 in let g = fun y -> f (f y) in g (g (g 1))"


def _node_count(source: str) -> int:
    expr = parse_program(source)
    return sum(1 for _ in _walk(expr))


def _walk(expr):
    yield expr
    for child in expr.children() if hasattr(expr, "children") else ():
        yield from _walk(child)


def _traced_inference(source: str, barrier: threading.Barrier, out: dict) -> None:
    expr = parse_program(source)
    barrier.wait(timeout=10)
    with perf.collect() as stats, obs.trace() as collected:
        for _ in range(20):
            infer(expr)
    out[source] = (stats, collected)


@pytest.mark.parametrize("rounds", [3])
def test_concurrent_traces_are_disjoint(rounds):
    """Two traced inferences on two threads collect disjoint records."""
    for _ in range(rounds):
        barrier = threading.Barrier(2)
        out: dict = {}
        threads = [
            threading.Thread(target=_traced_inference, args=(source, barrier, out))
            for source in (SMALL, LARGE)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        small_stats, small_trace = out[SMALL]
        large_stats, large_trace = out[LARGE]

        # Counter isolation: each window counted exactly its own 20 runs.
        assert small_stats.counter("infer.runs") == 20
        assert large_stats.counter("infer.runs") == 20

        # Span isolation: each trace holds judgment spans for exactly its
        # own program's nodes (20 runs x node count), not the union.
        small_judgments = len(small_trace.spans("judgment"))
        large_judgments = len(large_trace.spans("judgment"))
        assert small_judgments == 20 * _expr_nodes(SMALL)
        assert large_judgments == 20 * _expr_nodes(LARGE)
        assert small_judgments != large_judgments


def _expr_nodes(source: str) -> int:
    """Count judgment spans one traced inference of ``source`` emits."""
    expr = parse_program(source)
    with obs.trace() as collected:
        infer(expr)
    return len(collected.spans("judgment"))


def test_concurrent_span_stacks_are_well_formed():
    """Every trace's spans nest properly: a span's [ts, ts+dur] interval
    lies inside its enclosing span's interval (the property interleaving
    from another thread destroys)."""
    barrier = threading.Barrier(2)
    out: dict = {}
    threads = [
        threading.Thread(target=_traced_inference, args=(source, barrier, out))
        for source in (SMALL, LARGE)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    for source in (SMALL, LARGE):
        _, collected = out[source]
        spans = collected.spans()
        assert spans, "expected inference spans"
        # 'infer' root spans must bracket every judgment span recorded
        # in the same window (single-threaded nesting restored).
        roots = collected.spans("infer")
        assert len(roots) == 20
        for record in collected.spans("judgment"):
            assert any(
                root.ts <= record.ts
                and record.ts + record.dur <= root.ts + root.dur + 1e-9
                for root in roots
            ), f"judgment span outside every infer root in {source!r}"


def test_thread_without_window_records_nothing():
    """A thread with no active window must not see another thread's."""
    stats_holder: dict = {}

    def bystander():
        stats_holder["collecting"] = perf.is_collecting()
        stats_holder["tracing"] = obs.is_tracing()

    with perf.collect(), obs.trace():
        thread = threading.Thread(target=bystander)
        thread.start()
        thread.join(timeout=10)
    assert stats_holder == {"collecting": False, "tracing": False}
