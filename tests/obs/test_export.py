"""Tests for the trace exporters: Chrome JSON, JSONL, summaries."""

from __future__ import annotations

import json

import pytest

from repro import obs


def sample_trace() -> obs.Trace:
    """A small hand-built trace spanning all three track families."""
    collector = obs.start()
    base = collector.epoch
    obs.record("judgment", obs.INFERENCE_TRACK, base + 0.001, 0.004, node="App")
    obs.record("superstep.compute", obs.MACHINE_TRACK, base + 0.002, 0.010, superstep=0)
    obs.record("task", obs.process_track(0), base + 0.003, 0.002, proc=0, ops=5, superstep=0)
    obs.record("task", obs.process_track(1), base + 0.004, 0.003, proc=1, ops=7, superstep=0)
    obs.event("fault", obs.process_track(1), kind="crash", proc=1)
    obs.event("superstep", obs.MACHINE_TRACK, superstep=0, w_max=7.0, h=3, words=3, label="put")
    obs.stop(collector)
    return collector


class TestChrome:
    def test_document_shape(self):
        doc = obs.to_chrome(sample_trace())
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"

    def test_metadata_names_every_track(self):
        trace = sample_trace()
        doc = obs.to_chrome(trace)
        named = [
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert named == trace.tracks()

    def test_span_and_instant_phases(self):
        doc = obs.to_chrome(sample_trace())
        payload = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        phases = {e["name"]: e["ph"] for e in payload}
        assert phases["task"] == "X"
        assert phases["fault"] == "i"
        durations = [e["dur"] for e in payload if e["ph"] == "X"]
        assert all(d >= 0 for d in durations)

    def test_timestamps_sorted_and_microseconds(self):
        doc = obs.to_chrome(sample_trace())
        payload = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        stamps = [e["ts"] for e in payload]
        assert stamps == sorted(stamps)
        judgment = next(e for e in payload if e["name"] == "judgment")
        assert judgment["ts"] == pytest.approx(1000.0)
        assert judgment["dur"] == pytest.approx(4000.0)

    def test_validates_and_roundtrips(self, tmp_path):
        trace = sample_trace()
        path = obs.write_chrome(trace, tmp_path / "out.json")
        count = obs.validate_chrome_trace(path)
        assert count == len(json.loads(path.read_text())["traceEvents"])
        assert obs.validate_chrome_trace(path.read_text()) == count
        assert obs.validate_chrome_trace(json.loads(path.read_text())) == count


class TestValidator:
    def test_rejects_missing_tracevents(self):
        with pytest.raises(ValueError, match="traceEvents"):
            obs.validate_chrome_trace({"foo": []})

    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError, match="empty"):
            obs.validate_chrome_trace({"traceEvents": []})

    def test_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing required key"):
            obs.validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "i", "pid": 1, "tid": 0}]}
            )

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="unknown phase"):
            obs.validate_chrome_trace(
                {
                    "traceEvents": [
                        {"name": "x", "ph": "Z", "pid": 1, "tid": 0, "ts": 0}
                    ]
                }
            )

    def test_rejects_nonmonotone_track(self):
        events = [
            {"name": "a", "ph": "i", "pid": 1, "tid": 0, "ts": 10.0},
            {"name": "b", "ph": "i", "pid": 1, "tid": 0, "ts": 5.0},
        ]
        with pytest.raises(ValueError, match="monotonicity"):
            obs.validate_chrome_trace({"traceEvents": events})

    def test_accepts_nonmonotone_across_tracks(self):
        events = [
            {"name": "a", "ph": "i", "pid": 1, "tid": 0, "ts": 10.0},
            {"name": "b", "ph": "i", "pid": 1, "tid": 1, "ts": 5.0},
        ]
        assert obs.validate_chrome_trace({"traceEvents": events}) == 2

    def test_rejects_span_without_duration(self):
        events = [{"name": "a", "ph": "X", "pid": 1, "tid": 0, "ts": 0.0}]
        with pytest.raises(ValueError, match="dur"):
            obs.validate_chrome_trace({"traceEvents": events})

    def test_error_reports_index_and_name(self):
        """The first offending record is identified by index AND name."""
        events = [
            {"name": "fine", "ph": "i", "pid": 1, "tid": 0, "ts": 1.0},
            {"name": "culprit", "ph": "Z", "pid": 1, "tid": 0, "ts": 2.0},
        ]
        with pytest.raises(ValueError, match=r"event 1 \('culprit'\)"):
            obs.validate_chrome_trace({"traceEvents": events})

    def test_monotonicity_error_reports_index_and_name(self):
        events = [
            {"name": "a", "ph": "i", "pid": 1, "tid": 0, "ts": 10.0},
            {"name": "rewound", "ph": "i", "pid": 1, "tid": 0, "ts": 5.0},
        ]
        with pytest.raises(ValueError, match=r"event 1 \('rewound'\).*monotonicity"):
            obs.validate_chrome_trace({"traceEvents": events})

    def test_missing_name_reports_placeholder(self):
        events = [{"ph": "i", "pid": 1, "tid": 0, "ts": 0.0}]
        with pytest.raises(ValueError, match=r"event 0 \('<unnamed>'\)"):
            obs.validate_chrome_trace({"traceEvents": events})


class TestJsonl:
    def test_one_line_per_record(self, tmp_path):
        trace = sample_trace()
        path = obs.write_jsonl(trace, tmp_path / "out.jsonl")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(trace.records)
        first = json.loads(lines[0])
        assert set(first) == {"name", "track", "ts", "dur", "args"}
        assert first["name"] == "judgment"
        assert first["ts"] == pytest.approx(0.001)

    def test_instants_have_null_dur(self):
        lines = [json.loads(line) for line in obs.to_jsonl(sample_trace())]
        fault = next(line for line in lines if line["name"] == "fault")
        assert fault["dur"] is None
        assert fault["args"] == {"kind": "crash", "proc": 1}


class TestHistograms:
    def test_percentiles_and_ordering(self):
        collector = obs.start()
        for ms in (1, 2, 3, 4, 100):
            obs.record("slow", obs.MACHINE_TRACK, 0.0, ms / 1e3)
        obs.record("fast", obs.MACHINE_TRACK, 0.0, 0.0001)
        obs.stop(collector)
        rows = obs.histograms(collector)
        assert [r.name for r in rows] == ["slow", "fast"]
        slow = rows[0]
        assert slow.count == 5
        assert slow.p50 == pytest.approx(0.003)
        assert slow.p95 == pytest.approx(0.100)
        assert slow.p99 == pytest.approx(0.100)
        assert slow.max == pytest.approx(0.100)
        assert slow.total == pytest.approx(0.110)
        assert slow.mean == pytest.approx(0.022)

    def test_p99_separates_from_p95_on_long_tails(self):
        collector = obs.start()
        for i in range(100):
            obs.record("tail", obs.MACHINE_TRACK, 0.0, 0.001)
        for ms in (50, 200):
            obs.record("tail", obs.MACHINE_TRACK, 0.0, ms / 1e3)
        obs.stop(collector)
        (row,) = obs.histograms(collector)
        # 102 samples: rank 97 is still 1 ms, rank 100 catches the tail.
        assert row.p95 == pytest.approx(0.001)
        assert row.p99 == pytest.approx(0.050)
        assert row.max == pytest.approx(0.200)

    def test_empty_trace_has_no_histograms(self):
        collector = obs.start()
        obs.stop(collector)
        assert obs.histograms(collector) == []

    def test_superstep_rows_join_commit_and_phases(self):
        rows = obs.superstep_rows(sample_trace())
        assert len(rows) == 1
        assert rows[0]["w_max"] == 7.0
        assert rows[0]["h"] == 3
        assert rows[0]["label"] == "put"
        assert rows[0]["measured_s"] == pytest.approx(0.010)


class TestSummary:
    def test_mentions_sections(self):
        report = obs.summarize(sample_trace())
        assert "span latencies" in report
        assert "events:" in report
        assert "supersteps (modelled vs measured)" in report
        assert "task" in report and "fault" in report

    def test_empty_summary(self):
        collector = obs.start()
        obs.stop(collector)
        assert "(nothing recorded)" in obs.summarize(collector)


class TestWriteTrace:
    def test_suffix_dispatch(self, tmp_path):
        trace = sample_trace()
        chrome = obs.write_trace(trace, tmp_path / "a.json")
        jsonl = obs.write_trace(trace, tmp_path / "b.jsonl")
        summary = obs.write_trace(trace, tmp_path / "c.txt")
        obs.validate_chrome_trace(chrome)
        assert len(jsonl.read_text().strip().splitlines()) == len(trace.records)
        assert summary.read_text().startswith("trace summary")

    def test_explicit_format_wins(self, tmp_path):
        path = obs.write_trace(sample_trace(), tmp_path / "a.json", format="summary")
        assert path.read_text().startswith("trace summary")

    def test_unknown_format_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            obs.write_trace(sample_trace(), tmp_path / "a.json", format="xml")
