"""Regression tests: trace exports are atomic (temp file + os.replace).

An exporter that dies mid-write must leave either the previous file
intact or no file at all — never a truncated trace.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.obs import export


def small_trace() -> obs.Trace:
    collector = obs.start()
    obs.record("task", obs.process_track(0), collector.epoch, 0.001, proc=0)
    obs.event("superstep", obs.MACHINE_TRACK, superstep=0, w_max=1.0, h=0, words=0)
    obs.stop(collector)
    return collector


class TestAtomicWrites:
    @pytest.mark.parametrize("suffix", [".json", ".jsonl", ".txt"])
    def test_no_temp_files_left_behind(self, tmp_path, suffix):
        obs.write_trace(small_trace(), tmp_path / f"out{suffix}")
        assert sorted(p.name for p in tmp_path.iterdir()) == [f"out{suffix}"]

    def test_interrupted_write_preserves_previous_file(self, tmp_path, monkeypatch):
        trace = small_trace()
        path = tmp_path / "out.json"
        obs.write_chrome(trace, path)
        original = path.read_text()

        # Simulate running out of disk (or a crash) halfway through the
        # write of the *new* content: the file handle write explodes.
        real_fdopen = os.fdopen

        class _ExplodingHandle:
            def __init__(self, handle):
                self._handle = handle

            def write(self, text):
                self._handle.write(text[: len(text) // 2])
                raise OSError("disk full")

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                self._handle.close()
                return False

        def exploding_fdopen(fd, *args, **kwargs):
            return _ExplodingHandle(real_fdopen(fd, *args, **kwargs))

        monkeypatch.setattr(export.os, "fdopen", exploding_fdopen)
        with pytest.raises(OSError, match="disk full"):
            obs.write_chrome(trace, path)
        monkeypatch.undo()

        # The previous export is untouched and still valid...
        assert path.read_text() == original
        obs.validate_chrome_trace(path)
        # ...and the failed attempt left no temp file behind.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.json"]

    def test_interrupted_first_write_leaves_no_file(self, tmp_path, monkeypatch):
        trace = small_trace()
        path = tmp_path / "fresh.jsonl"

        def exploding_replace(src, dst):
            raise OSError("rename failed")

        monkeypatch.setattr(export.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="rename failed"):
            obs.write_jsonl(trace, path)
        monkeypatch.undo()
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_written_files_are_complete(self, tmp_path):
        trace = small_trace()
        chrome = obs.write_chrome(trace, tmp_path / "c.json")
        json.loads(chrome.read_text())  # parses fully — not truncated
        jsonl = obs.write_jsonl(trace, tmp_path / "l.jsonl")
        for line in jsonl.read_text().splitlines():
            json.loads(line)
