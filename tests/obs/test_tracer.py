"""Tests for the trace model: records, spans, tracks, signatures."""

from __future__ import annotations

import time

import pytest

from repro import obs


class TestDisabledPath:
    def test_not_tracing_by_default(self):
        assert not obs.is_tracing()

    def test_record_is_noop_when_inactive(self):
        obs.record("x", obs.MACHINE_TRACK, 0.0, 1.0)
        obs.event("y", obs.MACHINE_TRACK)
        assert not obs.is_tracing()

    def test_span_yields_none_when_inactive(self):
        with obs.span("x", obs.MACHINE_TRACK) as extra:
            assert extra is None

    def test_span_yields_dict_when_active(self):
        with obs.trace() as t:
            with obs.span("x", obs.MACHINE_TRACK) as extra:
                assert extra == {}
                extra["late"] = 7
        assert t.records[0].arg("late") == 7


class TestCollection:
    def test_event_and_span_recorded(self):
        with obs.trace() as t:
            obs.event("boom", obs.MACHINE_TRACK, kind="crash")
            with obs.span("phase", obs.MACHINE_TRACK, superstep=0):
                pass
        assert len(t.records) == 2
        boom, phase = t.records
        assert not boom.is_span and boom.dur is None
        assert phase.is_span and phase.dur >= 0.0
        assert boom.arg("kind") == "crash"
        assert phase.arg("superstep") == 0

    def test_span_recorded_even_on_raise(self):
        with obs.trace() as t:
            with pytest.raises(RuntimeError):
                with obs.span("failing", obs.MACHINE_TRACK):
                    raise RuntimeError("boom")
        assert [r.name for r in t.records] == ["failing"]

    def test_args_are_name_sorted(self):
        with obs.trace() as t:
            obs.event("e", obs.MACHINE_TRACK, z=1, a=2, m=3)
        assert [k for k, _ in t.records[0].args] == ["a", "m", "z"]

    def test_nested_collectors_both_see_records(self):
        with obs.trace() as outer:
            obs.event("one", obs.MACHINE_TRACK)
            with obs.trace() as inner:
                obs.event("two", obs.MACHINE_TRACK)
        assert [r.name for r in outer.records] == ["one", "two"]
        assert [r.name for r in inner.records] == ["two"]

    def test_stack_unwinds(self):
        with obs.trace():
            assert obs.is_tracing()
        assert not obs.is_tracing()

    def test_open_ended_window(self):
        collector = obs.start()
        obs.event("during", obs.MACHINE_TRACK)
        obs.stop(collector)
        obs.event("after", obs.MACHINE_TRACK)
        assert [r.name for r in collector.records] == ["during"]
        assert not obs.is_tracing()

    def test_stop_is_idempotent(self):
        collector = obs.start()
        obs.stop(collector)
        obs.stop(collector)
        assert not obs.is_tracing()

    def test_resume_appends_after_pause(self):
        collector = obs.start()
        obs.event("first", obs.MACHINE_TRACK)
        obs.stop(collector)
        obs.event("lost", obs.MACHINE_TRACK)
        obs.resume(collector)
        obs.event("second", obs.MACHINE_TRACK)
        obs.stop(collector)
        assert [r.name for r in collector.records] == ["first", "second"]

    def test_resume_is_idempotent(self):
        collector = obs.start()
        obs.resume(collector)
        obs.event("once", obs.MACHINE_TRACK)
        obs.stop(collector)
        assert [r.name for r in collector.records] == ["once"]

    def test_timestamps_are_perf_counter_values(self):
        before = time.perf_counter()
        with obs.trace() as t:
            obs.event("now", obs.MACHINE_TRACK)
        after = time.perf_counter()
        assert before <= t.records[0].ts <= after
        assert t.epoch <= t.records[0].ts


class TestQueries:
    def test_spans_and_events_filter(self):
        with obs.trace() as t:
            obs.event("fault", obs.process_track(1), kind="crash")
            with obs.span("task", obs.process_track(1)):
                pass
            with obs.span("task", obs.process_track(2)):
                pass
        assert len(t.spans()) == 2
        assert len(t.spans("task")) == 2
        assert t.spans("fault") == []
        assert len(t.events("fault")) == 1
        assert len(t) == 3

    def test_track_order_machine_procs_inference(self):
        with obs.trace() as t:
            obs.event("a", obs.INFERENCE_TRACK)
            obs.event("b", obs.process_track(10))
            obs.event("c", obs.process_track(2))
            obs.event("d", obs.MACHINE_TRACK)
            obs.event("e", "zcustom")
        assert t.tracks() == ["machine", "proc 2", "proc 10", "inference", "zcustom"]


class TestAbstractSignature:
    def test_measured_args_are_filtered(self):
        with obs.trace() as t:
            obs.record(
                "task",
                obs.process_track(0),
                1.0,
                0.5,
                proc=0,
                ops=12,
                seconds=0.5,
                backend="thread",
            )
        (entry,) = t.abstract_signature()
        assert entry == ("task", "proc 0", (("ops", 12), ("proc", 0)))

    def test_backend_lifecycle_records_are_dropped(self):
        with obs.trace() as t:
            obs.event("backend.fallback", obs.MACHINE_TRACK, slot=1)
            obs.event("fault", obs.process_track(0), kind="crash", proc=0)
        signature = t.abstract_signature()
        assert len(signature) == 1
        assert signature[0][0] == "fault"

    def test_signature_ignores_timing_but_keeps_order(self):
        def run(delay):
            t = obs.start()
            obs.event("one", obs.MACHINE_TRACK, superstep=0)
            if delay:
                time.sleep(0.002)
            obs.event("two", obs.MACHINE_TRACK, superstep=1)
            obs.stop(t)
            return t

        assert run(False).abstract_signature() == run(True).abstract_signature()

    def test_records_are_hashable(self):
        with obs.trace() as t:
            obs.event("e", obs.MACHINE_TRACK, kind="crash")
        assert isinstance(hash(t.records[0]), int)
        assert t.records[0].args_dict() == {"kind": "crash"}
