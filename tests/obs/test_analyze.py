"""Tests for trace loading and the BSP analytics (repro.obs.analyze)."""

from __future__ import annotations

import pytest

from repro import obs, run_program
from repro.lang import parse_program
from repro.obs.analyze import analyze_trace, load_trace, synthetic_trace


class TestLoadTrace:
    def test_jsonl_round_trip(self, tmp_path):
        trace = synthetic_trace()
        path = obs.write_jsonl(trace, tmp_path / "t.jsonl")
        loaded = load_trace(path)
        assert len(loaded.records) == len(trace.records)
        assert [r.name for r in loaded.records] == [r.name for r in trace.records]
        spans = loaded.spans("superstep.exchange")
        assert spans and spans[0].arg("h") == 100

    def test_chrome_round_trip(self, tmp_path):
        trace = synthetic_trace()
        path = obs.write_chrome(trace, tmp_path / "t.json")
        loaded = load_trace(path)
        # Metadata events are dropped; payload records survive with their
        # tracks recovered from the thread_name map.
        assert len(loaded.records) == len(trace.records)
        assert set(r.track for r in loaded.records) == set(
            r.track for r in trace.records
        )
        exchange = loaded.spans("superstep.exchange")[0]
        assert exchange.dur == pytest.approx(2e-6 * 100, rel=1e-6)

    def test_explicit_format_wins_over_suffix(self, tmp_path):
        trace = synthetic_trace()
        path = obs.write_jsonl(trace, tmp_path / "t.weird")
        loaded = load_trace(path, format="jsonl")
        assert len(loaded.records) == len(trace.records)

    def test_malformed_jsonl_names_the_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "a", "track": "m", "ts": 0}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            load_trace(path)

    def test_jsonl_missing_key_named(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "a", "ts": 0}\n')
        with pytest.raises(ValueError, match="line 1.*'track'"):
            load_trace(path)

    def test_malformed_chrome_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"noTraceEvents": []}')
        with pytest.raises(ValueError, match="traceEvents"):
            load_trace(path)

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="unknown trace format"):
            load_trace(path, format="summary")


class TestCalibration:
    """The acceptance criterion: on a synthetic trace that follows the
    cost model exactly, the fit recovers the configured g and l."""

    def test_recovers_g_l_and_compute_scale(self):
        g, l, c = 2e-6, 1e-3, 5e-7
        report = analyze_trace(synthetic_trace(g=g, l=l, compute_scale=c))
        assert report.fit is not None
        assert report.fit.g_eff == pytest.approx(g, rel=1e-9)
        assert report.fit.l_eff == pytest.approx(l, rel=1e-9)
        assert report.fit.compute_scale == pytest.approx(c, rel=1e-9)

    def test_recovery_survives_serialization(self, tmp_path):
        g, l = 3e-6, 2e-3
        trace = synthetic_trace(g=g, l=l)
        loaded = load_trace(obs.write_jsonl(trace, tmp_path / "t.jsonl"))
        report = analyze_trace(loaded)
        assert report.fit.g_eff == pytest.approx(g, rel=1e-6)
        assert report.fit.l_eff == pytest.approx(l, rel=1e-6)

    def test_drift_is_zero_on_exact_model(self):
        report = analyze_trace(synthetic_trace())
        assert report.drift
        for row in report.drift:
            assert row.drift == pytest.approx(0.0, abs=1e-9)

    def test_constant_h_degenerates_to_intercept(self):
        trace = synthetic_trace(steps=((1000.0, 50), (2000.0, 50)))
        report = analyze_trace(trace)
        assert report.fit.g_eff is None
        assert any("unidentifiable" in note for note in report.fit.notes)

    def test_configured_g_l_drive_the_drift_table(self):
        g, l = 2e-6, 1e-3
        trace = synthetic_trace(g=g, l=l)
        # Predict with a model twice as expensive: measured should come in
        # under the prediction on the communication side.
        report = analyze_trace(trace, g=2 * g, l=2 * l)
        assert report.used_g == 2 * g
        assert all(row.drift < 0 for row in report.drift)


class TestAnalyses:
    def test_critical_path_and_phase_totals(self):
        report = analyze_trace(synthetic_trace())
        assert len(report.supersteps) == 3
        assert report.critical_path == pytest.approx(
            sum(step.total for step in report.supersteps)
        )
        assert report.dominant_phase in ("compute", "exchange", "barrier")

    def test_imbalance_and_straggler(self):
        report = analyze_trace(synthetic_trace(p=4))
        # synthetic_trace gives proc 0 a 1.5x share.
        assert report.straggler == 0
        assert report.imbalance == pytest.approx(1.5 / ((1.5 + 3) / 4))

    def test_traffic_matrix_sums_exchanges(self):
        report = analyze_trace(synthetic_trace(p=2, steps=((100.0, 4),)))
        assert len(report.traffic) == 2
        total = sum(sum(row) for row in report.traffic)
        assert total == 4
        assert all(report.traffic[i][i] == 0 for i in range(2))

    def test_render_mentions_every_section(self):
        text = analyze_trace(synthetic_trace()).render()
        for needle in (
            "critical path",
            "imbalance factor",
            "traffic matrix",
            "g_eff",
            "l_eff",
            "drift table",
        ):
            assert needle in text

    def test_empty_trace_renders_gracefully(self):
        report = analyze_trace(obs.Trace(epoch=0.0))
        assert "no superstep records" in report.render()


class TestRealTraces:
    """analyze over a trace from an actual machine run."""

    def test_real_run_produces_breakdown_and_traffic(self, tmp_path):
        expr = parse_program(
            "put (mkpar (fun i -> fun dst -> if dst = i then 0 else i + 1))"
        )
        with obs.trace() as collected:
            run_program(expr, p=3)
        report = analyze_trace(collected)
        assert report.supersteps
        assert report.critical_path > 0
        assert report.traffic and sum(sum(row) for row in report.traffic) > 0
        # And the same through the CLI-facing save/load path.
        loaded = load_trace(obs.write_jsonl(collected, tmp_path / "run.jsonl"))
        report2 = analyze_trace(loaded)
        assert len(report2.supersteps) == len(report.supersteps)
        assert report2.traffic == report.traffic
