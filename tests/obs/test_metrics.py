"""Tests for the label-aware metrics registry and its Prometheus text
exposition (repro.obs.metrics)."""

from __future__ import annotations

import math
import threading

import pytest

from repro import obs
from repro.obs import metrics
from repro.obs.metrics import (
    MetricsRegistry,
    parse_prometheus,
)


class TestCounter:
    def test_unlabelled_increments(self):
        registry = MetricsRegistry()
        hits = registry.counter("hits_total", "hits")
        hits.inc()
        hits.inc(2.5)
        assert hits.value() == 3.5

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        requests = registry.counter("req_total", "reqs", ("route", "status"))
        requests.inc(route="/run", status="200")
        requests.inc(route="/run", status="200")
        requests.inc(route="/run", status="429")
        assert requests.value(route="/run", status="200") == 2
        assert requests.value(route="/run", status="429") == 1
        assert requests.value(route="/other", status="200") == 0

    def test_rejects_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "c")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_rejects_wrong_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "c", ("route",))
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc(verb="GET")
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc()

    def test_registration_is_idempotent_but_kind_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "c")
        assert registry.counter("c_total", "c") is first
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("c_total", "c")

    def test_rejects_invalid_names(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("2bad", "x")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("ok_total", "x", ("bad-label",))


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("inflight", "g")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4

    def test_set_to_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("peak", "g")
        gauge.set_to_max(3)
        gauge.set_to_max(1)
        assert gauge.value() == 3

    def test_function_gauge_reads_at_scrape(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("sessions", "g")
        box = {"n": 2}
        gauge.set_function(lambda: box["n"])
        assert gauge.value() == 2
        box["n"] = 7
        data = gauge.collect()
        assert data.samples[0].value == 7


class TestHistogram:
    def test_streaming_buckets_sum_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", "h", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.count() == 5
        assert hist.sum() == pytest.approx(5.605)
        data = hist.collect()
        buckets = {
            dict(s.labels)["le"]: s.value
            for s in data.samples
            if s.suffix == "_bucket"
        }
        # Cumulative: <=0.01 one, <=0.1 three, <=1.0 four, +Inf five.
        assert buckets == {"0.01": 1, "0.1": 3, "1": 4, "+Inf": 5}

    def test_quantile_is_bucket_resolution(self):
        registry = MetricsRegistry()
        hist = registry.histogram("q_seconds", "h", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5):
            hist.observe(value)
        assert hist.quantile(0.5) == 0.1
        assert hist.quantile(1.0) == 1.0
        hist.observe(100.0)
        assert hist.quantile(1.0) == math.inf

    def test_memory_is_constant_per_series(self):
        registry = MetricsRegistry()
        hist = registry.histogram("m_seconds", "h", buckets=(0.1, 1.0))
        for i in range(10_000):
            hist.observe((i % 7) / 3.0)
        counts, totals = hist._series[()]
        assert len(counts) == 3  # two bounds + overflow, however many samples
        assert totals[0] == 10_000

    def test_labelled_series(self):
        registry = MetricsRegistry()
        hist = registry.histogram("p_seconds", "h", ("phase",), buckets=(1.0,))
        hist.observe(0.5, phase="compute")
        hist.observe(2.0, phase="barrier")
        assert hist.count(phase="compute") == 1
        assert hist.count(phase="barrier") == 1
        assert hist.count(phase="exchange") == 0


class TestRender:
    def test_exposition_parses_and_round_trips(self):
        registry = MetricsRegistry()
        counter = registry.counter("req_total", "Requests.", ("route",))
        counter.inc(route="/v1/run")
        gauge = registry.gauge("inflight", "In flight.")
        gauge.set(3)
        hist = registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        text = registry.render()
        families = parse_prometheus(text)
        assert families["req_total"]["type"] == "counter"
        assert families["inflight"]["type"] == "gauge"
        assert families["lat_seconds"]["type"] == "histogram"
        samples = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in families["req_total"]["samples"]
        }
        assert samples[("req_total", (("route", "/v1/run"),))] == 1

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("esc_total", "e", ("path",))
        counter.inc(path='a"b\\c\nd')
        families = parse_prometheus(registry.render())
        ((_, labels, _),) = families["esc_total"]["samples"]
        assert labels["path"] == 'a"b\\c\nd'

    def test_collector_contributions_render(self):
        registry = MetricsRegistry()
        registry.register_collector(
            lambda: [
                metrics.MetricData(
                    "extra_total",
                    "counter",
                    "Extra.",
                    [metrics.MetricSample("", (("k", "v"),), 9)],
                )
            ]
        )
        families = parse_prometheus(registry.render())
        assert families["extra_total"]["samples"][0][2] == 9

    def test_broken_collector_does_not_break_scrape(self):
        registry = MetricsRegistry()
        registry.counter("ok_total", "ok").inc()

        def broken():
            raise RuntimeError("boom")

        registry.register_collector(broken)
        families = parse_prometheus(registry.render())
        assert "ok_total" in families

    def test_reset_zeroes_but_keeps_families(self):
        registry = MetricsRegistry()
        counter = registry.counter("r_total", "r")
        counter.inc(5)
        registry.reset()
        assert counter.value() == 0
        counter.inc()
        assert counter.value() == 1


class TestParser:
    def test_rejects_sample_without_type(self):
        with pytest.raises(ValueError, match="no # TYPE"):
            parse_prometheus("orphan_total 3\n")

    def test_rejects_malformed_labels(self):
        text = "# TYPE x counter\nx{bad} 1\n"
        with pytest.raises(ValueError, match="malformed label"):
            parse_prometheus(text)

    def test_rejects_non_numeric_value(self):
        text = "# TYPE x counter\nx lots\n"
        with pytest.raises(ValueError, match="non-numeric"):
            parse_prometheus(text)

    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            parse_prometheus("# TYPE x enum\n")

    def test_rejects_non_cumulative_histogram(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 6\n'
            "h_sum 1\n"
            "h_count 6\n"
        )
        with pytest.raises(ValueError, match="not.*cumulative"):
            parse_prometheus(text)

    def test_rejects_histogram_without_inf_bucket(self):
        text = "# TYPE h histogram\n" 'h_bucket{le="0.1"} 5\n'
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_prometheus(text)

    def test_error_names_the_line(self):
        text = "# TYPE x counter\nx 1\n???\n"
        with pytest.raises(ValueError, match="line 3"):
            parse_prometheus(text)


class TestTraceSinkIntegration:
    """enable() installs a tracer sink feeding the standard families."""

    def setup_method(self):
        metrics.global_registry().reset()

    def test_superstep_spans_feed_phase_histograms(self):
        metrics.enable()
        try:
            base = metrics.SUPERSTEP_SECONDS.count(phase="exchange")
            obs.record("superstep.exchange", obs.MACHINE_TRACK, 0.0, 0.25, superstep=0)
            obs.record("superstep.barrier", obs.MACHINE_TRACK, 0.3, 0.05, superstep=0)
            obs.event("superstep", obs.MACHINE_TRACK, superstep=0, words=12)
            assert metrics.SUPERSTEP_SECONDS.count(phase="exchange") == base + 1
            assert metrics.SUPERSTEP_SECONDS.sum(phase="exchange") == pytest.approx(0.25)
            assert metrics.SUPERSTEPS_TOTAL.value() >= 1
            assert metrics.WORDS_TOTAL.value() >= 12
        finally:
            metrics.disable()

    def test_machine_run_feeds_registry_without_local_collector(self):
        from repro.bsp.machine import BspMachine
        from repro.bsp.params import BspParams

        metrics.enable()
        try:
            machine = BspMachine(BspParams(p=2, g=1.0, l=10.0))
            machine.run_superstep([lambda: (1, 1), lambda: (2, 1)])
            machine.exchange([[0, 1], [0, 0]], {(0, 1): "x"})
            assert metrics.SUPERSTEPS_TOTAL.value() >= 1
            assert metrics.SUPERSTEP_SECONDS.count(phase="exchange") >= 1
        finally:
            metrics.disable()

    def test_disabled_means_no_sink_and_no_observation(self):
        assert not metrics.is_enabled()
        before = metrics.SUPERSTEP_SECONDS.count(phase="compute")
        obs.record("superstep.compute", obs.MACHINE_TRACK, 0.0, 0.1, superstep=0)
        assert metrics.SUPERSTEP_SECONDS.count(phase="compute") == before

    def test_enable_is_refcounted(self):
        metrics.enable()
        metrics.enable()
        metrics.disable()
        assert metrics.is_enabled()
        metrics.disable()
        assert not metrics.is_enabled()

    def test_context_collectors_stay_isolated_from_sink(self):
        """A trace window and the global sink both see a record, but the
        window only sees its own context's records."""
        metrics.enable()
        try:
            with obs.trace() as window:
                obs.record("solve", obs.INFERENCE_TRACK, 0.0, 0.001)
            done = threading.Event()

            def other_thread():
                obs.record("unify", obs.INFERENCE_TRACK, 0.0, 0.002)
                done.set()

            threading.Thread(target=other_thread).start()
            assert done.wait(5)
            names = [record.name for record in window.records]
            assert names == ["solve"]  # the other thread's record is absent
            assert metrics.INFERENCE_SECONDS.count(kind="solve") == 1
            assert metrics.INFERENCE_SECONDS.count(kind="unify") == 1
        finally:
            metrics.disable()

    def test_sink_exceptions_are_swallowed(self):
        def bad_sink(record):
            raise RuntimeError("boom")

        obs.add_sink(bad_sink)
        try:
            obs.record("solve", obs.INFERENCE_TRACK, 0.0, 0.001)
        finally:
            obs.remove_sink(bad_sink)


class TestPerfBridge:
    def test_solver_caches_appear_at_scrape(self):
        from repro import typecheck_scheme

        typecheck_scheme("fun x -> x")  # touch the solver caches
        metrics.enable()
        try:
            families = parse_prometheus(metrics.render_global())
            assert "repro_solver_cache_requests_total" in families
            assert "repro_intern_pool_size" in families
            results = {
                labels["result"]
                for _, labels, _ in families["repro_solver_cache_requests_total"][
                    "samples"
                ]
            }
            assert results <= {"hit", "miss"}
        finally:
            metrics.disable()
