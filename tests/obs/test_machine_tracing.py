"""Tracing of the BSP pipeline: superstep phases, tasks, faults,
retries, rollbacks, backend lifecycle, and the end-to-end run."""

from __future__ import annotations

import pytest

from repro import obs, run_program
from repro.bsp.faults import FaultPlan, RetryPolicy, SuperstepFault
from repro.bsp.machine import BspMachine
from repro.bsp.params import BspParams


def machine(p=4, **kwargs):
    return BspMachine(BspParams(p=p), **kwargs)


def tasks(p=4, ops=1.0):
    return [(lambda i: (lambda: (i, ops)))(i) for i in range(p)]


class TestSuperstepPhases:
    def test_compute_span_with_task_spans_per_process(self):
        m = machine()
        with obs.trace() as t:
            m.run_superstep(tasks())
        (compute,) = t.spans("superstep.compute")
        assert compute.track == obs.MACHINE_TRACK
        assert compute.arg("superstep") == 0
        assert compute.arg("procs") == 4
        assert compute.arg("attempts") == 1
        task_spans = t.spans("task")
        assert [s.track for s in task_spans] == [
            obs.process_track(i) for i in range(4)
        ]
        for proc, span in enumerate(task_spans):
            assert span.arg("proc") == proc
            assert span.arg("ops") == 1.0
            assert span.arg("superstep") == 0
            assert span.dur >= 0.0

    def test_exchange_span_and_commit_event(self):
        m = machine(p=2)
        with obs.trace() as t:
            m.run_superstep(tasks(p=2))
            m.exchange([[0, 3], [0, 0]], label="x")
        (exchange,) = t.spans("superstep.exchange")
        assert exchange.arg("h") == 3
        assert exchange.arg("words") == 3
        assert exchange.arg("label") == "x"
        (commit,) = t.events("superstep")
        assert commit.track == obs.MACHINE_TRACK
        assert commit.arg("superstep") == 0
        assert commit.arg("h") == 3
        assert commit.arg("w_max") == m.cost().supersteps[0].w_max

    def test_barrier_span(self):
        m = machine(p=2)
        with obs.trace() as t:
            m.run_superstep(tasks(p=2))
            m.barrier(label="sync")
        (barrier,) = t.spans("superstep.barrier")
        assert barrier.track == obs.MACHINE_TRACK
        (commit,) = t.events("superstep")
        assert commit.arg("label") == "sync"
        assert commit.arg("h") == 0

    def test_commit_events_match_cost_table(self):
        m = machine(p=2)
        with obs.trace() as t:
            for _ in range(3):
                m.run_superstep(tasks(p=2))
                m.exchange([[0, 1], [0, 0]])
        cost = m.cost()
        commits = t.events("superstep")
        assert [c.arg("superstep") for c in commits] == [0, 1, 2]
        for commit, step in zip(commits, cost.supersteps):
            assert commit.arg("w_max") == step.w_max
            assert commit.arg("h") == step.h

    def test_disabled_tracing_records_nothing_and_still_runs(self):
        m = machine()
        values = m.run_superstep(tasks())
        assert values == [0, 1, 2, 3]
        assert not obs.is_tracing()


class TestFaultTracing:
    # Seed 0 with crash=0.4 deterministically injects one crash on the
    # first attempt and recovers on the second (see repro.bsp.faults:
    # draws are machine-side in program order, so this is stable).
    def test_recovered_retry_emits_fault_retry_and_recovery(self):
        m = machine(
            faults=FaultPlan(seed=0, crash=0.4),
            retry=RetryPolicy(max_attempts=5, base_delay=0.0),
        )
        with obs.trace() as t:
            values = m.run_superstep(tasks())
        assert values == [0, 1, 2, 3]
        faults = t.events("fault")
        assert len(faults) >= 1
        for fault in faults:
            proc = fault.arg("proc")
            assert fault.track == obs.process_track(proc)
            assert fault.arg("kind") in ("crash", "timeout")
        (retry,) = t.events("retry")
        assert retry.arg("attempt") == 2
        assert retry.arg("phase") == "compute"
        (recovered,) = t.events("retry.recovered")
        assert recovered.arg("attempts") == 2
        (compute,) = t.spans("superstep.compute")
        assert compute.arg("attempts") == 2

    def test_exhausted_retries_emit_rollback_with_outcomes(self):
        m = machine(
            faults=FaultPlan(seed=0, crash=0.9),
            retry=RetryPolicy(max_attempts=1, base_delay=0.0),
        )
        with obs.trace() as t:
            with pytest.raises(SuperstepFault):
                m.run_superstep(tasks())
        (rollback,) = t.events("rollback")
        assert rollback.track == obs.MACHINE_TRACK
        assert rollback.arg("phase") == "compute"
        outcomes = rollback.arg("outcomes")
        assert "crash" in outcomes
        # the compute span is still recorded for the failed phase
        assert len(t.spans("superstep.compute")) == 1
        # and the machine rolled back: nothing committed
        assert m.cost().supersteps == []

    def test_message_fault_events_sit_on_senders_track(self):
        # drop=1.0: every in-flight message is injured on every attempt.
        m = machine(
            p=2,
            faults=FaultPlan(seed=1, drop=1.0),
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
        )
        with obs.trace() as t:
            m.run_superstep(tasks(p=2))
            with pytest.raises(SuperstepFault):
                m.exchange([[0, 1], [0, 0]], payloads={(0, 1): "m"})
        drops = [e for e in t.events("fault") if e.arg("kind") == "drop"]
        assert drops
        for drop in drops:
            assert drop.track == obs.process_track(drop.arg("src"))
            assert drop.arg("dst") == 1
        (rollback,) = t.events("rollback")
        assert rollback.arg("phase") == "exchange"


class TestAbstractSignature:
    def test_task_spans_keep_abstract_ops_not_seconds(self):
        m = machine()
        with obs.trace() as t:
            m.run_superstep(tasks(ops=7.0))
        signature = t.abstract_signature()
        task_entries = [e for e in signature if e[0] == "task"]
        assert len(task_entries) == 4
        for entry in task_entries:
            keys = [k for k, _ in entry[2]]
            assert "ops" in keys and "proc" in keys
            assert "seconds" not in keys and "backend" not in keys

    def test_backend_identity_not_in_compute_signature(self):
        m = machine()
        with obs.trace() as t:
            m.run_superstep(tasks())
        compute_entry = next(
            e for e in t.abstract_signature() if e[0] == "superstep.compute"
        )
        assert "backend" not in [k for k, _ in compute_entry[2]]


class TestEndToEnd:
    def test_run_program_produces_all_tracks(self):
        with obs.trace() as t:
            result = run_program("bcast 2 (mkpar (fun i -> i * i))", p=4)
        assert result.python_value == [4, 4, 4, 4]
        tracks = t.tracks()
        assert tracks[0] == obs.MACHINE_TRACK
        assert [f"proc {i}" for i in range(4)] == tracks[1:5]
        assert obs.INFERENCE_TRACK in tracks
        assert t.spans("judgment")
        assert t.spans("unify")
        assert t.spans("solve")
        assert t.events("superstep")
        # and the whole thing exports to a valid Chrome trace
        assert obs.validate_chrome_trace(obs.to_chrome(t)) > 0

    def test_infer_span_carries_rule(self):
        with obs.trace() as t:
            run_program("1 + 2", p=2)
        rules = {s.arg("rule") for s in t.spans("judgment")}
        assert rules and None not in rules
