"""Regression: exporters must not crash on empty or span-free traces.

A long-running service summarizes whatever a request window collected;
windows that saw no spans (or instant events recorded without cost args)
are routine there, and ``summarize`` used to crash formatting ``None``
cost fields.  Every exporter must produce valid output for an empty
trace and for a trace holding only malformed instant events.
"""

from __future__ import annotations

import json

from repro import obs
from repro.obs.export import (
    summarize,
    superstep_rows,
    to_chrome,
    to_jsonl,
    validate_chrome_trace,
)


def _empty_trace() -> obs.Trace:
    with obs.trace() as collected:
        pass
    return collected


def _spanfree_trace() -> obs.Trace:
    """Only instant events — including a 'superstep' commit with no cost
    args, the exact shape that crashed ``summarize``."""
    with obs.trace() as collected:
        obs.event("superstep", "bsp", superstep=0)  # no w_max, no h
        obs.event("superstep", "bsp")  # no args at all
        obs.event("note", "bsp", detail="hello")
    return collected


def test_summarize_empty_trace():
    report = summarize(_empty_trace())
    assert "(nothing recorded)" in report
    assert "0 spans, 0 events" in report


def test_summarize_spanfree_trace_does_not_crash():
    report = summarize(_spanfree_trace())
    assert "spans: (none recorded)" in report
    assert "supersteps" in report  # the table still renders ...
    assert "-" in report  # ... with dashes for the missing cost fields


def test_superstep_rows_tolerate_missing_args():
    rows = superstep_rows(_spanfree_trace())
    assert len(rows) == 2
    assert rows[0]["w_max"] is None
    assert rows[1]["superstep"] is None


def test_chrome_export_empty_trace_is_valid():
    doc = to_chrome(_empty_trace())
    # Metadata-only, but structurally valid Chrome JSON.
    assert validate_chrome_trace(doc) >= 1
    assert all(e["ph"] == "M" for e in doc["traceEvents"])


def test_chrome_export_spanfree_trace_is_valid():
    doc = to_chrome(_spanfree_trace())
    assert validate_chrome_trace(doc) >= 3


def test_jsonl_export_empty_and_spanfree():
    assert to_jsonl(_empty_trace()) == []
    lines = to_jsonl(_spanfree_trace())
    assert len(lines) == 3
    for line in lines:
        parsed = json.loads(line)
        assert parsed["dur"] is None
