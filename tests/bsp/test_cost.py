"""Tests for the BSP cost objects (SuperstepCost / BspCost)."""

from __future__ import annotations

import math

import pytest

from repro.bsp.cost import BspCost, SuperstepCost
from repro.bsp.network import HRelation, one_relation
from repro.bsp.params import BspParams

PARAMS = BspParams(p=4, g=2.0, l=10.0)


def step(w=(1.0, 2.0, 3.0, 4.0), h_size=0, synchronized=True, label=""):
    relation = one_relation(4, size=h_size) if h_size else None
    return SuperstepCost(tuple(w), relation, synchronized, label)


class TestSuperstepCost:
    def test_w_max(self):
        assert step().w_max == 4.0

    def test_empty_work(self):
        assert SuperstepCost(()).w_max == 0.0

    def test_h_of_relationless_step(self):
        assert step().h == 0

    def test_h_of_relation(self):
        assert step(h_size=3).h == 3

    def test_time_synchronized(self):
        assert step(h_size=3).time(PARAMS) == 4 + 6 + 10

    def test_time_unsynchronized_ignores_l(self):
        assert step(synchronized=False).time(PARAMS) == 4.0


class TestBspCost:
    def _cost(self):
        return BspCost(
            4,
            [
                step(w=(5, 0, 0, 0), h_size=2, label="first"),
                step(w=(1, 1, 1, 1), h_size=0, label="second"),
                step(w=(2, 2, 2, 2), synchronized=False, label="tail"),
            ],
        )

    def test_W_sums_maxima(self):
        assert self._cost().W == 5 + 1 + 2

    def test_H_sums_arities(self):
        assert self._cost().H == 2

    def test_S_counts_barriers_only(self):
        assert self._cost().S == 2

    def test_total(self):
        cost = self._cost()
        assert cost.total(PARAMS) == 8 + 2 * 2.0 + 2 * 10.0

    def test_decomposition(self):
        assert self._cost().check_decomposition(PARAMS)

    def test_render_lists_labels(self):
        text = self._cost().render(PARAMS)
        assert "first" in text and "tail" in text
        assert "W =" in text

    def test_render_without_params_omits_total(self):
        text = self._cost().render()
        assert "total" not in text


class TestHRelationObject:
    def test_per_process(self):
        relation = HRelation((3, 0), (0, 3))
        assert relation.per_process == (3, 3)
        assert relation.h == 3

    def test_total_words(self):
        assert HRelation((3, 1), (1, 3)).total_words == 4

    def test_p(self):
        assert HRelation((0, 0, 0), (0, 0, 0)).p == 3


class TestDecompositionTolerance:
    """Regression: check_decomposition used an absolute 1e-9 tolerance,
    which spuriously failed for large-magnitude totals where a single
    float rounding step already exceeds 1e-9."""

    def _large_cost(self, steps=1000):
        relation = HRelation((3, 0), (0, 3))
        work = (1e14 + 0.3, 0.0)
        return BspCost(
            p=2,
            supersteps=[
                SuperstepCost(work, relation, True, "big") for _ in range(steps)
            ],
        )

    def test_large_totals_still_decompose(self):
        params = BspParams(p=2, g=0.1, l=0.7)
        cost = self._large_cost()
        # The two summation orders genuinely differ in the last bits (by
        # ~752.0 absolute for this corpus — far beyond any absolute 1e-9
        # check), but the relative check accepts the reassociation error.
        by_steps = sum(s.time(params) for s in cost.supersteps)
        assert abs(by_steps - cost.total(params)) > 1e-9
        assert cost.check_decomposition(params)

    def test_real_mismatch_still_detected(self):
        params = BspParams(p=2, g=2.0, l=10.0)
        cost = self._large_cost(steps=2)
        # A genuinely different total (e.g. a superstep dropped) must fail.
        broken = BspCost(p=2, supersteps=cost.supersteps[:1])
        by_steps_broken = sum(s.time(params) for s in broken.supersteps)
        assert by_steps_broken != cost.total(params)
        assert not math.isclose(
            by_steps_broken, cost.total(params), rel_tol=1e-9, abs_tol=1e-9
        )

    def test_zero_cost_decomposes(self):
        # abs_tol keeps the empty program (both sums exactly 0.0) passing.
        assert BspCost(p=2, supersteps=[]).check_decomposition(PARAMS)
