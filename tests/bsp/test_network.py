"""Tests for h-relation accounting."""

from __future__ import annotations

import pytest

from repro.bsp.network import (
    HRelation,
    h_relation_of_matrix,
    h_relation_of_messages,
    one_relation,
)


class TestMatrix:
    def test_empty(self):
        relation = h_relation_of_matrix([[0, 0], [0, 0]])
        assert relation.h == 0
        assert relation.total_words == 0

    def test_single_message(self):
        relation = h_relation_of_matrix([[0, 5], [0, 0]])
        assert relation.sent_words == (5, 0)
        assert relation.received_words == (0, 5)
        assert relation.h == 5

    def test_diagonal_is_free(self):
        relation = h_relation_of_matrix([[9, 0], [0, 9]])
        assert relation.h == 0

    def test_h_is_max_of_in_and_out(self):
        # Process 0 sends 3 and receives 1: h_0 = 3.
        relation = h_relation_of_matrix([[0, 1, 1, 1], [1, 0, 0, 0],
                                         [0, 0, 0, 0], [0, 0, 0, 0]])
        assert relation.per_process[0] == 3
        assert relation.h == 3

    def test_receiver_bound(self):
        # Everyone sends 1 word to process 0: h_0- = 3 dominates.
        matrix = [[0] * 4 for _ in range(4)]
        for sender in (1, 2, 3):
            matrix[sender][0] = 1
        relation = h_relation_of_matrix(matrix)
        assert relation.h == 3

    def test_total_exchange(self):
        p = 4
        matrix = [[1] * p for _ in range(p)]
        relation = h_relation_of_matrix(matrix)
        assert relation.h == p - 1

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            h_relation_of_matrix([[0, 1]])

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            h_relation_of_matrix([[0, -1], [0, 0]])


class TestMessages:
    def test_sparse_build(self):
        relation = h_relation_of_messages(3, {(0, 1): 2, (1, 2): 4})
        assert relation.sent_words == (2, 4, 0)
        assert relation.received_words == (0, 2, 4)
        assert relation.h == 4

    def test_accumulates_duplicates(self):
        relation = h_relation_of_messages(2, {(0, 1): 2})
        again = h_relation_of_messages(2, {(0, 1): 1, (1, 0): 1})
        assert relation.h == 2
        assert again.h == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            h_relation_of_messages(2, {(0, 5): 1})


class TestOneRelation:
    def test_h_equals_size(self):
        assert one_relation(4, size=3).h == 3

    def test_single_process_is_empty(self):
        assert one_relation(1).h == 0

    def test_every_process_balanced(self):
        relation = one_relation(5, size=2)
        assert all(h == 2 for h in relation.per_process)
