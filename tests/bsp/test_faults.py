"""Tests for the fault-injection layer (repro.bsp.faults) and the
transactional superstep semantics it gives the machine."""

from __future__ import annotations

from functools import partial

import pytest

from repro import perf
from repro.bsp.executor import BACKENDS, get_executor
from repro.bsp.faults import (
    FaultPlan,
    FaultSpecError,
    RetryPolicy,
    SuperstepFault,
    parse_fault_spec,
)
from repro.bsp.machine import BspMachine
from repro.bsp.params import BspParams


def _square(i):
    """Module-level so the process backend can pickle the tasks."""
    return i * i, 1.0


def _tasks(p):
    return [partial(_square, i) for i in range(p)]


def _machine(p=4, backend="seq", **kwargs):
    return BspMachine(BspParams(p=p), executor=get_executor(backend), **kwargs)


class TestRetryPolicy:
    def test_defaults_are_sane(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.delay(1) == 0.0  # base_delay 0: retry immediately

    def test_backoff_is_exponential_with_deterministic_jitter(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, jitter_seed=7)
        delays = [policy.delay(n) for n in (1, 2, 3)]
        again = [policy.delay(n) for n in (1, 2, 3)]
        assert delays == again  # same seed, same jitter
        # Exponential envelope: delay(n) in [base*2^(n-1), 1.5*base*2^(n-1)].
        for n, delay in enumerate(delays, start=1):
            floor = 0.1 * 2 ** (n - 1)
            assert floor <= delay <= 1.5 * floor

    def test_jitter_seed_changes_the_schedule(self):
        a = RetryPolicy(base_delay=0.1, jitter_seed=1)
        b = RetryPolicy(base_delay=0.1, jitter_seed=2)
        assert a.delay(1) != b.delay(1)

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)


class TestFaultPlan:
    def test_same_seed_same_decisions(self):
        a = FaultPlan(seed=11, crash=0.3, timeout=0.2, drop=0.4)
        b = FaultPlan(seed=11, crash=0.3, timeout=0.2, drop=0.4)
        keys = [(0, 1), (1, 2), (2, 3)]
        for _ in range(5):
            assert a.draw_task_faults(range(4)) == b.draw_task_faults(range(4))
            assert a.draw_message_faults(keys) == b.draw_message_faults(keys)
            assert a.draw_pool_break() == b.draw_pool_break()

    def test_replay_rewinds_the_stream(self):
        plan = FaultPlan(seed=3, crash=0.5)
        first = plan.draw_task_faults(range(8))
        assert plan.replay().draw_task_faults(range(8)) == first

    def test_zero_rates_draw_nothing(self):
        plan = FaultPlan(seed=0)
        assert not plan.active
        assert plan.draw_task_faults(range(4)) == {}
        assert plan.draw_message_faults([(0, 1)]) == {}
        assert plan.draw_pool_break() is False

    def test_rates_are_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(crash=1.5)


class TestFaultSpec:
    def test_full_spec(self):
        plan, policy = parse_fault_spec(
            "seed=42,crash=0.1,timeout=0.05,drop=0.04,dup=0.02,"
            "corrupt=0.01,pool=0.03,attempts=5,delay=0.25,jitter=9"
        )
        assert plan.seed == 42 and plan.crash == 0.1 and plan.pool == 0.03
        assert policy.max_attempts == 5
        assert policy.base_delay == 0.25 and policy.jitter_seed == 9

    def test_plan_only_spec_has_no_policy(self):
        plan, policy = parse_fault_spec("seed=1,crash=0.5")
        assert plan.crash == 0.5
        assert policy is None

    @pytest.mark.parametrize(
        "spec",
        ["crash", "crash=", "crash=lots", "warp=0.1", "crash=0.1,crash=0.2",
         "crash=2.0", "attempts=0"],
    )
    def test_bad_specs_raise_fault_spec_error(self, spec):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(spec)


class TestTransactionalCompute:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_survivable_crashes_are_observationally_invisible(self, backend):
        clean = _machine(backend=backend)
        clean_values = clean.run_superstep(_tasks(4))
        clean.barrier()

        chaotic = _machine(
            backend=backend,
            faults=FaultPlan(seed=5, crash=0.4, timeout=0.3),
            retry=RetryPolicy(max_attempts=20),
        )
        values = chaotic.run_superstep(_tasks(4))
        chaotic.barrier()
        assert values == clean_values
        assert chaotic.cost() == clean.cost()

    def test_unsurvivable_plan_raises_atomically(self):
        machine = _machine()
        machine.run_superstep(_tasks(4))
        machine.exchange(
            [[0, 2, 0, 0]] + [[0] * 4] * 3, payloads={(0, 1): "x"}, label="pre"
        )
        machine.arm_faults(FaultPlan(seed=1, crash=1.0))
        before = machine.state_fingerprint()
        with pytest.raises(SuperstepFault) as excinfo:
            machine.run_superstep(_tasks(4))
        assert machine.state_fingerprint() == before
        assert excinfo.value.phase == "compute"
        assert excinfo.value.state_restored
        # The mailbox delivered before the fault is still readable.
        assert machine.receive(1, 0) == "x"
        # And the machine still works: disarm, and the next superstep commits.
        machine.disarm_faults()
        assert machine.run_superstep(_tasks(4)) == [0, 1, 4, 9]

    def test_superstep_fault_carries_the_outcome_table(self):
        machine = _machine(faults=FaultPlan(seed=1, crash=1.0))
        with pytest.raises(SuperstepFault) as excinfo:
            machine.run_superstep(_tasks(4))
        table = excinfo.value.table
        assert len(table) == 4
        assert all(row.status == "crash" for row in table)
        assert "proc 0" in excinfo.value.render()

    def test_no_policy_means_one_attempt(self):
        machine = _machine(faults=FaultPlan(seed=2, crash=1.0))
        with pytest.raises(SuperstepFault) as excinfo:
            machine.run_superstep(_tasks(4))
        assert excinfo.value.attempts == 1

    def test_retry_counters(self):
        machine = _machine(
            faults=FaultPlan(seed=0, crash=0.6),
            retry=RetryPolicy(max_attempts=50),
        )
        with perf.collect() as stats:
            machine.run_superstep(_tasks(4))
        assert stats.counter("bsp.fault.crash") > 0
        assert stats.counter("bsp.retry.attempts") > 0
        assert stats.counter("bsp.retry.recovered") == 1


class TestTransactionalExchange:
    def _exchange(self, machine):
        sent = [[0, 1, 0, 0], [0, 0, 1, 0], [0, 0, 0, 1], [1, 0, 0, 0]]
        payloads = {(0, 1): "a", (1, 2): "b", (2, 3): "c", (3, 0): "d"}
        machine.exchange(sent, payloads=payloads, label="ring")

    def test_survivable_message_faults_deliver_identically(self):
        clean = _machine()
        self._exchange(clean)

        chaotic = _machine(
            faults=FaultPlan(seed=9, drop=0.3, dup=0.1, corrupt=0.1),
            retry=RetryPolicy(max_attempts=50),
        )
        self._exchange(chaotic)
        assert chaotic.cost() == clean.cost()
        for proc, source in ((1, 0), (2, 1), (3, 2), (0, 3)):
            assert chaotic.receive(proc, source) == clean.receive(proc, source)

    def test_unsurvivable_exchange_keeps_previous_mailboxes(self):
        machine = _machine()
        machine.exchange(
            [[0, 3, 0, 0]] + [[0] * 4] * 3, payloads={(0, 1): "keep"}, label="ok"
        )
        before = machine.state_fingerprint()
        machine.arm_faults(FaultPlan(seed=4, drop=1.0))
        with pytest.raises(SuperstepFault) as excinfo:
            self._exchange(machine)
        assert excinfo.value.phase == "exchange"
        assert machine.state_fingerprint() == before
        assert machine.receive(1, 0) == "keep"  # old delivery intact

    def test_exchange_fault_counts(self):
        machine = _machine(faults=FaultPlan(seed=4, drop=1.0))
        with perf.collect() as stats:
            with pytest.raises(SuperstepFault):
                self._exchange(machine)
        assert stats.counter("bsp.fault.drop") > 0
        assert stats.counter("bsp.fault.supersteps_failed") == 1


class TestCrossBackendFaultDeterminism:
    def test_same_plan_same_story_on_every_backend(self):
        stories = []
        for backend in BACKENDS:
            machine = _machine(
                backend=backend,
                faults=FaultPlan(seed=21, crash=0.3, timeout=0.2, drop=0.3),
                retry=RetryPolicy(max_attempts=30),
            )
            values = machine.run_superstep(_tasks(4))
            machine.exchange(
                [[0, 1, 0, 0]] + [[0] * 4] * 3,
                payloads={(0, 1): "m"},
                label="x",
            )
            stories.append((values, machine.cost()))
        assert stories[0] == stories[1] == stories[2]
