"""Tests for the BSP machine: superstep accounting and mailboxes."""

from __future__ import annotations

import pytest

from repro.bsp.cost import BspCost, SuperstepCost
from repro.bsp.machine import NO_MESSAGE, BspMachine
from repro.bsp.network import HRelation
from repro.bsp.params import PREDEFINED, BspParams


def machine(p=4, g=2.0, l=50.0):
    return BspMachine(BspParams(p=p, g=g, l=l))


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            BspParams(p=0)
        with pytest.raises(ValueError):
            BspParams(p=2, g=-1)

    def test_superstep_time(self):
        params = BspParams(p=2, g=3.0, l=7.0)
        assert params.superstep_time(10, 4) == 10 + 12 + 7

    def test_predefined_profiles(self):
        assert set(PREDEFINED) == {"cluster", "slow-network", "shared-memory"}
        for params in PREDEFINED.values():
            assert params.p >= 1


class TestWorkAccounting:
    def test_local_work(self):
        m = machine()
        m.local(0, 5)
        m.local(1, 3)
        cost = m.cost()
        assert cost.W == 5  # max over processes

    def test_replicated_work_charges_everyone(self):
        m = machine()
        m.replicated(2)
        m.local(1, 1)
        assert m.cost().W == 3

    def test_local_out_of_range(self):
        with pytest.raises(ValueError):
            machine(p=2).local(5)


class TestSupersteps:
    def test_exchange_closes_superstep(self):
        m = machine(p=2)
        m.local(0, 4)
        m.exchange([[0, 3], [0, 0]], label="x")
        cost = m.cost()
        assert cost.S == 1
        assert cost.H == 3
        assert cost.W == 4

    def test_work_after_exchange_is_new_superstep(self):
        m = machine(p=2)
        m.local(0, 1)
        m.exchange([[0, 1], [0, 0]])
        m.local(0, 7)
        cost = m.cost()
        assert len(cost.supersteps) == 2
        assert not cost.supersteps[-1].synchronized
        assert cost.W == 8

    def test_barrier_costs_l_only(self):
        m = machine(p=2)
        m.barrier()
        cost = m.cost()
        assert cost.S == 1
        assert cost.H == 0

    def test_total_formula(self):
        params = BspParams(p=2, g=2.0, l=10.0)
        m = BspMachine(params)
        m.replicated(3)
        m.exchange([[0, 4], [0, 0]])
        m.replicated(1)
        cost = m.cost()
        # W + H*g + S*l = (3+1) + 4*2 + 1*10
        assert cost.total(params) == 4 + 8 + 10
        assert cost.check_decomposition(params)

    def test_reset(self):
        m = machine()
        m.replicated(5)
        m.exchange([[0] * 4 for _ in range(4)])
        m.reset()
        assert m.cost().supersteps == []


class TestMailboxes:
    def test_payload_delivery(self):
        m = machine(p=3)
        m.exchange(
            [[0, 1, 0], [0, 0, 1], [0, 0, 0]],
            payloads={(0, 1): "hello", (1, 2): "world"},
        )
        assert m.receive(1, 0) == "hello"
        assert m.receive(2, 1) == "world"
        assert m.receive(0, 1) is NO_MESSAGE
        assert m.has_message(1, 0)
        assert not m.has_message(0, 1)

    def test_next_exchange_clears_mailboxes(self):
        m = machine(p=2)
        m.exchange([[0, 1], [0, 0]], payloads={(0, 1): 42})
        m.exchange([[0, 0], [0, 0]])
        assert m.receive(1, 0) is NO_MESSAGE
        assert not m.has_message(1, 0)

    def test_transmitted_none_differs_from_no_message(self):
        # Regression: a transmitted None used to be indistinguishable from
        # "no message"; receive now keeps them apart via the sentinel.
        m = machine(p=2)
        m.exchange([[0, 1], [0, 0]], payloads={(0, 1): None})
        assert m.receive(1, 0) is None
        assert m.has_message(1, 0)
        assert m.receive(1, 1) is NO_MESSAGE
        assert not m.has_message(1, 1)

    def test_no_message_sentinel_is_falsy(self):
        assert not NO_MESSAGE
        assert repr(NO_MESSAGE) == "NO_MESSAGE"

    def test_barrier_clears_mailboxes(self):
        # Regression: barrier() closed the superstep without clearing the
        # delivery state, so a payload stayed readable across any number
        # of later barriers — a message surviving a synchronization no
        # exchange re-delivered it through.
        m = machine(p=2)
        m.exchange([[0, 1], [0, 0]], payloads={(0, 1): 42})
        assert m.receive(1, 0) == 42
        m.barrier()
        assert m.receive(1, 0) is NO_MESSAGE
        assert not m.has_message(1, 0)


class TestExchangeValidation:
    """Regression: exchange used to deliver payloads without checking them
    against the traffic matrix, silently corrupting the cost accounting."""

    def test_out_of_range_payload_key(self):
        m = machine(p=2)
        with pytest.raises(ValueError, match="out of range"):
            m.exchange([[0, 1], [0, 0]], payloads={(0, 5): "x"})
        with pytest.raises(ValueError, match="out of range"):
            m.exchange([[0, 1], [0, 0]], payloads={(-1, 1): "x"})

    def test_diagonal_self_send_rejected(self):
        m = machine(p=2)
        with pytest.raises(ValueError, match="self-send"):
            m.exchange([[0, 1], [0, 0]], payloads={(0, 0): "x"})

    def test_unaccounted_payload_rejected(self):
        # The matrix says nothing flows 1 -> 0, so a (1, 0) payload would
        # be communication the cost model never charged for.
        m = machine(p=2)
        with pytest.raises(ValueError, match="unaccounted"):
            m.exchange([[0, 1], [0, 0]], payloads={(1, 0): "x"})


class TestRunSuperstep:
    def test_values_and_work_accounting(self):
        m = machine(p=3)
        values = m.run_superstep([lambda i=i: (i * 10, float(i + 1)) for i in range(3)])
        assert values == [0, 10, 20]
        m.barrier()
        cost = m.cost()
        assert cost.S == 1
        assert cost.supersteps[0].work == (1.0, 2.0, 3.0)

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="expected 2 tasks"):
            machine(p=2).run_superstep([lambda: (0, 0.0)])

    def test_lowest_index_error_wins(self):
        m = machine(p=3)

        def fail(msg):
            raise RuntimeError(msg)

        with pytest.raises(RuntimeError, match="first"):
            m.run_superstep(
                [
                    lambda: (0, 1.0),
                    lambda: fail("first"),
                    lambda: fail("second"),
                ]
            )

    def test_measured_timings_recorded(self):
        m = machine(p=2)
        m.run_superstep([lambda: (0, 1.0), lambda: (1, 1.0)])
        m.barrier()
        step = m.cost().supersteps[0]
        assert step.measured is not None
        assert len(step.measured) == 2
        assert all(seconds >= 0.0 for seconds in step.measured)
        # Wall-clock timings never participate in cost equality.
        bare = SuperstepCost(
            work=step.work, relation=step.relation, label=step.label
        )
        assert step == bare


class TestCostObjects:
    def test_superstep_time_unsynchronized(self):
        step = SuperstepCost(work=(3.0, 5.0), relation=None, synchronized=False)
        assert step.time(BspParams(p=2, g=1, l=100)) == 5.0

    def test_empty_cost(self):
        cost = BspCost(p=2, supersteps=[])
        assert cost.W == 0 and cost.H == 0 and cost.S == 0
        assert cost.total(BspParams(p=2)) == 0

    def test_render_contains_table(self):
        m = machine(p=2)
        m.local(0, 1)
        m.exchange([[0, 1], [0, 0]], label="hello")
        text = m.cost().render(m.params)
        assert "hello" in text
        assert "total" in text


class TestSuperstepAtomicity:
    """Satellite regression: a task failing mid-superstep must not leave
    partially-committed work behind (the old code folded each completed
    outcome into ``_work``/``_elapsed`` before noticing the failure, so
    catch-and-retry produced a corrupt cost decomposition)."""

    def _tasks(self, p, boom_at=None):
        def make(i):
            if i == boom_at:
                def boom():
                    raise RuntimeError(f"proc {i} exploded")
                return boom
            return lambda i=i: (i, 10.0)
        return [make(i) for i in range(p)]

    def test_failed_superstep_commits_nothing(self):
        m = machine()
        m.run_superstep(self._tasks(4))  # a clean superstep to have state
        before = m.state_fingerprint()
        with pytest.raises(RuntimeError, match="proc 2 exploded"):
            m.run_superstep(self._tasks(4, boom_at=2))
        # Procs 0 and 1 succeeded before the failure, but none of their
        # work may have been committed.
        assert m.state_fingerprint() == before

    def test_catch_and_retry_keeps_cost_decomposition_valid(self):
        m = machine()
        try:
            m.run_superstep(self._tasks(4, boom_at=1))
        except RuntimeError:
            pass  # a caller catching the error and retrying...
        values = m.run_superstep(self._tasks(4))
        m.barrier()
        assert values == [0, 1, 2, 3]
        cost = m.cost()
        # Exactly one superstep's work: 10 ops per proc, max = 10.
        assert cost.W == 10.0
        assert cost.S == 1
        assert cost.check_decomposition(m.params)
