"""Tests for the pluggable execution backends (repro.bsp.executor)."""

from __future__ import annotations

import pickle
from functools import partial

import pytest

from repro import perf
from repro.bsp.executor import (
    BACKENDS,
    ProcessExecutor,
    SequentialExecutor,
    ThreadExecutor,
    get_executor,
)
from repro.bsp.machine import BspMachine
from repro.bsp.params import BspParams


def _square_task(i):
    """Module-level, so the process backend can actually pickle it."""
    return i * i, 1.0


def _boom_task():
    raise RuntimeError("boom")


def _tasks(p):
    return [partial(_square_task, i) for i in range(p)]


@pytest.fixture(params=BACKENDS)
def executor(request):
    return get_executor(request.param)


class TestAllBackends:
    def test_values_in_task_order(self, executor):
        outcomes = executor.run(_tasks(5))
        assert [outcome.value for outcome in outcomes] == [
            (i * i, 1.0) for i in range(5)
        ]
        assert all(outcome.error is None for outcome in outcomes)

    def test_timings_are_measured(self, executor):
        outcomes = executor.run(_tasks(3))
        assert all(outcome.seconds >= 0.0 for outcome in outcomes)

    def test_errors_are_reported_per_task(self, executor):
        outcomes = executor.run([partial(_square_task, 0), _boom_task])
        assert outcomes[0].error is None
        assert isinstance(outcomes[1].error, RuntimeError)

    def test_empty_task_list(self, executor):
        assert executor.run([]) == []


class TestSequential:
    def test_fails_fast(self):
        ran = []

        def record(i):
            ran.append(i)
            return i, 1.0

        def boom():
            raise RuntimeError("stop here")

        outcomes = SequentialExecutor().run(
            [partial(record, 0), boom, partial(record, 2)]
        )
        # The task after the failure never ran: exactly the historical
        # in-line semantics the other backends are compared against.
        assert ran == [0]
        assert outcomes[2].skipped


class TestThread:
    def test_reentrant_submission_runs_inline(self):
        # A task that itself opens a computation phase must not deadlock
        # the pool (it runs inline and is rejected by downstream checks).
        executor = ThreadExecutor(max_workers=1)

        def outer():
            inner = executor.run([lambda: (42, 1.0)])
            return inner[0].value[0], 1.0

        outcomes = executor.run([outer])
        assert outcomes[0].value == (42, 1.0)
        executor.close()


class TestProcess:
    def test_picklable_tasks_cross_the_boundary(self):
        executor = get_executor("process")
        with perf.collect() as stats:
            outcomes = executor.run(_tasks(3))
        assert [outcome.value[0] for outcome in outcomes] == [0, 1, 4]
        assert stats.counter("bsp.backend.process.inline") == 0

    def test_unpicklable_tasks_fall_back_inline(self):
        executor = get_executor("process")
        witness = []  # closure over a local: the task cannot pickle

        def local_task():
            witness.append(True)
            return "ran here", 1.0

        with pytest.raises(Exception):
            pickle.dumps(local_task)
        with perf.collect() as stats:
            outcomes = executor.run([local_task])
        assert outcomes[0].value == ("ran here", 1.0)
        assert witness == [True]  # side effect landed in this process
        assert stats.counter("bsp.backend.process.inline") == 1


class TestRegistry:
    def test_shared_instances(self):
        assert get_executor("thread") is get_executor("thread")
        assert get_executor("seq") is get_executor("sequential")
        assert get_executor("processes") is get_executor("process")

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_executor("gpu")

    def test_machine_accepts_executor(self):
        machine = BspMachine(BspParams(p=2), executor=get_executor("thread"))
        assert machine.executor.name == "thread"
        machine.use_backend("seq")
        assert machine.executor.name == "seq"
