"""Tests for the pluggable execution backends (repro.bsp.executor)."""

from __future__ import annotations

import pickle
from functools import partial

import pytest

from repro import perf
from repro.bsp.executor import (
    BACKENDS,
    ProcessExecutor,
    SequentialExecutor,
    ThreadExecutor,
    get_executor,
)
from repro.bsp.machine import BspMachine
from repro.bsp.params import BspParams


def _square_task(i):
    """Module-level, so the process backend can actually pickle it."""
    return i * i, 1.0


def _boom_task():
    raise RuntimeError("boom")


def _pick_task(items, i):
    """Module-level partial target sharing ``items`` across tasks."""
    return items[i], 1.0


def _tasks(p):
    return [partial(_square_task, i) for i in range(p)]


@pytest.fixture(params=BACKENDS)
def executor(request):
    return get_executor(request.param)


class TestAllBackends:
    def test_values_in_task_order(self, executor):
        outcomes = executor.run(_tasks(5))
        assert [outcome.value for outcome in outcomes] == [
            (i * i, 1.0) for i in range(5)
        ]
        assert all(outcome.error is None for outcome in outcomes)

    def test_timings_are_measured(self, executor):
        outcomes = executor.run(_tasks(3))
        assert all(outcome.seconds >= 0.0 for outcome in outcomes)

    def test_errors_are_reported_per_task(self, executor):
        outcomes = executor.run([partial(_square_task, 0), _boom_task])
        assert outcomes[0].error is None
        assert isinstance(outcomes[1].error, RuntimeError)

    def test_empty_task_list(self, executor):
        assert executor.run([]) == []


class TestSequential:
    def test_fails_fast(self):
        ran = []

        def record(i):
            ran.append(i)
            return i, 1.0

        def boom():
            raise RuntimeError("stop here")

        outcomes = SequentialExecutor().run(
            [partial(record, 0), boom, partial(record, 2)]
        )
        # The task after the failure never ran: exactly the historical
        # in-line semantics the other backends are compared against.
        assert ran == [0]
        assert outcomes[2].skipped


class TestThread:
    def test_reentrant_submission_runs_inline(self):
        # A task that itself opens a computation phase must not deadlock
        # the pool (it runs inline and is rejected by downstream checks).
        executor = ThreadExecutor(max_workers=1)

        def outer():
            inner = executor.run([lambda: (42, 1.0)])
            return inner[0].value[0], 1.0

        outcomes = executor.run([outer])
        assert outcomes[0].value == (42, 1.0)
        executor.close()


class TestProcess:
    def test_picklable_tasks_cross_the_boundary(self):
        executor = get_executor("process")
        with perf.collect() as stats:
            outcomes = executor.run(_tasks(3))
        assert [outcome.value[0] for outcome in outcomes] == [0, 1, 4]
        assert stats.counter("bsp.backend.process.inline") == 0

    def test_unpicklable_tasks_fall_back_inline(self):
        executor = get_executor("process")
        witness = []  # closure over a local: the task cannot pickle

        def local_task():
            witness.append(True)
            return "ran here", 1.0

        with pytest.raises(Exception):
            pickle.dumps(local_task)
        with perf.collect() as stats:
            outcomes = executor.run([local_task])
        assert outcomes[0].value == ("ran here", 1.0)
        assert witness == [True]  # side effect landed in this process
        assert stats.counter("bsp.backend.process.inline") == 1

    def test_shared_task_parts_are_pickled_once(self):
        # The tasks of one phase share their function and one big
        # argument (the evaluator's closure environment, here a tuple);
        # each shared object must be pickled once and its blob reused.
        executor = get_executor("process")
        shared = tuple(range(100))
        tasks = [partial(_pick_task, shared, i) for i in range(4)]
        with perf.collect() as stats:
            outcomes = executor.run(tasks)
        assert [outcome.value[0] for outcome in outcomes] == [0, 1, 2, 3]
        assert stats.counter("bsp.backend.process.inline") == 0
        # 6 misses: _pick_task, shared, and the four distinct indices;
        # 6 hits: _pick_task and shared reused by tasks 1..3.
        assert stats.counter("bsp.backend.process.pickle_cache_miss") == 6
        assert stats.counter("bsp.backend.process.pickle_cache_hit") == 6

    def test_part_pickling_preserves_errors(self):
        executor = get_executor("process")
        outcomes = executor.run(
            [partial(_pick_task, (1, 2), 0), partial(_pick_task, (1, 2), 9)]
        )
        assert outcomes[0].error is None
        assert isinstance(outcomes[1].error, IndexError)


class TestRegistry:
    def test_shared_instances(self):
        assert get_executor("thread") is get_executor("thread")
        assert get_executor("seq") is get_executor("sequential")
        assert get_executor("processes") is get_executor("process")

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_executor("gpu")

    def test_machine_accepts_executor(self):
        machine = BspMachine(BspParams(p=2), executor=get_executor("thread"))
        assert machine.executor.name == "thread"
        machine.use_backend("seq")
        assert machine.executor.name == "seq"


class _ReduceBomb:
    """A callable whose *pickling itself* raises — not merely an
    unpicklable shape, but an unexpected serialization failure."""

    def __init__(self, i):
        self.i = i

    def __call__(self):
        return self.i * 2, 1.0

    def __reduce__(self):
        raise RuntimeError("pickling went sideways")


def _die_once(sentinel, i):
    """Kill the hosting pool worker the first time, succeed after."""
    import os

    if not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8") as handle:
            handle.write("died")
        os._exit(1)
    return i + 100, 1.0


class TestProcessFallbackErrors:
    """Satellite 1: the pickling probe must never swallow exceptions."""

    def test_unexpected_pickle_failure_is_recorded_not_discarded(self):
        executor = get_executor("process")
        with perf.collect() as stats:
            outcomes = executor.run([_ReduceBomb(3)])
        # The task still runs (inline fallback keeps the machine going)...
        assert outcomes[0].value == (6, 1.0)
        assert outcomes[0].error is None
        # ...but the cause is recorded on the outcome and counted, not
        # silently dropped as the old bare ``except Exception: pass`` did.
        assert "RuntimeError" in outcomes[0].fallback_error
        assert "pickling went sideways" in outcomes[0].fallback_error
        assert stats.counter("bsp.backend.process.fallback_error") == 1
        assert stats.counter("bsp.backend.process.inline") == 1

    def test_ordinary_unpicklable_fallback_is_not_an_error(self):
        executor = get_executor("process")
        witness = []

        def local_task():
            witness.append(True)
            return "ok", 1.0

        with perf.collect() as stats:
            outcomes = executor.run([local_task])
        assert outcomes[0].value == ("ok", 1.0)
        # A closure is unpicklable *by design*: the cause is still
        # recorded on the outcome (nothing is ever discarded), but it is
        # a routine inline fallback, not an unexpected fallback error.
        assert "local_task" in outcomes[0].fallback_error
        assert stats.counter("bsp.backend.process.fallback_error") == 0
        assert stats.counter("bsp.backend.process.inline") == 1


class TestBrokenPoolRecovery:
    """Satellite 4: a process-pool worker dying mid-run must either be
    retried on a fresh pool (policy armed) or surface as an atomic
    SuperstepFault (policy off) — never a stuck machine."""

    def _machine(self, retry=None):
        from repro.bsp.faults import RetryPolicy

        executor = ProcessExecutor()
        machine = BspMachine(
            BspParams(p=2), executor=executor, retry=retry
        )
        return machine, executor

    def test_retry_policy_recovers_on_a_fresh_pool(self, tmp_path):
        from repro.bsp.faults import RetryPolicy

        machine, executor = self._machine(retry=RetryPolicy(max_attempts=3))
        sentinel = str(tmp_path / "died-once")
        try:
            with perf.collect() as stats:
                values = machine.run_superstep(
                    [partial(_die_once, sentinel, i) for i in range(2)]
                )
            assert values == [100, 101]
            assert stats.counter("bsp.backend.process.broken_pool") >= 1
            assert stats.counter("bsp.retry.recovered") == 1
        finally:
            executor.close()

    def test_no_policy_raises_superstep_fault_atomically(self, tmp_path):
        from repro.bsp.faults import SuperstepFault

        machine, executor = self._machine(retry=None)
        machine.exchange(
            [[0, 2], [0, 0]], payloads={(0, 1): "kept"}, label="pre"
        )
        before = machine.state_fingerprint()
        sentinel = str(tmp_path / "dies")
        try:
            with pytest.raises(SuperstepFault) as excinfo:
                machine.run_superstep(
                    [partial(_die_once, sentinel, i) for i in range(2)]
                )
            assert excinfo.value.phase == "compute"
            assert any(row.status == "pool" for row in excinfo.value.table)
            # Nothing committed, mailboxes intact.
            assert machine.state_fingerprint() == before
            assert machine.receive(1, 0) == "kept"
        finally:
            executor.close()
