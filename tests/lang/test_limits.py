"""Tests for the recursion-headroom guard and deep programs."""

from __future__ import annotations

import sys

import pytest

from repro.core.infer import infer
from repro.core.types import render_type
from repro.lang.limits import deep_recursion
from repro.lang.parser import parse_expression
from repro.semantics.bigstep import run


class TestDeepRecursion:
    def test_raises_and_restores(self):
        before = sys.getrecursionlimit()
        with deep_recursion(before + 1000):
            assert sys.getrecursionlimit() == before + 1000
        assert sys.getrecursionlimit() == before

    def test_never_lowers(self):
        before = sys.getrecursionlimit()
        with deep_recursion(10):
            assert sys.getrecursionlimit() == before

    def test_restores_on_exception(self):
        before = sys.getrecursionlimit()
        with pytest.raises(RuntimeError):
            with deep_recursion(before + 1000):
                raise RuntimeError("boom")
        assert sys.getrecursionlimit() == before


class TestDeepPrograms:
    def _tower(self, n: int) -> str:
        lines = [
            f"let x{i} = x{i-1} + 1 in" if i else "let x0 = 0 in"
            for i in range(n)
        ]
        lines.append(f"x{n-1}")
        return "\n".join(lines)

    def test_parse_500_deep(self):
        expr = parse_expression(self._tower(500))
        assert expr.size() > 1000

    def test_infer_500_deep(self):
        ct = infer(parse_expression(self._tower(500)))
        assert render_type(ct.type) == "int"

    def test_evaluate_500_deep(self):
        assert run(parse_expression(self._tower(500)), 1) == 499

    def test_deeply_nested_parens(self):
        source = "(" * 300 + "42" + ")" * 300
        assert run(parse_expression(source), 1) == 42

    def test_deep_application_chain(self):
        source = "let f = fun x -> x + 1 in " + "f (" * 200 + "0" + ")" * 200
        assert run(parse_expression(source), 1) == 200
