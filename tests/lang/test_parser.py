"""Tests for the mini-BSML parser (grammar of Figure 3 plus sugar)."""

from __future__ import annotations

import pytest

from repro.lang.ast import (
    UNIT,
    App,
    Const,
    Fun,
    If,
    IfAt,
    Let,
    Pair,
    Prim,
    Tuple,
    Var,
)
from repro.lang.errors import ParseError
from repro.lang.parser import parse_definitions, parse_expression, parse_program


def binop(op, left, right):
    return App(Prim(op), Pair(left, right))


class TestAtoms:
    def test_integer(self):
        assert parse_expression("7") == Const(7)

    def test_true_false(self):
        assert parse_expression("true") == Const(True)
        assert parse_expression("false") == Const(False)

    def test_unit(self):
        assert parse_expression("()") == Const(UNIT)

    def test_variable(self):
        assert parse_expression("x") == Var("x")

    def test_primitive(self):
        assert parse_expression("mkpar") == Prim("mkpar")
        assert parse_expression("fst") == Prim("fst")

    def test_parenthesized(self):
        assert parse_expression("(((5)))") == Const(5)


class TestApplication:
    def test_simple(self):
        assert parse_expression("f x") == App(Var("f"), Var("x"))

    def test_left_associative(self):
        assert parse_expression("f x y") == App(App(Var("f"), Var("x")), Var("y"))

    def test_application_binds_tighter_than_operators(self):
        assert parse_expression("f x + 1") == binop(
            "+", App(Var("f"), Var("x")), Const(1)
        )

    def test_nc_applied_to_unit(self):
        assert parse_expression("nc ()") == App(Prim("nc"), Const(UNIT))


class TestOperators:
    def test_addition_desugars_to_pair_application(self):
        assert parse_expression("1 + 2") == binop("+", Const(1), Const(2))

    def test_precedence_mul_over_add(self):
        assert parse_expression("1 + 2 * 3") == binop(
            "+", Const(1), binop("*", Const(2), Const(3))
        )

    def test_left_associativity_of_subtraction(self):
        assert parse_expression("10 - 3 - 2") == binop(
            "-", binop("-", Const(10), Const(3)), Const(2)
        )

    def test_mod(self):
        assert parse_expression("a mod b") == binop("mod", Var("a"), Var("b"))

    def test_comparison_below_arithmetic(self):
        assert parse_expression("1 + 1 = 2") == binop(
            "=", binop("+", Const(1), Const(1)), Const(2)
        )

    def test_boolean_precedence(self):
        # && binds tighter than ||
        assert parse_expression("a || b && c") == binop(
            "||", Var("a"), binop("&&", Var("b"), Var("c"))
        )

    def test_comparison_inside_booleans(self):
        assert parse_expression("x < 1 && y > 2") == binop(
            "&&", binop("<", Var("x"), Const(1)), binop(">", Var("y"), Const(2))
        )

    def test_unary_minus(self):
        assert parse_expression("-x") == binop("-", Const(0), Var("x"))

    def test_operator_section_in_parens(self):
        assert parse_expression("(+)") == Prim("+")


class TestBinders:
    def test_fun(self):
        assert parse_expression("fun x -> x") == Fun("x", Var("x"))

    def test_fun_multi_param_curries(self):
        assert parse_expression("fun a b -> a") == Fun("a", Fun("b", Var("a")))

    def test_fun_body_extends_right(self):
        assert parse_expression("fun x -> x + 1") == Fun(
            "x", binop("+", Var("x"), Const(1))
        )

    def test_let(self):
        assert parse_expression("let x = 1 in x") == Let("x", Const(1), Var("x"))

    def test_let_function_sugar(self):
        assert parse_expression("let f a b = a in f") == Let(
            "f", Fun("a", Fun("b", Var("a"))), Var("f")
        )

    def test_nested_lets(self):
        expr = parse_expression("let a = 1 in let b = 2 in a")
        assert expr == Let("a", Const(1), Let("b", Const(2), Var("a")))

    def test_cannot_bind_primitive_name(self):
        with pytest.raises(ParseError, match="cannot rebind"):
            parse_expression("fun mkpar -> mkpar")
        with pytest.raises(ParseError, match="cannot rebind"):
            parse_expression("let put = 1 in put")


class TestConditionals:
    def test_if(self):
        assert parse_expression("if b then 1 else 2") == If(
            Var("b"), Const(1), Const(2)
        )

    def test_ifat(self):
        assert parse_expression("if v at 0 then 1 else 2") == IfAt(
            Var("v"), Const(0), Const(1), Const(2)
        )

    def test_ifat_with_expression_index(self):
        expr = parse_expression("if v at n + 1 then a else b")
        assert isinstance(expr, IfAt)
        assert expr.proc == binop("+", Var("n"), Const(1))

    def test_if_condition_can_be_complex(self):
        expr = parse_expression("if x < 2 && y = 0 then 1 else 2")
        assert isinstance(expr, If)

    def test_dangling_else_is_required(self):
        with pytest.raises(ParseError, match="expected 'else'"):
            parse_expression("if a then b")


class TestPairsAndTuples:
    def test_pair(self):
        assert parse_expression("(1, 2)") == Pair(Const(1), Const(2))

    def test_pair_without_parens(self):
        assert parse_expression("1, 2") == Pair(Const(1), Const(2))

    def test_triple_is_tuple(self):
        assert parse_expression("(1, 2, 3)") == Tuple((Const(1), Const(2), Const(3)))

    def test_nested_pairs(self):
        assert parse_expression("((1, 2), 3)") == Pair(
            Pair(Const(1), Const(2)), Const(3)
        )

    def test_pair_of_applications(self):
        expr = parse_expression("(f x, g y)")
        assert expr == Pair(App(Var("f"), Var("x")), App(Var("g"), Var("y")))


class TestPrograms:
    def test_definitions_only(self):
        defs = parse_definitions("let one = 1\nlet two = 2")
        assert defs == [("one", Const(1)), ("two", Const(2))]

    def test_program_with_final_expression(self):
        expr = parse_program("let x = 1 ;; x + 1")
        assert expr == Let("x", Const(1), binop("+", Var("x"), Const(1)))

    def test_bare_expression_program(self):
        assert parse_program("41 + 1") == binop("+", Const(41), Const(1))

    def test_let_in_as_whole_program(self):
        expr = parse_program("let x = 1 in x")
        assert expr == Let("x", Const(1), Var("x"))

    def test_definition_with_params(self):
        defs = parse_definitions("let add a b = a + b")
        assert defs == [("add", Fun("a", Fun("b", binop("+", Var("a"), Var("b")))))]

    def test_double_semicolons_are_separators(self):
        expr = parse_program("let x = 1 ;; let y = 2 ;; x + y")
        assert isinstance(expr, Let)

    def test_program_without_final_expression_raises(self):
        with pytest.raises(ParseError, match="no final expression"):
            parse_program("let x = 1")

    def test_definitions_reject_trailing_expression(self):
        with pytest.raises(ParseError, match="trailing expression"):
            parse_definitions("let x = 1 ;; x")


class TestErrors:
    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse_expression("(1 + 2")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="unexpected"):
            parse_expression("1 )")

    def test_missing_arrow(self):
        with pytest.raises(ParseError, match="expected '->'"):
            parse_expression("fun x x")

    def test_empty_input(self):
        with pytest.raises(ParseError, match="expected an expression"):
            parse_expression("")

    def test_keyword_as_atom(self):
        with pytest.raises(ParseError):
            parse_expression("1 + in")

    def test_error_has_location(self):
        with pytest.raises(ParseError) as error:
            parse_expression("fun 3 -> x")
        assert error.value.loc is not None


class TestLocations:
    def test_expression_nodes_carry_locations(self):
        expr = parse_expression("let x = 1 in x")
        assert expr.loc is not None
        assert expr.loc.line == 1

    def test_locations_do_not_affect_equality(self):
        left = parse_expression("  1 + 2")
        right = parse_expression("1 + 2")
        assert left == right
