"""Tests for the prelude: parsing, dependency filtering, linking."""

from __future__ import annotations

import pytest

from repro.lang.ast import Let, Var
from repro.lang.parser import parse_expression
from repro.lang.prelude import (
    PRELUDE_DEFINITIONS,
    needed_definitions,
    prelude_asts,
    prelude_map,
    with_prelude,
)
from repro.lang.substitution import free_vars


class TestParsing:
    def test_all_definitions_parse(self):
        assert len(prelude_asts()) == len(PRELUDE_DEFINITIONS)

    def test_expected_names_present(self):
        names = {name for name, _ in prelude_asts()}
        assert {"replicate", "parfun", "bcast", "shift", "totex", "fold", "scan"} <= names

    def test_map_matches_list(self):
        assert set(prelude_map()) == {name for name, _ in prelude_asts()}

    def test_definitions_only_use_earlier_names(self):
        # The prelude is in dependency order: each body's free variables
        # are primitives or previously defined names.
        seen = set()
        for name, body in prelude_asts():
            assert free_vars(body) <= seen, f"{name} uses a later definition"
            seen.add(name)


class TestNeededDefinitions:
    def test_no_reference_no_definitions(self):
        assert needed_definitions(parse_expression("1 + 2")) == []

    def test_direct_reference(self):
        names = [n for n, _ in needed_definitions(parse_expression("replicate 1"))]
        assert names == ["replicate"]

    def test_transitive_dependencies(self):
        names = [n for n, _ in needed_definitions(parse_expression("bcast 0 v"))]
        # bcast uses parfun which uses replicate.
        assert names == ["replicate", "parfun", "bcast"]

    def test_fold_pulls_totex(self):
        names = [n for n, _ in needed_definitions(parse_expression("fold f v"))]
        assert "totex" in names
        assert names.index("totex") < names.index("fold")


class TestWithPrelude:
    def test_local_program_is_untouched(self):
        expr = parse_expression("1 + 2")
        assert with_prelude(expr) == expr

    def test_wrapping_produces_lets(self):
        wrapped = with_prelude(parse_expression("replicate 7"))
        assert isinstance(wrapped, Let)
        assert wrapped.name == "replicate"

    def test_wrapped_program_is_closed(self):
        wrapped = with_prelude(parse_expression("bcast 0 (replicate 1)"))
        assert free_vars(wrapped) == frozenset()

    def test_only_forces_inclusion(self):
        wrapped = with_prelude(Var("scan"), only=("scan",))
        assert free_vars(wrapped) == frozenset()

    def test_only_rejects_unknown_names(self):
        with pytest.raises(KeyError, match="unknown prelude"):
            with_prelude(parse_expression("1"), only=("nonexistent",))


class TestPreludeSemantics:
    """End-to-end sanity: the prelude functions compute what they claim."""

    @pytest.mark.parametrize(
        "source,p,expected",
        [
            ("replicate 9", 3, [9, 9, 9]),
            ("procs", 3, [0, 1, 2]),
            ("get 1 (mkpar (fun i -> i * 3))", 4, [3, 3, 3, 3]),
            ("first (mkpar (fun i -> i + 5))", 3, [5, 5, 5]),
            ("last (mkpar (fun i -> i + 5))", 3, [7, 7, 7]),
            ("scanex (fun ab -> fst ab + snd ab) 0 (mkpar (fun i -> i + 1))",
             4, [0, 1, 3, 6]),
            ("scanex (fun ab -> fst ab * snd ab) 1 (mkpar (fun i -> i + 1))",
             4, [1, 1, 2, 6]),
            ("parfun (fun f -> if isnc (f 1) then 0 - 1 else f 1)"
             " (gather 0 (mkpar (fun i -> i * 5)))", 3, [5, -1, -1]),
            ("parfun (fun x -> x * 2) (mkpar (fun i -> i))", 4, [0, 2, 4, 6]),
            ("parfun2 (fun a -> fun b -> a - b) (mkpar (fun i -> 10)) (mkpar (fun i -> i))",
             3, [10, 9, 8]),
            ("applyat 1 (fun x -> 0 - x) (fun x -> x) (mkpar (fun i -> i + 1))",
             3, [1, -2, 3]),
            ("bcast 1 (mkpar (fun i -> i * 5))", 4, [5, 5, 5, 5]),
            ("shift 2 (mkpar (fun i -> i))", 4, [2, 3, 0, 1]),
            ("fold (fun ab -> fst ab * snd ab) (mkpar (fun i -> i + 1))", 4,
             [24, 24, 24, 24]),
            ("scan (fun ab -> fst ab + snd ab) (mkpar (fun i -> i))", 4,
             [0, 1, 3, 6]),
            ("konst 1 2", 1, 1),
            ("compose (fun a -> a + 1) (fun b -> b * 2) 5", 1, 11),
        ],
    )
    def test_prelude_behaviour(self, source, p, expected):
        from repro.lang.parser import parse_program
        from repro.semantics.bigstep import run
        from repro.semantics.values import to_python

        expr = with_prelude(parse_program(source))
        assert to_python(run(expr, p)) == expected
