"""Tests for free variables, substitution and alpha-equivalence."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.lang.ast import App, Const, Fun, If, Let, Pair, Prim, Var
from repro.lang.parser import parse_expression
from repro.lang.substitution import (
    alpha_equal,
    bound_names,
    free_vars,
    fresh_name,
    rename_apart,
    substitute,
    substitute_many,
)


def parse(source):
    return parse_expression(source)


class TestFreeVars:
    def test_variable_is_free(self):
        assert free_vars(Var("x")) == {"x"}

    def test_constant_has_none(self):
        assert free_vars(Const(3)) == frozenset()

    def test_fun_binds_its_parameter(self):
        assert free_vars(parse("fun x -> x y")) == {"y"}

    def test_let_binds_only_in_body(self):
        # x is free in the bound expression, bound in the body.
        assert free_vars(parse("let x = x in x")) == {"x"}

    def test_let_body_other_vars_free(self):
        assert free_vars(parse("let x = 1 in x + y")) == {"y"}

    def test_shadowing(self):
        assert free_vars(parse("fun x -> fun x -> x")) == frozenset()

    def test_application_unions(self):
        assert free_vars(parse("f (g x)")) == {"f", "g", "x"}

    def test_ifat_collects_all_positions(self):
        assert free_vars(parse("if a at b then c else d")) == {"a", "b", "c", "d"}


class TestFreeVarsMemo:
    def test_repeated_calls_hit_the_cache(self):
        from repro import perf

        expr = parse("fun x -> x + y")
        with perf.collect() as stats:
            first = free_vars(expr)
            second = free_vars(expr)
            third = free_vars(expr)
        assert first is second is third  # the cached frozenset itself
        assert first == {"y"}
        assert stats.counter("lang.free_vars.hit") >= 2
        misses = stats.counter("lang.free_vars.miss")
        assert 0 < misses <= expr.size()

    def test_subterms_are_cached_by_the_outer_walk(self):
        from repro import perf

        expr = parse("(fun x -> x + y) (y + z)")
        free_vars(expr)  # populates every node's cache
        with perf.collect() as stats:
            assert free_vars(expr.fn) == {"y"}
            assert free_vars(expr.arg) == {"y", "z"}
        assert stats.counter("lang.free_vars.miss") == 0
        assert stats.counter("lang.free_vars.hit") == 2

    def test_substitution_results_are_fresh_nodes(self):
        # substitute() builds new nodes on the rewritten spine, so their
        # (uncached) free-variable sets are computed correctly.
        expr = parse("x + y")
        rewritten = substitute(expr, "x", Const(1))
        assert free_vars(rewritten) == {"y"}
        assert free_vars(expr) == {"x", "y"}


class TestSubstitute:
    def test_variable_hit(self):
        assert substitute(Var("x"), "x", Const(1)) == Const(1)

    def test_variable_miss(self):
        assert substitute(Var("y"), "x", Const(1)) == Var("y")

    def test_shadowed_by_fun(self):
        expr = parse("fun x -> x")
        assert substitute(expr, "x", Const(1)) == expr

    def test_shadowed_by_let(self):
        expr = parse("let x = 2 in x")
        assert substitute(expr, "x", Const(1)) == parse("let x = 2 in x")

    def test_let_bound_part_is_substituted(self):
        expr = parse("let y = x in y")
        assert substitute(expr, "x", Const(1)) == parse("let y = 1 in y")

    def test_capture_avoidance_fun(self):
        # (fun y -> x)[x <- y] must NOT become fun y -> y.
        expr = Fun("y", Var("x"))
        result = substitute(expr, "x", Var("y"))
        assert isinstance(result, Fun)
        assert result.param != "y"
        assert result.body == Var("y")

    def test_capture_avoidance_let(self):
        expr = Let("y", Const(0), Var("x"))
        result = substitute(expr, "x", Var("y"))
        assert isinstance(result, Let)
        assert result.name != "y"
        assert result.body == Var("y")

    def test_capture_avoidance_preserves_meaning(self):
        # ((fun y -> x + y)[x <- y]) 1 applied at y=10 is 10 + 1.
        from repro.semantics.smallstep import evaluate

        expr = substitute(parse("fun y -> x + y"), "x", Const(10))
        assert evaluate(App(expr, Const(1)), 1) == Const(11)

    def test_substitute_inside_parallel_syntax(self):
        expr = parse("mkpar (fun i -> x)")
        result = substitute(expr, "x", Const(9))
        assert result == parse("mkpar (fun i -> 9)")

    def test_substitute_many_requires_closed(self):
        with pytest.raises(ValueError, match="closed"):
            substitute_many(Var("x"), {"x": Var("y")})

    def test_substitute_many(self):
        expr = parse("x + y")
        result = substitute_many(expr, {"x": Const(1), "y": Const(2)})
        assert result == parse("1 + 2")


class TestAlphaEqual:
    def test_identical(self):
        assert alpha_equal(parse("fun x -> x"), parse("fun x -> x"))

    def test_renamed_parameter(self):
        assert alpha_equal(parse("fun x -> x"), parse("fun y -> y"))

    def test_renamed_let(self):
        assert alpha_equal(parse("let a = 1 in a"), parse("let b = 1 in b"))

    def test_different_structure(self):
        assert not alpha_equal(parse("fun x -> x"), parse("fun x -> 1"))

    def test_free_variables_must_match(self):
        assert not alpha_equal(Var("x"), Var("y"))

    def test_mixed_binding_depth(self):
        left = parse("fun x -> fun y -> x")
        right = parse("fun y -> fun x -> y")
        assert alpha_equal(left, right)

    def test_not_confused_by_shadowing(self):
        left = parse("fun x -> fun x -> x")
        right = parse("fun a -> fun b -> a")
        assert not alpha_equal(left, right)

    def test_bound_vs_free_mismatch(self):
        assert not alpha_equal(parse("fun x -> x"), parse("fun x -> y"))


class TestFreshAndRename:
    def test_fresh_name_avoids(self):
        name = fresh_name({"x", "x'1"}, "x")
        assert name not in {"x", "x'1"}

    def test_bound_names(self):
        expr = parse("fun a -> let b = 1 in a")
        assert bound_names(expr) == {"a", "b"}

    def test_rename_apart_keeps_meaning(self):
        from repro.semantics.smallstep import evaluate

        expr = parse("(fun x -> x + 1) 2")
        renamed = rename_apart(expr, avoid={"x"})
        assert "x" not in bound_names(renamed)
        assert evaluate(renamed, 1) == Const(3)

    def test_rename_apart_distinct_binders(self):
        expr = parse("(fun x -> x) ((fun x -> x) 1)")
        renamed = rename_apart(expr, avoid=set())
        names = []
        for node in renamed.walk():
            if isinstance(node, Fun):
                names.append(node.param)
        assert len(names) == len(set(names))


@given(st.integers(min_value=0, max_value=10_000))
def test_substitution_never_changes_other_free_vars(seed):
    from repro.testing.generators import ProgramGenerator

    generator = ProgramGenerator(seed=seed)
    expr = generator.expression(depth=3)
    # Programs are closed; substituting any name is the identity.
    assert substitute(expr, "zzz_unused", Const(1)) == expr
