"""Tests for the mini-BSML lexer."""

from __future__ import annotations

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import KEYWORDS, Token, TokenKind, tokenize


def kinds(source: str):
    return [token.kind for token in tokenize(source)]


def texts(source: str):
    return [token.text for token in tokenize(source)[:-1]]  # drop EOF


class TestBasicTokens:
    def test_empty_input_is_just_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_integer(self):
        tokens = tokenize("42")
        assert tokens[0].kind is TokenKind.INT
        assert tokens[0].text == "42"

    def test_zero(self):
        assert texts("0") == ["0"]

    def test_identifier(self):
        tokens = tokenize("foobar")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].text == "foobar"

    def test_identifier_with_digits_and_primes(self):
        assert texts("x1 y' z_3'") == ["x1", "y'", "z_3'"]

    def test_every_keyword_lexes_as_keyword(self):
        for word in KEYWORDS:
            tokens = tokenize(word)
            assert tokens[0].kind is TokenKind.KEYWORD, word
            assert tokens[0].text == word

    def test_keyword_prefix_is_identifier(self):
        # ``lettuce`` starts with ``let`` but is one identifier.
        tokens = tokenize("lettuce funny")
        assert [t.kind for t in tokens[:-1]] == [TokenKind.IDENT, TokenKind.IDENT]

    def test_mod_is_a_symbol(self):
        tokens = tokenize("a mod b")
        assert tokens[1].kind is TokenKind.SYMBOL
        assert tokens[1].text == "mod"


class TestSymbols:
    @pytest.mark.parametrize(
        "symbol",
        ["->", "<=", ">=", "<>", "&&", "||", "(", ")", ",", "=", "+", "-",
         "*", "/", "<", ">", ";;"],
    )
    def test_each_symbol(self, symbol):
        tokens = tokenize(symbol)
        assert tokens[0].kind is TokenKind.SYMBOL
        assert tokens[0].text == symbol

    def test_maximal_munch_arrow(self):
        # ``->`` must not lex as ``-`` then ``>``.
        assert texts("a->b") == ["a", "->", "b"]

    def test_maximal_munch_leq(self):
        assert texts("a<=b") == ["a", "<=", "b"]

    def test_adjacent_symbols(self):
        assert texts("((x))") == ["(", "(", "x", ")", ")"]


class TestCommentsAndWhitespace:
    def test_comment_is_skipped(self):
        assert texts("1 (* hello *) 2") == ["1", "2"]

    def test_nested_comments(self):
        assert texts("1 (* a (* b *) c *) 2") == ["1", "2"]

    def test_comment_spanning_lines(self):
        assert texts("1 (* line\nline *) 2") == ["1", "2"]

    def test_unterminated_comment_raises(self):
        with pytest.raises(LexError, match="unterminated comment"):
            tokenize("1 (* oops")

    def test_unterminated_nested_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("(* outer (* inner *) still open")

    def test_mixed_whitespace(self):
        assert texts("1\t2\r\n3") == ["1", "2", "3"]


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("ab\n  cd")
        assert (tokens[0].loc.line, tokens[0].loc.column) == (1, 1)
        assert (tokens[1].loc.line, tokens[1].loc.column) == (2, 3)

    def test_columns_advance_within_line(self):
        tokens = tokenize("a b c")
        assert [t.loc.column for t in tokens[:-1]] == [1, 3, 5]

    def test_comment_advances_position(self):
        tokens = tokenize("(* x *)\nz")
        assert tokens[0].loc.line == 2


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("a # b")

    def test_malformed_number(self):
        with pytest.raises(LexError, match="malformed number"):
            tokenize("12abc")

    def test_error_carries_location(self):
        with pytest.raises(LexError) as error:
            tokenize("ok\n  @")
        assert error.value.loc.line == 2


class TestTokenDisplay:
    def test_token_str(self):
        token = tokenize("foo")[0]
        assert str(token) == "'foo'"

    def test_eof_str(self):
        token = tokenize("")[0]
        assert "end of input" in str(token)
