"""Tests for the pretty-printer, centred on the re-parse round-trip."""

from __future__ import annotations

import pytest

from repro.lang.ast import App, Const, Fun, Pair, ParVec, Prim, Var
from repro.lang.parser import parse_expression
from repro.lang.pretty import pretty
from repro.testing.generators import ProgramGenerator, well_typed_corpus

ROUND_TRIP_SOURCES = [
    "1 + 2 * 3",
    "(1 + 2) * 3",
    "f x y",
    "f (x y)",
    "fun a b c -> a (b c)",
    "let x = fun y -> y in x x",
    "if a then b else c",
    "if v at 0 then x else y",
    "(1, (2, 3))",
    "((1, 2), 3)",
    "(1, 2, 3)",
    "a || b && c",
    "(a || b) && c",
    "1 - (2 - 3)",
    "nc ()",
    "isnc (nc ())",
    "fst (mkpar (fun i -> i), 1)",
    "mkpar (fun pid -> if pid = 0 then 1 else 0)",
    "put (mkpar (fun i -> fun dst -> if dst = i then i else nc ()))",
    "0 - 5",
    "fun x -> (x, x)",
    "(fun x -> x) 1",
    "let apply2 = fun f v -> apply (f, v) in apply2",
]


@pytest.mark.parametrize("source", ROUND_TRIP_SOURCES)
def test_round_trip(source):
    expr = parse_expression(source)
    assert parse_expression(pretty(expr)) == expr


@pytest.mark.parametrize("source", well_typed_corpus())
def test_round_trip_on_corpus(source):
    from repro.lang.parser import parse_program

    expr = parse_program(source)
    assert parse_expression(pretty(expr)) == expr


@pytest.mark.parametrize("seed", range(40))
def test_round_trip_on_random_programs(seed):
    expr = ProgramGenerator(seed=seed).expression(depth=4)
    assert parse_expression(pretty(expr)) == expr


class TestSpecificRenderings:
    def test_flat_curried_fun(self):
        assert pretty(parse_expression("fun a -> fun b -> a")) == "fun a b -> a"

    def test_operator_atom_gets_parens(self):
        assert pretty(Prim("+")) == "(+)"

    def test_minimal_parens_for_precedence(self):
        assert pretty(parse_expression("1 + 2 * 3")) == "1 + 2 * 3"
        assert pretty(parse_expression("(1 + 2) * 3")) == "(1 + 2) * 3"

    def test_application_argument_parens(self):
        assert pretty(parse_expression("f (g x)")) == "f (g x)"

    def test_parallel_vector_renders_with_angle_brackets(self):
        vec = ParVec((Const(1), Const(2)))
        assert pretty(vec) == "<1, 2>"

    def test_booleans(self):
        assert pretty(Const(True)) == "true"
        assert pretty(Const(False)) == "false"

    def test_nested_pair_right(self):
        assert pretty(parse_expression("(1, (2, 3))")) == "1, (2, 3)"

    def test_if_at(self):
        source = "if v at 0 then x else y"
        assert pretty(parse_expression(source)) == source


class TestDeepRendering:
    def test_deep_let_tower_renders(self):
        # Regression: pretty recurses over the AST and used to blow the
        # default frame limit on deep programs (minibsml trace prints
        # every intermediate state of exactly such towers).
        source = "".join(f"let x{i} = {i} in " for i in range(1500)) + "x0"
        text = pretty(parse_expression(source))
        assert text.startswith("let x0 = 0 in")
        assert text.endswith("x0")
