"""Tests for the prelude-as-environment (library-module typing)."""

from __future__ import annotations

import pytest

from repro.core.errors import NestingError, UnboundVariableError
from repro.core.infer import infer
from repro.core.prelude_env import prelude_env
from repro.core.types import render_type
from repro.lang.parser import parse_expression as parse
from repro.lang.prelude import PRELUDE_DEFINITIONS


class TestConstruction:
    def test_every_definition_gets_a_scheme(self):
        env = prelude_env()
        for name, _ in PRELUDE_DEFINITIONS:
            assert env.lookup(name) is not None, name

    def test_cached_instance(self):
        assert prelude_env() is prelude_env()

    def test_schemes_are_closed(self):
        for name, scheme in prelude_env().items():
            assert scheme.free_vars() == frozenset(), name


class TestLibraryStyleTyping:
    def test_local_program_unaffected_by_global_library(self):
        # The motivating case: let-wrapping the whole prelude around a
        # local program would trip the (Let) rule; environment linking
        # does not.
        ct = infer(parse("1 + 2"), prelude_env())
        assert render_type(ct.type) == "int"

    def test_global_program_uses_library(self):
        ct = infer(parse("bcast 0 (mkpar (fun i -> i))"), prelude_env())
        assert render_type(ct.type) == "int par"

    def test_instantiations_are_independent(self):
        source = (
            "(parfun (fun x -> x + 1) (mkpar (fun i -> i)),"
            " parfun (fun b -> not b) (mkpar (fun i -> true)))"
        )
        ct = infer(parse(source), prelude_env())
        assert render_type(ct.type) == "int par * bool par"

    def test_library_constraints_still_bite(self):
        with pytest.raises(NestingError):
            infer(parse("replicate (mkpar (fun i -> i))"), prelude_env())

    def test_unknown_names_still_unbound(self):
        with pytest.raises(UnboundVariableError):
            infer(parse("no_such_function 1"), prelude_env())
