"""Regression: hash-cons pools stay bounded over a server lifetime.

The weak intern pools of :mod:`repro.core.types` only reclaim a node
once *nothing* references it — and with ``functools.lru_cache`` on the
solver functions, cache entries held strong references to every key
node ever solved, so serving a stream of distinct programs grew the
pools without bound.  The :class:`repro.perf.memo.BoundedMemo` caches
evict, releasing their key references; these tests run 1k distinct
programs through inference with deliberately small caches and assert
the pools stay bounded, evictions are counted, and hash-consing
identity still holds for live nodes afterwards.
"""

from __future__ import annotations

import gc

import pytest

from repro import perf
from repro.core.constraints import SOLVER_CACHE_SIZE
from repro.core.infer import infer
from repro.core.types import BOOL, INT, TArrow, intern_pool_stats
from repro.lang.parser import parse_program

SMALL_CACHE = 128
PROGRAMS = 1000


@pytest.fixture
def small_solver_caches():
    """Shrink every registered solver cache for the test, then restore."""
    perf.resize_registered(SMALL_CACHE, prefix="constraints.")
    perf.clear_caches()
    try:
        yield
    finally:
        perf.resize_registered(SOLVER_CACHE_SIZE, prefix="constraints.")
        perf.clear_caches()


def _distinct_program(i: int) -> str:
    # The solver caches key on interned *type and constraint nodes*, so
    # distinct literals alone all map to the same ground keys.  A tuple
    # whose int/bool leaf pattern encodes the bits of ``i`` has a unique
    # type shape per program, and ``mkpar`` forces a locality check over
    # that shape — every program pushes genuinely new keys through the
    # locality/satisfiability caches.
    leaves = ["1" if (i >> b) & 1 else "true" for b in range(10)]
    return f"mkpar (fun p -> ({', '.join(leaves)}, {i}))"


def test_pools_bounded_across_1k_distinct_programs(small_solver_caches):
    evictions_before = {
        name: getattr(fn, "evictions", 0)
        for name, fn in perf.registered_caches().items()
    }

    for i in range(PROGRAMS):
        infer(parse_program(_distinct_program(i)))

    gc.collect()
    stats = intern_pool_stats()
    total_live = sum(stats.values())

    # Five solver caches of SMALL_CACHE entries each; every cached key or
    # value can pin a handful of nodes (an entry's constraint/type plus
    # children), and the prelude pins a fixed base set.  The bound below
    # is loose but orders of magnitude under the unbounded growth this
    # regression guards against (1k programs x ~10 nodes = ~10k+).
    budget = 5 * SMALL_CACHE * 8 + 500
    assert total_live < budget, f"intern pools grew to {total_live}: {stats}"

    evicted = sum(
        getattr(fn, "evictions", 0) - evictions_before.get(name, 0)
        for name, fn in perf.registered_caches().items()
    )
    assert evicted > 0, "expected solver caches to evict under a small bound"


def test_interning_identity_survives_eviction(small_solver_caches):
    for i in range(PROGRAMS):
        infer(parse_program(_distinct_program(i)))
    gc.collect()
    # Live nodes are still hash-consed: reconstructing a structure yields
    # the pooled representative, even after heavy cache churn.
    assert TArrow(INT, BOOL) is TArrow(INT, BOOL)
    a = TArrow(TArrow(INT, INT), BOOL)
    b = TArrow(TArrow(INT, INT), BOOL)
    assert a is b
    assert a.domain is TArrow(INT, INT)


def test_eviction_counters_surface_in_cache_reports(small_solver_caches):
    with perf.collect() as stats:
        for i in range(PROGRAMS // 2):
            infer(parse_program(_distinct_program(i)))
    reports = {r.name: r for r in stats.cache_reports()}
    assert any(r.evictions > 0 for r in reports.values()), (
        "expected eviction deltas in cache reports: "
        + ", ".join(f"{n}={r.evictions}" for n, r in reports.items())
    )
    rendered = stats.render()
    assert "evicted" in rendered
