"""Tests for constraint pruning (Davis-Putnam existential elimination).

The key property: pruning is an *exact projection* — for every assignment
of the observable atoms, the pruned constraint is satisfiable exactly when
the original constraint (extended over the hidden atoms) is.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.constraints import (
    FALSE,
    TRUE,
    CLoc,
    conj,
    constraint_atoms,
    evaluate,
    imp,
    is_satisfiable,
)
from repro.core.normalize import (
    eliminate_variable,
    propagate_facts,
    prune_constrained,
    prune_constraint,
)
from repro.core.schemes import ConstrainedType
from repro.core.types import INT, TVar


class TestEliminateVariable:
    def test_resolution(self):
        # (a => h) and (h => goal-False): eliminating h gives (a => False).
        clauses = [(frozenset({"a"}), "h"), (frozenset({"h"}), None)]
        result = eliminate_variable(clauses, "h")
        assert result == [(frozenset({"a"}), None)]

    def test_fact_propagates(self):
        clauses = [(frozenset(), "h"), (frozenset({"h"}), "b")]
        result = eliminate_variable(clauses, "h")
        assert result == [(frozenset(), "b")]

    def test_unrelated_clauses_survive(self):
        clauses = [(frozenset({"a"}), "b"), (frozenset(), "h")]
        result = eliminate_variable(clauses, "h")
        assert (frozenset({"a"}), "b") in result


class TestPropagateFacts:
    def test_entailed_clause_dropped(self):
        clauses = [(frozenset(), "a"), (frozenset(), "b"), (frozenset({"a"}), "b")]
        result = propagate_facts(clauses)
        assert (frozenset({"a"}), "b") not in result
        assert (frozenset(), "a") in result

    def test_unconditional_goal_is_unsat(self):
        clauses = [(frozenset(), "a"), (frozenset({"a"}), None)]
        assert propagate_facts(clauses) is None

    def test_antecedent_facts_removed(self):
        clauses = [(frozenset(), "a"), (frozenset({"a", "b"}), None)]
        result = propagate_facts(clauses)
        assert (frozenset({"b"}), None) in result


class TestPruneConstraint:
    def test_no_hidden_vars_is_identity_modulo_facts(self):
        constraint = conj(CLoc("a"), CLoc("b"))
        assert prune_constraint(constraint, {"a", "b"}) == constraint

    def test_dead_implication_disappears(self):
        # The paper's example: [int / L(a) => L(b)] with both vars dead.
        constraint = imp(CLoc("a"), CLoc("b"))
        assert prune_constraint(constraint, set()) == TRUE

    def test_chain_through_hidden_var(self):
        # L(a) => L(h), L(h) => L(b): eliminating h keeps L(a) => L(b).
        constraint = conj(imp(CLoc("a"), CLoc("h")), imp(CLoc("h"), CLoc("b")))
        result = prune_constraint(constraint, {"a", "b"})
        assert result == imp(CLoc("a"), CLoc("b"))

    def test_hidden_contradiction_stays_false(self):
        constraint = conj(CLoc("h"), imp(CLoc("h"), FALSE))
        assert prune_constraint(constraint, {"a"}) == FALSE

    def test_hidden_goal_projects(self):
        # L(a) => L(h), L(h) => False  ===  L(a) => False
        constraint = conj(imp(CLoc("a"), CLoc("h")), imp(CLoc("h"), FALSE))
        result = prune_constraint(constraint, {"a"})
        assert result == imp(CLoc("a"), FALSE)

    def test_entailed_implication_removed(self):
        constraint = conj(CLoc("a"), CLoc("b"), imp(CLoc("b"), CLoc("a")))
        assert prune_constraint(constraint, {"a", "b"}) == conj(CLoc("a"), CLoc("b"))


class TestPruneConstrained:
    def test_keeps_type_variables(self):
        ct = ConstrainedType(TVar("a"), conj(CLoc("a"), CLoc("dead")))
        result = prune_constrained(ct)
        assert result.constraint == CLoc("a")

    def test_extra_observable(self):
        ct = ConstrainedType(INT, CLoc("envvar"))
        result = prune_constrained(ct, extra_observable={"envvar"})
        assert result.constraint == CLoc("envvar")


# -- the projection property, exhaustively over small random constraints ----

_atoms = st.sampled_from(["a", "b", "h1", "h2"])
_sides = st.lists(_atoms, min_size=0, max_size=2).map(
    lambda names: conj(*[CLoc(n) for n in names])
)
_clauses = st.one_of(
    _atoms.map(CLoc),
    st.tuples(_sides, st.one_of(_sides, st.just(FALSE))).map(
        lambda pair: imp(pair[0], pair[1])
    ),
)
_constraints = st.lists(_clauses, min_size=0, max_size=5).map(lambda cs: conj(*cs))


@given(_constraints)
def test_projection_is_exact(constraint):
    observable = {"a", "b"}
    pruned = prune_constraint(constraint, observable)
    hidden = sorted(constraint_atoms(constraint) - observable)
    # For every assignment of the observable atoms, satisfiability must
    # agree between `exists hidden. C` and the pruned constraint.
    for mask in range(4):
        assignment = {"a": bool(mask & 1), "b": bool(mask & 2)}
        original_sat = False
        for hidden_mask in range(1 << len(hidden)):
            full = dict(assignment)
            full.update(
                {h: bool(hidden_mask >> i & 1) for i, h in enumerate(hidden)}
            )
            full.setdefault("a", False)
            if evaluate(constraint, full):
                original_sat = True
                break
        pruned_assignment = {
            atom: assignment.get(atom, False)
            for atom in constraint_atoms(pruned) | {"a", "b"}
        }
        assert evaluate_or_ground(pruned, pruned_assignment) == original_sat


def evaluate_or_ground(constraint, assignment):
    if constraint == TRUE:
        return True
    if constraint == FALSE:
        return False
    return evaluate(constraint, assignment)


@given(_constraints)
def test_pruning_preserves_satisfiability(constraint):
    pruned = prune_constraint(constraint, {"a", "b"})
    assert is_satisfiable(constraint) == is_satisfiable(pruned)
