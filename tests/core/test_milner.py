"""Tests for the Milner baseline: what plain ML typing accepts.

The paper's section 2.1 argument, mechanized: classic typing assigns
perfectly reasonable-looking types to every nesting-unsafe program.
"""

from __future__ import annotations

import pytest

from repro.core.errors import TypingError, UnificationError
from repro.core.milner import milner_infer, milner_typechecks
from repro.core.types import has_nested_par, render_type
from repro.lang.parser import parse_expression as parse, parse_program
from repro.lang.prelude import with_prelude
from repro.testing.generators import unsafe_corpus, well_typed_corpus


def milner_type(source: str) -> str:
    return render_type(milner_infer(with_prelude(parse_program(source))))


class TestAcceptsOrdinaryPrograms:
    @pytest.mark.parametrize("source", well_typed_corpus())
    def test_accepts_everything_the_constrained_system_accepts(self, source):
        assert milner_typechecks(with_prelude(parse_program(source)))

    def test_identity(self):
        assert milner_type("fun x -> x") == "'a -> 'a"

    def test_mkpar(self):
        assert milner_type("mkpar (fun i -> i)") == "int par"


class TestAcceptsUnsafePrograms:
    """The whole point of the paper: these all get past Milner typing."""

    @pytest.mark.parametrize("source", unsafe_corpus())
    def test_accepts_the_entire_unsafe_corpus(self, source):
        assert milner_typechecks(with_prelude(parse_program(source)))

    def test_example1_types_at_nested_par(self):
        source = "mkpar (fun pid -> bcast pid (mkpar (fun i -> i)))"
        ty = milner_infer(with_prelude(parse_program(source)))
        assert render_type(ty) == "int par par"
        assert has_nested_par(ty)

    def test_example2_nesting_is_invisible_in_the_type(self):
        source = "mkpar (fun pid -> let this = mkpar (fun i -> i) in pid)"
        ty = milner_infer(with_prelude(parse_program(source)))
        assert render_type(ty) == "int par"
        assert not has_nested_par(ty)  # that's the problem!

    def test_fourth_projection_types_at_int(self):
        ty = milner_infer(parse("fst (1, mkpar (fun i -> i))"))
        assert render_type(ty) == "int"


class TestStillRejectsTypeClashes:
    def test_bad_arithmetic(self):
        assert not milner_typechecks(parse("1 + true"))

    def test_bad_application(self):
        assert not milner_typechecks(parse("1 2"))

    def test_branch_mismatch(self):
        assert not milner_typechecks(parse("if true then 1 else false"))

    def test_unbound(self):
        assert not milner_typechecks(parse("zzz"))


class TestAgreementOnSafePrograms:
    """On programs both systems accept, the inferred types coincide."""

    @pytest.mark.parametrize("source", well_typed_corpus())
    def test_same_types(self, source):
        from repro.core.infer import infer

        expr = with_prelude(parse_program(source))
        ours = render_type(infer(expr).type)
        theirs = render_type(milner_infer(expr))
        assert ours == theirs
