"""Tests for constrained types, schemes and Definitions 1-3."""

from __future__ import annotations

import pytest

from repro.core.constraints import CLoc, FALSE, TRUE, conj, imp, solve
from repro.core.schemes import (
    ConstrainedType,
    Subst,
    TypeEnv,
    TypeScheme,
    generalize,
    instantiate,
    mono,
    scheme_of,
)
from repro.core.types import BOOL, INT, TArrow, TPair, TPar, TVar, free_type_vars


class TestConstrainedType:
    def test_free_vars_union_type_and_constraint(self):
        ct = ConstrainedType(TVar("a"), CLoc("b"))
        assert ct.free_vars() == {"a", "b"}

    def test_display_without_constraint(self):
        assert str(ConstrainedType(INT)) == "int"

    def test_display_with_constraint(self):
        ct = ConstrainedType(TVar("a"), CLoc("a"))
        assert str(ct) == "['a / L('a)]"


class TestScheme:
    def test_scheme_of_quantifies_all_type_vars(self):
        scheme = scheme_of(TArrow(TVar("a"), TVar("b")))
        assert set(scheme.quantified) == {"a", "b"}

    def test_free_vars_exclude_quantified(self):
        scheme = TypeScheme(("a",), ConstrainedType(TArrow(TVar("a"), TVar("b"))))
        assert scheme.free_vars() == {"b"}

    def test_mono_quantifies_nothing(self):
        assert mono(TVar("a")).quantified == ()


class TestDefinition1Substitution:
    """phi([tau/C]) = [phi tau / phi C /\\ AND C_{phi(beta)}]."""

    def test_plain_rewrite(self):
        ct = ConstrainedType(TVar("a"), CLoc("a"))
        result = Subst({"a": INT}).apply_constrained(ct)
        assert result.type == INT
        assert result.constraint == TRUE

    def test_rewrite_to_false(self):
        ct = ConstrainedType(TVar("a"), CLoc("a"))
        result = Subst({"a": TPar(INT)}).apply_constrained(ct)
        assert result.constraint == FALSE

    def test_basic_constraints_of_images_are_added(self):
        # Substituting a := (b par) must add C_(b par) = L(b) even though
        # the original constraint never mentioned locality.
        ct = ConstrainedType(TVar("a"), TRUE)
        result = Subst({"a": TPar(TVar("b"))}).apply_constrained(ct)
        assert result.constraint == CLoc("b")

    def test_fourth_projection_instantiation(self):
        # fst : [(a * b) -> a / L(a) => L(b)]; instantiating at
        # a := int, b := int par makes the constraint False (Figure 10).
        fst_type = TArrow(TPair(TVar("a"), TVar("b")), TVar("a"))
        ct = ConstrainedType(fst_type, imp(CLoc("a"), CLoc("b")))
        result = Subst({"a": INT, "b": TPar(INT)}).apply_constrained(ct)
        assert solve(result.constraint) == FALSE

    def test_third_projection_instantiation(self):
        # a := int par, b := int gives False => True = True (Figure 9).
        fst_type = TArrow(TPair(TVar("a"), TVar("b")), TVar("a"))
        ct = ConstrainedType(fst_type, imp(CLoc("a"), CLoc("b")))
        result = Subst({"a": TPar(INT), "b": INT}).apply_constrained(ct)
        assert solve(result.constraint) == TRUE

    def test_untouched_variables_add_nothing(self):
        ct = ConstrainedType(TVar("a"), CLoc("a"))
        result = Subst({"zzz": TPar(INT)}).apply_constrained(ct)
        assert result == ct

    def test_scheme_substitution_renames_out_of_reach(self):
        # phi = {a := int} on (forall a. [a / L(a)]) must not touch the
        # bound variable.
        scheme = TypeScheme(("a",), ConstrainedType(TVar("a"), CLoc("a")))
        result = Subst({"a": INT}).apply_scheme(scheme)
        assert len(result.quantified) == 1
        inner = result.body.type
        assert isinstance(inner, TVar)
        assert inner.name != "a" or inner.name in result.quantified


class TestSubstAlgebra:
    def test_identity(self):
        assert Subst.identity().apply_type(TVar("a")) == TVar("a")

    def test_compose_order(self):
        # compose(earlier): earlier first. earlier: a := b; later: b := int
        earlier = Subst({"a": TVar("b")})
        later = Subst({"b": INT})
        combined = later.compose(earlier)
        assert combined.apply_type(TVar("a")) == INT
        assert combined.apply_type(TVar("b")) == INT

    def test_compose_keeps_later_entries(self):
        combined = Subst({"b": INT}).compose(Subst({"a": BOOL}))
        assert combined.apply_type(TVar("a")) == BOOL
        assert combined.apply_type(TVar("b")) == INT

    def test_domain(self):
        assert Subst({"a": INT}).domain == {"a"}

    def test_bool(self):
        assert not Subst.identity()
        assert Subst({"a": INT})


class TestInstantiate:
    def test_fresh_variables(self):
        scheme = scheme_of(TArrow(TVar("a"), TVar("a")), CLoc("a"))
        first = instantiate(scheme)
        second = instantiate(scheme)
        assert first.type != second.type  # fresh each time
        assert free_type_vars(first.type).isdisjoint(free_type_vars(second.type))

    def test_constraint_follows_renaming(self):
        scheme = scheme_of(TVar("a"), CLoc("a"))
        ct = instantiate(scheme)
        assert isinstance(ct.type, TVar)
        assert ct.constraint == CLoc(ct.type.name)

    def test_monomorphic_instantiation_is_identity(self):
        scheme = mono(TVar("a"), CLoc("a"))
        ct = instantiate(scheme)
        assert ct.type == TVar("a")
        assert ct.constraint == CLoc("a")


class TestGeneralize:
    def test_quantifies_type_vars_not_in_env(self):
        env = TypeEnv.empty().extend("x", mono(TVar("e")))
        ct = ConstrainedType(TArrow(TVar("a"), TVar("e")))
        scheme = generalize(ct, env)
        assert scheme.quantified == ("a",)

    def test_constraint_only_vars_stay_free(self):
        # Definition 3 quantifies F(tau) \\ F(E): a variable that only
        # occurs in the constraint is not quantified.
        ct = ConstrainedType(INT, imp(CLoc("a"), CLoc("b")))
        scheme = generalize(ct, TypeEnv.empty())
        assert scheme.quantified == ()
        assert scheme.free_vars() == {"a", "b"}


class TestTypeEnv:
    def test_lookup(self):
        env = TypeEnv.empty().extend("x", mono(INT))
        assert env.lookup("x") == mono(INT)
        assert env.lookup("y") is None

    def test_extend_shadows(self):
        env = TypeEnv.empty().extend("x", mono(INT)).extend("x", mono(BOOL))
        assert env.lookup("x") == mono(BOOL)

    def test_extend_is_persistent(self):
        base = TypeEnv.empty()
        base.extend("x", mono(INT))
        assert "x" not in base

    def test_free_vars(self):
        env = TypeEnv.empty().extend("x", mono(TVar("a"), CLoc("b")))
        assert env.free_vars() == {"a", "b"}

    def test_apply_substitution(self):
        env = TypeEnv.empty().extend("x", mono(TVar("a")))
        applied = env.apply(Subst({"a": INT}))
        assert applied.lookup("x").body.type == INT
