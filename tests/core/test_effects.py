"""Tests for the replicated-reference effect analysis (section 6 prototype)."""

from __future__ import annotations

import pytest

from repro.core.effects import (
    EffectKind,
    analyze_effects,
    effect_errors,
    is_effect_safe,
)
from repro.lang.parser import parse_expression as parse
from repro.semantics.bigstep import run
from repro.semantics.errors import ReplicaDivergenceError


class TestCleanPrograms:
    @pytest.mark.parametrize(
        "source",
        [
            "1 + 2",
            "let r = ref 0 in r := 1 ; !r",
            "mkpar (fun i -> i)",
            # per-process refs are created in component context: fine
            "mkpar (fun i -> let c = ref i in c := !c + 1 ; !c)",
            # replicated ref used only globally: fine
            "let r = ref 0 in let v = mkpar (fun i -> i) in r := 9 ; !r",
        ],
    )
    def test_no_errors(self, source):
        assert effect_errors(parse(source)) == []

    def test_fully_safe_programs(self):
        assert is_effect_safe(parse("let r = ref 0 in r := 1 ; !r"))


class TestDivergenceDetection:
    def test_component_assignment_flagged(self):
        source = "let r = ref 0 in mkpar (fun i -> r := i ; i)"
        errors = effect_errors(parse(source))
        assert any(
            e.kind is EffectKind.COMPONENT_ASSIGNMENT and e.reference == "r"
            for e in errors
        )

    def test_global_deref_after_divergence_flagged(self):
        source = "let r = ref 0 in fst (mkpar (fun i -> r := i ; i), !r)"
        kinds = {e.kind for e in effect_errors(parse(source))}
        assert EffectKind.COMPONENT_ASSIGNMENT in kinds
        assert EffectKind.GLOBAL_DEREF_AFTER_DIVERGENCE in kinds

    def test_assignment_through_put_sender(self):
        source = (
            "let r = ref 0 in"
            " put (mkpar (fun i -> fun dst -> (r := i ; nc ())))"
        )
        assert effect_errors(parse(source))

    def test_apply_functions_run_per_component(self):
        source = (
            "let r = ref 0 in"
            " apply (mkpar (fun i -> fun x -> (r := x ; x)), mkpar (fun i -> i))"
        )
        assert effect_errors(parse(source))

    def test_component_deref_is_informational(self):
        source = "let r = ref 1 in mkpar (fun i -> !r + i)"
        warnings = analyze_effects(parse(source))
        assert any(w.kind is EffectKind.COMPONENT_DEREF for w in warnings)
        assert effect_errors(parse(source)) == []

    def test_shadowing_is_respected(self):
        # The inner r is a fresh per-process ref, not the replicated one.
        source = (
            "let r = ref 0 in"
            " mkpar (fun i -> let r = ref i in r := !r + 1 ; !r)"
        )
        assert effect_errors(parse(source)) == []

    def test_escape_reported_conservatively(self):
        source = (
            "let r = ref 0 in"
            " let poke = fun s -> s := 1 in"
            " mkpar (fun i -> poke r ; i)"
        )
        warnings = analyze_effects(parse(source))
        assert any(w.kind is EffectKind.MAY_ESCAPE for w in warnings)
        assert not is_effect_safe(parse(source))


class TestSoundness:
    """Every dynamically-diverging program must be flagged statically."""

    DIVERGING = [
        "let r = ref 0 in fst (mkpar (fun i -> r := i ; i), !r)",
        "let r = ref 0 in"
        " fst (apply (mkpar (fun i -> fun x -> (r := i ; x)),"
        " mkpar (fun i -> i)), !r)",
    ]

    @pytest.mark.parametrize("source", DIVERGING)
    def test_dynamic_divergence_implies_static_flag(self, source):
        expr = parse(source)
        with pytest.raises(ReplicaDivergenceError):
            run(expr, 3)
        assert not is_effect_safe(expr)

    COHERENT = [
        # same value assigned everywhere: dynamically coherent, but the
        # analysis is conservative and still flags it (documented).
        "let r = ref 0 in fst (mkpar (fun i -> r := 7 ; i), !r)",
    ]

    @pytest.mark.parametrize("source", COHERENT)
    def test_conservative_on_coherent_assignments(self, source):
        expr = parse(source)
        run(expr, 3)  # runs fine
        assert not is_effect_safe(expr)  # flagged anyway: approximation


class TestWarningRendering:
    def test_str_mentions_kind_and_reference(self):
        source = "let r = ref 0 in mkpar (fun i -> r := i ; i)"
        text = str(effect_errors(parse(source))[0])
        assert "component assignment" in text
        assert "r:" in text
