"""Tests for the sum-type extension (paper section 6: "investigated").

Covers the whole pipeline — syntax, both evaluators, typing, locality —
and the nesting-safety interaction: sums must not open a hole through
which parallel vectors can hide.
"""

from __future__ import annotations

import pytest

from repro.core.errors import NestingError, UnificationError
from repro.core.infer import infer, infer_scheme, typechecks
from repro.core.milner import milner_infer
from repro.core.types import INT, TPar, TSum, TVar, render_type
from repro.core.constraints import CLoc, locality, basic_constraint, conj
from repro.lang.ast import Case, Inl, Inr, Const, Var
from repro.lang.parser import parse_expression as parse
from repro.lang.pretty import pretty
from repro.lang.substitution import alpha_equal, free_vars, substitute
from repro.semantics.bigstep import run
from repro.semantics.smallstep import evaluate
from repro.semantics.values import reify, to_python


class TestSyntax:
    def test_parse_injections(self):
        assert parse("inl 1") == Inl(Const(1))
        assert parse("inr true") == Inr(Const(True))

    def test_parse_case(self):
        expr = parse("case s of inl x -> x | inr y -> 0")
        assert expr == Case(Var("s"), "x", Var("x"), "y", Const(0))

    def test_injection_binds_like_application(self):
        # inl 1 + 2 parses as (inl 1) + 2
        expr = parse("inl 1 + 2")
        from repro.lang.ast import App, Pair, Prim

        assert expr == App(Prim("+"), Pair(Inl(Const(1)), Const(2)))

    @pytest.mark.parametrize(
        "source",
        [
            "inl 1",
            "inr (1, true)",
            "case inl 1 of inl x -> x + 1 | inr y -> y",
            "fun s -> case s of inl x -> inr x | inr y -> inl y",
            "case s of inl x -> (case x of inl a -> 1 | inr b -> 2) | inr y -> 3",
        ],
    )
    def test_round_trip(self, source):
        expr = parse(source)
        assert parse(pretty(expr)) == expr

    def test_case_branch_binders(self):
        expr = parse("case s of inl x -> x | inr y -> x")
        assert free_vars(expr) == {"s", "x"}

    def test_case_substitution_respects_binders(self):
        expr = parse("case s of inl x -> x | inr y -> x")
        result = substitute(expr, "x", Const(9))
        assert result == parse("case s of inl x -> x | inr y -> 9")

    def test_case_alpha_equivalence(self):
        left = parse("case s of inl x -> x | inr y -> y")
        right = parse("case s of inl a -> a | inr b -> b")
        assert alpha_equal(left, right)
        assert not alpha_equal(left, parse("case s of inl a -> a | inr b -> a"))


class TestEvaluation:
    def test_case_left(self):
        assert evaluate(parse("case inl 3 of inl x -> x * 2 | inr y -> 0"), 1) == Const(6)

    def test_case_right(self):
        assert evaluate(
            parse("case inr 3 of inl x -> 0 | inr y -> y * 2"), 1
        ) == Const(6)

    def test_scrutinee_evaluated_first(self):
        expr = parse("case (if true then inl 1 else inr 2) of inl x -> x | inr y -> y")
        assert evaluate(expr, 1) == Const(1)

    def test_injection_payload_evaluated(self):
        assert evaluate(parse("inl (1 + 2)"), 1) == Inl(Const(3))

    def test_big_step_agrees(self):
        source = (
            "mkpar (fun i -> case (if i mod 2 = 0 then inl i else inr (i * 10))"
            " of inl x -> x + 1000 | inr y -> y)"
        )
        expr = parse(source)
        assert alpha_equal(evaluate(expr, 4), reify(run(expr, 4)))

    def test_to_python_tags(self):
        assert to_python(run(parse("inl 1"), 1)) == ("inl", 1)
        assert to_python(run(parse("inr true"), 1)) == ("inr", True)

    def test_case_on_non_sum_sticks(self):
        from repro.semantics.errors import StuckError

        with pytest.raises(StuckError):
            evaluate(parse("case 1 of inl x -> x | inr y -> y"), 1)

    def test_option_encoding(self):
        # option 'a  ~  (unit, 'a) sum : the classic encoding works.
        source = (
            "let none = inl () in"
            " let some = fun v -> inr v in"
            " let getor = fun d -> fun o ->"
            "   case o of inl u -> d | inr v -> v in"
            " (getor 7 none, getor 7 (some 42))"
        )
        assert to_python(run(parse(source), 1)) == (7, 42)


class TestTyping:
    def test_injection_types(self):
        ct = infer(parse("inl 1"))
        assert isinstance(ct.type, TSum)
        assert ct.type.left == INT

    def test_case_result(self):
        assert render_type(infer(parse(
            "case inl 3 of inl x -> x + 1 | inr b -> if b then 1 else 0"
        )).type) == "int"

    def test_case_function_scheme(self):
        scheme = infer_scheme(parse("fun s -> case s of inl x -> x | inr y -> y"))
        assert render_type(scheme.body.type) == "('a, 'a) sum -> 'a"

    def test_branches_must_agree(self):
        with pytest.raises(UnificationError):
            infer(parse("fun s -> case s of inl x -> 1 | inr y -> true"))

    def test_scrutinee_must_be_sum(self):
        with pytest.raises(UnificationError):
            infer(parse("case 1 of inl x -> 1 | inr y -> 2"))

    def test_milner_agrees_on_safe_sums(self):
        expr = parse("case inl 1 of inl x -> x | inr y -> y + 1")
        assert render_type(milner_infer(expr)) == render_type(infer(expr).type)


class TestLocality:
    def test_sum_locality_is_pointwise(self):
        ty = TSum(TVar("a"), INT)
        assert locality(ty) == CLoc("a")

    def test_sum_with_par_side_is_global(self):
        from repro.core.constraints import FALSE

        assert locality(TSum(INT, TPar(INT))) == FALSE

    def test_basic_constraint_descends(self):
        ty = TSum(TPar(TVar("a")), INT)
        assert basic_constraint(ty) == CLoc("a")

    def test_vector_of_sums_is_fine(self):
        source = "mkpar (fun i -> if i = 0 then inl i else inr true)"
        assert render_type(infer(parse(source)).type) == "(int, bool) sum par"

    def test_sum_of_vectors_cannot_enter_mkpar(self):
        source = "mkpar (fun i -> inl (mkpar (fun j -> j)))"
        with pytest.raises(NestingError):
            infer(parse(source))

    def test_case_cannot_hide_a_vector(self):
        # Like snd (mkpar ..., 1): a local result from a scrutinee holding
        # a vector is rejected by the (Case) rule's L(result)=>L(scrutinee).
        source = "case inl (mkpar (fun i -> i)) of inl x -> 1 | inr y -> 2"
        with pytest.raises(NestingError):
            infer(parse(source))

    def test_case_may_return_the_vector_itself(self):
        source = (
            "case inl (mkpar (fun i -> i)) of"
            " inl x -> x | inr y -> mkpar (fun i -> 0)"
        )
        assert render_type(infer(parse(source)).type) == "int par"

    def test_case_safety_dynamic_counterpart(self):
        # The statically rejected program would evaluate a vector inside
        # a locally-typed expression (cost-model violation) — with sums it
        # still runs, exactly like the fourth projection.
        source = "case inl (mkpar (fun i -> i)) of inl x -> 1 | inr y -> 2"
        assert evaluate(parse(source), 2) == Const(1)


class TestSafetyProperty:
    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_sum_heavy_program_is_safe(self, p):
        from repro.core.unify import unifiable

        source = (
            "let classify = fun n -> if n < 0 then inl (0 - n) else inr n in"
            " mkpar (fun i -> case classify (i - 1) of"
            " inl neg -> neg * 100 | inr pos -> pos)"
        )
        expr = parse(source)
        ct = infer(expr)
        value = evaluate(expr, p)
        assert unifiable(infer(value).type, ct.type)
