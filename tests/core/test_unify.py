"""Tests for first-order unification over the type algebra."""

from __future__ import annotations

import pytest

from repro.core.errors import OccursCheckError, UnificationError
from repro.core.types import (
    BOOL,
    INT,
    TArrow,
    TPair,
    TPar,
    TTuple,
    TVar,
)
from repro.core.unify import unifiable, unify


class TestSuccess:
    def test_identical_types(self):
        assert not unify(INT, INT)

    def test_variable_binds_left(self):
        subst = unify(TVar("a"), INT)
        assert subst.apply_type(TVar("a")) == INT

    def test_variable_binds_right(self):
        subst = unify(INT, TVar("a"))
        assert subst.apply_type(TVar("a")) == INT

    def test_variable_to_variable(self):
        subst = unify(TVar("a"), TVar("b"))
        assert subst.apply_type(TVar("a")) == subst.apply_type(TVar("b"))

    def test_arrow_decomposition(self):
        subst = unify(TArrow(TVar("a"), TVar("b")), TArrow(INT, BOOL))
        assert subst.apply_type(TVar("a")) == INT
        assert subst.apply_type(TVar("b")) == BOOL

    def test_pair(self):
        subst = unify(TPair(TVar("a"), TVar("a")), TPair(INT, TVar("b")))
        assert subst.apply_type(TVar("b")) == INT

    def test_par(self):
        subst = unify(TPar(TVar("a")), TPar(INT))
        assert subst.apply_type(TVar("a")) == INT

    def test_nested_propagation(self):
        left = TArrow(TVar("a"), TPar(TVar("a")))
        right = TArrow(INT, TVar("b"))
        subst = unify(left, right)
        assert subst.apply_type(TVar("b")) == TPar(INT)

    def test_tuples(self):
        subst = unify(
            TTuple((TVar("a"), TVar("b"), INT)), TTuple((INT, BOOL, TVar("c")))
        )
        assert subst.apply_type(TVar("c")) == INT

    def test_unifier_is_most_general(self):
        # unify(a -> b, c -> c) must not over-specialize a or b to ground.
        subst = unify(TArrow(TVar("a"), TVar("b")), TArrow(TVar("c"), TVar("c")))
        result = subst.apply_type(TArrow(TVar("a"), TVar("b")))
        assert isinstance(result, TArrow)
        assert isinstance(result.domain, TVar)
        assert result.domain == result.codomain

    def test_unify_nested_par_types(self):
        # Unification itself permits (tau par) par: it is the constraint
        # layer, not unification, that rejects nesting.
        subst = unify(TPar(TVar("a")), TPar(TPar(INT)))
        assert subst.apply_type(TVar("a")) == TPar(INT)


class TestFailure:
    def test_base_clash(self):
        with pytest.raises(UnificationError):
            unify(INT, BOOL)

    def test_constructor_clash(self):
        with pytest.raises(UnificationError):
            unify(TArrow(INT, INT), TPair(INT, INT))

    def test_par_vs_base(self):
        with pytest.raises(UnificationError):
            unify(TPar(INT), INT)

    def test_tuple_arity_clash(self):
        with pytest.raises(UnificationError):
            unify(TTuple((INT, INT, INT)), TTuple((INT, INT, INT, INT)))

    def test_occurs_check(self):
        with pytest.raises(OccursCheckError):
            unify(TVar("a"), TArrow(TVar("a"), INT))

    def test_occurs_check_under_par(self):
        with pytest.raises(OccursCheckError):
            unify(TVar("a"), TPar(TVar("a")))

    def test_deep_clash(self):
        with pytest.raises(UnificationError):
            unify(TArrow(INT, TPar(INT)), TArrow(INT, TPar(BOOL)))


class TestUnifiable:
    def test_true(self):
        assert unifiable(TVar("a"), TPar(INT))

    def test_false(self):
        assert not unifiable(INT, BOOL)

    def test_occurs_is_not_unifiable(self):
        assert not unifiable(TVar("a"), TPair(TVar("a"), INT))
