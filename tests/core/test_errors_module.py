"""Tests for the error hierarchy: types, messages, catchability."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    NestingError,
    OccursCheckError,
    TypingError,
    UnboundVariableError,
    UnificationError,
    UnknownPrimitiveError,
)
from repro.lang.ast import Loc
from repro.lang.errors import LexError, ParseError, ReproError, SourceError
from repro.semantics.errors import (
    DivisionByZeroError,
    DynamicNestingError,
    EvalError,
    RefContextError,
    ReplicaDivergenceError,
    StepLimitExceeded,
    StuckError,
)


class TestHierarchy:
    """One except-clause catches everything the library raises."""

    @pytest.mark.parametrize(
        "exc_type",
        [
            LexError,
            ParseError,
            TypingError,
            UnboundVariableError,
            UnknownPrimitiveError,
            UnificationError,
            OccursCheckError,
            NestingError,
            EvalError,
            StuckError,
            DynamicNestingError,
            DivisionByZeroError,
            ReplicaDivergenceError,
            RefContextError,
            StepLimitExceeded,
        ],
    )
    def test_everything_is_a_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_typing_errors_are_source_errors(self):
        assert issubclass(TypingError, SourceError)

    def test_nesting_is_a_typing_error(self):
        assert issubclass(NestingError, TypingError)


class TestMessages:
    def test_source_error_formats_location(self):
        error = SourceError("boom", Loc(3, 7))
        assert str(error) == "3:7: boom"
        assert error.bare_message == "boom"

    def test_source_error_without_location(self):
        assert str(SourceError("boom")) == "boom"

    def test_unbound_variable(self):
        error = UnboundVariableError("x", Loc(1, 1))
        assert "'x'" in str(error)
        assert error.name == "x"

    def test_unification_keeps_both_types(self):
        from repro.core.types import BOOL, INT

        error = UnificationError(INT, BOOL)
        assert error.left == INT and error.right == BOOL
        assert "int" in str(error) and "bool" in str(error)

    def test_occurs_check(self):
        from repro.core.types import TPar, TVar

        error = OccursCheckError("a", TPar(TVar("a")))
        assert "occurs" in str(error)

    def test_nesting_error_mentions_rule_and_constraint(self):
        from repro.core.constraints import FALSE

        error = NestingError("Let", FALSE, detail="extra context")
        assert "(Let)" in str(error)
        assert "False" in str(error)
        assert "extra context" in str(error)
        assert error.rule == "Let"

    def test_step_limit(self):
        error = StepLimitExceeded(1234)
        assert "1234" in str(error)
        assert error.limit == 1234

    def test_stuck_error_diagnosis(self):
        from repro.lang.ast import Var

        error = StuckError(Var("x"), diagnosis="free variable 'x'")
        assert "free variable" in str(error)
        assert error.expr == Var("x")

    def test_dynamic_nesting_mentions_process(self):
        from repro.lang.ast import Prim

        error = DynamicNestingError(Prim("mkpar"), proc=2)
        assert "process 2" in str(error)


class TestCatchability:
    def test_one_clause_covers_frontend_and_typing(self):
        from repro.core.infer import infer
        from repro.lang.parser import parse_expression

        outcomes = []
        for source in ["(", "x", "1 + true", "fst (1, mkpar (fun i -> i))"]:
            try:
                infer(parse_expression(source))
                outcomes.append("ok")
            except ReproError as error:
                outcomes.append(type(error).__name__)
        assert outcomes == [
            "ParseError",
            "UnboundVariableError",
            "UnificationError",
            "NestingError",
        ]
