"""The initial environment TC must match Figure 6 of the paper."""

from __future__ import annotations

import pytest

from repro.core.constraints import CLoc, TRUE, conj, imp
from repro.core.initial_env import (
    PRIMITIVE_SCHEMES,
    constant_scheme,
    constant_type,
    primitive_scheme,
)
from repro.core.schemes import instantiate
from repro.core.types import (
    BOOL,
    INT,
    TArrow,
    TPair,
    TPar,
    TVar,
    UNIT_TYPE,
    render_type,
)
from repro.lang.ast import UNIT, Const
from repro.lang.parser import PRIMITIVE_NAMES, BINARY_OPERATORS


class TestConstants:
    def test_integers(self):
        assert constant_type(0) == INT
        assert constant_type(-7) == INT

    def test_booleans(self):
        assert constant_type(True) == BOOL
        assert constant_type(False) == BOOL

    def test_unit(self):
        assert constant_type(UNIT) == UNIT_TYPE

    def test_constant_scheme(self):
        assert constant_scheme(Const(3)).body.type == INT


class TestFigure6Schemes:
    """Each scheme compared against the figure, type and constraint."""

    def _body(self, name):
        return PRIMITIVE_SCHEMES[name].body

    def test_plus(self):
        assert render_type(self._body("+").type) == "int * int -> int"
        assert self._body("+").constraint == TRUE

    def test_comparison(self):
        assert render_type(self._body("<").type) == "int * int -> bool"

    def test_fix(self):
        assert render_type(self._body("fix").type) == "('a -> 'a) -> 'a"
        assert self._body("fix").constraint == TRUE

    def test_fst(self):
        body = self._body("fst")
        assert render_type(body.type) == "'a * 'b -> 'a"
        a, b = body.type.domain.first.name, body.type.domain.second.name
        assert body.constraint == imp(CLoc(a), CLoc(b))

    def test_snd(self):
        body = self._body("snd")
        assert render_type(body.type) == "'a * 'b -> 'b"
        a, b = body.type.domain.first.name, body.type.domain.second.name
        assert body.constraint == imp(CLoc(b), CLoc(a))

    def test_nc(self):
        body = self._body("nc")
        assert render_type(body.type) == "unit -> 'a"
        assert body.constraint == TRUE

    def test_isnc(self):
        body = self._body("isnc")
        assert render_type(body.type) == "'a -> bool"
        assert body.constraint == CLoc(body.type.domain.name)

    def test_mkpar(self):
        body = self._body("mkpar")
        assert render_type(body.type) == "(int -> 'a) -> 'a par"
        content = body.type.codomain.content
        assert body.constraint == CLoc(content.name)

    def test_apply(self):
        body = self._body("apply")
        assert render_type(body.type) == "('a -> 'b) par * 'a par -> 'b par"
        inner = body.type.domain.first.content
        assert body.constraint == conj(CLoc(inner.domain.name), CLoc(inner.codomain.name))

    def test_put(self):
        body = self._body("put")
        assert (
            render_type(body.type) == "(int -> 'a) par -> (int -> 'a) par"
        )
        message = body.type.domain.content.codomain
        assert body.constraint == CLoc(message.name)

    def test_nproc(self):
        assert self._body("nproc").type == INT


class TestCoverage:
    def test_every_parser_primitive_has_a_scheme(self):
        for name in PRIMITIVE_NAMES:
            assert primitive_scheme(name) is not None, name

    def test_every_operator_has_a_scheme(self):
        for name in BINARY_OPERATORS:
            assert primitive_scheme(name) is not None, name

    def test_unknown_primitive_returns_none(self):
        assert primitive_scheme("frobnicate") is None

    def test_every_scheme_is_closed(self):
        for name, scheme in PRIMITIVE_SCHEMES.items():
            assert scheme.free_vars() == frozenset(), name

    def test_every_scheme_instantiates_satisfiably(self):
        from repro.core.constraints import is_satisfiable

        for name, scheme in PRIMITIVE_SCHEMES.items():
            ct = instantiate(scheme)
            assert is_satisfiable(ct.constraint), name
