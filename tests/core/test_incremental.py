"""Incremental re-inference: edits invalidate exactly their suffix."""

from __future__ import annotations

import pytest

from repro import perf
from repro.core.errors import TypingError
from repro.core.incremental import (
    Definition,
    IncrementalChecker,
    assemble_let_chain,
    split_let_chain,
)
from repro.core.infer import infer_scheme
from repro.core.prelude_env import prelude_env
from repro.lang.parser import parse_program


def defs(*pairs):
    return [Definition.parse(name, source) for name, source in pairs]


CHAIN = (
    ("square", "fun x -> x * x"),
    ("quad", "fun x -> square (square x)"),
    ("main", "quad 3"),
)


def test_first_check_infers_everything():
    checker = IncrementalChecker()
    results = checker.check(defs(*CHAIN))
    assert [r.reused for r in results] == [False, False, False]
    assert str(results[0].scheme) == "int -> int"
    assert str(results[2].scheme) == "int"


def test_identical_recheck_reuses_everything():
    checker = IncrementalChecker()
    checker.check(defs(*CHAIN))
    with perf.collect() as stats:
        results = checker.check(defs(*CHAIN))
    assert [r.reused for r in results] == [True, True, True]
    assert stats.counter("incremental.reused") == 3
    assert stats.counter("incremental.inferred") == 0


def test_editing_middle_definition_reinfers_only_downstream():
    checker = IncrementalChecker()
    checker.check(defs(*CHAIN))
    edited = defs(
        CHAIN[0],
        ("quad", "fun x -> square x + square x"),  # the edit
        CHAIN[2],
    )
    with perf.collect() as stats:
        results = checker.check(edited)
    # Upstream reused; the edit and everything after re-inferred (main's
    # environment token changed even though its source did not).
    assert [r.reused for r in results] == [True, False, False]
    assert stats.counter("incremental.inferred") == 2


def test_editing_last_definition_reinfers_one():
    checker = IncrementalChecker()
    checker.check(defs(*CHAIN))
    edited = defs(CHAIN[0], CHAIN[1], ("main", "quad 4"))
    results = checker.check(edited)
    assert [r.reused for r in results] == [True, True, False]


def test_renaming_a_definition_changes_its_token():
    checker = IncrementalChecker()
    first = checker.check(defs(("f", "fun x -> x")))
    second = checker.check(defs(("g", "fun x -> x")))
    assert first[0].token != second[0].token
    assert not second[0].reused


def test_incremental_schemes_match_full_inference():
    checker = IncrementalChecker()
    results = checker.check(defs(*CHAIN))
    env = prelude_env()
    for (name, source), result in zip(CHAIN, results):
        expected = infer_scheme(parse_program(source), env)
        assert str(result.scheme) == str(expected)
        env = env.extend(name, expected)


def test_failing_definition_raises_and_keeps_prefix_cached():
    checker = IncrementalChecker()
    bad = defs(CHAIN[0], ("broken", "square true"))
    with pytest.raises(TypingError):
        checker.check(bad)
    # The good prefix stayed cached.
    results = checker.check(defs(CHAIN[0]))
    assert results[0].reused


def test_prefix_cache_sound_across_shadowing():
    """Same name+source at position 1, but a *different* definition 0 —
    the chain token must not collide and reuse the wrong environment."""
    checker = IncrementalChecker()
    a = checker.check(
        defs(("f", "fun x -> x + 1"), ("g", "fun y -> f y"))
    )
    b = checker.check(
        defs(("f", "fun b -> if b then 1 else 0"), ("g", "fun y -> f y"))
    )
    assert str(a[1].scheme) == "int -> int"
    assert str(b[1].scheme) == "bool -> int"
    assert not b[1].reused


def test_cache_trimming_stays_bounded():
    checker = IncrementalChecker(max_entries=16)
    for i in range(100):
        checker.check(defs((f"d{i}", f"fun x -> x + {i}")))
    assert checker.cache_size() <= 16


def test_split_and_assemble_let_chain_roundtrip():
    program = parse_program("let a = 1 in let b = a + 1 in a + b")
    definitions, body = split_let_chain(program)
    assert [d.name for d in definitions] == ["a", "b"]
    rebuilt = assemble_let_chain(definitions, body)
    from repro.core.digest import expr_digest

    assert expr_digest(rebuilt) == expr_digest(program)


def test_environment_after_supports_downstream_inference():
    checker = IncrementalChecker()
    env = checker.environment_after(defs(*CHAIN[:2]))
    scheme = infer_scheme(parse_program("quad (square 2)"), env)
    assert str(scheme) == "int"
