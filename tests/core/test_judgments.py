"""Tests for derivation rendering (the Figures 8-10 proof trees)."""

from __future__ import annotations

import pytest

from repro.core.judgments import (
    explain,
    render_derivation,
    render_derivation_indented,
)
from repro.core.schemes import TypeEnv, mono
from repro.core.types import INT
from repro.lang.parser import parse_expression as parse


class TestExplain:
    def test_accepted(self):
        explanation = explain(parse("1 + 1"))
        assert explanation.accepted
        assert explanation.verdict == "well-typed"
        assert explanation.error is None

    def test_rejected_nesting(self):
        explanation = explain(parse("fst (1, mkpar (fun i -> i))"))
        assert not explanation.accepted
        assert explanation.derivation is not None
        assert explanation.derivation.conclusion is None

    def test_rejected_other_typing_error(self):
        explanation = explain(parse("1 + true"))
        assert not explanation.accepted
        assert explanation.derivation is None
        assert explanation.error is not None

    def test_render_contains_verdict_and_expr(self):
        text = explain(parse("1 + 1")).render()
        assert "well-typed" in text
        assert "1 + 1" in text


class TestFigure8:
    """The paper's Figure 8: the partial judgement of example2 with
    E = {pid : int} fails at the (Let) rule."""

    def test_inner_let_fails_at_let_rule(self):
        env = TypeEnv.empty().extend("pid", mono(INT))
        explanation = explain(
            parse("let this = mkpar (fun i -> i) in pid"), env
        )
        assert not explanation.accepted
        assert explanation.derivation.rule == "Let"
        text = explanation.render()
        assert ": ?" in text  # the paper's "?" conclusion

    def test_premises_show_int_par(self):
        env = TypeEnv.empty().extend("pid", mono(INT))
        explanation = explain(parse("let this = mkpar (fun i -> i) in pid"), env)
        text = explanation.render()
        assert "int par" in text


class TestFigures9And10:
    def test_third_projection_tree(self):
        text = explain(parse("fst (mkpar (fun i -> i), 1)")).render()
        assert "(App)" in text and "(Pair)" in text and "(Op)" in text
        assert "int par * int -> int par" in text

    def test_fourth_projection_tree_has_question_mark(self):
        text = explain(parse("fst (1, mkpar (fun i -> i))")).render()
        assert ": ?" in text
        assert "int * int par" in text


class TestRenderers:
    def test_tree_has_rule_bars(self):
        _, derivation = _derive("fun x -> x")
        text = render_derivation(derivation)
        assert "---" in text
        assert "(Fun)" in text

    def test_indented_renderer(self):
        _, derivation = _derive("let a = 1 in a + a")
        text = render_derivation_indented(derivation)
        lines = text.splitlines()
        assert lines[0].startswith("(Let)")
        assert any(line.startswith("  (") for line in lines)

    def test_truncation_of_wide_judgements(self):
        source = "fun a -> " * 12 + "1"
        _, derivation = _derive(source)
        text = render_derivation(derivation, max_width=60)
        assert "..." in text

    def test_note_shown_in_indented_form(self):
        _, derivation = _derive("let x = 1 in x")
        text = render_derivation_indented(derivation)
        assert "x :" in text  # the Let rule's generalization note


def _derive(source):
    from repro.core.infer import infer_with_derivation

    return infer_with_derivation(parse(source))
