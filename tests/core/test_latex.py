"""Tests for the LaTeX (bussproofs) derivation exporter."""

from __future__ import annotations

import pytest

from repro.core.infer import infer_with_derivation
from repro.core.judgments import explain
from repro.core.latex import (
    derivation_to_latex,
    explanation_to_latex,
    latex_escape,
)
from repro.lang.parser import parse_expression as parse


def derive(source: str):
    _, derivation = infer_with_derivation(parse(source))
    return derivation


class TestEscaping:
    def test_special_characters(self):
        assert latex_escape("a_b") == r"a\_b"
        assert latex_escape("50%") == r"50\%"
        assert latex_escape("{x}") == r"\{x\}"
        assert latex_escape("a & b") == r"a \& b"

    def test_plain_text_untouched(self):
        assert latex_escape("fun i -> i") == "fun i -> i"


class TestDerivationExport:
    def test_wraps_in_prooftree(self):
        text = derivation_to_latex(derive("1 + 1"))
        assert text.startswith(r"\begin{prooftree}")
        assert text.endswith(r"\end{prooftree}")

    def test_rule_labels_present(self):
        text = derivation_to_latex(derive("let x = 1 in fun y -> x"))
        for rule in ("Let", "Fun", "Const", "Var"):
            assert rf"({rule})" in text

    def test_balanced_environments(self):
        text = derivation_to_latex(derive("fst (mkpar (fun i -> i), 1)"))
        assert text.count(r"\begin{prooftree}") == 1
        assert text.count(r"\end{prooftree}") == 1

    def test_axioms_match_inferences(self):
        # Every AxiomC opens a branch that exactly one *InfC sequence closes:
        # in bussproofs the total premises consumed equals axioms produced.
        text = derivation_to_latex(derive("(1 + 2) * 3"))
        axioms = text.count(r"\AxiomC")
        unary = text.count(r"\UnaryInfC")
        binary = text.count(r"\BinaryInfC")
        trinary = text.count(r"\TrinaryInfC")
        quaternary = text.count(r"\QuaternaryInfC")
        consumed = unary + 2 * binary + 3 * trinary + 4 * quaternary
        produced = axioms + unary + binary + trinary + quaternary
        # The root conclusion is produced but never consumed.
        assert produced - consumed == 1

    def test_constraints_render_with_logic_symbols(self):
        # The parallel identity keeps L('a) => False in its conclusion.
        text = derivation_to_latex(
            derive("fun x -> if mkpar (fun i -> true) at 0 then x else x")
        )
        assert "L(" in text
        assert r"\Rightarrow" in text

    def test_standalone_document(self):
        text = derivation_to_latex(derive("1"), standalone=True)
        assert r"\documentclass" in text
        assert r"\usepackage{bussproofs}" in text
        assert r"\end{document}" in text

    def test_wide_rule_grouping(self):
        # No rule in the core has > 5 premises, but the grouping must not
        # fire for <= 5 (IfAt has 4).
        text = derivation_to_latex(
            derive(
                "if mkpar (fun i -> true) at 0 then mkpar (fun i -> 1)"
                " else mkpar (fun i -> 2)"
            )
        )
        assert r"\QuaternaryInfC" in text


class TestExplanationExport:
    def test_accepted_program(self):
        text = explanation_to_latex(explain(parse("fst (mkpar (fun i -> i), 1)")))
        assert r"\textbf{well-typed}" in text
        assert r"\begin{prooftree}" in text

    def test_rejected_program_shows_question_mark(self):
        text = explanation_to_latex(explain(parse("fst (1, mkpar (fun i -> i))")))
        assert r"\textbf{rejected}" in text
        assert ": ?$" in text

    def test_non_derivation_failure(self):
        text = explanation_to_latex(explain(parse("1 + true")))
        assert r"\textit" in text

    def test_standalone(self):
        text = explanation_to_latex(
            explain(parse("1 + 1")), standalone=True
        )
        assert r"\end{document}" in text
