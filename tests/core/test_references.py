"""Tests for the imperative extension (paper section 6: future work).

References with SPMD-replicated store semantics: a reference created in
replicated context has one cell per process; assignments inside a vector
component touch only that process's replica; a *global* dereference of
diverged replicas is the incoherence the paper's planned effect typing
would exclude — here it is detected dynamically.
"""

from __future__ import annotations

import pytest

from repro.core.errors import NestingError, UnificationError
from repro.core.infer import infer, infer_scheme
from repro.core.types import INT, TRef, TVar, render_type
from repro.core.constraints import CLoc, locality, basic_constraint
from repro.lang.ast import App, Let, Prim, Var, Const
from repro.lang.parser import parse_expression as parse
from repro.lang.pretty import pretty
from repro.semantics.bigstep import run
from repro.semantics.errors import (
    EvalError,
    RefContextError,
    ReplicaDivergenceError,
    StuckError,
)
from repro.semantics.values import VRef, to_python, words


class TestSyntax:
    def test_deref_is_prefix_application(self):
        assert parse("!r") == App(Prim("!"), Var("r"))

    def test_assign_desugars_to_pair_application(self):
        from repro.lang.ast import Pair

        assert parse("r := 1") == App(Prim(":="), Pair(Var("r"), Const(1)))

    def test_assign_is_right_associative(self):
        expr = parse("a := b := 1")
        # a := (b := 1) — the inner assignment's unit goes into a.
        assert expr.arg.first == Var("a")

    def test_sequence_desugars_to_let(self):
        expr = parse("f 1 ; 2")
        assert isinstance(expr, Let)
        assert expr.name == "_"

    def test_sequence_right_associates(self):
        expr = parse("1 ; 2 ; 3")
        assert isinstance(expr.body, Let)

    @pytest.mark.parametrize(
        "source",
        [
            "ref 0",
            "!r",
            "r := !r + 1",
            "let r = ref 0 in r := 1 ; !r",
            "(!)",
            "(:=)",
            "!(f x)",
        ],
    )
    def test_round_trip(self, source):
        expr = parse(source)
        assert parse(pretty(expr)) == expr

    def test_cannot_rebind_ref(self):
        from repro.lang.errors import ParseError

        with pytest.raises(ParseError, match="cannot rebind"):
            parse("fun ref -> ref")


class TestTyping:
    def test_ref_type(self):
        assert render_type(infer(parse("ref 0")).type) == "int ref"

    def test_deref(self):
        assert render_type(infer(parse("let r = ref 5 in !r")).type) == "int"

    def test_assign_is_unit(self):
        assert (
            render_type(infer(parse("let r = ref 5 in r := 6")).type) == "unit"
        )

    def test_counter_scheme(self):
        scheme = infer_scheme(
            parse("fun r -> (r := !r + 1 ; !r)")
        )
        assert render_type(scheme.body.type) == "int ref -> int"

    def test_polymorphic_ref_helper(self):
        scheme = infer_scheme(parse("fun x -> ref x"))
        assert render_type(scheme.body.type) == "'a -> 'a ref"
        assert "L('a)" in str(scheme)

    def test_assign_type_mismatch(self):
        with pytest.raises(UnificationError):
            infer(parse("let r = ref 0 in r := true"))

    def test_deref_non_ref(self):
        with pytest.raises(UnificationError):
            infer(parse("!1"))

    def test_ref_of_vector_rejected(self):
        with pytest.raises(NestingError):
            infer(parse("ref (mkpar (fun i -> i))"))

    def test_vector_of_refs_is_fine(self):
        source = "mkpar (fun i -> ref i)"
        assert render_type(infer(parse(source)).type) == "int ref par"

    def test_locality_of_ref(self):
        assert locality(TRef(TVar("a"))) == CLoc("a")
        assert basic_constraint(TRef(TVar("a"))) == CLoc("a")

    def test_nested_ref_of_par_unsatisfiable(self):
        from repro.core.constraints import FALSE, solve
        from repro.core.types import TPar

        assert solve(basic_constraint(TRef(TPar(INT)))) == FALSE


class TestEvaluation:
    def test_counter(self):
        source = "let r = ref 0 in r := !r + 1 ; r := !r + 10 ; !r"
        assert run(parse(source), 2) == 11

    def test_imperative_factorial(self):
        source = """
            let acc = ref 1 in
            let loop = fix (fun loop -> fun n ->
                if n = 0 then !acc else (acc := !acc * n ; loop (n - 1))) in
            loop 6
        """
        assert run(parse(source), 1) == 720

    def test_per_process_references(self):
        source = "mkpar (fun i -> let c = ref i in c := !c * 2 ; !c)"
        assert to_python(run(parse(source), 4)) == [0, 2, 4, 6]

    def test_aliasing(self):
        source = "let r = ref 1 in let alias = r in alias := 9 ; !r"
        assert run(parse(source), 2) == 9

    def test_replicated_assignment_is_coherent(self):
        source = "let r = ref 0 in r := 42 ; !r"
        assert run(parse(source), 4) == 42

    def test_ref_equality_is_identity(self):
        # Two refs with equal contents are different cells.
        source = "let a = ref 1 in let b = ref 1 in a := 2 ; !b"
        assert run(parse(source), 2) == 1

    def test_assign_needs_a_ref(self):
        with pytest.raises(EvalError):
            run(parse("1 := 2"), 1)

    def test_smallstep_machine_is_pure_only(self):
        with pytest.raises(StuckError, match="imperative primitive"):
            from repro.semantics.smallstep import evaluate

            evaluate(parse("ref 0"), 1)


class TestReplicaDivergence:
    """The section 6 problem, detected dynamically."""

    def test_divergence_detected_on_global_deref(self):
        # Statically ACCEPTED (the projection keeps a global type) yet
        # incoherent at run time: exactly why the paper calls for effect
        # typing.  fst evaluates both components: the mkpar assigns a
        # different value to r's replica on each process, then the global
        # !r has no single value.
        source = "let r = ref 0 in fst (mkpar (fun i -> r := i ; i), !r)"
        rejected_statically = False
        try:
            infer(parse(source))
        except NestingError:  # pragma: no cover - documents the gap
            rejected_statically = True
        assert not rejected_statically
        with pytest.raises(ReplicaDivergenceError):
            run(parse(source), 3)

    def test_coherent_component_assignments_are_fine(self):
        # Every process assigns the SAME value: replicas stay coherent.
        source = (
            "let r = ref 0 in"
            " fst (mkpar (fun i -> r := 7 ; i), !r)"
        )
        result = run(parse(source), 3)
        assert to_python(result) == [0, 1, 2]

    def test_local_reads_of_diverged_ref_are_fine(self):
        # Reading per-process is meaningful even after divergence.
        source = (
            "let r = ref 0 in"
            " fst (mkpar (fun i -> r := i ; 0), mkpar (fun i -> !r))"
        )
        # The second vector reads each replica locally: no global deref.
        from repro.core.errors import TypingError

        result = run(parse(source), 3)
        assert to_python(result) == [0, 0, 0]

    def test_component_local_ref_cannot_escape_its_process(self):
        # Defensive check: a ref created on process i used globally.
        from repro.semantics.bigstep import Evaluator

        evaluator = Evaluator(2)
        component_ref = VRef(cells=[1, 1], origin=1)
        with pytest.raises(RefContextError):
            evaluator._deref(component_ref)


class TestTransmission:
    def test_refs_are_not_transmissible(self):
        with pytest.raises(EvalError, match="not transmissible"):
            words(VRef(cells=[1, 1], origin=None))

    def test_put_of_ref_fails_with_cost_accounting(self):
        from repro.bsp import BspMachine, BspParams
        from repro.semantics.bigstep import Evaluator

        source = "put (mkpar (fun i -> fun dst -> ref i))"
        params = BspParams(p=2)
        evaluator = Evaluator(2, BspMachine(params))
        with pytest.raises(EvalError, match="not transmissible"):
            evaluator.eval(parse(source))
