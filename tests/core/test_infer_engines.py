"""Conformance tests for the two inference engines.

The substitution engine (``w``) is the paper's Fig. 7 rules transcribed
literally; the union-find engine (``uf``) is the production default —
in-place unification with path compression and Remy-style level-based
generalization, with every resolved type frozen back into the interned
node layer at rule boundaries.  The contract is *bit-identity*: both
engines must produce literally the same interned type and constraint
nodes (pruned and unpruned), identical derivation trees, and — on
rejected programs — the same error type and message, raw variable names
included.  These tests sweep that contract over the full curated
corpora, a 200-seed generated corpus, and the rejected/unsafe programs;
the speedup itself is guarded by ``benchmarks/bench_infer_engines.py``.
"""

from __future__ import annotations

import pytest

from repro import perf
from repro.core.infer import (
    INFER_ENGINES,
    get_infer_engine,
    infer,
    set_default_infer_engine,
    typechecks,
)
from repro.core.milner import milner_typechecks
from repro.lang.parser import parse_expression as parse
from repro.testing import (
    assert_infer_conformance,
    infer_conformance_corpus,
    run_infer_engines,
)
from repro.testing.generators import ProgramGenerator, unsafe_corpus

CORPUS = infer_conformance_corpus()
GENERATED_SEEDS = 200
MUTANT_SEEDS = 100


class TestEngineDispatch:
    def test_registered_engines(self):
        assert INFER_ENGINES == ("w", "uf")

    def test_default_is_union_find(self):
        assert get_infer_engine() == "uf"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown infer engine"):
            infer(parse("1 + 1"), engine="bogus")

    def test_set_default_round_trips(self):
        previous = set_default_infer_engine("w")
        try:
            assert get_infer_engine() == "w"
        finally:
            set_default_infer_engine(previous)
        assert get_infer_engine() == previous

    def test_set_default_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown infer engine"):
            set_default_infer_engine("bogus")


class TestCorpusConformance:
    """Bit-identical judgments over every shipped and curated program,
    including the rejected corpus (error parity)."""

    @pytest.mark.parametrize(
        "name,source", CORPUS, ids=[name for name, _ in CORPUS]
    )
    def test_corpus_program_conforms(self, name, source):
        assert_infer_conformance(source)

    def test_corpus_includes_rejected_programs(self):
        names = [name for name, _ in CORPUS]
        assert any(name.startswith("rejected[") for name in names)


class TestGeneratedConformance:
    def test_200_seed_generated_corpus(self):
        for seed in range(GENERATED_SEEDS):
            expr = ProgramGenerator(seed=seed, p_hint=2).expression(
                depth=3 + seed % 4
            )
            assert_infer_conformance(expr)

    def test_unsafe_corpus_error_parity(self):
        """Every nesting-unsafe program is rejected by *both* engines
        with the identical error message (raw variable names included)."""
        for source in unsafe_corpus():
            report = run_infer_engines(source)
            assert report.conforms, report.explain()
            assert not report.reference.ok, (
                f"unsafe program unexpectedly accepted: {source!r}"
            )

    def test_divergence_would_be_reported(self):
        report = run_infer_engines("fun x -> x")
        assert report.conforms
        report.runs[1].error = "corrupted"
        assert not report.conforms
        assert "DIVERGES" in report.explain()


class TestMilnerSeparation:
    """Satellite: the paper's separation argument is engine-independent.

    ``mutate_to_nesting`` builds programs that are ill-typed *by
    nesting only*: Milner typing accepts them, the constrained system
    rejects them.  Both inference engines must produce the identical
    verdict on every mutant — and the identical rejection, bit for bit.
    """

    def test_100_seed_mutant_sweep(self):
        separated = 0
        for seed in range(MUTANT_SEEDS):
            mutant = ProgramGenerator(seed=seed, p_hint=2).mutate_to_nesting(
                depth=3
            )
            verdicts = {
                engine: typechecks(mutant, engine=engine)
                for engine in INFER_ENGINES
            }
            assert len(set(verdicts.values())) == 1, (
                f"seed {seed}: engines disagree on the mutant: {verdicts}"
            )
            report = run_infer_engines(mutant)
            assert report.conforms, f"seed {seed}: {report.explain()}"
            if milner_typechecks(mutant) and not verdicts["uf"]:
                separated += 1
        assert separated == MUTANT_SEEDS, (
            f"only {separated}/{MUTANT_SEEDS} mutants separate the systems "
            "(constraint-rejected AND Milner-accepted)"
        )


class TestUfCounters:
    def test_uf_counters_emitted(self):
        expr = parse("let f = fun x -> x in (f 1, f true)")
        with perf.collect() as stats:
            infer(expr, engine="uf")
        assert stats.counter("infer.uf.runs") == 1
        assert stats.counter("infer.uf.binds") > 0
        assert stats.counter("infer.uf.freezes") > 0
        assert stats.counter("infer.runs") == 1
        assert stats.counter("infer.nodes") > 0
        assert stats.counter("unify.calls") > 0

    def test_w_engine_emits_no_uf_counters(self):
        expr = parse("let f = fun x -> x in (f 1, f true)")
        with perf.collect() as stats:
            infer(expr, engine="w")
        assert stats.counter("infer.uf.runs") == 0
        assert stats.counter("infer.runs") == 1
        assert stats.counter("unify.calls") > 0

    def test_path_compression_counter_fires_on_var_chains(self):
        # Unifying (x0,x1) then (x1,x2) while all are unbound builds the
        # link chain x0 -> x1 -> x2; binding x2 to int afterwards means
        # the final resolution walks a path of length > 1 and compresses.
        source = """fun x0 -> fun x1 -> fun x2 ->
            let a = if true then x0 else x1 in
            let b = if true then x1 else x2 in
            x2 + 0"""
        with perf.collect() as stats:
            infer(parse(source), engine="uf")
        assert stats.counter("infer.uf.compressions") > 0
