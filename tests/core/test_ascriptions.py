"""Tests for type ascriptions ``(e : ty)`` and the type surface syntax."""

from __future__ import annotations

import pytest

from repro.core.errors import NestingError, TypingError, UnificationError
from repro.core.infer import infer, type_expr_to_type
from repro.core.milner import milner_infer
from repro.core.types import INT, TArrow, TPar, TVar, render_type
from repro.lang.ast import Annot
from repro.lang.errors import ParseError
from repro.lang.parser import parse_expression as parse
from repro.lang.pretty import pretty
from repro.lang.type_syntax import (
    TEArrow,
    TEBase,
    TEPar,
    TEProduct,
    TERef,
    TESum,
    TEVar,
    render_type_expr,
)
from repro.semantics.bigstep import run
from repro.semantics.smallstep import evaluate, step


class TestTypeSyntaxParsing:
    def _annot(self, source: str):
        expr = parse(f"(x : {source})")
        assert isinstance(expr, Annot)
        return expr.annotation

    def test_base_types(self):
        assert self._annot("int") == TEBase("int")
        assert self._annot("bool") == TEBase("bool")
        assert self._annot("unit") == TEBase("unit")

    def test_type_variable(self):
        assert self._annot("'a") == TEVar("a")

    def test_arrow_right_associative(self):
        ty = self._annot("int -> bool -> int")
        assert ty == TEArrow(TEBase("int"), TEArrow(TEBase("bool"), TEBase("int")))

    def test_product(self):
        assert self._annot("int * bool") == TEProduct((TEBase("int"), TEBase("bool")))

    def test_product_binds_tighter_than_arrow(self):
        ty = self._annot("int * int -> int")
        assert isinstance(ty, TEArrow)
        assert isinstance(ty.domain, TEProduct)

    def test_par_postfix(self):
        assert self._annot("int par") == TEPar(TEBase("int"))

    def test_par_chains(self):
        assert self._annot("int par par") == TEPar(TEPar(TEBase("int")))

    def test_ref_postfix(self):
        assert self._annot("int ref") == TERef(TEBase("int"))

    def test_mixed_postfix(self):
        assert self._annot("int ref par") == TEPar(TERef(TEBase("int")))

    def test_sum(self):
        assert self._annot("(int, bool) sum") == TESum(TEBase("int"), TEBase("bool"))

    def test_parenthesized(self):
        ty = self._annot("(int -> int) par")
        assert ty == TEPar(TEArrow(TEBase("int"), TEBase("int")))

    def test_unknown_type_name(self):
        with pytest.raises(ParseError, match="unknown type name"):
            parse("(x : float)")

    def test_pair_without_sum_keyword(self):
        with pytest.raises(ParseError, match="expected 'sum'"):
            parse("(x : (int, bool))")

    @pytest.mark.parametrize(
        "source",
        [
            "int",
            "'a -> 'b",
            "int * bool * unit",
            "(int, bool) sum par",
            "int ref",
            "('a -> 'b par) -> 'a par -> 'b par",
        ],
    )
    def test_render_round_trip(self, source):
        annotation = self._annot(source)
        again = parse(f"(x : {render_type_expr(annotation)})").annotation
        assert again == annotation


class TestConversion:
    def test_shared_variables(self):
        converted = type_expr_to_type(TEArrow(TEVar("a"), TEVar("a")))
        assert isinstance(converted, TArrow)
        assert converted.domain == converted.codomain

    def test_distinct_variables(self):
        converted = type_expr_to_type(TEArrow(TEVar("a"), TEVar("b")))
        assert converted.domain != converted.codomain

    def test_fresh_per_call(self):
        first = type_expr_to_type(TEVar("a"))
        second = type_expr_to_type(TEVar("a"))
        assert first != second


class TestTypingWithAscriptions:
    def test_confirming_annotation(self):
        assert render_type(infer(parse("(1 + 1 : int)")).type) == "int"

    def test_annotation_can_restrict(self):
        # Without the annotation: 'a -> 'a; with it: int -> int.
        ct = infer(parse("(fun x -> x : int -> int)"))
        assert render_type(ct.type) == "int -> int"

    def test_wrong_annotation_rejected(self):
        with pytest.raises(UnificationError):
            infer(parse("(1 : bool)"))

    def test_vector_annotation(self):
        ct = infer(parse("(mkpar (fun i -> i) : int par)"))
        assert render_type(ct.type) == "int par"

    def test_nested_par_annotation_rejected(self):
        with pytest.raises((NestingError, UnificationError)):
            infer(parse("(mkpar (fun i -> i) : int par par)"))

    def test_annotating_nc_with_nested_par_rejected(self):
        # nc () : 'a — the annotation alone forces the nesting.
        with pytest.raises(NestingError):
            infer(parse("(nc () : int par par)"))

    def test_annotation_interacts_with_locality(self):
        # Annotating mkpar's body type as a vector must fail.
        with pytest.raises((NestingError, UnificationError)):
            infer(parse("mkpar (fun i -> (nc () : bool par))"))

    def test_polymorphic_annotation_keeps_generality(self):
        from repro.core.infer import infer_scheme

        scheme = infer_scheme(parse("(fun x -> x : 'a -> 'a)"))
        assert render_type(scheme.body.type) == "'a -> 'a"
        assert len(scheme.quantified) == 1

    def test_milner_handles_annotations(self):
        assert render_type(milner_infer(parse("(1 : int)"))) == "int"
        with pytest.raises(TypingError):
            milner_infer(parse("(true : int)"))

    def test_ref_annotation(self):
        assert render_type(infer(parse("(ref 1 : int ref)")).type) == "int ref"


class TestOperationalErasure:
    def test_smallstep_erases(self):
        assert step(parse("(1 : int)"), 1) == parse("1")

    def test_evaluation_through_annotations(self):
        assert evaluate(parse("((2 : int) + (3 : int) : int)"), 1) == parse("5")

    def test_bigstep_transparent(self):
        assert run(parse("(41 + 1 : int)"), 1) == 42

    def test_annotation_in_function_position(self):
        assert run(parse("(fun x -> x * 2 : int -> int) 21"), 1) == 42

    def test_pretty_round_trip(self):
        source = "(mkpar (fun i -> i) : int par)"
        expr = parse(source)
        assert parse(pretty(expr)) == expr
        assert pretty(expr) == source
