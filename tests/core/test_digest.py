"""Program digests: canonical, location-insensitive, structure-sensitive."""

from __future__ import annotations

import pytest

from repro.core.digest import chain_digest, expr_digest, program_digest
from repro.lang.parser import parse_program


def digest(source: str) -> str:
    return expr_digest(parse_program(source))


def test_digest_is_deterministic():
    assert digest("1 + 2") == digest("1 + 2")


def test_digest_ignores_layout_and_comments():
    compact = digest("let f = fun x -> x + 1 in f 2")
    spaced = digest(
        """
        let f =
            fun x ->
                x + 1
        in f 2
        """
    )
    assert compact == spaced


def test_digest_distinguishes_structure():
    assert digest("1 + 2") != digest("2 + 1")
    assert digest("fun x -> x") != digest("fun y -> y")  # names matter
    assert digest("(1, 2)") != digest("(1, 2, 3)")
    assert digest("if true then 1 else 2") != digest("if true then 2 else 1")


def test_digest_distinguishes_annotations():
    assert digest("fun x -> x") != digest("(fun x -> x : int -> int)")


def test_digest_covers_parallel_constructs():
    local = digest("mkpar (fun i -> i)")
    shifted = digest("mkpar (fun i -> i + 1)")
    assert local != shifted


def test_constants_do_not_collide_across_kinds():
    # 1 vs true: bool is an int subclass in Python, so a naive rendering
    # would merge them.
    assert digest("if true then 1 else 1") != digest("if true then true else 1")


def test_program_digest_mixes_execution_parameters():
    expr = parse_program("mkpar (fun i -> i)")
    base = program_digest(expr, p=4)
    assert program_digest(expr, p=8) != base
    assert program_digest(expr, p=4, g=3) != base
    assert program_digest(expr, p=4, l=100) != base
    assert program_digest(expr, p=4, backend="thread") != base
    assert program_digest(expr, p=4, engine="compiled") != base
    assert program_digest(expr, p=4, faults="drop:put:0.5:seed=1") != base
    assert program_digest(expr, p=4, typed=False) != base
    assert program_digest(expr, p=4, use_prelude=False) != base
    assert program_digest(expr, p=4) == base


def test_chain_digest_depends_on_every_link():
    t0 = chain_digest("root", "a")
    assert chain_digest(t0, "b") != chain_digest(chain_digest("root", "x"), "b")
    assert chain_digest(t0, "b") != chain_digest(t0, "c")
    # Part boundaries matter: ("ab", "c") != ("a", "bc").
    assert chain_digest("root", "ab", "c") != chain_digest("root", "a", "bc")


def test_digest_handles_deep_programs_without_recursion():
    deep = "1" + (" + 1" * 5000)
    assert len(digest(deep)) == 64


def test_digest_rejects_foreign_payloads():
    with pytest.raises(TypeError):
        expr_digest(object())  # type: ignore[arg-type]
