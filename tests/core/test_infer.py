"""Tests for the inference engine — the rules of Figure 7 and all the
worked examples of the paper (sections 2.1 and 4, Figures 8-10)."""

from __future__ import annotations

import pytest

from repro.core.constraints import CLoc, FALSE, TRUE, imp, is_satisfiable
from repro.core.errors import (
    NestingError,
    TypingError,
    UnboundVariableError,
    UnificationError,
    UnknownPrimitiveError,
)
from repro.core.infer import infer, infer_scheme, infer_with_derivation, typechecks
from repro.core.prelude_env import prelude_env
from repro.core.schemes import TypeEnv, mono
from repro.core.types import (
    BOOL,
    INT,
    TArrow,
    TPair,
    TPar,
    TTuple,
    TVar,
    UNIT_TYPE,
    render_type,
)
from repro.lang.ast import ParVec, Const
from repro.lang.parser import parse_expression as parse, parse_program
from repro.lang.prelude import with_prelude


def type_of(source: str, env=None) -> str:
    return render_type(infer(parse(source), env).type)


def rejected(source: str, env=None) -> bool:
    try:
        infer(parse(source), env)
        return False
    except NestingError:
        return True


class TestBaseRules:
    def test_const_int(self):
        assert type_of("42") == "int"

    def test_const_bool(self):
        assert type_of("true") == "bool"

    def test_const_unit(self):
        assert type_of("()") == "unit"

    def test_unbound_variable(self):
        with pytest.raises(UnboundVariableError, match="'x'"):
            infer(parse("x"))

    def test_var_from_environment(self):
        env = TypeEnv.empty().extend("x", mono(INT))
        assert type_of("x + 1", env) == "int"

    def test_primitive(self):
        assert type_of("(+)") == "int * int -> int"


class TestFunAndApp:
    def test_identity(self):
        assert type_of("fun x -> x") == "'a -> 'a"

    def test_const_function(self):
        assert type_of("fun x -> 1") == "'a -> int"

    def test_application(self):
        assert type_of("(fun x -> x + 1) 2") == "int"

    def test_higher_order(self):
        assert type_of("fun f -> f 1") == "(int -> 'a) -> 'a"

    def test_application_type_clash(self):
        with pytest.raises(UnificationError):
            infer(parse("1 2"))

    def test_argument_clash(self):
        with pytest.raises(UnificationError):
            infer(parse("(fun x -> x + 1) true"))

    def test_occurs_self_application(self):
        with pytest.raises(TypingError):
            infer(parse("fun x -> x x"))


class TestLetPolymorphism:
    def test_let_simple(self):
        assert type_of("let x = 1 in x + x") == "int"

    def test_polymorphic_reuse(self):
        assert type_of("let id = fun x -> x in (id 1, id true)") == "int * bool"

    def test_shadowing(self):
        assert type_of("let x = 1 in let x = true in x") == "bool"

    def test_generalization_respects_environment(self):
        # Classic: the lambda-bound f stays monomorphic.
        with pytest.raises(UnificationError):
            infer(parse("fun f -> (f 1, f true)"))

    def test_let_scheme_display(self):
        scheme = infer_scheme(parse("fun x -> fun y -> x"))
        assert str(scheme).startswith("forall")


class TestConditionals:
    def test_if(self):
        assert type_of("if true then 1 else 2") == "int"

    def test_if_branches_must_agree(self):
        with pytest.raises(UnificationError):
            infer(parse("if true then 1 else false"))

    def test_if_condition_must_be_bool(self):
        with pytest.raises(UnificationError):
            infer(parse("if 1 then 2 else 3"))

    def test_ifat_requires_bool_par(self):
        with pytest.raises(UnificationError):
            infer(parse("if 1 at 0 then mkpar (fun i -> i) else mkpar (fun i -> i)"))

    def test_ifat_global_result_ok(self):
        source = "if mkpar (fun i -> true) at 0 then mkpar (fun i -> 1) else mkpar (fun i -> 2)"
        assert type_of(source) == "int par"

    def test_ifat_local_result_rejected(self):
        # (Ifat) adds L(tau) => False: returning an int is rejected.
        assert rejected("if mkpar (fun i -> true) at 0 then 1 else 2")

    def test_ifat_index_must_be_int(self):
        with pytest.raises(UnificationError):
            infer(parse("if mkpar (fun i -> true) at true then mkpar (fun i -> 1) else mkpar (fun i -> 1)"))


class TestParallelPrimitives:
    def test_mkpar(self):
        assert type_of("mkpar (fun i -> i)") == "int par"

    def test_mkpar_bool(self):
        assert type_of("mkpar (fun i -> i = 0)") == "bool par"

    def test_apply(self):
        source = "apply (mkpar (fun i -> fun x -> x + i), mkpar (fun i -> 0))"
        assert type_of(source) == "int par"

    def test_put(self):
        source = "put (mkpar (fun i -> fun dst -> i))"
        assert type_of(source) == "(int -> int) par"

    def test_put_with_nc(self):
        source = "put (mkpar (fun i -> fun dst -> if dst = 0 then i else nc ()))"
        assert type_of(source) == "(int -> int) par"

    def test_nproc(self):
        assert type_of("mkpar (fun i -> nproc - i)") == "int par"

    def test_mkpar_argument_must_take_int(self):
        with pytest.raises(UnificationError):
            infer(parse("mkpar (fun b -> b && true)"))


class TestPaperRejections:
    """Every negative example from sections 2.1 and 4."""

    def test_example1_nested_vector_type(self):
        source = """
            let bcast = fun n -> fun vec ->
              let tosend = apply (mkpar (fun i -> fun v -> fun dst ->
                                           if i = n then v else nc ()), vec) in
              apply (put tosend, mkpar (fun i -> n)) in
            mkpar (fun pid -> bcast pid (mkpar (fun i -> i)))
        """
        assert rejected(source)

    def test_example2_invisible_nesting(self):
        assert rejected("mkpar (fun pid -> let this = mkpar (fun i -> i) in pid)")

    def test_direct_nesting(self):
        assert rejected("mkpar (fun pid -> mkpar (fun i -> i))")

    def test_projection_case_1_two_usual(self):
        assert type_of("fst (1, 2)") == "int"

    def test_projection_case_2_two_parallel(self):
        assert (
            type_of("fst (mkpar (fun i -> i), mkpar (fun i -> i))") == "int par"
        )

    def test_projection_case_3_parallel_and_usual(self):
        assert type_of("fst (mkpar (fun i -> i), 1)") == "int par"

    def test_projection_case_4_usual_and_parallel(self):
        assert rejected("fst (1, mkpar (fun i -> i))")

    def test_snd_mirror_of_case_4(self):
        assert rejected("snd (mkpar (fun i -> i), 1)")

    def test_snd_mirror_of_case_3(self):
        assert type_of("snd (1, mkpar (fun i -> i))") == "int par"

    def test_mismatched_barriers_example(self):
        source = """
            let vec1 = mkpar (fun pid -> pid) in
            let vec2 = put (mkpar (fun pid -> fun src -> 1 + src)) in
            let c1 = (vec1, 1) in let c2 = (vec2, 2) in
            mkpar (fun pid -> if pid < (nproc / 2) then snd c1 else snd c2)
        """
        assert rejected(source)

    def test_let_binding_global_with_local_body(self):
        # The (Let) rule's L(tau2) => L(tau1) is deliberately conservative:
        # even at top level, discarding a vector is rejected.
        assert rejected("let vec = mkpar (fun i -> i) in 42")

    def test_put_inside_component(self):
        assert rejected("mkpar (fun pid -> put (mkpar (fun i -> fun dst -> i)))")


class TestParallelIdentity:
    """Section 4's example: constraints beyond the basic ones."""

    def test_scheme_has_global_only_constraint(self):
        scheme = infer_scheme(
            parse("fun x -> if mkpar (fun i -> true) at 0 then x else x")
        )
        body = scheme.body
        assert render_type(body.type) == "'a -> 'a"
        alpha = body.type.domain.name
        assert body.constraint == imp(CLoc(alpha), FALSE)

    def test_parallel_identity_accepts_vectors(self):
        source = (
            "let parid = fun x -> if mkpar (fun i -> true) at 0 then x else x in "
            "parid (mkpar (fun i -> i))"
        )
        assert type_of(source) == "int par"

    def test_parallel_identity_rejects_usual_values(self):
        source = (
            "let parid = fun x -> if mkpar (fun i -> true) at 0 then x else x in "
            "parid 1"
        )
        assert rejected(source)


class TestPreludeSchemes:
    """The prelude functions get their textbook BSMLlib types."""

    @pytest.mark.parametrize(
        "name,expected_type,expected_constraint",
        [
            ("replicate", "'a -> 'a par", "L('a)"),
            ("parfun", "('a -> 'b) -> 'a par -> 'b par", "L('a) /\\ L('b)"),
            ("bcast", "int -> 'a par -> 'a par", "L('a)"),
            ("shift", "int -> 'a par -> 'a par", "L('a)"),
            ("totex", "'a par -> (int -> 'a) par", "L('a)"),
            ("fold", "('a * 'a -> 'a) -> 'a par -> 'a par", "L('a)"),
            ("scan", "('a * 'a -> 'a) -> 'a par -> 'a par", "L('a)"),
        ],
    )
    def test_prelude_scheme(self, name, expected_type, expected_constraint):
        from repro.core.constraints import render_constraint
        from repro.core.types import _variable_display_names

        scheme = prelude_env().lookup(name)
        assert scheme is not None
        names = _variable_display_names(scheme.body.type)
        assert render_type(scheme.body.type, names) == expected_type
        assert render_constraint(scheme.body.constraint, names) == expected_constraint

    def test_using_prelude_from_environment(self):
        ct = infer(parse("bcast 0 (mkpar (fun i -> i))"), prelude_env())
        assert render_type(ct.type) == "int par"

    def test_prelude_cannot_build_nesting(self):
        assert rejected("replicate (mkpar (fun i -> i))", prelude_env())
        assert rejected("bcast 0 (mkpar (fun i -> mkpar (fun j -> j)))", prelude_env())


class TestTuplesExtension:
    def test_triple(self):
        assert type_of("(1, true, ())") == "int * bool * unit"

    def test_tuple_with_vector(self):
        assert type_of("(1, true, mkpar (fun i -> i))") == "int * bool * int par"

    def test_nested_vector_in_tuple_rejected(self):
        assert rejected("mkpar (fun i -> (1, 2, mkpar (fun j -> j)))")


class TestExtendedExpressions:
    def test_parvec_types_at_par(self):
        ct = infer(ParVec((Const(1), Const(2))))
        assert render_type(ct.type) == "int par"

    def test_parvec_components_must_agree(self):
        with pytest.raises(UnificationError):
            infer(ParVec((Const(1), Const(True))))

    def test_nested_parvec_rejected(self):
        inner = ParVec((Const(1), Const(2)))
        with pytest.raises(NestingError):
            infer(ParVec((inner, inner)))


class TestDerivations:
    def test_success_has_conclusion(self):
        ct, derivation = infer_with_derivation(parse("1 + 1"))
        assert derivation.conclusion is not None
        assert render_type(derivation.conclusion.type) == "int"

    def test_rule_names(self):
        _, derivation = infer_with_derivation(parse("let x = 1 in fun y -> x"))
        rules = {derivation.rule}
        stack = list(derivation.premises)
        while stack:
            node = stack.pop()
            rules.add(node.rule)
            stack.extend(node.premises)
        assert {"Let", "Const", "Fun", "Var"} <= rules

    def test_failure_carries_derivation(self):
        with pytest.raises(NestingError) as error:
            infer_with_derivation(parse("fst (1, mkpar (fun i -> i))"))
        assert error.value.derivation.conclusion is None
        assert error.value.derivation.rule == "App"


class TestPruning:
    def test_pruned_and_unpruned_agree_on_type(self):
        expr = with_prelude(parse_program("bcast 0 (mkpar (fun i -> i))"))
        pruned = infer(expr, prune=True)
        full = infer(expr, prune=False)
        assert render_type(pruned.type) == render_type(full.type)

    def test_pruned_constraint_mentions_only_type_vars(self):
        from repro.core.constraints import constraint_atoms
        from repro.core.types import free_type_vars

        expr = with_prelude(parse_program("let i2 = fun x -> x in i2"))
        ct = infer(expr, prune=True)
        assert constraint_atoms(ct.constraint) <= free_type_vars(ct.type)

    @pytest.mark.parametrize("source", [
        "mkpar (fun pid -> let this = mkpar (fun i -> i) in pid)",
        "fst (1, mkpar (fun i -> i))",
    ])
    def test_pruning_does_not_change_rejection(self, source):
        for prune in (True, False):
            with pytest.raises(NestingError):
                infer(parse(source), prune=prune)


class TestMiscErrors:
    def test_unknown_primitive(self):
        from repro.lang.ast import Prim

        with pytest.raises(UnknownPrimitiveError):
            infer(Prim("made_up"))

    def test_typechecks_predicate(self):
        assert typechecks(parse("1 + 1"))
        assert not typechecks(parse("1 + true"))
        assert not typechecks(parse("fst (1, mkpar (fun i -> i))"))
