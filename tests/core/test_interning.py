"""Tests for hash-consing of type/constraint nodes and the solver caches.

The performance layer must be *invisible* semantically: interned nodes
behave exactly like structurally-compared ones, and every memoized solver
function agrees with its uncached body on arbitrary inputs.
"""

from __future__ import annotations

import pytest

from repro.core.constraints import (
    FALSE,
    TRUE,
    CAnd,
    CImp,
    CLoc,
    basic_constraint,
    conj,
    imp,
    is_satisfiable,
    is_satisfiable_branching,
    is_valid,
    locality,
    solve,
)
from repro.core.types import BOOL, INT, TArrow, TPair, TPar, TTuple, TVar
from repro.testing.generators import ProgramGenerator


class TestTypeInterning:
    def test_base_types_are_pooled(self):
        assert TArrow(INT, BOOL) is TArrow(INT, BOOL)
        assert TPair(INT, INT) is TPair(INT, INT)
        assert TPar(INT) is TPar(INT)
        assert TVar("a") is TVar("a")

    def test_distinct_structures_stay_distinct(self):
        assert TArrow(INT, BOOL) is not TArrow(BOOL, INT)
        assert TVar("a") is not TVar("b")

    def test_equality_still_structural(self):
        # Identity-based __eq__ coincides with structural equality because
        # every construction path yields the pooled representative.
        assert TArrow(TVar("a"), TPar(INT)) == TArrow(TVar("a"), TPar(INT))
        assert TArrow(INT, INT) != TArrow(INT, BOOL)

    def test_nested_interning(self):
        deep1 = TArrow(TPair(INT, TVar("x")), TPar(TVar("x")))
        deep2 = TArrow(TPair(INT, TVar("x")), TPar(TVar("x")))
        assert deep1 is deep2
        assert deep1.domain is deep2.domain

    def test_validation_still_runs(self):
        with pytest.raises(ValueError):
            TTuple((INT, BOOL))  # tuples need >= 3 components

    def test_usable_in_sets_and_dicts(self):
        pool = {TArrow(INT, INT), TArrow(INT, INT), TArrow(INT, BOOL)}
        assert len(pool) == 2


class TestConstraintInterning:
    def test_atoms_are_pooled(self):
        assert CLoc("a") is CLoc("a")
        assert CLoc("a") is not CLoc("b")

    def test_compounds_are_pooled(self):
        left = conj(CLoc("a"), CLoc("b"))
        right = conj(CLoc("b"), CLoc("a"))
        assert left is right  # conj builds the same frozenset
        assert imp(CLoc("a"), FALSE) is imp(CLoc("a"), FALSE)

    def test_singletons(self):
        from repro.core.constraints import CFalse, CTrue

        assert CTrue() is TRUE
        assert CFalse() is FALSE

    def test_validation_still_runs(self):
        with pytest.raises(ValueError):
            CAnd(frozenset({CLoc("a")}))  # needs >= 2 conjuncts


def _constraint_corpus(seed: int, count: int = 40):
    """Generated constraints exercising atoms, conjunction, implication."""
    generator = ProgramGenerator(seed=seed)
    constraints = []
    for index in range(count):
        ty = generator.random_type(parallel=True)
        atom = locality(ty)
        other = locality(generator.random_type(parallel=index % 2 == 0))
        constraints.extend(
            [
                atom,
                basic_constraint(ty),
                conj(atom, other),
                imp(atom, other),
                imp(conj(atom, other), basic_constraint(ty)),
            ]
        )
    return constraints


class TestCachedSolverAgreement:
    """Memoized solver functions must agree with their uncached bodies."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_solve_agrees_with_uncached(self, seed):
        for constraint in _constraint_corpus(seed):
            assert solve(constraint) == solve.__wrapped__(constraint)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_satisfiability_agrees_with_branching_reference(self, seed):
        for constraint in _constraint_corpus(seed):
            assert is_satisfiable(constraint) == is_satisfiable_branching(
                constraint
            )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_is_valid_agrees_with_uncached(self, seed):
        for constraint in _constraint_corpus(seed):
            assert is_valid(constraint) == is_valid.__wrapped__(constraint)

    def test_repeated_calls_hit_the_cache(self):
        from repro import perf

        constraint = imp(CLoc("cache_probe"), conj(CLoc("x"), CLoc("y")))
        solve(constraint)  # prime
        with perf.collect() as stats:
            for _ in range(5):
                solve(constraint)
        assert stats.hit_rate("constraints.solve") == 1.0
