"""Tests for the simple-type algebra (section 4)."""

from __future__ import annotations

import pytest

from repro.core.types import (
    BOOL,
    INT,
    TArrow,
    TBase,
    TPair,
    TPar,
    TTuple,
    TVar,
    UNIT_TYPE,
    apply_type_subst,
    arrow,
    contains_par,
    free_type_vars,
    fresh_tvar,
    has_nested_par,
    occurs_in,
    render_type,
)


class TestConstruction:
    def test_base_types_are_distinct(self):
        assert INT != BOOL != UNIT_TYPE

    def test_arrow_helper_right_nests(self):
        assert arrow(INT, BOOL, INT) == TArrow(INT, TArrow(BOOL, INT))

    def test_arrow_single(self):
        assert arrow(INT) == INT

    def test_arrow_empty_raises(self):
        with pytest.raises(ValueError):
            arrow()

    def test_tuple_needs_three(self):
        with pytest.raises(ValueError):
            TTuple((INT, BOOL))

    def test_fresh_tvars_are_distinct(self):
        assert fresh_tvar() != fresh_tvar()

    def test_types_are_hashable(self):
        {TPar(INT), TArrow(INT, BOOL), TPair(INT, INT)}


class TestFreeVars:
    def test_base_has_none(self):
        assert free_type_vars(INT) == frozenset()

    def test_var(self):
        assert free_type_vars(TVar("a")) == {"a"}

    def test_nested(self):
        ty = TArrow(TVar("a"), TPair(TVar("b"), TPar(TVar("a"))))
        assert free_type_vars(ty) == {"a", "b"}


class TestSubstitution:
    def test_hit(self):
        assert apply_type_subst({"a": INT}, TVar("a")) == INT

    def test_miss(self):
        assert apply_type_subst({"a": INT}, TVar("b")) == TVar("b")

    def test_structural(self):
        ty = TArrow(TVar("a"), TPar(TVar("a")))
        expected = TArrow(BOOL, TPar(BOOL))
        assert apply_type_subst({"a": BOOL}, ty) == expected

    def test_tuple(self):
        ty = TTuple((TVar("a"), INT, TVar("a")))
        assert apply_type_subst({"a": BOOL}, ty) == TTuple((BOOL, INT, BOOL))


class TestPredicates:
    def test_occurs_in(self):
        assert occurs_in("a", TPar(TVar("a")))
        assert not occurs_in("a", TPar(TVar("b")))

    def test_contains_par(self):
        assert contains_par(TArrow(INT, TPar(INT)))
        assert not contains_par(TArrow(INT, INT))

    def test_nested_par_detection(self):
        assert has_nested_par(TPar(TPar(INT)))
        assert has_nested_par(TPar(TPair(INT, TPar(BOOL))))
        assert has_nested_par(TPar(TArrow(INT, TPar(INT))))
        assert not has_nested_par(TPar(INT))
        assert not has_nested_par(TPair(TPar(INT), TPar(BOOL)))


class TestRendering:
    @pytest.mark.parametrize(
        "ty,text",
        [
            (INT, "int"),
            (TVar("x"), "'a"),
            (TArrow(INT, BOOL), "int -> bool"),
            (TArrow(TArrow(INT, INT), BOOL), "(int -> int) -> bool"),
            (TArrow(INT, TArrow(INT, BOOL)), "int -> int -> bool"),
            (TPair(INT, BOOL), "int * bool"),
            (TPair(TPair(INT, INT), BOOL), "(int * int) * bool"),
            (TPar(INT), "int par"),
            (TPar(TPar(INT)), "int par par"),
            (TPar(TArrow(INT, INT)), "(int -> int) par"),
            (TArrow(TPair(INT, INT), INT), "int * int -> int"),
            (TPair(TPar(INT), INT), "int par * int"),
            (TTuple((INT, BOOL, INT)), "int * bool * int"),
        ],
    )
    def test_render(self, ty, text):
        assert render_type(ty) == text

    def test_variables_named_in_order(self):
        ty = TArrow(TVar("zz"), TArrow(TVar("aa"), TVar("zz")))
        assert render_type(ty) == "'a -> 'b -> 'a"

    def test_str_uses_render(self):
        assert str(TPar(INT)) == "int par"

    def test_explicit_names(self):
        assert render_type(TVar("k"), {"k": "'z"}) == "'z"
