"""Tests for the constraint language and the ``Solve`` machinery."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.constraints import (
    FALSE,
    TRUE,
    CAnd,
    CImp,
    CLoc,
    assign,
    basic_constraint,
    conj,
    constraint_atoms,
    evaluate,
    imp,
    is_satisfiable,
    is_satisfiable_branching,
    is_unsatisfiable,
    is_valid,
    locality,
    render_constraint,
    satisfying_assignments,
    simplify,
    solve,
    subst_constraint,
)
from repro.core.types import BOOL, INT, TArrow, TPair, TPar, TTuple, TVar


class TestSmartConstructors:
    def test_conj_unit(self):
        assert conj() == TRUE
        assert conj(TRUE, TRUE) == TRUE

    def test_conj_absorbs_false(self):
        assert conj(CLoc("a"), FALSE) == FALSE

    def test_conj_dedups(self):
        assert conj(CLoc("a"), CLoc("a")) == CLoc("a")

    def test_conj_flattens(self):
        nested = conj(conj(CLoc("a"), CLoc("b")), CLoc("c"))
        assert isinstance(nested, CAnd)
        assert nested.conjuncts == frozenset({CLoc("a"), CLoc("b"), CLoc("c")})

    def test_conj_is_commutative_by_construction(self):
        assert conj(CLoc("a"), CLoc("b")) == conj(CLoc("b"), CLoc("a"))

    def test_imp_true_antecedent(self):
        assert imp(TRUE, CLoc("a")) == CLoc("a")

    def test_imp_false_antecedent(self):
        assert imp(FALSE, CLoc("a")) == TRUE

    def test_imp_true_consequent(self):
        assert imp(CLoc("a"), TRUE) == TRUE

    def test_imp_reflexive(self):
        assert imp(CLoc("a"), CLoc("a")) == TRUE

    def test_imp_to_false_kept(self):
        constraint = imp(CLoc("a"), FALSE)
        assert isinstance(constraint, CImp)

    def test_cand_requires_two(self):
        with pytest.raises(ValueError):
            CAnd(frozenset({CLoc("a")}))


class TestLocality:
    """The paper's L(tau) rules."""

    def test_base_is_local(self):
        assert locality(INT) == TRUE

    def test_var_is_an_atom(self):
        assert locality(TVar("a")) == CLoc("a")

    def test_par_is_never_local(self):
        assert locality(TPar(INT)) == FALSE

    def test_arrow_conjoins(self):
        assert locality(TArrow(TVar("a"), TVar("b"))) == conj(CLoc("a"), CLoc("b"))

    def test_pair_conjoins(self):
        assert locality(TPair(TVar("a"), INT)) == CLoc("a")

    def test_arrow_with_par_side_is_false(self):
        assert locality(TArrow(TVar("a"), TPar(INT))) == FALSE

    def test_tuple(self):
        ty = TTuple((TVar("a"), TVar("b"), INT))
        assert locality(ty) == conj(CLoc("a"), CLoc("b"))


class TestBasicConstraints:
    """The paper's C_tau rules."""

    def test_atomic(self):
        assert basic_constraint(INT) == TRUE
        assert basic_constraint(TVar("a")) == TRUE

    def test_par_requires_local_content(self):
        assert basic_constraint(TPar(TVar("a"))) == CLoc("a")

    def test_nested_par_is_rejected_outright(self):
        assert basic_constraint(TPar(TPar(INT))) == FALSE

    def test_arrow_rule(self):
        # C_(a -> b) = C_a /\ C_b /\ (L(b) => L(a))
        constraint = basic_constraint(TArrow(TVar("a"), TVar("b")))
        assert constraint == imp(CLoc("b"), CLoc("a"))

    def test_arrow_rule_fires_fourth_projection(self):
        # The type (int * int par) -> int: its basic constraint must be
        # unsatisfiable (L(int) => L(int par) = True => False).
        ty = TArrow(TPair(INT, TPar(INT)), INT)
        assert solve(basic_constraint(ty)) == FALSE

    def test_arrow_rule_allows_third_projection(self):
        # (int par * int) -> int par : L(int par) => ... = False => ... = True
        ty = TArrow(TPair(TPar(INT), INT), TPar(INT))
        assert solve(basic_constraint(ty)) == TRUE

    def test_pair_conjoins(self):
        ty = TPair(TPar(TVar("a")), TPar(TVar("b")))
        assert basic_constraint(ty) == conj(CLoc("a"), CLoc("b"))


class TestSemantics:
    def test_evaluate_atom(self):
        assert evaluate(CLoc("a"), {"a": True})
        assert not evaluate(CLoc("a"), {"a": False})

    def test_evaluate_implication(self):
        constraint = CImp(CLoc("a"), CLoc("b"))
        assert evaluate(constraint, {"a": False, "b": False})
        assert not evaluate(constraint, {"a": True, "b": False})

    def test_evaluate_missing_atom_raises(self):
        with pytest.raises(KeyError):
            evaluate(CLoc("a"), {})

    def test_assign(self):
        constraint = conj(CLoc("a"), imp(CLoc("b"), FALSE))
        assert assign(constraint, "a", True) == imp(CLoc("b"), FALSE)
        assert assign(constraint, "a", False) == FALSE

    def test_satisfiable_examples(self):
        assert is_satisfiable(imp(CLoc("a"), FALSE))  # set a non-local
        assert is_satisfiable(conj(CLoc("a"), CLoc("b")))
        assert not is_satisfiable(conj(CLoc("a"), imp(CLoc("a"), FALSE)))

    def test_valid_examples(self):
        assert is_valid(TRUE)
        assert is_valid(imp(CLoc("a"), CLoc("a")))
        assert not is_valid(CLoc("a"))

    def test_solve_reduces_ground(self):
        assert solve(imp(TRUE, FALSE)) == FALSE
        assert solve(imp(FALSE, TRUE)) == TRUE

    def test_solve_unsat_to_false(self):
        assert solve(conj(CLoc("a"), imp(CLoc("a"), FALSE))) == FALSE

    def test_solve_keeps_residual(self):
        residual = solve(imp(CLoc("a"), CLoc("b")))
        assert residual == imp(CLoc("a"), CLoc("b"))

    def test_satisfying_assignments(self):
        constraint = imp(CLoc("a"), CLoc("b"))
        assignments = satisfying_assignments(constraint)
        assert {"a": True, "b": False} not in assignments
        assert len(assignments) == 3


class TestSubstitution:
    def test_atom_rewrites_to_locality(self):
        assert subst_constraint({"a": TPar(INT)}, CLoc("a")) == FALSE
        assert subst_constraint({"a": INT}, CLoc("a")) == TRUE
        assert subst_constraint({"a": TVar("b")}, CLoc("a")) == CLoc("b")

    def test_structural(self):
        constraint = imp(CLoc("a"), CLoc("b"))
        result = subst_constraint({"a": INT, "b": TPar(INT)}, constraint)
        assert result == FALSE  # True => False

    def test_untouched_atoms_stay(self):
        constraint = conj(CLoc("a"), CLoc("b"))
        assert subst_constraint({"a": INT}, constraint) == CLoc("b")


# -- Horn fast path vs complete branching ------------------------------------

_atoms = st.sampled_from(["a", "b", "c", "d"])


def _atom_conj(draw_atoms):
    return conj(*[CLoc(name) for name in draw_atoms])


_sides = st.lists(_atoms, min_size=0, max_size=3).map(_atom_conj)
_clauses = st.one_of(
    _atoms.map(CLoc),
    st.tuples(_sides, st.one_of(_sides, st.just(FALSE))).map(
        lambda pair: imp(pair[0], pair[1])
    ),
)
_constraints = st.lists(_clauses, min_size=0, max_size=6).map(lambda cs: conj(*cs))


@given(_constraints)
def test_horn_path_agrees_with_branching(constraint):
    assert is_satisfiable(constraint) == is_satisfiable_branching(constraint)


@given(_constraints)
def test_solve_false_iff_no_satisfying_assignment(constraint):
    expected = bool(satisfying_assignments(constraint)) or constraint == TRUE
    assert is_satisfiable(constraint) == expected


@given(_constraints)
def test_simplify_preserves_semantics(constraint):
    simplified = simplify(constraint)
    atoms = constraint_atoms(constraint) | constraint_atoms(simplified)
    names = sorted(atoms)
    for mask in range(1 << len(names)):
        assignment = {n: bool(mask >> i & 1) for i, n in enumerate(names)}
        assert evaluate(constraint, assignment) == evaluate(simplified, assignment)


class TestRendering:
    def test_true_false(self):
        assert render_constraint(TRUE) == "True"
        assert render_constraint(FALSE) == "False"

    def test_atom(self):
        assert render_constraint(CLoc("a")) == "L('a)"

    def test_implication(self):
        assert render_constraint(imp(CLoc("a"), FALSE)) == "L('a) => False"

    def test_conjunction_sorted(self):
        text = render_constraint(conj(CLoc("b"), CLoc("a")))
        assert text == "L('a) /\\ L('b)"

    def test_names_mapping(self):
        assert render_constraint(CLoc("t42"), {"t42": "'z"}) == "L('z)"


class TestSimplifyAndHornMemoization:
    """``simplify`` and ``horn_satisfiable`` are memoized on interned
    node identity in eviction-counting :class:`BoundedMemo` caches, and
    surface through the same ``--stats``/``/v1/stats`` machinery as the
    other solver caches."""

    def _distinct_constraint(self, i: int):
        # Distinct interned nodes per i: an implication chain over
        # uniquely-named atoms (never reused elsewhere in the suite).
        return imp(CLoc(f"memo{i}a"), conj(CLoc(f"memo{i}b"), CLoc(f"memo{i}c")))

    def test_simplify_hits_on_repeated_interned_node(self):
        node = self._distinct_constraint(10_000)
        simplify.cache_clear()
        first = simplify(node)
        info_after_miss = simplify.cache_info()
        second = simplify(node)
        info_after_hit = simplify.cache_info()
        assert first is second
        assert info_after_hit.hits == info_after_miss.hits + 1
        assert info_after_hit.misses == info_after_miss.misses

    def test_horn_satisfiable_hits_on_repeated_interned_node(self):
        from repro.core.constraints import horn_satisfiable

        node = self._distinct_constraint(20_000)
        horn_satisfiable.cache_clear()
        first = horn_satisfiable(node)
        misses = horn_satisfiable.cache_info().misses
        second = horn_satisfiable(node)
        assert first == second is True
        assert horn_satisfiable.cache_info().misses == misses
        assert horn_satisfiable.cache_info().hits >= 1

    def test_simplify_evicts_under_small_bound(self):
        from repro.core.constraints import SOLVER_CACHE_SIZE

        import repro.perf as perf

        perf.resize_registered(8, prefix="constraints.simplify")
        try:
            simplify.cache_clear()
            evictions_before = simplify.evictions
            for i in range(30_000, 30_064):
                simplify(self._distinct_constraint(i))
            assert simplify.evictions > evictions_before
            # Capacity is respected: at most 8 live entries.
            assert simplify.cache_info().currsize <= 8
        finally:
            perf.resize_registered(SOLVER_CACHE_SIZE, prefix="constraints.simplify")
            simplify.cache_clear()

    def test_both_caches_registered_for_stats(self):
        import repro.perf as perf

        names = set(perf.registered_caches())
        assert "constraints.simplify" in names
        assert "constraints.horn_satisfiable" in names

    def test_counters_surface_in_stats_render(self):
        import repro.perf as perf

        from repro.core.constraints import horn_satisfiable

        with perf.collect() as stats:
            for i in range(40_000, 40_004):
                simplify(self._distinct_constraint(i))
                simplify(self._distinct_constraint(i))
                horn_satisfiable(self._distinct_constraint(i))
        reports = {report.name: report for report in stats.cache_reports()}
        assert reports["constraints.simplify"].hits >= 4
        assert reports["constraints.simplify"].misses >= 4
        rendered = stats.render()
        assert "constraints.simplify" in rendered
        assert "constraints.horn_satisfiable" in rendered
