"""Tests for the differential backend-conformance harness itself."""

from __future__ import annotations

import pytest

from repro.bsp.cost import BspCost, SuperstepCost
from repro.bsp.params import BspParams
from repro.lang.parser import parse_program
from repro.testing import (
    BackendRun,
    DifferentialReport,
    assert_conformance,
    conformance_corpus,
    run_differential,
)


class TestRunDifferential:
    def test_source_program_conforms(self):
        report = run_differential("bcast 0 (mkpar (fun i -> i * i))")
        assert report.conforms
        assert report.succeeded
        assert len(report.runs) == 3
        assert report.reference.backend == "seq"
        assert report.reference.value_repr == "VParVec(items=(0, 0, 0, 0))"
        assert all(run.cost == report.reference.cost for run in report.runs)

    def test_ast_program_conforms(self):
        expr = parse_program("put (mkpar (fun s -> fun d -> s + d))")
        report = run_differential(expr, params=BspParams(p=3))
        assert report.conforms and report.succeeded

    def test_bsmllib_program_conforms(self):
        def program(bsml):
            vec = bsml.mkpar(lambda i: i + 1)
            return bsml.apply(bsml.mkpar(lambda i: lambda x: x * 2), vec)

        report = run_differential(program, params=BspParams(p=4))
        assert report.conforms and report.succeeded
        assert report.reference.value_repr == "[2, 4, 6, 8]"

    def test_agreed_error_conforms(self):
        # Every backend must reject the same ill-formed program with the
        # same error; that agreement *is* conformance.
        report = run_differential("1 + true", use_prelude=False)
        assert report.conforms
        assert not report.succeeded
        assert all(run.error == report.reference.error for run in report.runs)

    def test_backend_subset(self):
        report = run_differential("2 + 2", backends=("seq", "thread"))
        assert [run.backend for run in report.runs] == ["seq", "thread"]
        assert report.conforms


class TestVerdicts:
    def _ok(self, backend, value_repr="[1]", cost=None):
        return BackendRun(
            backend,
            value_repr=value_repr,
            value=None,
            cost=cost or BspCost(p=1, supersteps=[]),
        )

    def test_value_divergence_detected(self):
        report = DifferentialReport(
            "'demo'", [self._ok("seq"), self._ok("thread", value_repr="[2]")]
        )
        assert not report.conforms
        text = report.explain()
        assert "DIVERGES" in text
        assert "[seq]" in text and "[thread]" in text
        assert "[1]" in text and "[2]" in text

    def test_cost_divergence_detected(self):
        other = BspCost(
            p=1, supersteps=[SuperstepCost(work=(1.0,), relation=None)]
        )
        report = DifferentialReport(
            "'demo'", [self._ok("seq"), self._ok("process", cost=other)]
        )
        assert not report.conforms
        assert "cost differs from reference" in report.explain()

    def test_error_divergence_detected(self):
        report = DifferentialReport(
            "'demo'",
            [self._ok("seq"), BackendRun("thread", error="RuntimeError: x")],
        )
        assert not report.conforms

    def test_explain_mentions_program(self):
        report = DifferentialReport("'my program'", [self._ok("seq")])
        assert "'my program'" in report.explain()


class TestAssertConformance:
    def test_passes_and_returns_report(self):
        report = assert_conformance("let x = 3 in x * x")
        assert report.succeeded

    def test_raises_with_explanation(self):
        with pytest.raises(AssertionError, match="DIVERGES"):
            report = run_differential("2 + 2")
            report.runs[1].value_repr = "corrupted"
            if not report.conforms:
                raise AssertionError(report.explain())

    def test_require_success_rejects_agreed_errors(self):
        with pytest.raises(AssertionError):
            assert_conformance("1 + true", use_prelude=False, require_success=True)


class TestCorpus:
    def test_corpus_covers_curated_and_shipped_programs(self):
        names = [name for name, _ in conformance_corpus()]
        assert any(name.startswith("local[") for name in names)
        assert any(name.startswith("global[") for name in names)
        assert any(name.startswith("imperative[") for name in names)
        assert any(name.endswith(".bsml") for name in names)
        assert len(names) == len(set(names))
        assert len(names) >= 40
