"""Tests for the random program generator itself (the test infrastructure
that backs the Theorem 1 experiments deserves its own tests)."""

from __future__ import annotations

import pytest

from repro.core.infer import infer, typechecks
from repro.core.milner import milner_typechecks
from repro.core.types import TPar, render_type
from repro.core.unify import unifiable
from repro.lang.ast import Expr, IfAt, ParVec, Prim
from repro.lang.substitution import free_vars
from repro.testing.generators import (
    CORPUS_GLOBAL,
    CORPUS_LOCAL,
    CORPUS_REJECTED,
    ProgramGenerator,
    unsafe_corpus,
    well_typed_corpus,
)


class TestCuratedCorpora:
    def test_corpora_are_nonempty(self):
        assert len(CORPUS_LOCAL) >= 10
        assert len(CORPUS_GLOBAL) >= 10
        assert len(CORPUS_REJECTED) >= 8

    def test_well_typed_corpus_is_the_union(self):
        assert len(well_typed_corpus()) == len(CORPUS_LOCAL) + len(CORPUS_GLOBAL)

    def test_unsafe_corpus_is_rejected(self):
        assert unsafe_corpus() == list(CORPUS_REJECTED)


class TestDeterminism:
    def test_same_seed_same_program(self):
        a = ProgramGenerator(seed=7).expression(depth=4)
        b = ProgramGenerator(seed=7).expression(depth=4)
        assert a == b

    def test_different_seeds_differ_somewhere(self):
        programs = {ProgramGenerator(seed=s).expression(depth=4) for s in range(20)}
        assert len(programs) > 10


class TestGeneratedPrograms:
    @pytest.mark.parametrize("seed", range(40))
    def test_closed(self, seed):
        expr = ProgramGenerator(seed=seed).expression(depth=4)
        assert free_vars(expr) == frozenset()

    @pytest.mark.parametrize("seed", range(40))
    def test_well_typed(self, seed):
        expr = ProgramGenerator(seed=seed).expression(depth=4)
        assert typechecks(expr)

    @pytest.mark.parametrize("seed", range(20))
    def test_of_type_hits_the_target(self, seed):
        generator = ProgramGenerator(seed=seed)
        target = generator.random_type()
        expr = generator.of_type(target, depth=4)
        assert unifiable(infer(expr).type, target), render_type(target)

    @pytest.mark.parametrize("seed", range(20))
    def test_no_fix_no_division(self, seed):
        expr = ProgramGenerator(seed=seed).expression(depth=5)
        for node in expr.walk():
            if isinstance(node, Prim):
                assert node.name not in ("fix", "/"), "termination unsafe"

    @pytest.mark.parametrize("seed", range(20))
    def test_ifat_indices_respect_p_hint(self, seed):
        generator = ProgramGenerator(seed=seed, p_hint=2)
        expr = generator.expression(depth=5)
        for node in expr.walk():
            if isinstance(node, IfAt):
                assert node.proc.value < 2

    def test_local_context_never_holds_vectors(self):
        # Generate many parallel programs and check no mkpar body contains
        # a parallel construct (the generator's locality discipline).
        from repro.lang.ast import App, Fun

        for seed in range(30):
            expr = ProgramGenerator(seed=seed).of_type(TPar(list(ProgramGenerator.LOCAL_GROUND)[0]), depth=4)
            for node in expr.walk():
                if (
                    isinstance(node, App)
                    and isinstance(node.fn, Prim)
                    and node.fn.name == "mkpar"
                    and isinstance(node.arg, Fun)
                ):
                    for inner in node.arg.body.walk():
                        if isinstance(inner, Prim):
                            assert inner.name not in ("mkpar", "apply", "put")


class TestMutants:
    @pytest.mark.parametrize("seed", range(20))
    def test_mutants_are_closed(self, seed):
        expr = ProgramGenerator(seed=seed).mutate_to_nesting(depth=3)
        assert free_vars(expr) == frozenset()

    @pytest.mark.parametrize("seed", range(20))
    def test_mutants_are_ill_typed(self, seed):
        expr = ProgramGenerator(seed=seed).mutate_to_nesting(depth=3)
        assert not typechecks(expr)

    @pytest.mark.parametrize("seed", range(100))
    def test_mutants_separate_the_two_systems(self, seed):
        """Every nesting mutant is exactly the paper's separating class:
        the locality-constrained system rejects it while plain Milner
        inference (no locality constraints) happily accepts it."""
        expr = ProgramGenerator(seed=seed).mutate_to_nesting(depth=3)
        assert not typechecks(expr), (
            f"seed {seed}: constraint inference accepted a nesting mutant"
        )
        assert milner_typechecks(expr), (
            f"seed {seed}: Milner rejected the mutant, so it does not "
            "witness the locality constraints doing the work"
        )

    def test_mutant_shapes_cycle(self):
        from repro.lang.ast import App

        heads = set()
        for seed in range(30):
            expr = ProgramGenerator(seed=seed).mutate_to_nesting(depth=2)
            assert isinstance(expr, App)
            if isinstance(expr.fn, Prim):
                heads.add(expr.fn.name)
        # Both the mkpar-wrapped (example1/example2) and the fst-wrapped
        # (fourth projection) shapes occur.
        assert {"mkpar", "fst"} <= heads
