"""Level-synchronous BSP graph algorithms: BFS and connected components.

The textbook BSP application shape: one superstep per graph level /
propagation round, with the frontier exchange as the h-relation.  The
cost trace makes the superstep structure visible — BFS pays
O(depth) barriers, label propagation O(diameter).

Run with::

    python examples/graph_algorithms.py
"""

from __future__ import annotations

import random

from repro.bsp import BspParams
from repro.bsml import (
    Bsml,
    UNREACHED,
    bfs,
    collect,
    connected_components,
    distribute_graph,
)


def random_graph(n: int, extra_edges: int, components: int, seed: int = 7):
    """A graph with a known number of connected components."""
    rng = random.Random(seed)
    vertices = list(range(n))
    rng.shuffle(vertices)
    cuts = sorted(rng.sample(range(1, n), components - 1))
    groups = []
    start = 0
    for cut in cuts + [n]:
        groups.append(vertices[start:cut])
        start = cut
    edges = []
    for group in groups:
        # spanning path keeps the group connected
        for a, b in zip(group, group[1:]):
            edges.append((a, b))
        for _ in range(extra_edges // components):
            if len(group) >= 2:
                edges.append((rng.choice(group), rng.choice(group)))
    return edges, groups


def bfs_demo() -> None:
    print("=" * 72)
    print("Breadth-first search (one superstep per level)")
    print("=" * 72)
    params = BspParams(p=4, g=2.0, l=100.0)
    ctx = Bsml(params)
    n = 16
    # A binary tree: depth log2(n).
    edges = [(i, 2 * i + 1) for i in range(n) if 2 * i + 1 < n]
    edges += [(i, 2 * i + 2) for i in range(n) if 2 * i + 2 < n]
    graph = distribute_graph(ctx, n, edges)
    ctx.reset_cost()
    levels = collect(bfs(ctx, n, graph, 0))
    print(f"  binary tree on {n} vertices, root 0")
    print(f"  levels: {levels}")
    print(f"  supersteps: {ctx.cost().S} "
          f"(tree depth {max(levels)}: ~2 per level + termination folds)")

    # Contrast: a path graph of the same size is much deeper.
    ctx2 = Bsml(params)
    path_edges = [(i, i + 1) for i in range(n - 1)]
    path = distribute_graph(ctx2, n, path_edges)
    ctx2.reset_cost()
    path_levels = collect(bfs(ctx2, n, path, 0))
    print(f"  path graph depth {max(path_levels)}: {ctx2.cost().S} supersteps")
    print("  (same n — the superstep count is the graph depth, not the size)")


def components_demo() -> None:
    print()
    print("=" * 72)
    print("Connected components by min-label propagation")
    print("=" * 72)
    params = BspParams(p=4, g=2.0, l=100.0)
    ctx = Bsml(params)
    n = 40
    edges, groups = random_graph(n, extra_edges=30, components=3)
    graph = distribute_graph(ctx, n, edges)
    ctx.reset_cost()
    labels = collect(connected_components(ctx, n, graph))
    found = len(set(labels))
    print(f"  {n} vertices, {len(edges)} edges, planted components: {len(groups)}")
    print(f"  found components: {found}")
    assert found == len(groups)
    sizes = sorted(labels.count(label) for label in set(labels))
    print(f"  component sizes: {sizes}")
    print(f"  propagation supersteps: {ctx.cost().S}")


if __name__ == "__main__":
    bfs_demo()
    components_demo()
