"""Direct-mode BSP algorithms on the Python BSMLlib: PSRS sorting,
prefix sums and matrix-vector product, with per-superstep cost traces.

These are the "direct mode BSP algorithms ... with predictable and
scalable performance" the paper's introduction motivates: each algorithm
announces its superstep structure in advance and the simulator confirms
it.

Run with::

    python examples/parallel_sort.py
"""

from __future__ import annotations

import random

from repro.bsp import BspParams, PREDEFINED
from repro.bsml import (
    Bsml,
    block_distribute,
    collect,
    inner_product,
    matrix_vector,
    prefix_sums,
    sample_sort,
)


def sorting_demo() -> None:
    print("=" * 72)
    print("Parallel sorting by regular sampling (PSRS)")
    print("=" * 72)
    rng = random.Random(42)
    data = [rng.randrange(100_000) for _ in range(50_000)]

    for name, base in PREDEFINED.items():
        ctx = Bsml(base)
        blocks = block_distribute(ctx, data)
        ctx.reset_cost()
        result = sample_sort(ctx, blocks)
        assert collect(result) == sorted(data)
        cost = ctx.cost()
        print(f"\n  machine {name!r} ({base.describe()}):")
        print("  " + cost.render(base).replace("\n", "\n  "))
        balance = [len(block) for block in result]
        print(f"  block sizes after sort: min={min(balance)} max={max(balance)}"
              f" (ideal {len(data) // base.p})")


def prefix_demo() -> None:
    print()
    print("=" * 72)
    print("Distributed prefix sums (local prefix + log2(p) scan + fixup)")
    print("=" * 72)
    params = BspParams(p=8, g=2.0, l=100.0)
    ctx = Bsml(params)
    data = list(range(1, 33))
    result = prefix_sums(ctx, block_distribute(ctx, data))
    print(f"  input : {data}")
    print(f"  output: {collect(result)}")
    print(f"  supersteps: {ctx.cost().S} (= log2(p) = 3 scan rounds)")


def linear_algebra_demo() -> None:
    print()
    print("=" * 72)
    print("Matrix-vector product (row blocks + broadcast of x)")
    print("=" * 72)
    params = BspParams(p=4, g=2.0, l=100.0)
    ctx = Bsml(params)
    n = 64
    matrix = [[(i + j) % 5 for j in range(n)] for i in range(n)]
    x = [1.0] * n
    y = collect(matrix_vector(ctx, matrix, x))
    expected = [sum(row) for row in matrix]
    assert y == expected
    print(f"  n={n}, p={params.p}: y[0..5] = {y[:6]}")
    print(f"  cost: {ctx.cost().render(params).splitlines()[-1].strip()}")

    left = block_distribute(ctx, [float(i) for i in range(16)])
    right = block_distribute(ctx, [2.0] * 16)
    dot = inner_product(ctx, left, right).to_list()[0]
    print(f"  <x, y> over blocks: {dot}")


if __name__ == "__main__":
    sorting_demo()
    prefix_demo()
    linear_algebra_demo()
