"""Tour of the section 6 extensions: sums, tuples, and references.

The paper's conclusion lists tuples and sum types ("investigated but not
yet proved") and imperative features (with the replicated-reference
coherence problem) as future work; this repository implements all three.
This example demonstrates each, ending with the replica-divergence
scenario the paper describes — statically accepted, dynamically detected.

Run with::

    python examples/extensions_tour.py
"""

from __future__ import annotations

from repro import run_program, typecheck, typecheck_scheme
from repro.core import NestingError
from repro.lang import parse_expression
from repro.semantics import ReplicaDivergenceError
from repro.semantics.bigstep import run
from repro.semantics.values import to_python


def sums() -> None:
    print("=" * 72)
    print("Sum types:  case e of inl x -> ... | inr y -> ...")
    print("=" * 72)

    print("  scheme of the sum-eliminator:")
    print("   ", typecheck_scheme("fun s -> case s of inl x -> x | inr y -> y"))

    source = (
        "mkpar (fun i -> case (if i mod 2 = 0 then inl i else inr (i * 10))"
        " of inl even -> even | inr odd -> odd)"
    )
    result = run_program(source, p=6)
    print(f"  vector of case results: {result.python_value}")

    print("  option encoding ((unit, 'a) sum):")
    source = (
        "let getor = fun d -> fun o -> case o of inl u -> d | inr v -> v in"
        " (getor 7 (inl ()), getor 7 (inr 42))"
    )
    print(f"    {run_program(source, p=1).python_value}")

    print("  locality still enforced through sums:")
    try:
        typecheck("case inl (mkpar (fun i -> i)) of inl x -> 1 | inr y -> 2")
        raise AssertionError("should have been rejected")
    except NestingError:
        print("    'case inl (mkpar ...) of ... -> 1 | ... -> 2' rejected"
              " (a vector cannot hide in a discarded scrutinee)")


def tuples() -> None:
    print()
    print("=" * 72)
    print("n-ary tuples")
    print("=" * 72)
    print("  ", typecheck("(1, true, (), mkpar (fun i -> i))"))


def references() -> None:
    print()
    print("=" * 72)
    print("References:  ref / ! / := / ;   (SPMD replicated store)")
    print("=" * 72)

    print("  imperative factorial:")
    source = """
        let acc = ref 1 in
        let loop = fix (fun loop -> fun n ->
            if n = 0 then !acc else (acc := !acc * n ; loop (n - 1))) in
        loop 6
    """
    print(f"    loop 6 = {run(parse_expression(source), 1)}")

    print("  per-process references inside mkpar:")
    source = "mkpar (fun i -> let c = ref i in c := !c * !c ; !c)"
    print(f"    {to_python(run(parse_expression(source), 5))}")

    print()
    print("  the section 6 coherence problem — detected dynamically:")
    source = "let r = ref 0 in fst (mkpar (fun i -> r := i ; i), !r)"
    print(f"    program: {source}")
    ct = typecheck(source, use_prelude=False)
    print(f"    statically ACCEPTED at type {ct.type} (no effect typing yet,")
    print("    exactly the gap the paper's future work targets)")
    try:
        run(parse_expression(source), 3)
        raise AssertionError("divergence not detected")
    except ReplicaDivergenceError as error:
        print(f"    at run time: ReplicaDivergenceError — {str(error)[:64]}...")


if __name__ == "__main__":
    sums()
    tuples()
    references()
