"""Quickstart: parse, typecheck, run and cost mini-BSML programs.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    NestingError,
    run_program,
    typecheck,
    typecheck_scheme,
)
from repro.core import explain
from repro.lang import parse_expression


def main() -> None:
    print("=" * 72)
    print("1. Typechecking: the locality-constrained type system")
    print("=" * 72)

    for source in [
        "fun x -> x + 1",
        "mkpar (fun i -> i * i)",
        "bcast",  # from the prelude
        "fun x -> if mkpar (fun i -> true) at 0 then x else x",
    ]:
        print(f"  {source}")
        print(f"    : {typecheck_scheme(source)}")

    print()
    print("=" * 72)
    print("2. Rejection: the nesting examples of the paper's section 2.1")
    print("=" * 72)

    for source in [
        "mkpar (fun pid -> let this = mkpar (fun i -> i) in pid)",  # example2
        "fst (1, mkpar (fun i -> i))",  # fourth projection
        "mkpar (fun pid -> bcast pid (mkpar (fun i -> i)))",  # example1
    ]:
        print(f"  {source}")
        try:
            typecheck(source)
            raise AssertionError("should have been rejected!")
        except NestingError as error:
            print(f"    rejected: {error.bare_message[:70]}...")

    print()
    print("=" * 72)
    print("3. Running with BSP cost accounting")
    print("=" * 72)

    result = run_program(
        "scan (fun ab -> fst ab + snd ab) (mkpar (fun i -> i + 1))",
        p=8,
        g=2.0,
        l=100.0,
    )
    print(f"  prefix sums over 8 processes: {result.python_value}")
    print("  " + result.render().replace("\n", "\n  "))

    print()
    print("=" * 72)
    print("4. A typing derivation (Figure 9 of the paper)")
    print("=" * 72)
    print(explain(parse_expression("fst (mkpar (fun i -> i), 1)")).render())


if __name__ == "__main__":
    main()
