"""The nesting gallery: every unsafe program from the paper, side by side.

For each program of section 2.1 (and friends) this prints:

* the verdict of classic Milner/ML typing (the baseline — accepts all);
* the verdict of the paper's constrained type system (rejects all);
* what actually happens if you run it anyway (dynamic nesting / silent
  cost-model violation).

Run with::

    python examples/nesting_gallery.py
"""

from __future__ import annotations

from repro.core import NestingError, explain, milner_infer, render_type
from repro.core.infer import infer
from repro.core.prelude_env import prelude_env
from repro.lang import parse_program, with_prelude
from repro.semantics.errors import EvalError, StuckError
from repro.semantics.smallstep import evaluate
from repro.testing.generators import CORPUS_REJECTED


def dynamic_outcome(expr, p: int = 2) -> str:
    try:
        evaluate(expr, p)
        return "runs, but materializes a hidden parallel vector (cost model broken)"
    except StuckError as error:
        if "dynamic nesting" in error.diagnosis:
            return "STUCK: " + error.diagnosis.split(":")[1].strip()
        return "STUCK: " + error.diagnosis
    except EvalError as error:
        return f"runtime error: {error}"


def main() -> None:
    print(f"{len(CORPUS_REJECTED)} unsafe programs "
          "(section 2.1 of the paper and variations)\n")
    for index, source in enumerate(CORPUS_REJECTED, start=1):
        expr = with_prelude(parse_program(source))
        flat = " ".join(source.split())
        print(f"[{index}] {flat[:74]}")

        milner = render_type(milner_infer(expr))
        print(f"     Milner (baseline) : ACCEPTS at type {milner}")

        try:
            infer(expr)
            print("     BSML type system  : ACCEPTS (BUG!)")
        except NestingError as error:
            print(
                "     BSML type system  : REJECTS at rule "
                f"({error.rule}), constraint unsatisfiable"
            )

        print(f"     if run anyway     : {dynamic_outcome(expr)}")
        print()

    print("One full derivation, for the fourth projection (Figure 10):\n")
    explanation = explain(
        with_prelude(parse_program("fst (1, mkpar (fun i -> i))"))
    )
    print(explanation.render())


if __name__ == "__main__":
    main()
