"""Broadcast and the BSP cost model: formula (1) and the two-phase ablation.

The paper's section 2.1 gives the cost of the direct broadcast as::

    p + (p-1) * s * g + l                                    (formula (1))

This example (a) measures the simulated cost of the prelude's ``bcast``
across machine sizes and message sizes and compares it with the closed
form, and (b) pits the direct broadcast against the classic two-phase
(scatter + total exchange) broadcast to find the crossover the cost
algebra predicts.

Run with::

    python examples/broadcast_cost.py
"""

from __future__ import annotations

from repro.bsp import BspParams
from repro.bsml import Bsml, bcast_direct, bcast_two_phase, cost_bcast_direct
from repro.semantics.costed import run_source


def formula_1(p: int, s: int, g: float, l: float) -> float:
    """The paper's formula, with its O(p) local term left symbolic = p."""
    return p + (p - 1) * s * g + l


def measured_vs_formula() -> None:
    print("Formula (1): direct broadcast, mini-BSML interpreter")
    print(f"  {'p':>4} {'s':>4} {'H (meas)':>9} {'(p-1)s':>7} {'S':>3} "
          f"{'total (meas)':>13} {'formula':>9}")
    g, l = 2.0, 100.0
    for p in (2, 4, 8, 16):
        for s in (1, 4):
            params = BspParams(p=p, g=g, l=l)
            payload = "(i, i)" if s == 2 else ("i" if s == 1 else
                       "((i, i), (i, i))")
            source = f"bcast 0 (mkpar (fun i -> {payload}))"
            result = run_source(source, params)
            measured_h = result.cost.H
            print(
                f"  {p:>4} {s:>4} {measured_h:>9} {(p-1)*s:>7} "
                f"{result.cost.S:>3} {result.total_time:>13.1f} "
                f"{formula_1(p, s, g, l):>9.1f}"
            )
    print("  (totals differ from the formula only in the constant of the")
    print("   O(p) local-work term; H and S match exactly)\n")


def direct_vs_two_phase() -> None:
    print("Ablation: direct vs two-phase broadcast of an s-word sequence")
    print(f"  {'machine':>14} {'s':>6} {'direct':>10} {'two-phase':>10}  winner")
    profiles = {
        "low-latency": BspParams(p=8, g=4.0, l=50.0),
        "high-latency": BspParams(p=8, g=4.0, l=5000.0),
    }
    for name, params in profiles.items():
        for s in (8, 64, 512, 4096):
            data = list(range(s))
            direct_ctx = Bsml(params)
            vector = direct_ctx.mkpar(lambda i: data if i == 0 else None)
            direct_ctx.reset_cost()
            bcast_direct(direct_ctx, 0, vector)
            direct = direct_ctx.total_time()

            two_ctx = Bsml(params)
            vector2 = two_ctx.mkpar(lambda i: data if i == 0 else None)
            two_ctx.reset_cost()
            bcast_two_phase(two_ctx, 0, vector2)
            two_phase = two_ctx.total_time()

            winner = "two-phase" if two_phase < direct else "direct"
            print(f"  {name:>14} {s:>6} {direct:>10.0f} {two_phase:>10.0f}  {winner}")
    print("  (two-phase halves the traffic's critical path at the price of")
    print("   an extra barrier: it wins once s*g dominates l)\n")


def exact_prediction() -> None:
    print("Exact closed-form check (Python BSMLlib, s = 1):")
    for p in (2, 4, 8, 16, 32):
        params = BspParams(p=p, g=3.0, l=77.0)
        ctx = Bsml(params)
        vector = ctx.mkpar(lambda i: 5 if i == 0 else None)
        ctx.reset_cost()
        bcast_direct(ctx, 0, vector)
        measured = ctx.total_time()
        predicted = cost_bcast_direct(params, 1)
        status = "OK" if abs(measured - predicted) < 1e-9 else "MISMATCH"
        print(f"  p={p:<3} measured={measured:<8.1f} predicted={predicted:<8.1f} {status}")


if __name__ == "__main__":
    measured_vs_formula()
    direct_vs_two_phase()
    exact_prediction()
