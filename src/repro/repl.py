"""An interactive mini-BSML REPL (``minibsml repl``).

Reads expressions or ``let`` definitions, typechecks them against the
prelude plus the session's own definitions, evaluates them on the
session's BSP machine, and prints value, type and (on demand) cost.

Meta-commands::

    :type <expr>     infer and print the type scheme, nothing is evaluated
    :explain <expr>  print the typing derivation (or the rejection tree)
    :trace <expr>    print the small-step reduction sequence
    :trace on|off    start/pause structured trace collection (spans per
                     BSP process, fault events, inference timings)
    :trace save F    write the collected trace to F (suffix picks the
                     format: .jsonl, .txt summary, else Chrome JSON)
    :cost            print the BSP cost accumulated so far
    :stats           print perf counters and solver-cache hit rates
                     (:stats verbose includes zero-call caches)
    :metrics         print the Prometheus exposition of the session's
                     metrics (:metrics on|off toggles collection,
                     :metrics reset zeroes every series)
    :backend [name]  show or switch the execution backend (seq/thread/process)
    :engine [name]   show or switch the evaluation engine
                     (tree/compiled/vectorized); value, cost and trace
                     are engine-independent
    :infer-engine [name]
                     show or switch the type-inference engine (w/uf);
                     inferred types, constraints and errors are
                     engine-independent — uf is just faster
    :faults [SPEC]   show, arm (e.g. seed=42,crash=0.1,attempts=4) or
                     disarm (:faults off) deterministic fault injection
    :reset           forget definitions and cost
    :p <n> [g] [l]   restart the machine with new BSP parameters
    :env             list the session's definitions
    :quit            leave

Definitions are ordinary ``let`` items without ``in``::

    minibsml> let v = mkpar (fun i -> i * i)
    val v : int par = <0, 1, 4, 9>
    minibsml> bcast 2 v
    - : int par = <4, 4, 4, 4>
"""

from __future__ import annotations

import sys
from typing import Dict, Optional, TextIO

from repro import obs, perf
from repro.bsp.executor import BACKENDS, get_executor
from repro.bsp.faults import FaultSpecError, parse_fault_spec
from repro.bsp.machine import BspMachine
from repro.bsp.params import BspParams
from repro.core.infer import INFER_ENGINES, get_infer_engine, infer
from repro.core.judgments import explain
from repro.core.prelude_env import prelude_env
from repro.core.schemes import TypeEnv, generalize
from repro.lang.ast import Expr
from repro.lang.errors import ReproError
from repro.lang.lexer import tokenize
from repro.lang.parser import _Parser
from repro.lang.prelude import prelude_map, with_prelude
from repro.lang.pretty import pretty
from repro.lang.substitution import free_vars, substitute
from repro.semantics.compiled import ENGINES, get_engine
from repro.semantics.errors import EvalError
from repro.semantics.smallstep import trace as smallstep_trace
from repro.semantics.values import Value, reify


class Session:
    """One REPL session: typing environment, value environment, machine."""

    def __init__(
        self,
        params: Optional[BspParams] = None,
        backend: str = "seq",
        fault_spec: Optional[str] = None,
        engine: str = "tree",
        infer_engine: Optional[str] = None,
    ) -> None:
        self.params = params or BspParams(p=4, g=1.0, l=20.0)
        self.backend = backend
        self.engine = engine
        self.infer_engine = infer_engine or get_infer_engine()
        #: The armed ``:faults`` spec (re-armed with a fresh plan, same
        #: seed, on every :meth:`reset`); None when faults are off.
        self.fault_spec = fault_spec
        #: Session-long perf window, installed by :func:`run_repl`.
        self.perf_stats: Optional[perf.PerfStats] = None
        #: Structured trace window (``:trace on`` or ``--trace FILE``);
        #: survives :meth:`reset` — it observes the session, not one
        #: machine incarnation.
        self.trace_collector: Optional[obs.Trace] = None
        #: True while this session holds one reference on the global
        #: metrics registry (``:metrics on``); released at exit.
        self.metrics_on = False
        self.reset()

    def reset(self) -> None:
        self.machine = BspMachine(self.params, executor=get_executor(self.backend))
        if self.fault_spec:
            plan, policy = parse_fault_spec(self.fault_spec)
            self.machine.arm_faults(plan, policy)
        engine_cls = get_engine(self.engine)
        self.evaluator = engine_cls(self.params.p, self.machine)
        self.type_env: TypeEnv = prelude_env()
        self.values: Dict[str, Value] = {}
        for name, body in prelude_map().items():
            self.values[name] = engine_cls(self.params.p).eval(
                with_prelude(body)
            )
        self.definitions: Dict[str, str] = {}

    def set_params(self, params: BspParams) -> None:
        self.params = params
        self.reset()

    # -- input handling -----------------------------------------------------

    def handle(self, line: str, out: TextIO) -> bool:
        """Process one input line; returns False when the session ends."""
        line = line.strip()
        if not line:
            return True
        try:
            if line.startswith(":"):
                return self._meta(line, out)
            self._program(line, out)
        except (ReproError, EvalError) as error:
            print(f"error: {error}", file=out)
        return True

    def _meta(self, line: str, out: TextIO) -> bool:
        command, _, rest = line.partition(" ")
        rest = rest.strip()
        if command in (":quit", ":q", ":exit"):
            return False
        if command == ":type":
            expr = self._parse_expr(rest)
            ct = infer(expr, self.type_env, engine=self.infer_engine)
            print(f"- : {generalize(ct, self.type_env)}", file=out)
            return True
        if command == ":explain":
            expr = self._parse_expr(rest)
            print(explain(expr, self.type_env).render(), file=out)
            return True
        if command == ":trace":
            word, _, tail = rest.partition(" ")
            if word in ("on", "off", "save", "status"):
                self._trace_meta(word, tail.strip(), out)
                return True
            expr = self._close(self._parse_expr(rest))
            for index, state in enumerate(smallstep_trace(expr, self.params.p, 50_000)):
                print(f"{index:>4}  {pretty(state)}", file=out)
            return True
        if command == ":cost":
            print(self.machine.cost().render(self.params), file=out)
            return True
        if command == ":stats":
            if self.perf_stats is not None:
                print(self.perf_stats.render(verbose=rest == "verbose"), file=out)
            else:
                print("perf collection is not active for this session", file=out)
            return True
        if command == ":metrics":
            self._metrics_meta(rest, out)
            return True
        if command == ":backend":
            if not rest:
                print(
                    f"backend: {self.machine.executor.name} "
                    f"(available: {', '.join(BACKENDS)})",
                    file=out,
                )
                return True
            previous = self.machine.executor
            try:
                self.machine.use_backend(rest)
                # Probe eagerly so an unavailable pool is one clear line
                # now, not a traceback at the next evaluation.
                self.machine.executor.ensure_available()
            except (ValueError, ReproError) as error:
                self.machine.executor = previous
                print(f"error: {error}", file=out)
                return True
            self.backend = self.machine.executor.name
            print(
                f"backend switched to {self.machine.executor.name} "
                "(definitions and accumulated cost carry over)",
                file=out,
            )
            return True
        if command == ":engine":
            if not rest:
                print(
                    f"engine: {self.engine} (available: {', '.join(ENGINES)})",
                    file=out,
                )
                return True
            try:
                engine_cls = get_engine(rest)
            except ValueError as error:
                print(f"error: {error}", file=out)
                return True
            self.engine = rest
            # Only the evaluator changes; machine, definitions and
            # accumulated cost carry over (both engines apply each
            # other's closures, so mixed-engine values keep working).
            self.evaluator = engine_cls(self.params.p, self.machine)
            print(
                f"engine switched to {rest} "
                "(definitions and accumulated cost carry over)",
                file=out,
            )
            return True
        if command == ":infer-engine":
            if not rest:
                print(
                    f"infer-engine: {self.infer_engine} "
                    f"(available: {', '.join(INFER_ENGINES)})",
                    file=out,
                )
                return True
            if rest not in INFER_ENGINES:
                known = ", ".join(INFER_ENGINES)
                print(
                    f"error: unknown infer engine {rest!r} (known: {known})",
                    file=out,
                )
                return True
            self.infer_engine = rest
            print(
                f"infer-engine switched to {rest} "
                "(types, constraints and errors are engine-independent)",
                file=out,
            )
            return True
        if command == ":faults":
            if not rest:
                plan, policy = self.machine.faults, self.machine.retry
                if plan is None:
                    print("faults: off", file=out)
                else:
                    print(
                        f"faults: {plan.describe()}"
                        + (f"; {policy.describe()}" if policy else "; no retry"),
                        file=out,
                    )
                return True
            if rest.lower() in ("off", "none", "clear"):
                self.fault_spec = None
                self.machine.disarm_faults()
                print("faults disarmed", file=out)
                return True
            try:
                plan, policy = parse_fault_spec(rest)
            except FaultSpecError as error:
                print(f"error: {error}", file=out)
                return True
            self.fault_spec = rest
            self.machine.arm_faults(plan, policy)
            print(
                f"faults armed: {plan.describe()}"
                + (f"; {policy.describe()}" if policy else "; no retry "
                   "policy (every injected fault is fatal but atomic)"),
                file=out,
            )
            return True
        if command == ":reset":
            self.reset()
            print("session reset", file=out)
            return True
        if command == ":env":
            for name, source in self.definitions.items():
                print(f"let {name} = {source}", file=out)
            if not self.definitions:
                print("(no session definitions; the prelude is loaded)", file=out)
            return True
        if command == ":p":
            parts = rest.split()
            if not parts:
                print(f"machine: {self.params.describe()}", file=out)
                return True
            p = int(parts[0])
            g = float(parts[1]) if len(parts) > 1 else self.params.g
            l = float(parts[2]) if len(parts) > 2 else self.params.l
            self.set_params(BspParams(p=p, g=g, l=l))
            print(f"machine restarted: {self.params.describe()}", file=out)
            return True
        print(f"unknown command {command!r} (try :type :explain :trace :cost "
              ":stats :metrics :backend :engine :infer-engine :faults :reset "
              ":env :p :quit)",
              file=out)
        return True

    def _metrics_meta(self, rest: str, out: TextIO) -> None:
        """``:metrics [on|off|reset]``."""
        word = rest.strip().lower()
        if word == "on":
            if self.metrics_on:
                print("metrics collection is already on", file=out)
                return
            obs.metrics.enable()
            self.metrics_on = True
            print(
                "metrics on (superstep/inference spans now aggregate; "
                ":metrics to view)",
                file=out,
            )
            return
        if word == "off":
            if not self.metrics_on:
                print("metrics collection was not on for this session", file=out)
                return
            obs.metrics.disable()
            self.metrics_on = False
            print("metrics off (collected values retained; :metrics to view)", file=out)
            return
        if word == "reset":
            obs.metrics.global_registry().reset()
            print("metrics reset: every series zeroed", file=out)
            return
        if word:
            print("usage: :metrics [on|off|reset]", file=out)
            return
        if not self.metrics_on and not obs.metrics.is_enabled():
            print(
                "metrics collection is off (:metrics on to start); "
                "showing the last collected values:",
                file=out,
            )
        print(obs.metrics.render_global(), end="", file=out)

    def _trace_meta(self, word: str, rest: str, out: TextIO) -> None:
        """``:trace on|off|save FILE [format]|status``."""
        collector = self.trace_collector
        # obs.is_tracing() is true whenever *anyone* collects — including
        # the global metrics sink — so the session's own window state
        # must be read with is_active(collector).
        if word == "on":
            if collector is not None and obs.is_active(collector):
                print(
                    f"tracing is already on ({len(collector.records)} records)",
                    file=out,
                )
            elif collector is not None:
                obs.resume(collector)
                print(
                    f"tracing resumed ({len(collector.records)} records so far)",
                    file=out,
                )
            else:
                self.trace_collector = obs.start()
                print("tracing on", file=out)
            return
        if word == "off":
            if collector is None:
                print("tracing was never on", file=out)
            else:
                obs.stop(collector)
                print(
                    f"tracing paused ({len(collector.records)} records held; "
                    ":trace save FILE to export, :trace on to resume)",
                    file=out,
                )
            return
        if word == "status":
            if collector is None:
                print("tracing: off", file=out)
            else:
                state = "on" if obs.is_active(collector) else "paused"
                print(
                    f"tracing: {state}, {len(collector.records)} records on "
                    f"{len(collector.tracks())} tracks",
                    file=out,
                )
            return
        # save FILE [chrome|jsonl|summary]
        if collector is None:
            print("nothing to save: tracing was never on (:trace on)", file=out)
            return
        path, _, format_word = rest.partition(" ")
        if not path:
            print("usage: :trace save FILE [chrome|jsonl|summary]", file=out)
            return
        format_word = format_word.strip() or None
        if format_word is not None and format_word not in obs.TRACE_FORMATS:
            print(
                f"unknown trace format {format_word!r} "
                f"(choose from {', '.join(obs.TRACE_FORMATS)})",
                file=out,
            )
            return
        try:
            written = obs.write_trace(collector, path, format=format_word)
        except OSError as error:
            print(f"error: {error}", file=out)
            return
        print(f"trace: {len(collector.records)} records -> {written}", file=out)

    def _program(self, line: str, out: TextIO) -> None:
        definitions, final = self._parse_program(line)
        for name, body in definitions:
            ct = infer(body, self.type_env, engine=self.infer_engine)
            scheme = generalize(ct, self.type_env)
            value = self.evaluator.eval(body, dict(self.values))
            self.type_env = self.type_env.extend(name, scheme)
            self.values[name] = value
            self.definitions[name] = pretty(body)
            print(f"val {name} : {scheme} = {self._show(value)}", file=out)
        if final is not None:
            ct = infer(final, self.type_env, engine=self.infer_engine)
            value = self.evaluator.eval(final, dict(self.values))
            print(f"- : {ct} = {self._show(value)}", file=out)

    # -- helpers ------------------------------------------------------------

    def _parse_expr(self, source: str) -> Expr:
        parser = _Parser(tokenize(source, "<repl>"), "<repl>")
        expr = parser.parse_expr()
        parser._expect_eof()
        return expr

    def _parse_program(self, source: str):
        parser = _Parser(tokenize(source, "<repl>"), "<repl>")
        return parser.parse_program()

    def _close(self, expr: Expr) -> Expr:
        """Substitute session/prelude values into a term for tracing."""
        result = expr
        for name in sorted(free_vars(expr)):
            if name in self.values:
                result = substitute(result, name, reify(self.values[name]))
        return result

    def _show(self, value: Value) -> str:
        try:
            return pretty(reify(value))
        except (EvalError, TypeError):
            return f"<{type(value).__name__.lstrip('V').lower()}>"


def run_repl(
    input_stream: Optional[TextIO] = None,
    output_stream: Optional[TextIO] = None,
    params: Optional[BspParams] = None,
    banner: bool = True,
    stats_at_exit: bool = False,
    backend: str = "seq",
    fault_spec: Optional[str] = None,
    trace_file: Optional[str] = None,
    trace_format: Optional[str] = None,
    engine: str = "tree",
    infer_engine: Optional[str] = None,
) -> int:
    """Run the REPL loop until EOF or ``:quit``.

    A session-long perf window is collected so ``:stats`` can report
    counters and solver-cache hit rates at any point; with
    ``stats_at_exit`` the final report is also printed when leaving.
    ``backend`` picks the initial execution backend (``:backend``
    switches it live); ``fault_spec`` arms fault injection from the
    start (``:faults`` shows, re-arms or disarms it live).
    ``trace_file`` turns structured trace collection on from the start
    and writes whatever was collected there on exit (``:trace`` controls
    the window live; an explicit ``:trace save`` mid-session is also
    honoured).
    """
    stdin = input_stream if input_stream is not None else sys.stdin
    out = output_stream if output_stream is not None else sys.stdout
    session = Session(
        params,
        backend=backend,
        fault_spec=fault_spec,
        engine=engine,
        infer_engine=infer_engine,
    )
    if trace_file:
        session.trace_collector = obs.start()
    interactive = stdin.isatty() if hasattr(stdin, "isatty") else False
    if banner:
        print(
            f"mini-BSML repl — machine {session.params.describe()} — "
            ":quit to leave, :type/:explain/:trace/:cost/:stats for tools",
            file=out,
        )
    session.perf_stats = perf.start()
    try:
        while True:
            if interactive:
                print("minibsml> ", end="", file=out, flush=True)
            line = stdin.readline()
            if not line:
                return 0
            if not session.handle(line, out):
                return 0
    finally:
        perf.stop(session.perf_stats)
        if session.metrics_on:
            obs.metrics.disable()
            session.metrics_on = False
        if session.trace_collector is not None:
            obs.stop(session.trace_collector)
        if trace_file and session.trace_collector is not None:
            written = obs.write_trace(
                session.trace_collector, trace_file, format=trace_format
            )
            print(
                f"trace: {len(session.trace_collector.records)} records "
                f"-> {written}",
                file=out,
            )
        if stats_at_exit:
            print(session.perf_stats.render(), file=out)
