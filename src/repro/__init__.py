"""Reproduction of *A Polymorphic Type System for Bulk Synchronous
Parallel ML* (Gava & Loulergue, 2003).

The package is organized around the paper's pieces:

* :mod:`repro.lang` — mini-BSML: AST, parser, printer, prelude (Figure 3);
* :mod:`repro.semantics` — the small-step dynamic semantics (Figures 1,
  2, 4, 5), a fast big-step evaluator, and costed execution;
* :mod:`repro.core` — **the contribution**: the locality-constrained
  polymorphic type system (section 4, Figures 6-10) with inference,
  derivation rendering and a classic-Milner baseline;
* :mod:`repro.bsp` — a BSP machine simulator with the ``W + H*g + S*l``
  cost model (section 2);
* :mod:`repro.bsml` — BSMLlib for Python on top of the simulator.

Quickstart::

    >>> from repro import typecheck, run_program
    >>> print(typecheck("bcast"))                    # prelude names work
    [int -> 'a par -> 'a par / L('a)]
    >>> result = run_program("bcast 2 (mkpar (fun i -> i * i))", p=4)
    >>> result.python_value
    [4, 4, 4, 4]
"""

from __future__ import annotations

from typing import Union

from repro.bsp import (
    BspCost,
    BspMachine,
    BspParams,
    FaultPlan,
    RetryPolicy,
    SuperstepFault,
    parse_fault_spec,
)
from repro.core import (
    ConstrainedType,
    NestingError,
    TypeScheme,
    TypingError,
    explain,
    infer,
    infer_scheme,
    milner_infer,
    typechecks,
)
from repro.core.prelude_env import prelude_env
from repro.lang import Expr, parse_expression, parse_program, pretty, with_prelude
from repro.semantics import CostedResult, run_costed

__version__ = "1.0.0"


def _to_expr(program: Union[str, Expr]) -> Expr:
    return parse_program(program) if isinstance(program, str) else program


def typecheck(
    program: Union[str, Expr],
    use_prelude: bool = True,
    infer_engine: str = None,
) -> ConstrainedType:
    """Parse (if needed) and infer the constrained type of a program.

    With ``use_prelude=True`` the prelude's schemes are available as a
    library environment (``bcast``, ``scan``, ...).  Raises
    :class:`repro.core.NestingError` (a :class:`TypingError`) when the
    locality constraints reject the program.

    ``infer_engine`` picks the inference engine (``w`` or ``uf``); the
    result is engine-independent — ``uf`` (the default) is just faster.
    """
    env = prelude_env() if use_prelude else None
    return infer(_to_expr(program), env, engine=infer_engine)


def typecheck_scheme(
    program: Union[str, Expr],
    use_prelude: bool = True,
    infer_engine: str = None,
) -> TypeScheme:
    """Like :func:`typecheck` but generalized to a type scheme."""
    env = prelude_env() if use_prelude else None
    return infer_scheme(_to_expr(program), env, engine=infer_engine)


def run_program(
    program: Union[str, Expr],
    p: int = 4,
    g: float = 1.0,
    l: float = 20.0,
    use_prelude: bool = True,
    typed: bool = True,
    backend: str = "seq",
    faults=None,
    retry=None,
    engine: str = "tree",
    infer_engine: str = None,
) -> CostedResult:
    """Typecheck (unless ``typed=False``) and run a program with costs.

    ``backend`` picks the execution backend (``seq``, ``thread``,
    ``process``) for the per-process computation phases; the value and
    the abstract cost are backend-independent.

    ``engine`` picks the evaluation engine (``tree`` or ``compiled``);
    values, costs and traces are engine-independent too — ``compiled``
    is just faster.  ``infer_engine`` likewise picks the type-inference
    engine (``w`` or ``uf``) without changing what is accepted.

    ``faults``/``retry`` optionally arm a deterministic
    :class:`repro.bsp.FaultPlan` and :class:`repro.bsp.RetryPolicy`:
    supersteps run transactionally, transient faults are retried with
    backoff, and a survivable fault schedule changes nothing observable.

    Returns a :class:`repro.semantics.CostedResult`: the value, the
    superstep-by-superstep BSP cost, and the totals under ``(p, g, l)``.
    """
    expr = _to_expr(program)
    if typed:
        typecheck(expr, use_prelude=use_prelude, infer_engine=infer_engine)
    runnable = with_prelude(expr) if use_prelude else expr
    return run_costed(
        runnable,
        BspParams(p=p, g=g, l=l),
        backend=backend,
        faults=faults,
        retry=retry,
        engine=engine,
    )


__all__ = [
    "BspCost",
    "BspMachine",
    "BspParams",
    "ConstrainedType",
    "CostedResult",
    "FaultPlan",
    "NestingError",
    "RetryPolicy",
    "SuperstepFault",
    "TypeScheme",
    "TypingError",
    "__version__",
    "explain",
    "infer",
    "infer_scheme",
    "milner_infer",
    "parse_expression",
    "parse_fault_spec",
    "parse_program",
    "prelude_env",
    "pretty",
    "run_costed",
    "run_program",
    "typecheck",
    "typecheck_scheme",
    "typechecks",
    "with_prelude",
]
