"""Free variables and capture-avoiding substitution on mini-BSML terms.

The small-step rules of the paper are all stated with the substitution
``e[x <- v]``; this module provides it, together with the free-variable
function ``F`` used as a side condition by the ``put`` rule (Figure 2) and
an alpha-equivalence test used throughout the test suite.
"""

from __future__ import annotations

from itertools import count
from typing import AbstractSet, Dict, FrozenSet, Iterable, Iterator

from repro import perf

from repro.lang.ast import (
    Annot,
    App,
    Case,
    Const,
    Expr,
    Fun,
    If,
    IfAt,
    Inl,
    Inr,
    Let,
    Pair,
    ParVec,
    Prim,
    Tuple,
    Var,
)


def free_vars(expr: Expr) -> FrozenSet[str]:
    """The set of free variables of ``expr`` (the paper's ``F(e)``).

    Memoized on node identity: AST nodes are immutable (frozen
    dataclasses), so a node's free-variable set never changes, and the
    small-step machine asks for the same subterms' sets over and over
    while rewriting around them.  The cache rides on the node itself
    (an ``object.__setattr__`` side-channel, like source locations), so
    it lives exactly as long as the node and subterm sharing after
    substitution shares the cached sets too.  Hit rates surface as the
    ``lang.free_vars`` perf counters.
    """
    cached = getattr(expr, "_free_vars_cache", None)
    if cached is not None:
        if perf.is_collecting():
            perf.increment("lang.free_vars.hit")
        return cached
    if perf.is_collecting():
        perf.increment("lang.free_vars.miss")
    result = _free_vars_of(expr)
    object.__setattr__(expr, "_free_vars_cache", result)
    return result


def _free_vars_of(expr: Expr) -> FrozenSet[str]:
    if isinstance(expr, Var):
        return frozenset((expr.name,))
    if isinstance(expr, (Const, Prim)):
        return frozenset()
    if isinstance(expr, Fun):
        return free_vars(expr.body) - {expr.param}
    if isinstance(expr, Let):
        return free_vars(expr.bound) | (free_vars(expr.body) - {expr.name})
    if isinstance(expr, Case):
        return (
            free_vars(expr.scrutinee)
            | (free_vars(expr.left_body) - {expr.left_name})
            | (free_vars(expr.right_body) - {expr.right_name})
        )
    result: FrozenSet[str] = frozenset()
    for child in expr.children():
        result |= free_vars(child)
    return result


def _fresh_names(avoid: AbstractSet[str], base: str) -> Iterator[str]:
    """Yield names derived from ``base`` that are not in ``avoid``."""
    root = base.rstrip("0123456789'") or "x"
    for i in count(1):
        candidate = f"{root}'{i}"
        if candidate not in avoid:
            yield candidate


def fresh_name(avoid: AbstractSet[str], base: str = "x") -> str:
    """A single fresh name derived from ``base`` avoiding ``avoid``."""
    return next(_fresh_names(avoid, base))


def substitute(expr: Expr, name: str, replacement: Expr) -> Expr:
    """Capture-avoiding substitution ``expr[name <- replacement]``.

    Binders shadow: substitution stops below a ``fun`` or ``let`` that
    rebinds ``name``.  When a binder would capture a free variable of
    ``replacement``, the binder is alpha-renamed first.
    """
    repl_free = free_vars(replacement)
    return _subst(expr, name, replacement, repl_free)


def _subst(expr: Expr, name: str, repl: Expr, repl_free: AbstractSet[str]) -> Expr:
    if isinstance(expr, Var):
        return repl if expr.name == name else expr
    if isinstance(expr, (Const, Prim)):
        return expr
    if isinstance(expr, Fun):
        if expr.param == name:
            return expr
        if expr.param in repl_free and name in free_vars(expr.body):
            avoid = repl_free | free_vars(expr.body) | {name}
            renamed = fresh_name(avoid, expr.param)
            body = _subst(expr.body, expr.param, Var(renamed), frozenset((renamed,)))
            return Fun(renamed, _subst(body, name, repl, repl_free))
        return Fun(expr.param, _subst(expr.body, name, repl, repl_free))
    if isinstance(expr, Let):
        bound = _subst(expr.bound, name, repl, repl_free)
        if expr.name == name:
            return Let(expr.name, bound, expr.body)
        if expr.name in repl_free and name in free_vars(expr.body):
            avoid = repl_free | free_vars(expr.body) | {name}
            renamed = fresh_name(avoid, expr.name)
            body = _subst(expr.body, expr.name, Var(renamed), frozenset((renamed,)))
            return Let(renamed, bound, _subst(body, name, repl, repl_free))
        return Let(expr.name, bound, _subst(expr.body, name, repl, repl_free))
    if isinstance(expr, App):
        return App(
            _subst(expr.fn, name, repl, repl_free),
            _subst(expr.arg, name, repl, repl_free),
        )
    if isinstance(expr, Pair):
        return Pair(
            _subst(expr.first, name, repl, repl_free),
            _subst(expr.second, name, repl, repl_free),
        )
    if isinstance(expr, Tuple):
        return Tuple(tuple(_subst(item, name, repl, repl_free) for item in expr.items))
    if isinstance(expr, If):
        return If(
            _subst(expr.cond, name, repl, repl_free),
            _subst(expr.then_branch, name, repl, repl_free),
            _subst(expr.else_branch, name, repl, repl_free),
        )
    if isinstance(expr, IfAt):
        return IfAt(
            _subst(expr.vec, name, repl, repl_free),
            _subst(expr.proc, name, repl, repl_free),
            _subst(expr.then_branch, name, repl, repl_free),
            _subst(expr.else_branch, name, repl, repl_free),
        )
    if isinstance(expr, ParVec):
        return ParVec(tuple(_subst(item, name, repl, repl_free) for item in expr.items))
    if isinstance(expr, Annot):
        return Annot(_subst(expr.expr, name, repl, repl_free), expr.annotation)
    if isinstance(expr, Inl):
        return Inl(_subst(expr.value, name, repl, repl_free))
    if isinstance(expr, Inr):
        return Inr(_subst(expr.value, name, repl, repl_free))
    if isinstance(expr, Case):
        scrutinee = _subst(expr.scrutinee, name, repl, repl_free)
        left_name, left_body = _subst_branch(
            expr.left_name, expr.left_body, name, repl, repl_free
        )
        right_name, right_body = _subst_branch(
            expr.right_name, expr.right_body, name, repl, repl_free
        )
        return Case(scrutinee, left_name, left_body, right_name, right_body)
    raise TypeError(f"substitute: unknown expression node {type(expr).__name__}")


def _subst_branch(binder, body, name, repl, repl_free):
    """Substitute under one case branch, renaming its binder if needed."""
    if binder == name:
        return binder, body
    if binder in repl_free and name in free_vars(body):
        avoid = repl_free | free_vars(body) | {name}
        renamed = fresh_name(avoid, binder)
        body = _subst(body, binder, Var(renamed), frozenset((renamed,)))
        binder = renamed
    return binder, _subst(body, name, repl, repl_free)


def substitute_many(expr: Expr, mapping: Dict[str, Expr]) -> Expr:
    """Simultaneous substitution of several variables, applied sequentially.

    The mapping's replacements must be closed (no free variables), which is
    the only case the evaluator needs; this makes sequential application
    equivalent to simultaneous substitution.
    """
    for replacement in mapping.values():
        if free_vars(replacement):
            raise ValueError("substitute_many requires closed replacements")
    result = expr
    for name, replacement in mapping.items():
        result = substitute(result, name, replacement)
    return result


def alpha_equal(left: Expr, right: Expr) -> bool:
    """Structural equality up to renaming of bound variables."""
    return _alpha(left, right, {}, {})


def _alpha(
    left: Expr,
    right: Expr,
    left_env: Dict[str, int],
    right_env: Dict[str, int],
) -> bool:
    if isinstance(left, Var) and isinstance(right, Var):
        left_level = left_env.get(left.name)
        right_level = right_env.get(right.name)
        if left_level is None and right_level is None:
            return left.name == right.name
        return left_level == right_level
    if type(left) is not type(right):
        return False
    if isinstance(left, (Const, Prim)):
        return left == right
    if isinstance(left, Fun):
        assert isinstance(right, Fun)
        level = len(left_env) + len(right_env)
        return _alpha(
            left.body,
            right.body,
            {**left_env, left.param: level},
            {**right_env, right.param: level},
        )
    if isinstance(left, Let):
        assert isinstance(right, Let)
        if not _alpha(left.bound, right.bound, left_env, right_env):
            return False
        level = len(left_env) + len(right_env)
        return _alpha(
            left.body,
            right.body,
            {**left_env, left.name: level},
            {**right_env, right.name: level},
        )
    if isinstance(left, Annot):
        assert isinstance(right, Annot)
        if left.annotation != right.annotation:
            return False
        return _alpha(left.expr, right.expr, left_env, right_env)
    if isinstance(left, Case):
        assert isinstance(right, Case)
        if not _alpha(left.scrutinee, right.scrutinee, left_env, right_env):
            return False
        level = len(left_env) + len(right_env)
        return _alpha(
            left.left_body,
            right.left_body,
            {**left_env, left.left_name: level},
            {**right_env, right.left_name: level},
        ) and _alpha(
            left.right_body,
            right.right_body,
            {**left_env, left.right_name: level},
            {**right_env, right.right_name: level},
        )
    left_children = left.children()
    right_children = right.children()
    if len(left_children) != len(right_children):
        return False
    return all(
        _alpha(lc, rc, left_env, right_env)
        for lc, rc in zip(left_children, right_children)
    )


def bound_names(expr: Expr) -> FrozenSet[str]:
    """All names bound anywhere inside ``expr`` (by ``fun`` or ``let``)."""
    names: set = set()
    for node in expr.walk():
        if isinstance(node, Fun):
            names.add(node.param)
        elif isinstance(node, Let):
            names.add(node.name)
        elif isinstance(node, Case):
            names.add(node.left_name)
            names.add(node.right_name)
    return frozenset(names)


def rename_apart(expr: Expr, avoid: Iterable[str]) -> Expr:
    """Rename every binder of ``expr`` apart from ``avoid`` and each other.

    Useful before mixing terms from different sources into one program.
    """
    taken = set(avoid) | set(free_vars(expr))

    def go(node: Expr) -> Expr:
        if isinstance(node, Fun):
            new = node.param
            if new in taken:
                new = fresh_name(taken, node.param)
            taken.add(new)
            body = substitute(node.body, node.param, Var(new)) if new != node.param else node.body
            return Fun(new, go(body))
        if isinstance(node, Let):
            bound = go(node.bound)
            new = node.name
            if new in taken:
                new = fresh_name(taken, node.name)
            taken.add(new)
            body = substitute(node.body, node.name, Var(new)) if new != node.name else node.body
            return Let(new, bound, go(body))
        if isinstance(node, (Var, Const, Prim)):
            return node
        if isinstance(node, App):
            return App(go(node.fn), go(node.arg))
        if isinstance(node, Pair):
            return Pair(go(node.first), go(node.second))
        if isinstance(node, Tuple):
            return Tuple(tuple(go(item) for item in node.items))
        if isinstance(node, If):
            return If(go(node.cond), go(node.then_branch), go(node.else_branch))
        if isinstance(node, IfAt):
            return IfAt(go(node.vec), go(node.proc), go(node.then_branch), go(node.else_branch))
        if isinstance(node, ParVec):
            return ParVec(tuple(go(item) for item in node.items))
        if isinstance(node, Annot):
            return Annot(go(node.expr), node.annotation)
        if isinstance(node, Inl):
            return Inl(go(node.value))
        if isinstance(node, Inr):
            return Inr(go(node.value))
        if isinstance(node, Case):
            scrutinee = go(node.scrutinee)

            def branch(binder, body):
                new = binder
                if new in taken:
                    new = fresh_name(taken, binder)
                taken.add(new)
                if new != binder:
                    body = substitute(body, binder, Var(new))
                return new, go(body)

            left_name, left_body = branch(node.left_name, node.left_body)
            right_name, right_body = branch(node.right_name, node.right_body)
            return Case(scrutinee, left_name, left_body, right_name, right_body)
        raise TypeError(f"rename_apart: unknown node {type(node).__name__}")

    return go(expr)
