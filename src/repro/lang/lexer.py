"""Lexer for the concrete syntax of mini-BSML.

The concrete syntax is a small OCaml-like surface language::

    let bcast = fun n -> fun vec ->
      let tosend = mkpar (fun i -> fun v -> fun dst ->
                            if i = n then v else nc ()) in
      let recv = put (apply (tosend, vec)) in
      apply (recv, mkpar (fun pid -> n))
    in bcast

Comments are OCaml style ``(* ... *)`` and nest.  Integers, the booleans
``true``/``false`` and the unit literal ``()`` are the constants.  Binary
operators ``+ - * / mod = <> < <= > >= && ||`` are sugar for the pair-taking
primitives of the paper (``e1 + e2`` parses to ``(+) (e1, e2)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto, unique
from typing import Iterator, List

from repro.lang.ast import Loc
from repro.lang.errors import LexError


@unique
class TokenKind(Enum):
    INT = auto()
    IDENT = auto()
    KEYWORD = auto()
    SYMBOL = auto()
    EOF = auto()


#: Reserved words that can never be identifiers.
KEYWORDS = frozenset(
    (
        "fun", "let", "in", "if", "then", "else", "at", "true", "false",
        # sum types (extension, paper section 6)
        "case", "of", "inl", "inr",
    )
)

#: Multi-character symbols, longest first so maximal munch works.
_SYMBOLS = (
    ";;",
    ":=",
    ":",
    "->",
    "<=",
    ">=",
    "<>",
    "&&",
    "||",
    "(",
    ")",
    ",",
    "=",
    "+",
    "-",
    "*",
    "/",
    "<",
    ">",
    "|",
    "!",
    ";",
)

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789'")


@dataclass(frozen=True)
class Token:
    """A lexical token with its kind, text and source location."""

    kind: TokenKind
    text: str
    loc: Loc

    def __str__(self) -> str:
        if self.kind is TokenKind.EOF:
            return "<end of input>"
        return repr(self.text)


class Lexer:
    """A one-pass lexer over a source string."""

    def __init__(self, source: str, filename: str = "<input>") -> None:
        self.source = source
        self.filename = filename
        self._pos = 0
        self._line = 1
        self._column = 1

    def _loc(self) -> Loc:
        return Loc(self._line, self._column)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self.source):
                return
            if self.source[self._pos] == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
            self._pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while True:
            while self._peek() in (" ", "\t", "\r", "\n") and self._peek():
                self._advance()
            if self._peek() == "(" and self._peek(1) == "*":
                self._skip_comment()
            else:
                return

    def _skip_comment(self) -> None:
        start = self._loc()
        depth = 0
        while True:
            if self._pos >= len(self.source):
                raise LexError("unterminated comment", start)
            if self._peek() == "(" and self._peek(1) == "*":
                depth += 1
                self._advance(2)
            elif self._peek() == "*" and self._peek(1) == ")":
                depth -= 1
                self._advance(2)
                if depth == 0:
                    return
            else:
                self._advance()

    def tokens(self) -> Iterator[Token]:
        """Yield every token of the input, ending with a single EOF token."""
        while True:
            self._skip_whitespace_and_comments()
            loc = self._loc()
            char = self._peek()
            if not char:
                yield Token(TokenKind.EOF, "", loc)
                return
            if char.isdigit():
                yield self._lex_int(loc)
                continue
            if char in _IDENT_START:
                yield self._lex_word(loc)
                continue
            if char == "'" and self._peek(1) in _IDENT_START:
                # A type variable such as 'a (used in ascriptions).
                self._advance()
                word = self._lex_word(loc)
                yield Token(TokenKind.IDENT, "'" + word.text, loc)
                continue
            symbol = self._match_symbol()
            if symbol is not None:
                yield Token(TokenKind.SYMBOL, symbol, loc)
                continue
            raise LexError(f"unexpected character {char!r}", loc)

    def _lex_int(self, loc: Loc) -> Token:
        start = self._pos
        while self._peek().isdigit():
            self._advance()
        text = self.source[start : self._pos]
        if self._peek() in _IDENT_START:
            raise LexError(f"malformed number {text + self._peek()!r}", loc)
        return Token(TokenKind.INT, text, loc)

    def _lex_word(self, loc: Loc) -> Token:
        start = self._pos
        while self._peek() and self._peek() in _IDENT_CONT:
            self._advance()
        text = self.source[start : self._pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        # ``mod`` is a binary operator spelled as a word.
        if text == "mod":
            kind = TokenKind.SYMBOL
        return Token(kind, text, loc)

    def _match_symbol(self) -> str | None:
        for symbol in _SYMBOLS:
            if self.source.startswith(symbol, self._pos):
                self._advance(len(symbol))
                return symbol
        return None


def tokenize(source: str, filename: str = "<input>") -> List[Token]:
    """Tokenize ``source`` into a list ending with an EOF token."""
    return list(Lexer(source, filename).tokens())
