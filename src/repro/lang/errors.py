"""Exception hierarchy for the mini-BSML frontend.

Typing errors live in :mod:`repro.core.errors` and evaluation errors in
:mod:`repro.semantics.errors`; all of them derive from :class:`ReproError`
so callers can catch everything the library raises with one clause.
"""

from __future__ import annotations

from typing import Optional

from repro.lang.ast import Loc


class ReproError(Exception):
    """Root of every exception raised by this library."""


class SourceError(ReproError):
    """An error carrying an optional source location."""

    def __init__(self, message: str, loc: Optional[Loc] = None) -> None:
        self.bare_message = message
        self.loc = loc
        super().__init__(f"{loc}: {message}" if loc is not None else message)


class LexError(SourceError):
    """A lexical error: bad character, unterminated comment, bad number."""


class ParseError(SourceError):
    """A syntax error: unexpected token, missing keyword, bad binder."""
