"""Abstract syntax of mini-BSML (Figure 3 of the paper).

The expression grammar is::

    e ::= x                     variable
        | c                     constant (integers, booleans, ())
        | op                    primitive operation
        | fun x -> e            function abstraction
        | (e e)                 application
        | let x = e in e        local binding
        | (e, e)                pair
        | if e then e else e    conditional
        | if e at e then e else e   global (synchronous) conditional

The dynamic semantics additionally works on *extended expressions* which
include p-wide parallel vectors of expressions ``<e_0, ..., e_{p-1}>``
(written :class:`ParVec` here).  Parallel vectors never appear in source
programs; they are created by the evaluation rules for ``mkpar``.

As an extension (paper section 6, future work) the AST also supports n-ary
tuples via :class:`Tuple`; pairs remain their own node because the paper's
type algebra treats the pair type ``tau * tau`` primitively.

Every node carries an optional source :class:`Loc` used for diagnostics.
Locations are excluded from structural equality so that ASTs built
programmatically compare equal to parsed ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional, Tuple as TupleT, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.lang.type_syntax import TypeExpr


@dataclass(frozen=True)
class Loc:
    """A position in a source file: 1-based line and column."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


class UnitType:
    """The type of the unique unit value ``()``.

    A singleton: ``UNIT`` is the only instance ever created.
    """

    _instance: Optional["UnitType"] = None

    def __new__(cls) -> "UnitType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "()"

    def __hash__(self) -> int:
        return hash("unit-value")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UnitType)


#: The unit value ``()``.
UNIT = UnitType()

#: Python payloads allowed inside :class:`Const`.
ConstValue = Union[int, bool, UnitType]


@dataclass(frozen=True)
class Expr:
    """Base class of all mini-BSML expressions."""

    def children(self) -> TupleT["Expr", ...]:
        """Immediate sub-expressions, in left-to-right evaluation order."""
        return ()

    def size(self) -> int:
        """Number of AST nodes in this expression (including itself)."""
        count = 0
        for _ in self.walk():
            count += 1
        return count

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and every descendant, pre-order.

        Iterative, so arbitrarily deep programs can be traversed without
        recursion headroom.
        """
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    @property
    def loc(self) -> Optional[Loc]:
        return getattr(self, "_loc", None)


def _with_loc(expr: Expr, loc: Optional[Loc]) -> Expr:
    if loc is not None:
        object.__setattr__(expr, "_loc", loc)
    return expr


@dataclass(frozen=True)
class Var(Expr):
    """A variable occurrence ``x``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expr):
    """A constant: an integer, a boolean, or the unit value."""

    value: ConstValue

    def __post_init__(self) -> None:
        ok = isinstance(self.value, (bool, int, UnitType))
        if not ok:
            raise TypeError(f"unsupported constant payload: {self.value!r}")

    def __str__(self) -> str:
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return str(self.value)


@dataclass(frozen=True)
class Prim(Expr):
    """A primitive operation such as ``+``, ``fst``, ``mkpar`` or ``put``.

    The set of valid names is defined by the initial typing environment
    (:mod:`repro.core.initial_env`) and the delta rules
    (:mod:`repro.semantics.delta` and :mod:`repro.semantics.delta_parallel`).
    """

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Fun(Expr):
    """A function abstraction ``fun param -> body``."""

    param: str
    body: Expr

    def children(self) -> TupleT[Expr, ...]:
        return (self.body,)


@dataclass(frozen=True)
class App(Expr):
    """An application ``(fn arg)``."""

    fn: Expr
    arg: Expr

    def children(self) -> TupleT[Expr, ...]:
        return (self.fn, self.arg)


@dataclass(frozen=True)
class Let(Expr):
    """A local binding ``let name = bound in body``."""

    name: str
    bound: Expr
    body: Expr

    def children(self) -> TupleT[Expr, ...]:
        return (self.bound, self.body)


@dataclass(frozen=True)
class Pair(Expr):
    """A pair ``(first, second)``."""

    first: Expr
    second: Expr

    def children(self) -> TupleT[Expr, ...]:
        return (self.first, self.second)


@dataclass(frozen=True)
class Tuple(Expr):
    """An n-ary tuple with n >= 3 (extension beyond the paper's pairs)."""

    items: TupleT[Expr, ...]

    def __post_init__(self) -> None:
        if len(self.items) < 3:
            raise ValueError("Tuple nodes need >= 3 items; use Pair for 2")

    def children(self) -> TupleT[Expr, ...]:
        return self.items


@dataclass(frozen=True)
class Annot(Expr):
    """A type ascription ``(expr : ty)`` (usability extension).

    ``annotation`` is a syntactic type (:mod:`repro.lang.type_syntax`);
    inference unifies the expression's type with it.  Operationally the
    annotation erases: ``(e : ty) -> e`` is a head reduction.
    """

    expr: Expr
    annotation: "TypeExpr"

    def children(self) -> TupleT[Expr, ...]:
        return (self.expr,)


@dataclass(frozen=True)
class Inl(Expr):
    """Left injection into a sum type (extension, paper section 6).

    The paper reports the extension to sum types as "investigated but not
    yet proved"; this reproduction implements it fully (syntax, dynamic
    semantics, typing) and property-tests its safety alongside the core.
    """

    value: Expr

    def children(self) -> TupleT[Expr, ...]:
        return (self.value,)


@dataclass(frozen=True)
class Inr(Expr):
    """Right injection into a sum type (extension, paper section 6)."""

    value: Expr

    def children(self) -> TupleT[Expr, ...]:
        return (self.value,)


@dataclass(frozen=True)
class Case(Expr):
    """Sum elimination (extension, paper section 6)::

        case scrutinee of inl left_name -> left_body
                        | inr right_name -> right_body
    """

    scrutinee: Expr
    left_name: str
    left_body: Expr
    right_name: str
    right_body: Expr

    def children(self) -> TupleT[Expr, ...]:
        return (self.scrutinee, self.left_body, self.right_body)


@dataclass(frozen=True)
class If(Expr):
    """The (local) conditional ``if cond then then_branch else else_branch``."""

    cond: Expr
    then_branch: Expr
    else_branch: Expr

    def children(self) -> TupleT[Expr, ...]:
        return (self.cond, self.then_branch, self.else_branch)


@dataclass(frozen=True)
class IfAt(Expr):
    """The global synchronous conditional ``if vec at proc then e1 else e2``.

    ``vec`` must evaluate to a ``bool par`` and ``proc`` to an ``int``; the
    boolean held at process ``proc`` decides which branch the whole machine
    takes.  This construct involves communication and a synchronization
    barrier (paper section 2).
    """

    vec: Expr
    proc: Expr
    then_branch: Expr
    else_branch: Expr

    def children(self) -> TupleT[Expr, ...]:
        return (self.vec, self.proc, self.then_branch, self.else_branch)


@dataclass(frozen=True)
class ParVec(Expr):
    """An extended expression: a p-wide parallel vector ``<e_0, ..., e_{p-1}>``.

    Only produced by evaluation (rule delta_mkpar), never by the parser.
    """

    items: TupleT[Expr, ...]

    def __post_init__(self) -> None:
        if not self.items:
            raise ValueError("a parallel vector needs at least one component")

    def children(self) -> TupleT[Expr, ...]:
        return self.items

    @property
    def width(self) -> int:
        return len(self.items)


def const_int(n: int, loc: Optional[Loc] = None) -> Const:
    """Build an integer constant node."""
    return _with_loc(Const(n), loc)  # type: ignore[return-value]


def const_bool(b: bool, loc: Optional[Loc] = None) -> Const:
    """Build a boolean constant node."""
    return _with_loc(Const(bool(b)), loc)  # type: ignore[return-value]


def const_unit(loc: Optional[Loc] = None) -> Const:
    """Build the unit constant node ``()``."""
    return _with_loc(Const(UNIT), loc)  # type: ignore[return-value]


def app(fn: Expr, *args: Expr) -> Expr:
    """Left-nested application ``(((fn a1) a2) ...)``."""
    result = fn
    for arg in args:
        result = App(result, arg)
    return result


def fun(params: Union[str, TupleT[str, ...], list], body: Expr) -> Expr:
    """Curried abstraction ``fun p1 -> fun p2 -> ... -> body``."""
    if isinstance(params, str):
        params = (params,)
    result = body
    for param in reversed(list(params)):
        result = Fun(param, result)
    return result


def let_chain(bindings: list, body: Expr) -> Expr:
    """Nested lets: ``let n1 = e1 in ... let nk = ek in body``."""
    result = body
    for name, bound in reversed(bindings):
        result = Let(name, bound, result)
    return result


def is_value_syntax(expr: Expr) -> bool:
    """True when ``expr`` is syntactically a value (Figure 4).

    Local values are lambdas, constants, primitives and pairs/tuples of
    values; global values additionally include parallel vectors whose
    components are all values.  The applied constructor ``nc ()`` (the
    paper's stand-in for OCaml's ``None``) is also a value: no delta rule
    reduces it, it is only consumed by ``isnc``.
    """
    if isinstance(expr, Prim):
        # ``nproc`` reduces to the machine size p, so it is a redex.
        return expr.name != "nproc"
    if isinstance(expr, (Fun, Const)):
        return True
    if isinstance(expr, Pair):
        return is_value_syntax(expr.first) and is_value_syntax(expr.second)
    if isinstance(expr, (Inl, Inr)):
        return is_value_syntax(expr.value)
    if isinstance(expr, (Tuple, ParVec)):
        return all(is_value_syntax(item) for item in expr.items)
    if isinstance(expr, App):
        return is_nc_value(expr)
    return False


def is_nc_value(expr: Expr) -> bool:
    """True for the irreducible applied constructor ``nc ()``."""
    return (
        isinstance(expr, App)
        and isinstance(expr.fn, Prim)
        and expr.fn.name == "nc"
        and isinstance(expr.arg, Const)
        and isinstance(expr.arg.value, UnitType)
    )


#: The canonical ``nc ()`` value (the "no communication" / None marker).
NC = App(Prim("nc"), Const(UNIT))
