"""Surface syntax for types: the ascription extension ``(e : ty)``.

Users can annotate any parenthesized expression with a type::

    (mkpar (fun i -> i) : int par)
    (fun x -> x : 'a -> 'a)
    ((1, true, ()) : int * bool * unit)
    (inl 1 : (int, bool) sum)
    (ref 0 : int ref)

The type grammar mirrors the pretty-printer of :mod:`repro.core.types`::

    ty      := prod ('->' ty)?                 (arrow, right associative)
    prod    := postfix ('*' postfix)*          (2 -> pair, 3+ -> tuple)
    postfix := atom ('par' | 'ref')*           (postfix constructors chain)
    atom    := 'int' | 'bool' | 'unit'
             | ''' IDENT                       (a type variable, 'a)
             | '(' ty ')'
             | '(' ty ',' ty ')' 'sum'         (binary sums)

This module defines the *syntactic* type AST (kept separate from
:mod:`repro.core.types` to avoid a package cycle: ``core`` depends on
``lang``); :func:`repro.core.infer.type_expr_to_type` converts it to a
semantic type, giving each named type variable one fresh semantic
variable per annotation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class TypeExpr:
    """Base class of syntactic types."""

    def __str__(self) -> str:
        return render_type_expr(self)


@dataclass(frozen=True)
class TEBase(TypeExpr):
    name: str  # int | bool | unit


@dataclass(frozen=True)
class TEVar(TypeExpr):
    name: str  # without the leading quote


@dataclass(frozen=True)
class TEArrow(TypeExpr):
    domain: TypeExpr
    codomain: TypeExpr


@dataclass(frozen=True)
class TEProduct(TypeExpr):
    items: Tuple[TypeExpr, ...]  # length >= 2

    def __post_init__(self) -> None:
        if len(self.items) < 2:
            raise ValueError("a product type needs at least two components")


@dataclass(frozen=True)
class TESum(TypeExpr):
    left: TypeExpr
    right: TypeExpr


@dataclass(frozen=True)
class TEPar(TypeExpr):
    content: TypeExpr


@dataclass(frozen=True)
class TERef(TypeExpr):
    content: TypeExpr


#: Names accepted as base types.
BASE_TYPE_NAMES = frozenset(("int", "bool", "unit"))


def render_type_expr(ty: TypeExpr, min_prec: int = 0) -> str:
    """Render back to the surface syntax (round-trips through the parser)."""
    if isinstance(ty, TEBase):
        return ty.name
    if isinstance(ty, TEVar):
        return f"'{ty.name}"
    if isinstance(ty, TEArrow):
        text = (
            f"{render_type_expr(ty.domain, 2)} -> "
            f"{render_type_expr(ty.codomain, 1)}"
        )
        return f"({text})" if min_prec > 1 else text
    if isinstance(ty, TEProduct):
        text = " * ".join(render_type_expr(item, 3) for item in ty.items)
        return f"({text})" if min_prec > 2 else text
    if isinstance(ty, TESum):
        return (
            f"({render_type_expr(ty.left, 0)}, "
            f"{render_type_expr(ty.right, 0)}) sum"
        )
    if isinstance(ty, (TEPar, TERef)):
        keyword = "par" if isinstance(ty, TEPar) else "ref"
        text = f"{render_type_expr(ty.content, 3)} {keyword}"
        return f"({text})" if min_prec > 3 else text
    raise TypeError(f"render_type_expr: unknown node {type(ty).__name__}")
