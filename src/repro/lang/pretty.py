"""Pretty-printer for mini-BSML expressions.

Produces concrete syntax that re-parses to an alpha-equal (in fact equal)
term — the round-trip property ``parse(pretty(e)) == e`` is part of the
test suite.  Parallel vectors, which have no source syntax, print with the
paper's angle brackets ``<e_0, ..., e_{p-1}>``; such terms are for display
only and do not re-parse.
"""

from __future__ import annotations

from repro.lang.ast import (
    Annot,
    App,
    Case,
    Const,
    Expr,
    Fun,
    If,
    IfAt,
    Inl,
    Inr,
    Let,
    Pair,
    ParVec,
    Prim,
    Tuple,
    Var,
)
from repro.lang.limits import deep_recursion
from repro.lang.parser import BINARY_OPERATORS

# Precedence levels, mirroring the parser: bigger binds tighter.
_PREC_EXPR = 0  # fun / let / if
_PREC_TUPLE = 1
_PREC_OR = 2
_PREC_AND = 3
_PREC_CMP = 4
_PREC_ADD = 5
_PREC_MUL = 6
_PREC_APP = 7
_PREC_ATOM = 8

#: Assignment sits between tuples and ``||``: right associative.
_PREC_ASSIGN = 1.5

_OP_PREC = {
    ":=": (_PREC_ASSIGN, _PREC_OR, _PREC_ASSIGN),
    "||": (_PREC_OR, _PREC_OR, _PREC_AND),
    "&&": (_PREC_AND, _PREC_AND, _PREC_CMP),
    "=": (_PREC_CMP, _PREC_ADD, _PREC_ADD),
    "<>": (_PREC_CMP, _PREC_ADD, _PREC_ADD),
    "<": (_PREC_CMP, _PREC_ADD, _PREC_ADD),
    "<=": (_PREC_CMP, _PREC_ADD, _PREC_ADD),
    ">": (_PREC_CMP, _PREC_ADD, _PREC_ADD),
    ">=": (_PREC_CMP, _PREC_ADD, _PREC_ADD),
    "+": (_PREC_ADD, _PREC_ADD, _PREC_MUL),
    "-": (_PREC_ADD, _PREC_ADD, _PREC_MUL),
    "*": (_PREC_MUL, _PREC_MUL, _PREC_APP),
    "/": (_PREC_MUL, _PREC_MUL, _PREC_APP),
    "mod": (_PREC_MUL, _PREC_MUL, _PREC_APP),
}

# Comparison is non-associative in the parser, so a comparison operand that
# is itself a comparison must be parenthesized; handled by requiring
# operand precedence strictly above _PREC_CMP on both sides (see table).


def pretty(expr: Expr) -> str:
    """Render ``expr`` as concrete mini-BSML syntax.

    Guards the frame limit like the parser and the evaluators: rendering
    recurses over the AST, and deep ``let`` towers are legitimate input
    (``minibsml trace`` prints every intermediate state of one).
    """
    with deep_recursion():
        return _render(expr, _PREC_EXPR)


def _paren(text: str, need: bool) -> str:
    return f"({text})" if need else text


def _infix_parts(expr: Expr):
    """If ``expr`` is ``op (e1, e2)`` for a binary operator, return them."""
    if (
        isinstance(expr, App)
        and isinstance(expr.fn, Prim)
        and expr.fn.name in BINARY_OPERATORS
        and isinstance(expr.arg, Pair)
    ):
        return expr.fn.name, expr.arg.first, expr.arg.second
    return None


def _render(expr: Expr, min_prec: int) -> str:
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Const):
        text = str(expr)
        # A negative literal reads as a unary minus, which binds like
        # addition: parenthesize it anywhere tighter (e.g. ``f (-6)``).
        need = text.startswith("-") and min_prec > _PREC_ADD
        return _paren(text, need)
    if isinstance(expr, Prim):
        # Operator symbols used as atoms must wear parentheses: ``(+)``.
        if expr.name in BINARY_OPERATORS or expr.name == "!":
            return f"({expr.name})"
        return expr.name
    if isinstance(expr, Fun):
        params = [expr.param]
        body = expr.body
        while isinstance(body, Fun):
            params.append(body.param)
            body = body.body
        text = f"fun {' '.join(params)} -> {_render(body, _PREC_EXPR)}"
        return _paren(text, min_prec > _PREC_EXPR)
    if isinstance(expr, Let):
        text = (
            f"let {expr.name} = {_render(expr.bound, _PREC_EXPR)} "
            f"in {_render(expr.body, _PREC_EXPR)}"
        )
        return _paren(text, min_prec > _PREC_EXPR)
    if isinstance(expr, If):
        text = (
            f"if {_render(expr.cond, _PREC_EXPR)} "
            f"then {_render(expr.then_branch, _PREC_EXPR)} "
            f"else {_render(expr.else_branch, _PREC_EXPR)}"
        )
        return _paren(text, min_prec > _PREC_EXPR)
    if isinstance(expr, IfAt):
        text = (
            f"if {_render(expr.vec, _PREC_TUPLE)} "
            f"at {_render(expr.proc, _PREC_TUPLE)} "
            f"then {_render(expr.then_branch, _PREC_EXPR)} "
            f"else {_render(expr.else_branch, _PREC_EXPR)}"
        )
        return _paren(text, min_prec > _PREC_EXPR)
    if isinstance(expr, Pair):
        text = f"{_render(expr.first, _PREC_OR)}, {_render(expr.second, _PREC_OR)}"
        return _paren(text, min_prec > _PREC_TUPLE)
    if isinstance(expr, Tuple):
        text = ", ".join(_render(item, _PREC_OR) for item in expr.items)
        return _paren(text, min_prec > _PREC_TUPLE)
    if isinstance(expr, Annot):
        from repro.lang.type_syntax import render_type_expr

        return f"({_render(expr.expr, _PREC_EXPR)} : {render_type_expr(expr.annotation)})"
    if isinstance(expr, ParVec):
        inner = ", ".join(_render(item, _PREC_EXPR) for item in expr.items)
        return f"<{inner}>"
    if isinstance(expr, (Inl, Inr)):
        keyword = "inl" if isinstance(expr, Inl) else "inr"
        text = f"{keyword} {_render(expr.value, _PREC_ATOM)}"
        return _paren(text, min_prec > _PREC_APP)
    if isinstance(expr, Case):
        text = (
            f"case {_render(expr.scrutinee, _PREC_EXPR)} of "
            f"inl {expr.left_name} -> {_render(expr.left_body, _PREC_EXPR)} "
            f"| inr {expr.right_name} -> {_render(expr.right_body, _PREC_EXPR)}"
        )
        return _paren(text, min_prec > _PREC_EXPR)
    if isinstance(expr, App):
        # Dereference prints prefix: ``!r`` (imperative extension).
        if isinstance(expr.fn, Prim) and expr.fn.name == "!":
            return f"!{_render(expr.arg, _PREC_ATOM)}"
        parts = _infix_parts(expr)
        if parts is not None:
            op, left, right = parts
            node_prec, left_prec, right_prec = _OP_PREC[op]
            text = (
                f"{_render(left, left_prec)} {op} {_render(right, right_prec)}"
            )
            return _paren(text, min_prec > node_prec)
        text = f"{_render(expr.fn, _PREC_APP)} {_render(expr.arg, _PREC_ATOM)}"
        return _paren(text, min_prec > _PREC_APP)
    raise TypeError(f"pretty: unknown expression node {type(expr).__name__}")
