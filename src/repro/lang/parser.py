"""Recursive-descent parser for the concrete syntax of mini-BSML.

Grammar (from loosest to tightest binding)::

    program   := definition* expr?            (top-level 'let' without 'in')
    definition:= 'let' IDENT IDENT* '=' expr
    expr      := 'fun' IDENT+ '->' expr
               | 'let' IDENT IDENT* '=' expr 'in' expr
               | 'if' expr ('at' expr)? 'then' expr 'else' expr
               | tuple
    tuple     := or ( ',' or )*               (2 items -> Pair, 3+ -> Tuple)
    or        := and ( '||' and )*
    and       := cmp ( '&&' cmp )*
    cmp       := add ( ('='|'<>'|'<'|'<='|'>'|'>=') add )?
    add       := mul ( ('+'|'-') mul )*
    mul       := unary ( ('*'|'/'|'mod') unary )*
    unary     := '-' unary | app
    app       := atom atom+                   (left associative)
    atom      := INT | 'true' | 'false' | '(' ')' | IDENT | '(' expr ')'

Binary operators are sugar for the paper's pair-taking primitives:
``e1 + e2`` parses to ``App(Prim('+'), Pair(e1, e2))``.  Identifiers that
name primitives (``mkpar``, ``put``, ``fst``, ...) parse to :class:`Prim`
nodes and cannot be rebound.
"""

from __future__ import annotations

from typing import List, Optional, Tuple as TupleT

from repro.lang.ast import (
    UNIT,
    Annot,
    App,
    Case,
    Const,
    Expr,
    If,
    IfAt,
    Inl,
    Inr,
    Let,
    Loc,
    Pair,
    Prim,
    Tuple,
    Var,
    _with_loc,
    fun,
)
from repro.lang.errors import ParseError
from repro.lang.type_syntax import (
    BASE_TYPE_NAMES,
    TEArrow,
    TEBase,
    TEPar,
    TEProduct,
    TERef,
    TESum,
    TEVar,
    TypeExpr,
)
from repro.lang.limits import deep_recursion
from repro.lang.lexer import Token, TokenKind, tokenize

#: Identifiers that always denote primitive operations.
PRIMITIVE_NAMES = frozenset(
    (
        "fst",
        "snd",
        "fix",
        "nc",
        "isnc",
        "not",
        "mkpar",
        "apply",
        "put",
        "nproc",
        # imperative extension (paper section 6)
        "ref",
    )
)

#: Binary operator symbols, each of which is also a primitive name.
BINARY_OPERATORS = frozenset(
    ("+", "-", "*", "/", "mod", "=", "<>", "<", "<=", ">", ">=", "&&", "||", ":=")
)

_CMP_OPS = ("=", "<>", "<", "<=", ">", ">=")
_ADD_OPS = ("+", "-")
_MUL_OPS = ("*", "/", "mod")

#: Tokens that can begin an atom, used to decide when application stops.
_ATOM_STARTERS = (TokenKind.INT, TokenKind.IDENT)


class _Parser:
    def __init__(self, tokens: List[Token], filename: str) -> None:
        self.tokens = tokens
        self.filename = filename
        self.index = 0

    # -- token plumbing ---------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token.kind is TokenKind.KEYWORD and token.text == word

    def _at_symbol(self, *symbols: str) -> bool:
        token = self._peek()
        return token.kind is TokenKind.SYMBOL and token.text in symbols

    def _expect_keyword(self, word: str) -> Token:
        if not self._at_keyword(word):
            raise ParseError(f"expected {word!r}, found {self._peek()}", self._peek().loc)
        return self._next()

    def _expect_symbol(self, symbol: str) -> Token:
        if not self._at_symbol(symbol):
            raise ParseError(
                f"expected {symbol!r}, found {self._peek()}", self._peek().loc
            )
        return self._next()

    def _expect_binder(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise ParseError(f"expected an identifier, found {token}", token.loc)
        if token.text in PRIMITIVE_NAMES:
            raise ParseError(
                f"cannot rebind the primitive {token.text!r}", token.loc
            )
        return self._next()

    # -- expressions ------------------------------------------------------

    def parse_expr(self) -> Expr:
        expr = self._parse_nonseq()
        # Sequencing ``e1 ; e2`` (imperative extension) desugars to
        # ``let _ = e1 in e2``; right associative.
        if self._at_symbol(";"):
            loc = self._next().loc
            rest = self.parse_expr()
            return _with_loc(Let("_", expr, rest), loc)
        return expr

    def _parse_nonseq(self) -> Expr:
        if self._at_keyword("fun"):
            return self._parse_fun()
        if self._at_keyword("let"):
            return self._parse_let()
        if self._at_keyword("if"):
            return self._parse_if()
        if self._at_keyword("case"):
            return self._parse_case()
        return self._parse_tuple()

    def _parse_case(self) -> Expr:
        """``case e of inl x -> e1 | inr y -> e2`` (sum-type extension)."""
        loc = self._expect_keyword("case").loc
        scrutinee = self.parse_expr()
        self._expect_keyword("of")
        self._expect_keyword("inl")
        left_name = self._expect_binder().text
        self._expect_symbol("->")
        left_body = self.parse_expr()
        self._expect_symbol("|")
        self._expect_keyword("inr")
        right_name = self._expect_binder().text
        self._expect_symbol("->")
        right_body = self.parse_expr()
        return _with_loc(
            Case(scrutinee, left_name, left_body, right_name, right_body), loc
        )

    def _parse_fun(self) -> Expr:
        loc = self._expect_keyword("fun").loc
        params = [self._expect_binder().text]
        while self._peek().kind is TokenKind.IDENT:
            params.append(self._expect_binder().text)
        self._expect_symbol("->")
        body = self.parse_expr()
        return _with_loc(fun(tuple(params), body), loc)

    def _parse_let(self) -> Expr:
        loc = self._expect_keyword("let").loc
        name = self._expect_binder().text
        params = []
        while self._peek().kind is TokenKind.IDENT:
            params.append(self._expect_binder().text)
        self._expect_symbol("=")
        bound = self.parse_expr()
        if params:
            bound = fun(tuple(params), bound)
        self._expect_keyword("in")
        body = self.parse_expr()
        return _with_loc(Let(name, bound, body), loc)

    def _parse_if(self) -> Expr:
        loc = self._expect_keyword("if").loc
        cond = self.parse_expr()
        proc: Optional[Expr] = None
        if self._at_keyword("at"):
            self._next()
            proc = self.parse_expr()
        self._expect_keyword("then")
        then_branch = self.parse_expr()
        self._expect_keyword("else")
        else_branch = self.parse_expr()
        if proc is None:
            return _with_loc(If(cond, then_branch, else_branch), loc)
        return _with_loc(IfAt(cond, proc, then_branch, else_branch), loc)

    def _parse_tuple(self) -> Expr:
        first = self._parse_assign()
        if not self._at_symbol(","):
            return first
        items = [first]
        while self._at_symbol(","):
            self._next()
            items.append(self._parse_assign())
        if len(items) == 2:
            return Pair(items[0], items[1])
        return Tuple(tuple(items))

    def _parse_assign(self) -> Expr:
        """``e1 := e2`` (imperative extension), right associative."""
        left = self._parse_or()
        if self._at_symbol(":="):
            loc = self._next().loc
            right = self._parse_assign()
            return self._binop(":=", left, right, loc)
        return left

    def _binop(self, op: str, left: Expr, right: Expr, loc: Loc) -> Expr:
        return _with_loc(App(Prim(op), Pair(left, right)), loc)

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._at_symbol("||"):
            loc = self._next().loc
            left = self._binop("||", left, self._parse_and(), loc)
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_cmp()
        while self._at_symbol("&&"):
            loc = self._next().loc
            left = self._binop("&&", left, self._parse_cmp(), loc)
        return left

    def _parse_cmp(self) -> Expr:
        left = self._parse_add()
        if self._at_symbol(*_CMP_OPS):
            token = self._next()
            right = self._parse_add()
            return self._binop(token.text, left, right, token.loc)
        return left

    def _parse_add(self) -> Expr:
        left = self._parse_mul()
        while self._at_symbol(*_ADD_OPS):
            token = self._next()
            left = self._binop(token.text, left, self._parse_mul(), token.loc)
        return left

    def _parse_mul(self) -> Expr:
        left = self._parse_unary()
        while self._at_symbol(*_MUL_OPS):
            token = self._next()
            left = self._binop(token.text, left, self._parse_unary(), token.loc)
        return left

    def _parse_unary(self) -> Expr:
        if self._at_symbol("-"):
            token = self._next()
            operand = self._parse_unary()
            # A negated literal is a (negative) constant, so that pretty
            # printing Const(-6) as "-6" round-trips; anything else is the
            # usual 0 - e desugaring.
            if isinstance(operand, Const) and isinstance(operand.value, int) and not isinstance(operand.value, bool):
                return _with_loc(Const(-operand.value), token.loc)
            return self._binop("-", _with_loc(Const(0), token.loc), operand, token.loc)
        return self._parse_app()

    def _starts_atom(self) -> bool:
        token = self._peek()
        if token.kind in _ATOM_STARTERS:
            return True
        if token.kind is TokenKind.KEYWORD and token.text in ("true", "false"):
            return True
        return token.kind is TokenKind.SYMBOL and token.text in ("(", "!")

    def _parse_app(self) -> Expr:
        expr = self._parse_atom()
        while self._starts_atom():
            arg = self._parse_atom()
            expr = App(expr, arg)
        return expr

    def _parse_atom(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.INT:
            self._next()
            return _with_loc(Const(int(token.text)), token.loc)
        if token.kind is TokenKind.KEYWORD and token.text in ("true", "false"):
            self._next()
            return _with_loc(Const(token.text == "true"), token.loc)
        if self._at_symbol("!"):
            bang = self._next()
            target = self._parse_atom()
            return _with_loc(App(Prim("!"), target), bang.loc)
        if token.kind is TokenKind.KEYWORD and token.text in ("inl", "inr"):
            self._next()
            payload = self._parse_atom()
            node = Inl(payload) if token.text == "inl" else Inr(payload)
            return _with_loc(node, token.loc)
        if token.kind is TokenKind.IDENT:
            self._next()
            if token.text in PRIMITIVE_NAMES:
                return _with_loc(Prim(token.text), token.loc)
            return _with_loc(Var(token.text), token.loc)
        if self._at_symbol("("):
            open_loc = self._next().loc
            if self._at_symbol(")"):
                self._next()
                return _with_loc(Const(UNIT), open_loc)
            # Operator section ``(+)``: the operator as a first-class value.
            head = self._peek()
            if (
                head.kind is TokenKind.SYMBOL
                and (head.text in BINARY_OPERATORS or head.text == "!")
                and self._peek(1).kind is TokenKind.SYMBOL
                and self._peek(1).text == ")"
            ):
                self._next()
                self._next()
                return _with_loc(Prim(head.text), open_loc)
            inner = self.parse_expr()
            if self._at_symbol(":"):
                self._next()
                annotation = self._parse_type()
                self._expect_symbol(")")
                return _with_loc(Annot(inner, annotation), open_loc)
            self._expect_symbol(")")
            return inner
        raise ParseError(f"expected an expression, found {token}", token.loc)

    # -- types (ascriptions) ------------------------------------------------

    def _parse_type(self) -> TypeExpr:
        left = self._parse_type_product()
        if self._at_symbol("->"):
            self._next()
            return TEArrow(left, self._parse_type())
        return left

    def _parse_type_product(self) -> TypeExpr:
        items = [self._parse_type_postfix()]
        while self._at_symbol("*"):
            self._next()
            items.append(self._parse_type_postfix())
        if len(items) == 1:
            return items[0]
        return TEProduct(tuple(items))

    def _parse_type_postfix(self) -> TypeExpr:
        ty = self._parse_type_atom()
        while (
            self._peek().kind is TokenKind.IDENT
            and self._peek().text in ("par", "ref")
        ):
            word = self._next().text
            ty = TEPar(ty) if word == "par" else TERef(ty)
        return ty

    def _parse_type_atom(self) -> TypeExpr:
        token = self._peek()
        if token.kind is TokenKind.IDENT:
            if token.text in BASE_TYPE_NAMES:
                self._next()
                return TEBase(token.text)
            if token.text.startswith("'"):
                self._next()
                return TEVar(token.text[1:])
            raise ParseError(f"unknown type name {token}", token.loc)
        if self._at_symbol("("):
            self._next()
            first = self._parse_type()
            if self._at_symbol(","):
                self._next()
                second = self._parse_type()
                self._expect_symbol(")")
                word = self._peek()
                if word.kind is TokenKind.IDENT and word.text == "sum":
                    self._next()
                    return TESum(first, second)
                raise ParseError(
                    f"expected 'sum' after a type pair, found {word}", word.loc
                )
            self._expect_symbol(")")
            return first
        raise ParseError(f"expected a type, found {token}", token.loc)

    # -- programs ---------------------------------------------------------

    def parse_program(self) -> TupleT[List[TupleT[str, Expr]], Optional[Expr]]:
        """Parse top-level definitions followed by an optional expression.

        Definitions are ``let`` items without an ``in``.  An optional ``;;``
        terminates any top-level item; it is required between a definition
        and a following expression that could otherwise be read as more
        applied arguments (same rule as OCaml).
        """
        definitions: List[TupleT[str, Expr]] = []
        while True:
            while self._at_symbol(";;"):
                self._next()
            if self._peek().kind is TokenKind.EOF:
                return definitions, None
            if self._at_keyword("let") and self._is_toplevel_let():
                self._expect_keyword("let")
                name = self._expect_binder().text
                params = []
                while self._peek().kind is TokenKind.IDENT:
                    params.append(self._expect_binder().text)
                self._expect_symbol("=")
                bound = self.parse_expr()
                if params:
                    bound = fun(tuple(params), bound)
                definitions.append((name, bound))
                continue
            final = self.parse_expr()
            while self._at_symbol(";;"):
                self._next()
            self._expect_eof()
            return definitions, final

    def _is_toplevel_let(self) -> bool:
        """Decide whether the upcoming ``let`` lacks an ``in`` (a definition).

        Implemented by speculative parsing with backtracking over the token
        list; cheap because programs are small.
        """
        saved = self.index
        try:
            self._expect_keyword("let")
            self._expect_binder()
            while self._peek().kind is TokenKind.IDENT:
                self._expect_binder()
            self._expect_symbol("=")
            self.parse_expr()
            return not self._at_keyword("in")
        except ParseError:
            # Let the real parse report the error with proper context.
            return False
        finally:
            self.index = saved

    def _expect_eof(self) -> None:
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            raise ParseError(f"unexpected {token} after expression", token.loc)


def parse_expression(source: str, filename: str = "<input>") -> Expr:
    """Parse a single mini-BSML expression from ``source``."""
    with deep_recursion():
        parser = _Parser(tokenize(source, filename), filename)
        expr = parser.parse_expr()
        parser._expect_eof()
        return expr


def parse_definitions(
    source: str, filename: str = "<input>"
) -> List[TupleT[str, Expr]]:
    """Parse a sequence of top-level ``let`` definitions (no final expression)."""
    with deep_recursion():
        parser = _Parser(tokenize(source, filename), filename)
        definitions, final = parser.parse_program()
    if final is not None:
        raise ParseError(
            "expected only top-level definitions, found a trailing expression",
            None,
        )
    return definitions


def parse_program(source: str, filename: str = "<input>") -> Expr:
    """Parse definitions plus a final expression into one nested-let term."""
    with deep_recursion():
        parser = _Parser(tokenize(source, filename), filename)
        definitions, final = parser.parse_program()
    if final is None:
        raise ParseError("program has no final expression", None)
    result = final
    for name, bound in reversed(definitions):
        result = Let(name, bound, result)
    return result
