"""The mini-BSML prelude: derived functions written in mini-BSML itself.

The paper builds ``replicate`` and ``bcast`` from the four primitives
(section 2.1); this module collects those and the other classic BSMLlib
derived operations (``parfun``, ``shift``, total exchange, scan, fold),
all expressed in the object language.  Loading a program "with prelude"
wraps it in the corresponding ``let`` chain, so the prelude is typechecked
by the paper's type system and executed by the paper's semantics like any
user code.

The paper's ``bcast`` has BSP cost ``p + (p-1)*s*g + l`` (formula (1));
the benchmark ``benchmarks/bench_formula1_bcast_cost.py`` checks the
simulator reproduces that shape for the ``bcast`` defined here.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lang.ast import Expr, Let
from repro.lang.parser import parse_definitions

#: Each entry is (name, mini-BSML source for the body).
PRELUDE_DEFINITIONS: Tuple[Tuple[str, str], ...] = (
    ("id", "fun x -> x"),
    ("konst", "fun k -> fun x -> k"),
    ("compose", "fun f -> fun g -> fun x -> f (g x)"),
    # -- purely parallel helpers -----------------------------------------
    ("replicate", "fun x -> mkpar (fun pid -> x)"),
    ("parfun", "fun f -> fun v -> apply (replicate f, v)"),
    (
        "parfun2",
        "fun f -> fun v -> fun w -> apply (apply (replicate f, v), w)",
    ),
    (
        "applyat",
        "fun n -> fun f1 -> fun f2 -> fun v ->\n"
        "  apply (mkpar (fun i -> if i = n then f1 else f2), v)",
    ),
    # -- communication patterns ------------------------------------------
    # Broadcast from process n (paper section 2.1, cost formula (1)).
    (
        "bcast",
        "fun n -> fun vec ->\n"
        "  let tosend = apply (mkpar (fun i -> fun v -> fun dst ->\n"
        "                               if i = n then v else nc ()), vec) in\n"
        "  let recv = put tosend in\n"
        "  parfun (fun f -> f n) recv",
    ),
    # Cyclic shift by d: process i receives the value of process (i - d).
    (
        "shift",
        "fun d -> fun vec ->\n"
        "  let tosend = apply (mkpar (fun i -> fun v -> fun dst ->\n"
        "                               if dst = ((i + d) mod nproc) then v\n"
        "                               else nc ()), vec) in\n"
        "  apply (mkpar (fun i -> fun f ->\n"
        "                   f ((i + nproc - (d mod nproc)) mod nproc)),\n"
        "         put tosend)",
    ),
    # Total exchange: afterwards every process can read every component.
    (
        "totex",
        "fun vec -> put (apply (mkpar (fun i -> fun v -> fun dst -> v), vec))",
    ),
    # Reduction of the whole vector, result replicated everywhere.
    # One total exchange (h = p*s) then a local fold: 1 superstep.
    (
        "fold",
        "fun op -> fun vec ->\n"
        "  let recv = totex vec in\n"
        "  parfun (fun f ->\n"
        "           (fix (fun loop -> fun j -> fun acc ->\n"
        "                   if j = nproc then acc\n"
        "                   else loop (j + 1) (op (acc, f j))))\n"
        "             1 (f 0))\n"
        "         recv",
    ),
    # The vector of process identifiers (BSMLlib's ``this``).
    ("procs", "mkpar (fun pid -> pid)"),
    # Read one component everywhere (a named broadcast).
    ("get", "fun n -> fun vec -> bcast n vec"),
    ("first", "fun vec -> bcast 0 vec"),
    ("last", "fun vec -> bcast (nproc - 1) vec"),
    # Gather every component at process root: the delivered function
    # there maps each pid to its value (nc () elsewhere).
    (
        "gather",
        "fun root -> fun vec ->\n"
        "  put (apply (mkpar (fun i -> fun v -> fun dst ->\n"
        "                       if dst = root then v else nc ()), vec))",
    ),
    # Inclusive parallel prefix, log2(p) supersteps (Hillis-Steele).
    (
        "scan",
        "fun op -> fun vec ->\n"
        "  (fix (fun loop -> fun s -> fun v ->\n"
        "          if nproc <= s then v\n"
        "          else\n"
        "            let recv = put (apply (mkpar (fun i -> fun x -> fun dst ->\n"
        "                                            if dst = i + s then x\n"
        "                                            else nc ()), v)) in\n"
        "            loop (2 * s)\n"
        "                 (apply (apply (mkpar (fun i -> fun f -> fun x ->\n"
        "                                         if s <= i then op (f (i - s), x)\n"
        "                                         else x), recv), v))))\n"
        "    1 vec",
    ),
    # Exclusive prefix: shift the inclusive scan right and seed with e.
    (
        "scanex",
        "fun op -> fun e -> fun vec ->\n"
        "  apply (mkpar (fun i -> fun x -> if i = 0 then e else x),\n"
        "         shift 1 (scan op vec))",
    ),
)

#: The whole prelude as one source file of top-level definitions.
PRELUDE_SOURCE: str = "\n".join(
    f"let {name} = {body}" for name, body in PRELUDE_DEFINITIONS
)


def prelude_asts() -> List[Tuple[str, Expr]]:
    """Parse the prelude into (name, body) pairs, in dependency order."""
    return parse_definitions(PRELUDE_SOURCE, filename="<prelude>")


def prelude_map() -> Dict[str, Expr]:
    """The prelude as a name -> body mapping."""
    return dict(prelude_asts())


def needed_definitions(expr: Expr) -> List[Tuple[str, Expr]]:
    """The prelude definitions ``expr`` uses, transitively, in order.

    Starting from the free variables of ``expr``, walks backwards through
    the prelude adding each referenced definition and the definitions its
    body references in turn.
    """
    from repro.lang.substitution import free_vars

    definitions = prelude_asts()
    needed = set(free_vars(expr))
    keep = []
    for name, body in reversed(definitions):
        if name in needed:
            keep.append((name, body))
            needed |= free_vars(body)
    keep.reverse()
    return keep


def with_prelude(expr: Expr, only: Tuple[str, ...] | None = None) -> Expr:
    """Wrap ``expr`` in ``let`` bindings for the prelude definitions it uses.

    Only the definitions ``expr`` (transitively) references are included —
    both for evaluation speed and for typing fidelity: the paper's (Let)
    rule adds ``L(tau_body) => L(tau_bound)``, so let-binding an *unused*
    global-typed helper (say ``replicate : ['a -> 'a par / L('a)]``, whose
    locality is False) around a local-typed program would reject it.  A
    real library lives in the typing environment instead (see
    :func:`repro.core.prelude_env.prelude_env`); this wrapper exists to
    give prelude-using programs a self-contained term to *evaluate*.

    ``only`` forces the inclusion of the named definitions (plus their
    dependencies) even if ``expr`` does not mention them.
    """
    from repro.lang.ast import Var
    from repro.lang.substitution import free_vars

    roots: Expr = expr
    if only is not None:
        known = {name for name, _ in PRELUDE_DEFINITIONS}
        unknown = set(only) - known
        if unknown:
            raise KeyError(f"unknown prelude definitions: {sorted(unknown)}")
        # A throwaway term whose free variables are expr's plus ``only``.
        roots = expr
        for name in only:
            roots = Let("_force", Var(name), roots)
    result = expr
    for name, bound in reversed(needed_definitions(roots)):
        result = Let(name, bound, result)
    return result
