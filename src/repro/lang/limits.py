"""Recursion headroom for deeply nested programs.

The parser, the inference engine and the evaluators are all recursive
over the AST; a 500-deep ``let`` tower is a legitimate program but
overflows CPython's default 1000-frame recursion limit.  Entry points
wrap themselves in :func:`deep_recursion`, which raises the limit for the
duration of the call (never lowers it, and restores it afterwards).
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Iterator

#: Frame budget granted to recursive passes over user programs.
RECURSION_LIMIT = 100_000


@contextmanager
def deep_recursion(limit: int = RECURSION_LIMIT) -> Iterator[None]:
    """Temporarily ensure at least ``limit`` frames of recursion."""
    previous = sys.getrecursionlimit()
    if previous >= limit:
        yield
        return
    sys.setrecursionlimit(limit)
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)
