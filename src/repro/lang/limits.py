"""Recursion headroom for deeply nested programs.

The parser, the inference engine and the evaluators are all recursive
over the AST; a 500-deep ``let`` tower is a legitimate program but
overflows CPython's default 1000-frame recursion limit.  Entry points
wrap themselves in :func:`deep_recursion`, which raises the limit for the
duration of the call (never lowers it, and restores it afterwards).
"""

from __future__ import annotations

import sys
import threading
from contextlib import contextmanager
from typing import Iterator

#: Frame budget granted to recursive passes over user programs.
RECURSION_LIMIT = 100_000

# The recursion limit is process-global, so concurrent entries (the
# service runs inferences on several threads) must coordinate: the first
# entry raises the limit, the last exit restores it.  Without the
# counter, one thread's exit would drop the limit out from under another
# thread still mid-inference.
_lock = threading.Lock()
_active = 0
_saved_limit = 0


@contextmanager
def deep_recursion(limit: int = RECURSION_LIMIT) -> Iterator[None]:
    """Temporarily ensure at least ``limit`` frames of recursion.

    Re-entrant and thread-safe: nested/concurrent uses share one raised
    limit, restored when the outermost/last user exits.
    """
    global _active, _saved_limit
    with _lock:
        current = sys.getrecursionlimit()
        if current < limit:
            if _active == 0:
                _saved_limit = current
            sys.setrecursionlimit(limit)
        _active += 1
    try:
        yield
    finally:
        with _lock:
            _active -= 1
            if _active == 0 and _saved_limit:
                sys.setrecursionlimit(_saved_limit)
                _saved_limit = 0
