"""Command-line interface: ``minibsml {typecheck,run,profile,trace,analyze,explain}``.

Examples::

    minibsml typecheck -e "fst (1, mkpar (fun i -> i))"
    minibsml run -e "bcast 2 (mkpar (fun i -> i * i))" -p 8 -g 2 -l 100
    minibsml run -e "bcast 2 (mkpar (fun i -> i * i))" --trace out.json
    minibsml profile -e "bcast 2 (mkpar (fun i -> i * i))" -p 8
    minibsml analyze out.json
    minibsml trace -e "apply (mkpar (fun i -> fun x -> x + i), mkpar (fun i -> 0))" -p 2
    minibsml explain -e "mkpar (fun pid -> let this = mkpar (fun i -> i) in pid)"
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import obs, perf, run_program, typecheck_scheme
from repro.core import INFER_ENGINES, TypingError, explain as explain_expr
from repro.lang import ParseError, parse_program, pretty, with_prelude
from repro.lang.errors import ReproError
from repro.semantics import ENGINES, StuckError, trace as smallstep_trace


def _load(args: argparse.Namespace):
    if args.expr is not None:
        source = args.expr
        filename = "<command line>"
    else:
        with open(args.file, "r", encoding="utf-8") as handle:
            source = handle.read()
        filename = args.file
    return parse_program(source, filename)


def _add_source_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("-e", "--expr", help="program text on the command line")
    group.add_argument("file", nargs="?", help="path to a .bsml file")
    parser.add_argument(
        "--no-prelude",
        action="store_true",
        help="do not wrap the program in the standard prelude",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print perf counters and cache hit rates to stderr",
    )
    parser.add_argument(
        "--stats-verbose",
        action="store_true",
        help="like --stats but also list registered caches with zero calls",
    )
    parser.add_argument(
        "--infer-engine",
        choices=INFER_ENGINES,
        default=None,
        help="type-inference engine: uf (union-find, near-linear; the "
        "default) or w (substitution-threading reference); inferred "
        "types, constraints and errors are engine-independent",
    )


def _command_typecheck(args: argparse.Namespace) -> int:
    expr = _load(args)
    scheme = typecheck_scheme(
        expr, use_prelude=not args.no_prelude, infer_engine=args.infer_engine
    )
    print(scheme)
    if args.effects:
        from repro.core.effects import analyze_effects

        warnings = analyze_effects(expr)
        for warning in warnings:
            print(f"effect: {warning}", file=sys.stderr)
        if any(w.is_error for w in warnings):
            return 1
    return 0


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="collect a structured trace (spans per BSP process, fault "
        "events, inference timings) and write it to FILE",
    )
    parser.add_argument(
        "--trace-format",
        choices=obs.TRACE_FORMATS,
        default=None,
        help="trace file format (default: inferred from the FILE suffix; "
        "chrome is Perfetto/about://tracing-loadable JSON)",
    )


def _traced_run(args: argparse.Namespace):
    """Evaluate the program, honouring ``--trace``; returns the result.

    Trace collection wraps the whole pipeline (typecheck + evaluation) so
    the inference track appears alongside the per-process timelines.
    """
    expr = _load(args)
    faults, retry = _parse_faults(args.faults)

    def evaluate():
        return run_program(
            expr,
            p=args.p,
            g=args.g,
            l=args.l,
            use_prelude=not args.no_prelude,
            typed=not args.untyped,
            backend=args.backend,
            faults=faults,
            retry=retry,
            engine=args.engine,
            infer_engine=args.infer_engine,
        )

    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return evaluate(), None
    with obs.trace() as collected:
        result = evaluate()
    obs.write_trace(collected, trace_path, format=args.trace_format)
    print(
        f"trace: {len(collected.records)} records -> {trace_path}",
        file=sys.stderr,
    )
    return result, collected


def _command_run(args: argparse.Namespace) -> int:
    result, _ = _traced_run(args)
    print(result.python_value)
    if args.cost:
        print(result.render())
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    expr = _load(args)
    faults, retry = _parse_faults(args.faults)
    with obs.trace() as collected:
        result = run_program(
            expr,
            p=args.p,
            g=args.g,
            l=args.l,
            use_prelude=not args.no_prelude,
            typed=not args.untyped,
            backend=args.backend,
            faults=faults,
            retry=retry,
            engine=args.engine,
            infer_engine=args.infer_engine,
        )
    print(result.python_value)
    print(result.render())
    print(obs.summarize(collected))
    trace_path = getattr(args, "trace", None)
    if trace_path:
        obs.write_trace(collected, trace_path, format=args.trace_format)
        print(
            f"trace: {len(collected.records)} records -> {trace_path}",
            file=sys.stderr,
        )
    return 0


def _parse_faults(spec: Optional[str]):
    """``--faults SPEC`` -> ``(FaultPlan, RetryPolicy)`` (or two Nones)."""
    if not spec:
        return None, None
    from repro.bsp.faults import parse_fault_spec

    return parse_fault_spec(spec)


def _command_trace(args: argparse.Namespace) -> int:
    expr = _load(args)
    if not args.no_prelude:
        expr = with_prelude(expr)
    shown = 0
    for state in smallstep_trace(expr, args.p, max_steps=args.max_steps):
        print(f"{shown:>5}  {pretty(state)}")
        shown += 1
        if args.limit and shown >= args.limit:
            print("  ... (truncated; raise --limit)")
            break
    return 0


def _command_analyze(args: argparse.Namespace) -> int:
    """Read a saved trace back and print the BSP analytics report."""
    try:
        trace = obs.load_trace(args.trace_file, format=args.format)
    except ValueError as error:
        # A malformed trace file is an input problem, like an unreadable
        # one: report it on the usage/IO exit code.
        print(f"malformed trace: {error}", file=sys.stderr)
        return 2
    report = obs.analyze_trace(trace, g=args.g, l=args.l)
    print(report.render())
    return 0


def _command_explain(args: argparse.Namespace) -> int:
    expr = _load(args)
    if not args.no_prelude:
        expr = with_prelude(expr)
    explanation = explain_expr(expr)
    print(explanation.render(max_width=args.width))
    return 0 if explanation.accepted else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="minibsml",
        description=(
            "mini-BSML: the language, type system and BSP cost model of "
            "'A Polymorphic Type System for Bulk Synchronous Parallel ML'"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("typecheck", help="infer the type scheme")
    _add_source_arguments(check)
    check.add_argument(
        "--effects",
        action="store_true",
        help="also run the replicated-reference effect analysis (section 6)",
    )
    check.set_defaults(handler=_command_typecheck)

    run = commands.add_parser("run", help="typecheck, evaluate and cost")
    _add_source_arguments(run)
    run.add_argument("-p", type=int, default=4, help="number of processes")
    run.add_argument("-g", type=float, default=1.0, help="BSP g parameter")
    run.add_argument("-l", type=float, default=20.0, help="BSP l parameter")
    run.add_argument("--cost", action="store_true", help="print the cost table")
    run.add_argument(
        "--untyped", action="store_true", help="skip the static typecheck"
    )
    run.add_argument(
        "--backend",
        choices=("seq", "thread", "process"),
        default="seq",
        help="execution backend for the per-process computation phases "
        "(value and abstract cost are backend-independent)",
    )
    run.add_argument(
        "--engine",
        choices=ENGINES,
        default="tree",
        help="evaluation engine: tree (big-step interpreter), compiled "
        "(closure-compiling, slot-indexed environments) or vectorized "
        "(compiled closures batched over all p pids per superstep); "
        "value, cost and trace are engine-independent",
    )
    run.add_argument(
        "--faults",
        metavar="SPEC",
        help="arm deterministic fault injection, e.g. "
        "'seed=42,crash=0.1,drop=0.05,attempts=4' (keys: seed, crash, "
        "timeout, drop, dup, corrupt, pool, attempts, delay, jitter, "
        "multiplier; a survivable plan changes nothing observable)",
    )
    _add_trace_arguments(run)
    run.set_defaults(handler=_command_run)

    profile = commands.add_parser(
        "profile",
        help="run with tracing on and print the latency histogram summary "
        "next to the abstract BSP cost table",
    )
    _add_source_arguments(profile)
    profile.add_argument("-p", type=int, default=4, help="number of processes")
    profile.add_argument("-g", type=float, default=1.0, help="BSP g parameter")
    profile.add_argument("-l", type=float, default=20.0, help="BSP l parameter")
    profile.add_argument(
        "--untyped", action="store_true", help="skip the static typecheck"
    )
    profile.add_argument(
        "--backend",
        choices=("seq", "thread", "process"),
        default="seq",
        help="execution backend for the per-process computation phases",
    )
    profile.add_argument(
        "--engine",
        choices=ENGINES,
        default="tree",
        help="evaluation engine for the profiled run",
    )
    profile.add_argument(
        "--faults",
        metavar="SPEC",
        help="arm deterministic fault injection for the profiled run",
    )
    _add_trace_arguments(profile)
    profile.set_defaults(handler=_command_profile)

    analyze = commands.add_parser(
        "analyze",
        help="read a saved trace (from --trace / profile) and report the "
        "superstep critical path, load imbalance, traffic matrix and a "
        "least-squares calibration of effective g/l with a "
        "modelled-vs-measured drift table",
    )
    analyze.add_argument(
        "trace_file", help="path to a saved trace (.jsonl or Chrome JSON)"
    )
    analyze.add_argument(
        "--format",
        choices=("chrome", "jsonl"),
        default=None,
        help="trace file format (default: inferred from the suffix)",
    )
    analyze.add_argument(
        "-g",
        type=float,
        default=None,
        help="the machine's configured g in seconds/word; with both -g and "
        "-l the drift table predicts from the configured model instead of "
        "the fitted one",
    )
    analyze.add_argument(
        "-l",
        type=float,
        default=None,
        help="the machine's configured l in seconds/barrier (see -g)",
    )
    analyze.set_defaults(handler=_command_analyze)

    tr = commands.add_parser("trace", help="print the small-step reduction")
    _add_source_arguments(tr)
    tr.add_argument("-p", type=int, default=2, help="number of processes")
    tr.add_argument("--limit", type=int, default=200, help="max lines shown")
    tr.add_argument("--max-steps", type=int, default=100_000)
    tr.set_defaults(handler=_command_trace)

    expl = commands.add_parser(
        "explain", help="render the typing derivation (or the rejection)"
    )
    _add_source_arguments(expl)
    expl.add_argument("--width", type=int, default=200, help="max judgement width")
    expl.set_defaults(handler=_command_explain)

    repl = commands.add_parser("repl", help="interactive session")
    repl.add_argument("-p", type=int, default=4, help="number of processes")
    repl.add_argument("-g", type=float, default=1.0, help="BSP g parameter")
    repl.add_argument("-l", type=float, default=20.0, help="BSP l parameter")
    repl.add_argument(
        "--stats",
        action="store_true",
        help="print perf counters and cache hit rates at exit (also :stats)",
    )
    repl.add_argument(
        "--backend",
        choices=("seq", "thread", "process"),
        default="seq",
        help="initial execution backend (also :backend in the session)",
    )
    repl.add_argument(
        "--engine",
        choices=ENGINES,
        default="tree",
        help="initial evaluation engine (also :engine in the session)",
    )
    repl.add_argument(
        "--infer-engine",
        choices=INFER_ENGINES,
        default=None,
        help="initial type-inference engine (also :infer-engine in the "
        "session); results are engine-independent, uf is just faster",
    )
    repl.add_argument(
        "--faults",
        metavar="SPEC",
        help="arm deterministic fault injection for the session "
        "(also :faults in the session)",
    )
    repl.add_argument(
        "--trace",
        metavar="FILE",
        help="collect a session-long trace and write it to FILE at exit "
        "(also :trace on/off/save in the session)",
    )
    repl.add_argument(
        "--trace-format",
        choices=obs.TRACE_FORMATS,
        default=None,
        help="trace file format (default: inferred from the FILE suffix)",
    )
    repl.set_defaults(handler=_command_repl)

    serve = commands.add_parser(
        "serve",
        help="start the typecheck-and-run HTTP service "
        "(POST /v1/run, /v1/typecheck, incremental /v1/session/*)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8100, help="bind port (0 picks a free one)"
    )
    serve.add_argument("-p", type=int, default=4, help="default number of processes")
    serve.add_argument("-g", type=float, default=1.0, help="default BSP g parameter")
    serve.add_argument("-l", type=float, default=20.0, help="default BSP l parameter")
    serve.add_argument(
        "--backend",
        choices=("seq", "thread", "process"),
        default="seq",
        help="default execution backend (requests may override)",
    )
    serve.add_argument(
        "--engine",
        choices=ENGINES,
        default="tree",
        help="default evaluation engine (requests may override)",
    )
    serve.add_argument(
        "--infer-engine",
        choices=INFER_ENGINES,
        default=None,
        help="default type-inference engine (requests may override); "
        "results are engine-independent, uf is just faster",
    )
    serve.add_argument(
        "--max-concurrency",
        type=int,
        default=8,
        help="requests computing at once; excess requests queue",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=32,
        help="queued requests beyond which the server answers 429",
    )
    serve.add_argument(
        "--cache-capacity",
        type=int,
        default=1024,
        help="entries in the digest-keyed response cache",
    )
    serve.add_argument(
        "--no-metrics",
        action="store_true",
        help="disable the process-global metrics registry and the "
        "/v1/metrics exposition",
    )
    serve.set_defaults(handler=_command_serve)

    return parser


def _command_repl(args: argparse.Namespace) -> int:
    from repro.bsp.params import BspParams
    from repro.repl import run_repl

    return run_repl(
        params=BspParams(p=args.p, g=args.g, l=args.l),
        stats_at_exit=args.stats,
        backend=args.backend,
        fault_spec=args.faults,
        trace_file=args.trace,
        trace_format=args.trace_format,
        engine=args.engine,
        infer_engine=args.infer_engine,
    )


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import ReproServer, ServiceConfig, ServiceCore

    config = ServiceConfig(
        p=args.p,
        g=args.g,
        l=args.l,
        backend=args.backend,
        engine=args.engine,
        infer_engine=args.infer_engine or "uf",
        cache_capacity=args.cache_capacity,
        metrics=not args.no_metrics,
    )
    server = ReproServer(
        ServiceCore(config),
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        max_queue=args.max_queue,
    )

    async def serve() -> None:
        await server.start()
        print(
            f"serving mini-BSML on http://{server.host}:{server.port} "
            f"(p={config.p}, backend={config.backend}, engine={config.engine}, "
            f"max-concurrency={server.max_concurrency})",
            file=sys.stderr,
        )
        await server.serve_forever()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # The REPL manages its own session-long window (and the :stats command).
    verbose_stats = getattr(args, "stats_verbose", False)
    wants_stats = (
        getattr(args, "stats", False) or verbose_stats
    ) and args.command != "repl"
    stats_context = perf.collect() if wants_stats else None
    try:
        if stats_context is None:
            return args.handler(args)
        with stats_context as stats:
            status = args.handler(args)
        print(stats.render(verbose=verbose_stats), file=sys.stderr)
        return status
    except ParseError as error:
        print(f"syntax error: {error}", file=sys.stderr)
        return 2
    except TypingError as error:
        print(f"type error: {error}", file=sys.stderr)
        return 1
    except StuckError as error:
        print(f"evaluation stuck: {error}", file=sys.stderr)
        return 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        # Missing source files, unwritable --trace targets, ports in use:
        # environment problems, reported like usage errors (exit 2).
        print(f"io error: {error}", file=sys.stderr)
        return 2
    except RecursionError:
        print(
            "error: program exceeds the recursion depth the toolchain "
            "supports (deeper than the raised interpreter limit)",
            file=sys.stderr,
        )
        return 1
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
