"""Locality constraints and the ``Solve`` function (paper section 4).

Constraints are formulas of a fragment of propositional calculus::

    C ::= True | False | L(alpha) | C1 /\\ C2 | C1 => C2

where the atoms ``L(alpha)`` assert that the type variable ``alpha`` may
only be instantiated with *local* types (types without ``par``).

The paper works modulo ``True /\\ C = C``, ``C /\\ C = C`` and commutativity
of ``/\\``; the smart constructors here normalize accordingly (conjunctions
are flattened, deduplicated sets).

Two semantic notions are provided:

* :func:`evaluate` — the value of a *ground* constraint under a locality
  assignment of its atoms (Definition 4's ``phi |= C``).
* :func:`solve` — the paper's ``Solve``: boolean simplification, with a
  complete satisfiability decision on top (:func:`is_unsatisfiable`).
  A typing rule is inapplicable exactly when its constraint is
  unsatisfiable, i.e. ``Solve(C) = False`` for every instantiation.

Atoms only ever mention type *variables*: the locality of a compound type
is pushed to its variables with :func:`locality` (the paper's ``L(tau)``
rules), so substituting a type for a variable rewrites the atom into the
image's locality formula.

Performance layer (see DESIGN.md): constraint nodes are **hash-consed**
with the same metaclass as types, so equality is pointer-fast and the
conjunction sets of :func:`conj` dedupe by identity.  On top of that,
:func:`solve`, :func:`is_satisfiable`, :func:`is_valid`,
:func:`locality` and :func:`basic_constraint` are memoized in bounded,
eviction-counting LRU caches (:class:`repro.perf.memo.BoundedMemo`)
keyed on interned nodes — all nodes are immutable, so the caches need no
invalidation, ever, and *eviction* is the only way an entry leaves.
Bounding matters beyond memory for the caches themselves: cache entries
hold strong references to the interned key nodes, so a bounded cache is
also what keeps the weak hash-cons pools from growing without bound over
a server lifetime.  The caches register themselves with
:mod:`repro.perf` for hit-rate and eviction reporting (``--stats``), and
the bound is runtime-resizable (``REPRO_SOLVER_CACHE_SIZE`` or
:func:`repro.perf.resize_registered`) so the service can size them to
its memory budget.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Tuple

from repro import obs, perf
from repro.perf.memo import bounded_memo
from repro.core.types import (
    TArrow,
    TBase,
    TPair,
    TPar,
    TRef,
    TSum,
    TTuple,
    TVar,
    Type,
    _InternMeta,
)

#: Default bound on each solver-layer memoization cache (entries, not
#: bytes); override with ``REPRO_SOLVER_CACHE_SIZE`` before import, or
#: resize the registered caches at runtime (``perf.resize_registered``).
SOLVER_CACHE_SIZE = int(os.environ.get("REPRO_SOLVER_CACHE_SIZE", "65536"))


@dataclass(frozen=True, eq=False)
class Constraint(metaclass=_InternMeta):
    """Base class of locality constraints.

    Instances are interned: ``==`` and ``hash`` are identity-based, which
    coincides with structural equality because every construction path
    yields the pooled representative (see :class:`_InternMeta`).
    """

    def __str__(self) -> str:
        return render_constraint(self)


@dataclass(frozen=True, eq=False)
class CTrue(Constraint):
    """The always-satisfied constraint."""


@dataclass(frozen=True, eq=False)
class CFalse(Constraint):
    """The never-satisfied constraint."""


@dataclass(frozen=True, eq=False)
class CLoc(Constraint):
    """The atom ``L(alpha)``: variable ``alpha`` must be a local type."""

    var: str


@dataclass(frozen=True, eq=False)
class CAnd(Constraint):
    """A conjunction of two or more distinct constraints.

    Always built through :func:`conj`, which flattens, deduplicates and
    removes units; a ``CAnd`` therefore never contains ``CTrue``,
    ``CFalse``, another ``CAnd``, or duplicates.
    """

    conjuncts: FrozenSet[Constraint]

    def __post_init__(self) -> None:
        if len(self.conjuncts) < 2:
            raise ValueError("CAnd needs >= 2 conjuncts; use conj()")


@dataclass(frozen=True, eq=False)
class CImp(Constraint):
    """An implication ``antecedent => consequent``."""

    antecedent: Constraint
    consequent: Constraint


#: Singletons, for convenience and identity checks.
TRUE = CTrue()
FALSE = CFalse()


def conj(*constraints: Constraint) -> Constraint:
    """Smart conjunction: flattens, drops ``True``, dedups, absorbs ``False``."""
    flat: set = set()
    for constraint in constraints:
        if isinstance(constraint, CTrue):
            continue
        if isinstance(constraint, CFalse):
            return FALSE
        if isinstance(constraint, CAnd):
            flat.update(constraint.conjuncts)
        else:
            flat.add(constraint)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return next(iter(flat))
    return CAnd(frozenset(flat))


def conj_all(constraints: Iterable[Constraint]) -> Constraint:
    """Conjunction of an iterable of constraints."""
    return conj(*constraints)


def imp(antecedent: Constraint, consequent: Constraint) -> Constraint:
    """Smart implication with the usual unit laws.

    ``True => C`` is ``C``; ``False => C`` and ``C => True`` are ``True``;
    ``C => C`` is ``True``.  ``C => False`` is kept symbolic (the paper has
    no negation).
    """
    if isinstance(antecedent, CTrue):
        return consequent
    if isinstance(antecedent, CFalse):
        return TRUE
    if isinstance(consequent, CTrue):
        return TRUE
    if antecedent == consequent:
        return TRUE
    return CImp(antecedent, consequent)


# -- locality of a type ---------------------------------------------------


@bounded_memo(SOLVER_CACHE_SIZE, name="constraints.locality")
def locality(ty: Type) -> Constraint:
    """The paper's ``L(tau)`` as a constraint over the variables of ``tau``.

    * ``L(kappa) = True`` for base types
    * ``L(alpha) = L(alpha)`` (an atom)
    * ``L(tau par) = False``
    * ``L(tau1 -> tau2) = L(tau1) /\\ L(tau2)``
    * ``L(tau1 * tau2) = L(tau1) /\\ L(tau2)`` (tuples pointwise)

    Memoized on the interned type node; recursive calls share the cache,
    so shared subterms are computed once per process lifetime.
    """
    if isinstance(ty, TBase):
        return TRUE
    if isinstance(ty, TVar):
        return CLoc(ty.name)
    if isinstance(ty, TPar):
        return FALSE
    if isinstance(ty, TArrow):
        return conj(locality(ty.domain), locality(ty.codomain))
    if isinstance(ty, TPair):
        return conj(locality(ty.first), locality(ty.second))
    if isinstance(ty, TTuple):
        return conj_all(locality(item) for item in ty.items)
    if isinstance(ty, TSum):
        return conj(locality(ty.left), locality(ty.right))
    if isinstance(ty, TRef):
        # A reference is replicable state: local exactly when its content
        # is (imperative extension; contents are constrained local anyway).
        return locality(ty.content)
    raise TypeError(f"locality: unknown type node {type(ty).__name__}")


@bounded_memo(SOLVER_CACHE_SIZE, name="constraints.basic_constraint")
def basic_constraint(ty: Type) -> Constraint:
    """The paper's basic constraints ``C_tau``.  Memoized like :func:`locality`.

    * ``C_tau = True`` when ``tau`` is atomic (a base type or a variable)
    * ``C_(tau par) = L(tau) /\\ C_tau`` — vector contents must be local
    * ``C_(tau1 -> tau2) = C_tau1 /\\ C_tau2 /\\ (L(tau2) => L(tau1))`` — a
      function with a local result must have a local argument (this is the
      conjunct that rejects the fourth projection ``fst (1, mkpar ...)``)
    * ``C_(tau1 * tau2) = C_tau1 /\\ C_tau2`` (tuples pointwise)
    """
    if isinstance(ty, (TBase, TVar)):
        return TRUE
    if isinstance(ty, TPar):
        return conj(locality(ty.content), basic_constraint(ty.content))
    if isinstance(ty, TArrow):
        return conj(
            basic_constraint(ty.domain),
            basic_constraint(ty.codomain),
            imp(locality(ty.codomain), locality(ty.domain)),
        )
    if isinstance(ty, TPair):
        return conj(basic_constraint(ty.first), basic_constraint(ty.second))
    if isinstance(ty, TTuple):
        return conj_all(basic_constraint(item) for item in ty.items)
    if isinstance(ty, TSum):
        return conj(basic_constraint(ty.left), basic_constraint(ty.right))
    if isinstance(ty, TRef):
        # Like vectors: reference contents must be local.
        return conj(locality(ty.content), basic_constraint(ty.content))
    raise TypeError(f"basic_constraint: unknown type node {type(ty).__name__}")


# -- structure ------------------------------------------------------------


def constraint_atoms(constraint: Constraint) -> FrozenSet[str]:
    """Names of the type variables whose locality the constraint mentions."""
    if isinstance(constraint, CLoc):
        return frozenset((constraint.var,))
    if isinstance(constraint, CAnd):
        result: FrozenSet[str] = frozenset()
        for part in constraint.conjuncts:
            result |= constraint_atoms(part)
        return result
    if isinstance(constraint, CImp):
        return constraint_atoms(constraint.antecedent) | constraint_atoms(
            constraint.consequent
        )
    return frozenset()


#: Alias: the free variables of a constraint are exactly its atoms' names.
free_constraint_vars = constraint_atoms


def subst_constraint(mapping: Dict[str, Type], constraint: Constraint) -> Constraint:
    """Apply a type substitution to a constraint.

    Each atom ``L(alpha)`` with ``alpha`` in the mapping becomes the
    locality formula of the image type, per the paper's remark that
    substitution acts on constraints "by trivial structural induction"
    combined with the ``L`` rules.
    """
    if isinstance(constraint, CLoc):
        image = mapping.get(constraint.var)
        return constraint if image is None else locality(image)
    if isinstance(constraint, CAnd):
        return conj_all(subst_constraint(mapping, part) for part in constraint.conjuncts)
    if isinstance(constraint, CImp):
        return imp(
            subst_constraint(mapping, constraint.antecedent),
            subst_constraint(mapping, constraint.consequent),
        )
    return constraint


# -- semantics ------------------------------------------------------------


def evaluate(constraint: Constraint, assignment: Dict[str, bool]) -> bool:
    """Evaluate a constraint under a total locality assignment (Def. 4).

    Raises :class:`KeyError` if an atom is missing from ``assignment``.
    """
    if isinstance(constraint, CTrue):
        return True
    if isinstance(constraint, CFalse):
        return False
    if isinstance(constraint, CLoc):
        return assignment[constraint.var]
    if isinstance(constraint, CAnd):
        return all(evaluate(part, assignment) for part in constraint.conjuncts)
    if isinstance(constraint, CImp):
        return (not evaluate(constraint.antecedent, assignment)) or evaluate(
            constraint.consequent, assignment
        )
    raise TypeError(f"evaluate: unknown constraint {type(constraint).__name__}")


def assign(constraint: Constraint, var: str, value: bool) -> Constraint:
    """Substitute a truth value for one atom and re-normalize."""
    if isinstance(constraint, CLoc):
        if constraint.var == var:
            return TRUE if value else FALSE
        return constraint
    if isinstance(constraint, CAnd):
        return conj_all(assign(part, var, value) for part in constraint.conjuncts)
    if isinstance(constraint, CImp):
        return imp(
            assign(constraint.antecedent, var, value),
            assign(constraint.consequent, var, value),
        )
    return constraint


@bounded_memo(SOLVER_CACHE_SIZE, name="constraints.simplify")
def simplify(constraint: Constraint) -> Constraint:
    """Re-normalize a constraint bottom-up using the smart constructors.

    The constructors already keep constraints normalized, so this is a
    cheap identity-or-cleanup pass; it exists for constraints built
    directly from the dataclass constructors (e.g. in tests).  Memoized
    on the interned node (``constraints.simplify.hit/miss`` in the cache
    report): :func:`is_satisfiable`, :func:`is_valid` and :func:`solve`
    all simplify first, and the inference engines re-check overlapping
    conclusion constraints at every rule boundary, so the same interned
    nodes come back constantly.
    """
    if isinstance(constraint, CAnd):
        return conj_all(simplify(part) for part in constraint.conjuncts)
    if isinstance(constraint, CImp):
        return imp(simplify(constraint.antecedent), simplify(constraint.consequent))
    return constraint


def _horn_clauses(constraint: Constraint):
    """Decompose a constraint into Horn clauses, or return None.

    The constraints the type system produces are always conjunctions of
    facts (atoms) and implications whose two sides are conjunctions of atoms
    (or True/False): ``locality`` produces only atom conjunctions, and
    ``basic_constraint`` / the typing rules only put such formulas on each
    side of ``=>``.  Each clause is returned as
    ``(frozenset_of_antecedent_atoms, consequent_atoms_or_None_for_False)``;
    facts have an empty antecedent.
    """
    clauses = []

    def atoms_of(side: Constraint):
        """Flatten a conjunction of atoms; None if not that shape."""
        if isinstance(side, CTrue):
            return frozenset()
        if isinstance(side, CLoc):
            return frozenset((side.var,))
        if isinstance(side, CAnd):
            result: set = set()
            for part in side.conjuncts:
                if isinstance(part, CLoc):
                    result.add(part.var)
                else:
                    return None
            return frozenset(result)
        return None

    def visit(part: Constraint) -> bool:
        if isinstance(part, CTrue):
            return True
        if isinstance(part, CFalse):
            clauses.append((frozenset(), None))
            return True
        if isinstance(part, CLoc):
            clauses.append((frozenset(), frozenset((part.var,))))
            return True
        if isinstance(part, CAnd):
            return all(visit(p) for p in part.conjuncts)
        if isinstance(part, CImp):
            antecedent = atoms_of(part.antecedent)
            if antecedent is None:
                return False
            if isinstance(part.consequent, CFalse):
                clauses.append((antecedent, None))
                return True
            consequent = atoms_of(part.consequent)
            if consequent is None:
                return False
            clauses.append((antecedent, consequent))
            return True
        return False

    return clauses if visit(constraint) else None


def _horn_satisfiable(clauses) -> bool:
    """Least-model Horn satisfiability: propagate facts, check goals."""
    forced: set = set()
    definite = [(ante, cons) for ante, cons in clauses if cons is not None]
    changed = True
    while changed:
        changed = False
        for ante, cons in definite:
            if ante <= forced and not cons <= forced:
                forced |= cons
                changed = True
    return all(
        not ante <= forced for ante, cons in clauses if cons is None
    )


@bounded_memo(SOLVER_CACHE_SIZE, name="constraints.horn_satisfiable")
def horn_satisfiable(constraint: Constraint):
    """The Horn-satisfiability check, memoized on the interned node.

    Returns ``True``/``False`` for a Horn-shaped constraint and ``None``
    when the constraint is not Horn (callers fall back to branching).
    Clause decomposition and least-model propagation both re-run from
    scratch per constraint, so caching on the interned node — the same
    identity the hash-cons layer guarantees for structurally equal trees —
    makes the repeated ``Solve(C)`` checks of a rule's enclosing
    judgements O(1) after the first.
    """
    clauses = _horn_clauses(constraint)
    if clauses is None:
        return None
    return _horn_satisfiable(clauses)


def is_satisfiable_branching(constraint: Constraint) -> bool:
    """Complete satisfiability by branching on atoms (reference algorithm)."""
    constraint = simplify(constraint)
    if isinstance(constraint, CTrue):
        return True
    if isinstance(constraint, CFalse):
        return False
    atom = next(iter(constraint_atoms(constraint)))
    return is_satisfiable_branching(
        assign(constraint, atom, True)
    ) or is_satisfiable_branching(assign(constraint, atom, False))


@bounded_memo(SOLVER_CACHE_SIZE, name="constraints.is_satisfiable")
def is_satisfiable(constraint: Constraint) -> bool:
    """True when some locality assignment of the atoms makes ``C`` hold.

    Uses linear-time Horn propagation when the constraint has Horn shape
    (every constraint the inference rules produce does) and falls back to
    complete branching otherwise.  Memoized on the interned node.
    """
    constraint = simplify(constraint)
    if isinstance(constraint, CTrue):
        return True
    if isinstance(constraint, CFalse):
        return False
    verdict = horn_satisfiable(constraint)
    if verdict is not None:
        return verdict
    return is_satisfiable_branching(constraint)


def is_unsatisfiable(constraint: Constraint) -> bool:
    """True when no instantiation can ever satisfy ``C`` — the paper's
    ``Solve(C) = False``, the condition under which a typing rule fails.

    When a trace is active (:mod:`repro.obs`) every check records a
    ``solve`` span on the inference track carrying the verdict — this is
    the per-rule ``Solve`` the typing rules' side conditions invoke, so
    the spans line up one-to-one under the ``judgment`` spans.
    """
    if not obs.is_tracing():
        return not is_satisfiable(constraint)
    started = time.perf_counter()
    unsat = not is_satisfiable(constraint)
    obs.record(
        "solve",
        obs.INFERENCE_TRACK,
        started,
        time.perf_counter() - started,
        unsat=unsat,
    )
    return unsat


@bounded_memo(SOLVER_CACHE_SIZE, name="constraints.is_valid")
def is_valid(constraint: Constraint) -> bool:
    """True when every locality assignment satisfies ``C``.  Memoized."""
    constraint = simplify(constraint)
    if isinstance(constraint, CTrue):
        return True
    if isinstance(constraint, CFalse):
        return False
    atom = next(iter(constraint_atoms(constraint)))
    return is_valid(assign(constraint, atom, True)) and is_valid(
        assign(constraint, atom, False)
    )


@bounded_memo(SOLVER_CACHE_SIZE, name="constraints.solve")
def solve(constraint: Constraint) -> Constraint:
    """The paper's ``Solve``: reduce ``C`` as far as the boolean laws allow.

    Returns ``FALSE`` when the constraint is unsatisfiable, ``TRUE`` when
    it is valid, and the simplified residual constraint otherwise.
    Memoized on the interned node (invalidation-free: nodes are immutable).
    """
    constraint = simplify(constraint)
    if isinstance(constraint, (CTrue, CFalse)):
        return constraint
    if is_unsatisfiable(constraint):
        return FALSE
    if is_valid(constraint):
        return TRUE
    return constraint


#: Cache registration for ``--stats`` reporting (repro.perf).
perf.register_cache("constraints.locality", locality)
perf.register_cache("constraints.basic_constraint", basic_constraint)
perf.register_cache("constraints.simplify", simplify)
perf.register_cache("constraints.horn_satisfiable", horn_satisfiable)
perf.register_cache("constraints.is_satisfiable", is_satisfiable)
perf.register_cache("constraints.is_valid", is_valid)
perf.register_cache("constraints.solve", solve)


def satisfying_assignments(constraint: Constraint) -> Tuple[Dict[str, bool], ...]:
    """All total assignments of the constraint's atoms that satisfy it.

    Exponential in the number of atoms; intended for tests and diagnostics
    on the small constraints real programs produce.
    """
    atoms = sorted(constraint_atoms(constraint))
    results = []
    for mask in range(1 << len(atoms)):
        assignment = {a: bool(mask >> i & 1) for i, a in enumerate(atoms)}
        if evaluate(constraint, assignment):
            results.append(assignment)
    return tuple(results)


# -- rendering ------------------------------------------------------------


def render_constraint(
    constraint: Constraint, names: Dict[str, str] | None = None
) -> str:
    """Render with the paper's notation, e.g. ``L('a) /\\ (L('b) => False)``."""
    return _render(constraint, names or {}, top=True)


def _render(constraint: Constraint, names: Dict[str, str], top: bool) -> str:
    if isinstance(constraint, CTrue):
        return "True"
    if isinstance(constraint, CFalse):
        return "False"
    if isinstance(constraint, CLoc):
        return f"L({names.get(constraint.var, chr(39) + constraint.var)})"
    if isinstance(constraint, CAnd):
        parts = sorted(_render(part, names, top=False) for part in constraint.conjuncts)
        text = " /\\ ".join(parts)
        return text if top else f"({text})"
    if isinstance(constraint, CImp):
        text = (
            f"{_render(constraint.antecedent, names, top=False)}"
            f" => {_render(constraint.consequent, names, top=False)}"
        )
        return text if top else f"({text})"
    raise TypeError(f"render_constraint: unknown {type(constraint).__name__}")
