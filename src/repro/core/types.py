"""The type algebra of the paper (section 4).

Simple types::

    tau ::= kappa            base type (bool, int, unit, ...)
          | alpha            type variable
          | tau1 -> tau2     function type
          | tau1 * tau2      pair type
          | (tau par)        parallel vector type

plus, as the extension sketched in the paper's conclusion, n-ary tuple
types ``tau1 * ... * taun`` for n >= 3 (:class:`TTuple`).

Types are immutable; substitution produces new types.  Display follows
OCaml conventions: variables print as ``'a``, ``'b``, ... in order of first
appearance.

Type nodes are **hash-consed**: the :class:`_InternMeta` metaclass keeps a
per-class pool so that structurally identical nodes are one object.  The
classes therefore use identity equality and identity hashing (``eq=False``)
— equality checks and dictionary/set operations on types are pointer-fast,
and the solver caches of :mod:`repro.core.constraints` can key directly on
nodes without ever hashing a deep structure.  The pools hold their entries
weakly, so types no longer referenced anywhere are reclaimed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, Tuple
from weakref import WeakValueDictionary


#: Every class carrying a hash-cons pool, in definition order — the type
#: nodes below and the constraint nodes of :mod:`repro.core.constraints`.
#: :func:`intern_pool_stats` reports their live sizes.
_INTERNED_CLASSES: list = []


class _InternMeta(type):
    """Hash-consing metaclass: structurally equal nodes are one object.

    The instance is built normally (running ``__post_init__`` validation),
    then deduplicated against a per-class weak pool keyed on its field
    values.  Children are interned before their parents, so pool lookups
    hash and compare child fields by identity — O(#fields), not O(size).
    """

    def __new__(mcls, name, bases, namespace):
        cls = super().__new__(mcls, name, bases, namespace)
        cls._intern_pool = WeakValueDictionary()
        _INTERNED_CLASSES.append(cls)
        return cls

    def __call__(cls, *args, **kwargs):
        node = super().__call__(*args, **kwargs)
        key = tuple(getattr(node, name) for name in cls.__dataclass_fields__)
        pool = cls._intern_pool
        interned = pool.get(key)
        if interned is None:
            pool[key] = node
            return node
        return interned


@dataclass(frozen=True, eq=False)
class Type(metaclass=_InternMeta):
    """Base class of simple types.

    Instances are interned (see :class:`_InternMeta`): ``==`` and ``hash``
    are identity-based, which coincides with structural equality because
    every construction path yields the pooled representative.
    """

    def children(self) -> Tuple["Type", ...]:
        return ()

    def walk(self) -> Iterator["Type"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def __str__(self) -> str:
        return render_type(self)


@dataclass(frozen=True, eq=False)
class TBase(Type):
    """A base type ``kappa``: ``int``, ``bool`` or ``unit``."""

    name: str


@dataclass(frozen=True, eq=False)
class TVar(Type):
    """A type variable ``alpha``.

    Names are globally unique strings produced by :func:`fresh_tvar`; the
    pretty-printer maps them to ``'a``, ``'b``, ... for display.
    """

    name: str


@dataclass(frozen=True, eq=False)
class TArrow(Type):
    """A function type ``domain -> codomain``."""

    domain: Type
    codomain: Type

    def children(self) -> Tuple[Type, ...]:
        return (self.domain, self.codomain)


@dataclass(frozen=True, eq=False)
class TPair(Type):
    """A pair type ``first * second``."""

    first: Type
    second: Type

    def children(self) -> Tuple[Type, ...]:
        return (self.first, self.second)


@dataclass(frozen=True, eq=False)
class TTuple(Type):
    """An n-ary tuple type, n >= 3 (extension beyond the paper)."""

    items: Tuple[Type, ...]

    def __post_init__(self) -> None:
        if len(self.items) < 3:
            raise ValueError("TTuple needs >= 3 items; use TPair for 2")

    def children(self) -> Tuple[Type, ...]:
        return self.items


@dataclass(frozen=True, eq=False)
class TSum(Type):
    """A binary sum type ``(left, right) sum`` (extension, paper sec. 6)."""

    left: Type
    right: Type

    def children(self) -> Tuple[Type, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class TRef(Type):
    """A mutable reference type ``content ref`` (imperative extension,
    paper section 6)."""

    content: Type

    def children(self) -> Tuple[Type, ...]:
        return (self.content,)


@dataclass(frozen=True, eq=False)
class TPar(Type):
    """A parallel vector type ``(content par)``."""

    content: Type

    def children(self) -> Tuple[Type, ...]:
        return (self.content,)


def intern_pool_stats() -> Dict[str, int]:
    """Live-entry counts of every hash-cons pool, keyed by class name.

    Covers every :class:`_InternMeta` class — the type nodes here and
    the constraint nodes of :mod:`repro.core.constraints`.  The pools
    hold entries weakly, so a count is the number of *live* nodes; the
    bounded solver caches (see :mod:`repro.perf.memo`) are what keeps
    these counts bounded over a server lifetime, and the service's
    ``/v1/stats`` endpoint reports them.
    """
    return {cls.__name__: len(cls._intern_pool) for cls in _INTERNED_CLASSES}


#: The base types of mini-BSML.
INT = TBase("int")
BOOL = TBase("bool")
UNIT_TYPE = TBase("unit")


_fresh_counter = itertools.count()


def fresh_tvar(hint: str = "t") -> TVar:
    """A globally fresh type variable; ``hint`` aids debugging only."""
    return TVar(f"{hint}{next(_fresh_counter)}")


def arrow(*types: Type) -> Type:
    """Right-nested arrows: ``arrow(a, b, c)`` is ``a -> (b -> c)``."""
    if not types:
        raise ValueError("arrow needs at least one type")
    result = types[-1]
    for ty in reversed(types[:-1]):
        result = TArrow(ty, result)
    return result


def free_type_vars(ty: Type) -> FrozenSet[str]:
    """Names of the type variables occurring in ``ty``."""
    return frozenset(node.name for node in ty.walk() if isinstance(node, TVar))


def apply_type_subst(mapping: Dict[str, Type], ty: Type) -> Type:
    """Apply a variable -> type mapping throughout ``ty``."""
    if isinstance(ty, TVar):
        return mapping.get(ty.name, ty)
    if isinstance(ty, TBase):
        return ty
    if isinstance(ty, TArrow):
        return TArrow(
            apply_type_subst(mapping, ty.domain),
            apply_type_subst(mapping, ty.codomain),
        )
    if isinstance(ty, TPair):
        return TPair(
            apply_type_subst(mapping, ty.first),
            apply_type_subst(mapping, ty.second),
        )
    if isinstance(ty, TTuple):
        return TTuple(tuple(apply_type_subst(mapping, item) for item in ty.items))
    if isinstance(ty, TSum):
        return TSum(
            apply_type_subst(mapping, ty.left),
            apply_type_subst(mapping, ty.right),
        )
    if isinstance(ty, TRef):
        return TRef(apply_type_subst(mapping, ty.content))
    if isinstance(ty, TPar):
        return TPar(apply_type_subst(mapping, ty.content))
    raise TypeError(f"apply_type_subst: unknown type node {type(ty).__name__}")


def occurs_in(var_name: str, ty: Type) -> bool:
    """True when the variable named ``var_name`` occurs in ``ty``."""
    return any(isinstance(node, TVar) and node.name == var_name for node in ty.walk())


def contains_par(ty: Type) -> bool:
    """True when a parallel vector type occurs anywhere in ``ty``."""
    return any(isinstance(node, TPar) for node in ty.walk())


def has_nested_par(ty: Type) -> bool:
    """True when a ``par`` occurs *inside* another ``par`` — the shape the
    paper's type system must never let a well-typed program produce."""
    def inside(node: Type, under_par: bool) -> bool:
        if isinstance(node, TPar):
            if under_par:
                return True
            under_par = True
        return any(inside(child, under_par) for child in node.children())

    return inside(ty, False)


# -- rendering -----------------------------------------------------------

_GREEK = "abcdefghijklmnopqrstuvwxyz"


def _variable_display_names(ty: Type) -> Dict[str, str]:
    names: Dict[str, str] = {}
    for node in ty.walk():
        if isinstance(node, TVar) and node.name not in names:
            index = len(names)
            if index < len(_GREEK):
                names[node.name] = f"'{_GREEK[index]}"
            else:
                names[node.name] = f"'a{index}"
    return names


def render_type(ty: Type, names: Dict[str, str] | None = None) -> str:
    """Render ``ty`` in OCaml style, e.g. ``('a -> 'b) par * int``.

    ``names`` optionally fixes the display name of each variable; by
    default variables display as ``'a``, ``'b``, ... in first-appearance
    order within ``ty``.
    """
    if names is None:
        names = _variable_display_names(ty)
    return _render(ty, names, 0)


# Precedence: arrow 1 (right assoc), pair/tuple 2, par 3, atom 4.


def _render(ty: Type, names: Dict[str, str], min_prec: int) -> str:
    if isinstance(ty, TBase):
        return ty.name
    if isinstance(ty, TVar):
        return names.get(ty.name, f"'{ty.name}")
    if isinstance(ty, TArrow):
        text = f"{_render(ty.domain, names, 2)} -> {_render(ty.codomain, names, 1)}"
        return f"({text})" if min_prec > 1 else text
    if isinstance(ty, TPair):
        text = f"{_render(ty.first, names, 3)} * {_render(ty.second, names, 3)}"
        return f"({text})" if min_prec > 2 else text
    if isinstance(ty, TTuple):
        text = " * ".join(_render(item, names, 3) for item in ty.items)
        return f"({text})" if min_prec > 2 else text
    if isinstance(ty, TSum):
        text = (
            f"({_render(ty.left, names, 0)}, {_render(ty.right, names, 0)}) sum"
        )
        return text
    if isinstance(ty, TRef):
        text = f"{_render(ty.content, names, 3)} ref"
        return f"({text})" if min_prec > 3 else text
    if isinstance(ty, TPar):
        # Postfix constructors chain without parentheses: ``int par par``.
        text = f"{_render(ty.content, names, 3)} par"
        return f"({text})" if min_prec > 3 else text
    raise TypeError(f"render_type: unknown type node {type(ty).__name__}")
