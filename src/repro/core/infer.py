"""Constraint-accumulating type inference for mini-BSML (Figure 7).

This is the algorithm the paper mentions having "designed and implemented"
for its deductive system: an Algorithm-W-style traversal that, alongside
the usual unification, carries a locality constraint ``C`` and fails as
soon as ``Solve(C) = False`` (the rule's side condition).

Every application of a substitution to a constrained type goes through
:meth:`repro.core.schemes.Subst.apply_constrained`, i.e. Definition 1 —
atoms are rewritten to the locality formulas of the images *and* the
images' basic constraints are conjoined.  This is what makes the
instantiation ``fst : (int * int par) -> int`` carry
``L(int) => L(int par) = False`` and reject the fourth projection of
section 2.1.

The entry points also build :class:`Derivation` trees so the worked
judgements of Figures 8, 9 and 10 can be rendered verbatim.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Tuple

from repro import obs, perf
from repro.core.constraints import (
    FALSE,
    basic_constraint,
    conj,
    imp,
    is_unsatisfiable,
    locality,
)
from repro.core.errors import (
    NestingError,
    TypingError,
    UnboundVariableError,
    UnknownPrimitiveError,
)
from repro.core.initial_env import constant_scheme, primitive_scheme
from repro.core.normalize import prune_constrained
from repro.core.schemes import (
    ConstrainedType,
    Subst,
    TypeEnv,
    TypeScheme,
    generalize,
    instantiate,
    mono,
)
from repro.core.types import (
    BOOL,
    INT,
    TArrow,
    TBase,
    TPair,
    TPar,
    TRef,
    TSum,
    TTuple,
    Type,
    fresh_tvar,
)
from repro.core.unify import unify
from repro.lang.limits import deep_recursion
from repro.lang.type_syntax import (
    TEArrow,
    TEBase,
    TEPar,
    TEProduct,
    TERef,
    TESum,
    TEVar,
    TypeExpr,
)
from repro.lang.ast import (
    Annot,
    App,
    Case,
    Const,
    Expr,
    Fun,
    If,
    IfAt,
    Inl,
    Inr,
    Let,
    Pair,
    ParVec,
    Prim,
    Tuple as TupleE,
    Var,
)


@dataclass
class Derivation:
    """A node of a typing derivation (one rule application).

    ``conclusion`` is None when the rule's constraint was unsatisfiable —
    the paper writes those conclusions as ``?`` in Figures 8 and 10.
    The conclusions hold the types as known *at that point of inference*;
    :meth:`resolve` refines them with the final substitution so a finished
    tree displays fully solved types, like the paper's figures.
    """

    rule: str
    expr: Expr
    conclusion: Optional[ConstrainedType]
    premises: Tuple["Derivation", ...] = ()
    note: str = ""

    def resolve(self, subst: Subst) -> "Derivation":
        conclusion = (
            subst.apply_constrained(self.conclusion)
            if self.conclusion is not None
            else None
        )
        return Derivation(
            self.rule,
            self.expr,
            conclusion,
            tuple(premise.resolve(subst) for premise in self.premises),
            self.note,
        )


class Inferencer:
    """Shared state (the global substitution) of one inference run.

    ``prune=True`` existentially eliminates, at each ``let`` boundary,
    constraint atoms over variables that neither the type nor the
    environment can reach anymore (see :mod:`repro.core.normalize`).
    Pruning never changes which programs are accepted; it only keeps the
    carried constraints small.  The figure-rendering entry point disables
    it to match the paper's derivations literally.
    """

    def __init__(self, prune: bool = True) -> None:
        self.subst = Subst.identity()
        self.prune = prune

    # -- helpers ----------------------------------------------------------

    def _resolve(self, ct: ConstrainedType) -> ConstrainedType:
        return self.subst.apply_constrained(ct)

    def _unify(self, left: Type, right: Type, expr: Expr) -> None:
        extra = unify(self.subst.apply_type(left), self.subst.apply_type(right), expr.loc)
        self.subst = extra.compose(self.subst)

    def _check(
        self,
        rule: str,
        expr: Expr,
        ct: ConstrainedType,
        premises: Tuple[Derivation, ...],
        note: str = "",
    ) -> Tuple[ConstrainedType, Derivation]:
        """Fail the rule if its constraint is unsatisfiable (Solve = False)."""
        resolved = self._resolve(ct)
        perf.increment("infer.solve_checks")
        if is_unsatisfiable(resolved.constraint):
            failure = Derivation(rule, expr, None, premises, note)
            raise_nesting(rule, expr, resolved, failure)
        return resolved, Derivation(rule, expr, resolved, premises, note)

    # -- the rules of Figure 7 --------------------------------------------

    def infer(self, env: TypeEnv, expr: Expr) -> Tuple[ConstrainedType, Derivation]:
        perf.increment("infer.nodes")
        if obs.is_tracing():
            # One span per typing judgment, nested by the recursion on
            # the ``inference`` track; the applied rule name is attached
            # once the premise sub-derivations have returned.
            with obs.span(
                "judgment", obs.INFERENCE_TRACK, node=type(expr).__name__
            ) as extra:
                ct, derivation = self._infer_node(env, expr)
                extra["rule"] = derivation.rule
                return ct, derivation
        return self._infer_node(env, expr)

    def _infer_node(
        self, env: TypeEnv, expr: Expr
    ) -> Tuple[ConstrainedType, Derivation]:
        if isinstance(expr, Var):
            scheme = env.lookup(expr.name)
            if scheme is None:
                raise UnboundVariableError(expr.name, expr.loc)
            return self._check("Var", expr, instantiate(scheme), ())
        if isinstance(expr, Const):
            return self._check("Const", expr, instantiate(constant_scheme(expr)), ())
        if isinstance(expr, Prim):
            scheme = primitive_scheme(expr.name)
            if scheme is None:
                raise UnknownPrimitiveError(expr.name, expr.loc)
            return self._check("Op", expr, instantiate(scheme), ())
        if isinstance(expr, Fun):
            return self._infer_fun(env, expr)
        if isinstance(expr, App):
            return self._infer_app(env, expr)
        if isinstance(expr, Let):
            return self._infer_let(env, expr)
        if isinstance(expr, Pair):
            return self._infer_pair(env, expr)
        if isinstance(expr, TupleE):
            return self._infer_tuple(env, expr)
        if isinstance(expr, If):
            return self._infer_if(env, expr)
        if isinstance(expr, IfAt):
            return self._infer_ifat(env, expr)
        if isinstance(expr, Annot):
            return self._infer_annot(env, expr)
        if isinstance(expr, Inl):
            return self._infer_injection(env, expr, left=True)
        if isinstance(expr, Inr):
            return self._infer_injection(env, expr, left=False)
        if isinstance(expr, Case):
            return self._infer_case(env, expr)
        if isinstance(expr, ParVec):
            return self._infer_parvec(env, expr)
        raise TypingError(f"cannot type expression node {type(expr).__name__}", expr.loc)

    def _infer_annot(self, env: TypeEnv, expr: Annot):
        """(Annot) — type ascription ``(e : ty)``: unify and carry the
        annotation's basic constraints (a malformed annotation such as
        ``int par par`` is itself rejected)."""
        inner_ct, inner_d = self.infer(env, expr.expr)
        annotation = type_expr_to_type(expr.annotation)
        self._unify(inner_ct.type, annotation, expr)
        inner_ct = self._resolve(inner_ct)
        ct = ConstrainedType(
            inner_ct.type,
            conj(
                inner_ct.constraint,
                basic_constraint(self.subst.apply_type(annotation)),
            ),
        )
        note = f"annotation: {expr.annotation}"
        return self._check("Annot", expr, ct, (inner_d,), note)

    def _infer_injection(self, env: TypeEnv, expr, left: bool):
        """(Inl)/(Inr) — sum-type extension (paper section 6).

        The payload's constraint is carried; the unknown side is a fresh
        variable, constrained later by unification like any other type.
        """
        value_ct, value_d = self.infer(env, expr.value)
        other = fresh_tvar("s")
        ty = TSum(value_ct.type, other) if left else TSum(other, value_ct.type)
        rule = "Inl" if left else "Inr"
        return self._check(rule, expr, ConstrainedType(ty, value_ct.constraint), (value_d,))

    def _infer_case(self, env: TypeEnv, expr: Case):
        """(Case) — sum elimination (extension).

        Mirrors (Let)'s protection: the conclusion conjoins
        ``L(tau_result) => L(tau_scrutinee)`` so a vector cannot be hidden
        in a discarded branch of the scrutinee (the ``snd (mkpar ..., 1)``
        situation transposed to sums).
        """
        left_ty = fresh_tvar("sl")
        right_ty = fresh_tvar("sr")
        scrut_ct, scrut_d = self.infer(env, expr.scrutinee)
        self._unify(scrut_ct.type, TSum(left_ty, right_ty), expr.scrutinee)
        left_env = env.apply(self.subst).extend(
            expr.left_name, mono(self.subst.apply_type(left_ty))
        )
        left_ct, left_d = self.infer(left_env, expr.left_body)
        right_env = env.apply(self.subst).extend(
            expr.right_name, mono(self.subst.apply_type(right_ty))
        )
        right_ct, right_d = self.infer(right_env, expr.right_body)
        self._unify(left_ct.type, right_ct.type, expr)
        scrut_ct = self._resolve(scrut_ct)
        left_ct = self._resolve(left_ct)
        right_ct = self._resolve(right_ct)
        ct = ConstrainedType(
            left_ct.type,
            conj(
                scrut_ct.constraint,
                left_ct.constraint,
                right_ct.constraint,
                imp(locality(left_ct.type), locality(scrut_ct.type)),
            ),
        )
        return self._check("Case", expr, ct, (scrut_d, left_d, right_d))

    def _infer_fun(self, env: TypeEnv, expr: Fun) -> Tuple[ConstrainedType, Derivation]:
        param_ty = fresh_tvar("p")
        body_ct, body_d = self.infer(env.extend(expr.param, mono(param_ty)), expr.body)
        arrow = TArrow(self.subst.apply_type(param_ty), body_ct.type)
        constraint = conj(basic_constraint(arrow), body_ct.constraint)
        return self._check("Fun", expr, ConstrainedType(arrow, constraint), (body_d,))

    def _infer_app(self, env: TypeEnv, expr: App) -> Tuple[ConstrainedType, Derivation]:
        fn_ct, fn_d = self.infer(env, expr.fn)
        arg_ct, arg_d = self.infer(env.apply(self.subst), expr.arg)
        result_ty = fresh_tvar("r")
        self._unify(fn_ct.type, TArrow(arg_ct.type, result_ty), expr)
        fn_ct = self._resolve(fn_ct)
        arg_ct = self._resolve(arg_ct)
        ct = ConstrainedType(
            self.subst.apply_type(result_ty),
            conj(fn_ct.constraint, arg_ct.constraint),
        )
        return self._check("App", expr, ct, (fn_d, arg_d))

    def _infer_let(self, env: TypeEnv, expr: Let) -> Tuple[ConstrainedType, Derivation]:
        bound_ct, bound_d = self.infer(env, expr.bound)
        bound_ct = self._resolve(bound_ct)
        inner_env = env.apply(self.subst)
        if self.prune:
            bound_ct = prune_constrained(bound_ct, inner_env.free_vars())
        scheme = generalize(bound_ct, inner_env)
        body_ct, body_d = self.infer(inner_env.extend(expr.name, scheme), expr.body)
        bound_ct = self._resolve(bound_ct)
        constraint = conj(
            bound_ct.constraint,
            body_ct.constraint,
            imp(locality(body_ct.type), locality(bound_ct.type)),
        )
        ct = ConstrainedType(body_ct.type, constraint)
        if self.prune:
            ct = prune_constrained(ct, inner_env.free_vars())
        note = f"{expr.name} : {scheme}"
        return self._check("Let", expr, ct, (bound_d, body_d), note)

    def _infer_pair(self, env: TypeEnv, expr: Pair) -> Tuple[ConstrainedType, Derivation]:
        first_ct, first_d = self.infer(env, expr.first)
        second_ct, second_d = self.infer(env.apply(self.subst), expr.second)
        first_ct = self._resolve(first_ct)
        ct = ConstrainedType(
            TPair(first_ct.type, second_ct.type),
            conj(first_ct.constraint, second_ct.constraint),
        )
        return self._check("Pair", expr, ct, (first_d, second_d))

    def _infer_tuple(self, env: TypeEnv, expr: TupleE) -> Tuple[ConstrainedType, Derivation]:
        premises = []
        types = []
        constraints = []
        for item in expr.items:
            item_ct, item_d = self.infer(env.apply(self.subst), item)
            premises.append(item_d)
            types.append(item_ct.type)
            constraints.append(item_ct.constraint)
        resolved = [self.subst.apply_type(ty) for ty in types]
        ct = ConstrainedType(TTuple(tuple(resolved)), conj(*constraints))
        return self._check("Tuple", expr, ct, tuple(premises))

    def _infer_if(self, env: TypeEnv, expr: If) -> Tuple[ConstrainedType, Derivation]:
        cond_ct, cond_d = self.infer(env, expr.cond)
        self._unify(cond_ct.type, BOOL, expr.cond)
        then_ct, then_d = self.infer(env.apply(self.subst), expr.then_branch)
        else_ct, else_d = self.infer(env.apply(self.subst), expr.else_branch)
        self._unify(then_ct.type, else_ct.type, expr)
        cond_ct = self._resolve(cond_ct)
        then_ct = self._resolve(then_ct)
        else_ct = self._resolve(else_ct)
        ct = ConstrainedType(
            then_ct.type,
            conj(cond_ct.constraint, then_ct.constraint, else_ct.constraint),
        )
        return self._check("Ifthenelse", expr, ct, (cond_d, then_d, else_d))

    def _infer_ifat(self, env: TypeEnv, expr: IfAt) -> Tuple[ConstrainedType, Derivation]:
        vec_ct, vec_d = self.infer(env, expr.vec)
        self._unify(vec_ct.type, TPar(BOOL), expr.vec)
        proc_ct, proc_d = self.infer(env.apply(self.subst), expr.proc)
        self._unify(proc_ct.type, INT, expr.proc)
        then_ct, then_d = self.infer(env.apply(self.subst), expr.then_branch)
        else_ct, else_d = self.infer(env.apply(self.subst), expr.else_branch)
        self._unify(then_ct.type, else_ct.type, expr)
        vec_ct = self._resolve(vec_ct)
        proc_ct = self._resolve(proc_ct)
        then_ct = self._resolve(then_ct)
        else_ct = self._resolve(else_ct)
        ct = ConstrainedType(
            then_ct.type,
            conj(
                vec_ct.constraint,
                proc_ct.constraint,
                then_ct.constraint,
                else_ct.constraint,
                imp(locality(then_ct.type), FALSE),
            ),
        )
        return self._check(
            "Ifat",
            expr,
            ct,
            (vec_d, proc_d, then_d, else_d),
            note="adds L(tau) => False: a synchronous conditional must return a global value",
        )

    def _infer_parvec(self, env: TypeEnv, expr: ParVec) -> Tuple[ConstrainedType, Derivation]:
        """Typing of extended expressions (parallel vectors of values).

        Not part of Figure 7 — vectors have no source syntax — but needed
        to state Theorem 1: the value a global expression reduces to must
        retype at the expression's type.  A vector types at ``tau par``
        when every component types at ``tau`` and ``tau`` is local.
        """
        premises = []
        constraints = []
        content_ty: Type = fresh_tvar("v")
        for item in expr.items:
            item_ct, item_d = self.infer(env.apply(self.subst), item)
            self._unify(item_ct.type, content_ty, item)
            premises.append(item_d)
            constraints.append(self._resolve(item_ct).constraint)
        content = self.subst.apply_type(content_ty)
        ct = ConstrainedType(
            TPar(content), conj(locality(content), *constraints)
        )
        return self._check("ParVec", expr, ct, tuple(premises))


def type_expr_to_type(
    annotation: TypeExpr, mapping: Optional[dict] = None
) -> Type:
    """Convert a syntactic type to a semantic one.

    Each named type variable gets one fresh semantic variable, shared
    across the whole annotation (so ``'a -> 'a`` relates its two sides).
    """
    if mapping is None:
        mapping = {}
    if isinstance(annotation, TEBase):
        return TBase(annotation.name)
    if isinstance(annotation, TEVar):
        if annotation.name not in mapping:
            mapping[annotation.name] = fresh_tvar(f"u{annotation.name}")
        return mapping[annotation.name]
    if isinstance(annotation, TEArrow):
        return TArrow(
            type_expr_to_type(annotation.domain, mapping),
            type_expr_to_type(annotation.codomain, mapping),
        )
    if isinstance(annotation, TEProduct):
        items = tuple(type_expr_to_type(item, mapping) for item in annotation.items)
        if len(items) == 2:
            return TPair(items[0], items[1])
        return TTuple(items)
    if isinstance(annotation, TESum):
        return TSum(
            type_expr_to_type(annotation.left, mapping),
            type_expr_to_type(annotation.right, mapping),
        )
    if isinstance(annotation, TEPar):
        return TPar(type_expr_to_type(annotation.content, mapping))
    if isinstance(annotation, TERef):
        return TRef(type_expr_to_type(annotation.content, mapping))
    raise TypeError(f"type_expr_to_type: unknown node {type(annotation).__name__}")


def raise_nesting(
    rule: str, expr: Expr, ct: ConstrainedType, derivation: Derivation
) -> None:
    """Raise a :class:`NestingError` annotated with its partial derivation."""
    error = NestingError(
        rule,
        ct.constraint,
        expr=expr,
        loc=expr.loc,
        detail=f"while typing at {ct.type}",
    )
    error.derivation = derivation
    raise error


# -- engine selection ------------------------------------------------------

#: Inference engines: ``w`` is this module's substitution-threading
#: Algorithm W (the reference); ``uf`` is the union-find engine of
#: :mod:`repro.core.uf` (the default — near-linear, bit-identical output,
#: held to conformance by the differential harness).
INFER_ENGINES = ("w", "uf")

_default_infer_engine = os.environ.get("REPRO_INFER_ENGINE", "uf")


def _validated_infer_engine(name: str) -> str:
    if name not in INFER_ENGINES:
        known = ", ".join(INFER_ENGINES)
        raise ValueError(f"unknown infer engine {name!r} (known: {known})")
    return name


def get_infer_engine() -> str:
    """The session-default inference engine (``REPRO_INFER_ENGINE`` or ``uf``)."""
    return _validated_infer_engine(_default_infer_engine)


def set_default_infer_engine(name: str) -> str:
    """Set the session-default inference engine; returns the previous one."""
    global _default_infer_engine
    previous = _default_infer_engine
    _default_infer_engine = _validated_infer_engine(name)
    return previous


def _resolve_infer_engine(engine: Optional[str]) -> str:
    if engine is None:
        return get_infer_engine()
    return _validated_infer_engine(engine)


# -- public entry points ---------------------------------------------------


def infer(
    expr: Expr,
    env: Optional[TypeEnv] = None,
    prune: bool = True,
    engine: Optional[str] = None,
) -> ConstrainedType:
    """Infer the constrained type of ``expr``.

    Raises a :class:`TypingError` subclass on failure; in particular
    :class:`NestingError` when a locality constraint becomes unsatisfiable
    (``Solve(C) = False``), which is the paper's static rejection of
    parallel-vector nesting.  With ``prune=True`` (the default) the
    returned constraint only mentions variables of the returned type and
    the environment; acceptance is unaffected (see
    :mod:`repro.core.normalize`).

    ``engine`` picks the implementation (:data:`INFER_ENGINES`); both
    produce bit-identical results — ``uf`` (the default) in near-linear
    time, ``w`` as the straightforward reference.
    """
    if _resolve_infer_engine(engine) == "uf":
        from repro.core import uf

        return uf.infer(expr, env, prune=prune)
    inferencer = Inferencer(prune=prune)
    with perf.timed("infer"), obs.span("infer", obs.INFERENCE_TRACK), deep_recursion():
        ct, _ = inferencer.infer(env or TypeEnv.empty(), expr)
        final = inferencer.subst.apply_constrained(ct)
    if prune:
        environment = env or TypeEnv.empty()
        final = prune_constrained(final, environment.apply(inferencer.subst).free_vars())
    perf.increment("infer.runs")
    return final


def infer_with_derivation(
    expr: Expr,
    env: Optional[TypeEnv] = None,
    prune: bool = False,
    engine: Optional[str] = None,
) -> Tuple[ConstrainedType, Derivation]:
    """Like :func:`infer` but also returns the full derivation tree.

    Pruning defaults to off so the derivation shows exactly the
    constraints the paper's rules accumulate (Figures 8-10).
    """
    if _resolve_infer_engine(engine) == "uf":
        from repro.core import uf

        return uf.infer_with_derivation(expr, env, prune=prune)
    inferencer = Inferencer(prune=prune)
    with deep_recursion():
        ct, derivation = inferencer.infer(env or TypeEnv.empty(), expr)
        final = inferencer.subst.apply_constrained(ct)
        return final, derivation.resolve(inferencer.subst)


def infer_scheme(
    expr: Expr,
    env: Optional[TypeEnv] = None,
    prune: bool = True,
    engine: Optional[str] = None,
) -> TypeScheme:
    """Infer and generalize over the (empty by default) environment."""
    environment = env or TypeEnv.empty()
    ct = infer(expr, environment, prune=prune, engine=engine)
    return generalize(ct, environment)


def typechecks(
    expr: Expr, env: Optional[TypeEnv] = None, engine: Optional[str] = None
) -> bool:
    """True when ``expr`` is accepted by the type system."""
    try:
        infer(expr, env, engine=engine)
        return True
    except TypingError:
        return False
