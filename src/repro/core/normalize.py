"""Constraint pruning: existential elimination of unobservable variables.

The paper's rules faithfully accumulate the constraints of every
sub-expression, so a judgement's constraint keeps atoms over variables
that no longer occur in the type or the environment (the paper's own
example: ``let f = (fun a -> fun b -> a) in 1`` has type
``[int / L(a) => L(b)]``).  Those variables can never be instantiated
again — no future substitution reaches them — so for every question the
system ever asks (satisfiability now or after substituting the observable
variables) they are existentially quantified.

This module eliminates them *exactly* using Davis–Putnam resolution on the
Horn-clause form of the constraint: eliminating ``v`` replaces all clauses
mentioning ``v`` by all resolvents of a ``v``-headed clause with a clause
containing ``v`` in its antecedent.  DP elimination preserves the
projection of the satisfying assignments onto the remaining variables, so
pruned constraints accept and reject exactly the same instantiations of
the observable variables as the originals (property-tested in
``tests/core/test_normalize.py``).

Pruning is optional; :func:`repro.core.infer.infer` enables it at ``let``
boundaries by default to keep constraints linear in practice, while the
derivation-rendering entry point leaves constraints untouched to match
the paper's figures.
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, List, Optional, Tuple

from repro.core.constraints import (
    FALSE,
    CLoc,
    Constraint,
    _horn_clauses,
    conj,
    conj_all,
    constraint_atoms,
    imp,
)
from repro.core.schemes import ConstrainedType
from repro.core.types import free_type_vars

#: A Horn clause: antecedent atoms and a single head atom (None = False).
Clause = Tuple[FrozenSet[str], Optional[str]]


def _to_clauses(constraint: Constraint) -> Optional[List[Clause]]:
    """Split a constraint into single-headed Horn clauses, or None."""
    grouped = _horn_clauses(constraint)
    if grouped is None:
        return None
    clauses: List[Clause] = []
    for antecedent, consequent in grouped:
        if consequent is None:
            clauses.append((antecedent, None))
        else:
            for head in consequent:
                if head not in antecedent:  # drop tautologies A /\ h => h
                    clauses.append((antecedent, head))
    return clauses


def _from_clauses(clauses: List[Clause]) -> Constraint:
    """Rebuild a constraint from single-headed Horn clauses."""
    parts: List[Constraint] = []
    for antecedent, head in clauses:
        body = conj_all(CLoc(var) for var in sorted(antecedent))
        head_constraint = FALSE if head is None else CLoc(head)
        parts.append(imp(body, head_constraint))
    return conj(*parts)


def _subsumes(stronger: Clause, weaker: Clause) -> bool:
    """True when ``stronger`` logically implies ``weaker``.

    ``(A => h)`` subsumes ``(B => h)`` whenever ``A`` is a subset of ``B``;
    a goal clause ``(A => False)`` also subsumes any ``(B => h)`` with
    ``A`` a subset of ``B``.
    """
    s_ante, s_head = stronger
    w_ante, w_head = weaker
    if not s_ante <= w_ante:
        return False
    return s_head is None or s_head == w_head


def _dedupe(clauses: List[Clause]) -> List[Clause]:
    unique = sorted(set(clauses), key=lambda c: (len(c[0]), sorted(c[0]), c[1] or ""))
    kept: List[Clause] = []
    for clause in unique:
        if not any(_subsumes(other, clause) for other in kept):
            kept.append(clause)
    return kept


def eliminate_variable(clauses: List[Clause], var: str) -> List[Clause]:
    """Davis–Putnam elimination of ``var`` from a Horn clause set."""
    positive = [c for c in clauses if c[1] == var]  # var in the head
    negative = [c for c in clauses if var in c[0]]  # var in the antecedent
    rest = [c for c in clauses if c[1] != var and var not in c[0]]
    for pos_ante, _ in positive:
        for neg_ante, neg_head in negative:
            antecedent = frozenset((neg_ante - {var}) | pos_ante)
            if neg_head is not None and neg_head in antecedent:
                continue  # tautology
            rest.append((antecedent, neg_head))
    return _dedupe(rest)


def propagate_facts(clauses: List[Clause]) -> Optional[List[Clause]]:
    """Simplify a clause set modulo its own unconditional facts.

    Computes the least model of the facts, then (a) drops definite clauses
    whose head is already a fact, (b) removes facts from antecedents, and
    (c) detects outright unsatisfiability (a goal clause whose antecedent
    is all facts), returning None in that case.  The result is logically
    equivalent to the input.
    """
    facts: set = set()
    changed = True
    while changed:
        changed = False
        for antecedent, head in clauses:
            if head is not None and head not in facts and antecedent <= facts:
                facts.add(head)
                changed = True
    simplified: List[Clause] = []
    for antecedent, head in clauses:
        if head in facts:
            continue
        reduced = frozenset(antecedent - facts)
        if head is None and not reduced:
            return None  # a goal became unconditional: unsatisfiable
        if head is not None and head in reduced:
            continue  # tautology after reduction
        simplified.append((reduced, head))
    simplified.extend((frozenset(), fact) for fact in sorted(facts))
    return _dedupe(simplified)


def prune_constraint(
    constraint: Constraint, observable: AbstractSet[str]
) -> Constraint:
    """Eliminate every atom over a variable outside ``observable``.

    Exact with respect to the observable variables: for any assignment of
    the observable atoms, the pruned constraint is satisfiable iff the
    original is.  The result is also simplified modulo its unconditional
    facts (a clause like ``L(a) => L(b)`` disappears when ``L(b)`` is
    already required).  Returns the constraint unchanged if it is not in
    Horn shape (which inference never produces, but callers may build).
    """
    clauses = _to_clauses(constraint)
    if clauses is None:
        return constraint
    hidden = constraint_atoms(constraint) - set(observable)
    for var in sorted(hidden):
        clauses = eliminate_variable(clauses, var)
    if any(not antecedent and head is None for antecedent, head in clauses):
        return FALSE
    simplified = propagate_facts(clauses)
    if simplified is None:
        return FALSE
    return _from_clauses(simplified)


def prune_constrained(
    ct: ConstrainedType, extra_observable: AbstractSet[str] = frozenset()
) -> ConstrainedType:
    """Prune a constrained type, keeping the type's variables observable."""
    observable = set(free_type_vars(ct.type)) | set(extra_observable)
    return ConstrainedType(ct.type, prune_constraint(ct.constraint, observable))
