"""Incremental re-inference over chains of top-level definitions.

A service session edits a program as a sequence of named definitions::

    let square = fun x -> x * x        -- definition "square"
    let quad   = fun x -> square (square x)
    let main   = quad 5

Re-running full inference on every edit is wasteful: editing ``quad``
cannot change the scheme already inferred for ``square``.  This module
caches inference per *chain position*, keyed by a digest chain (see
:func:`repro.core.digest.chain_digest`):

    token_0 = H(config)
    token_i = H(token_{i-1}, name_i, expr_digest(def_i))

``token_i`` pins the entire prefix up to and including definition ``i``
— the typing environment definition ``i+1`` is checked in is a pure
function of it.  So a lookup hit at position ``i`` is *sound*: the
cached scheme was inferred in an identical environment.  Editing
definition ``k`` changes ``token_k`` and every later token, invalidating
exactly the suffix that can observe the edit; definitions before ``k``
hit the cache untouched.

Only *inference* is incremental.  Evaluation always runs the full
program: the paper's dynamic semantics is whole-machine, and partial
re-evaluation of effectful parallel code is not sound in general.

Perf counters: ``incremental.reused`` / ``incremental.inferred`` count
cache hits and misses per checked chain, so the service's ``/v1/stats``
shows how much work sessions are saving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import perf
from repro.core.digest import DIGEST_VERSION, chain_digest, expr_digest
from repro.core.infer import infer
from repro.core.prelude_env import prelude_env
from repro.core.schemes import TypeEnv, TypeScheme, generalize
from repro.lang.ast import Expr, Let
from repro.lang.parser import parse_program

#: Default bound on cached chain links per checker; a session that edits
#: a 100-definition program thousands of times stays under ~2k entries.
DEFAULT_CACHE_SIZE = 4096


@dataclass(frozen=True)
class Definition:
    """One named top-level definition of a session program."""

    name: str
    expr: Expr

    @staticmethod
    def parse(name: str, source: str) -> "Definition":
        return Definition(name, parse_program(source))


@dataclass(frozen=True)
class CheckedDefinition:
    """The outcome of checking one definition within a chain."""

    name: str
    scheme: TypeScheme
    token: str  #: chain token pinning the prefix through this definition
    reused: bool  #: True when the scheme came from the chain cache


class IncrementalChecker:
    """Chain-cached inference over definition sequences.

    One checker serves one session (the service keeps a checker per
    session id), but nothing prevents sharing: the cache key pins the
    full prefix, so chains from different programs never collide.
    """

    def __init__(
        self, use_prelude: bool = True, max_entries: int = DEFAULT_CACHE_SIZE
    ) -> None:
        self._use_prelude = use_prelude
        self._base_env = prelude_env() if use_prelude else TypeEnv.empty()
        self._base_token = chain_digest(
            DIGEST_VERSION, f"prelude={use_prelude}"
        )
        self._max_entries = max_entries
        # token -> (scheme, env-after-definition); insertion-ordered, so
        # trimming drops the oldest chains first.
        self._cache: Dict[str, Tuple[TypeScheme, TypeEnv]] = {}

    def check(self, definitions: Sequence[Definition]) -> List[CheckedDefinition]:
        """Infer a scheme for every definition, reusing every cached
        prefix link.  Raises the usual :class:`TypingError` subclasses on
        the first failing definition (earlier results stay cached)."""
        env = self._base_env
        token = self._base_token
        results: List[CheckedDefinition] = []
        for definition in definitions:
            token = chain_digest(token, definition.name, expr_digest(definition.expr))
            cached = self._cache.get(token)
            if cached is not None:
                scheme, env = cached
                perf.increment("incremental.reused")
                results.append(
                    CheckedDefinition(definition.name, scheme, token, True)
                )
                continue
            perf.increment("incremental.inferred")
            ct = infer(definition.expr, env)
            scheme = generalize(ct, env)
            env = env.extend(definition.name, scheme)
            self._remember(token, scheme, env)
            results.append(CheckedDefinition(definition.name, scheme, token, False))
        return results

    def environment_after(
        self, definitions: Sequence[Definition]
    ) -> TypeEnv:
        """The typing environment downstream of ``definitions`` (checks
        them first, from cache where possible)."""
        checked = self.check(definitions)
        env = self._base_env
        for item in checked:
            env = env.extend(item.name, item.scheme)
        return env

    def _remember(self, token: str, scheme: TypeScheme, env: TypeEnv) -> None:
        if len(self._cache) >= self._max_entries:
            # Drop the oldest ~25% in one sweep; cheaper than per-insert
            # LRU bookkeeping and fine for the access pattern (a session
            # re-walks its whole chain every check, refreshing nothing).
            for key in list(self._cache)[: max(1, self._max_entries // 4)]:
                del self._cache[key]
            perf.increment("incremental.trimmed")
        self._cache[token] = (scheme, env)

    def cache_size(self) -> int:
        return len(self._cache)


def split_let_chain(expr: Expr) -> Tuple[List[Definition], Expr]:
    """View a ``let n1 = e1 in ... in body`` spine as definitions + body.

    This lets a client POST a whole program and still get incremental
    behaviour across edits: the service splits the spine, checks the
    definitions through the chain cache, and only the suffix after the
    first edited ``let`` re-infers.
    """
    definitions: List[Definition] = []
    node = expr
    while isinstance(node, Let):
        definitions.append(Definition(node.name, node.bound))
        node = node.body
    return definitions, node


def assemble_let_chain(definitions: Sequence[Definition], body: Expr) -> Expr:
    """Inverse of :func:`split_let_chain`."""
    result = body
    for definition in reversed(definitions):
        result = Let(definition.name, definition.expr, result)
    return result
