"""The prelude as a typing environment (a library module, not a term).

Typing a user program that *uses* the prelude by wrapping it in ``let``
bindings is subtly different from linking against a library: the paper's
(Let) rule adds ``L(tau_body) => L(tau_bound)`` for every binding, so a
local-typed program let-wrapped with an unused global helper such as
``replicate : ['a -> 'a par / L('a)]`` would be rejected.  An OCaml
module's values instead enter the *environment*, where only the (Var)
instantiation rule applies.

:func:`prelude_env` builds that environment: each prelude definition is
inferred (in the environment of its predecessors) and generalized.  The
schemes come out exactly as BSMLlib documents them, e.g.::

    replicate : forall a. [a -> a par / L(a)]
    bcast     : forall a. [int -> a par -> a par / L(a)]
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.infer import infer
from repro.core.schemes import TypeEnv, generalize
from repro.lang.prelude import prelude_asts


@lru_cache(maxsize=1)
def prelude_env() -> TypeEnv:
    """The typing environment containing every prelude definition.

    Cached: the prelude is fixed, and its schemes are closed under the
    empty environment, so one shared instance is safe.
    """
    env = TypeEnv.empty()
    for name, body in prelude_asts():
        ct = infer(body, env, prune=True)
        env = env.extend(name, generalize(ct, env))
    return env
