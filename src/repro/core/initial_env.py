"""The initial typing environment ``TC`` (Figure 6 of the paper).

Each primitive operation and constant gets a constrained type scheme:

* ``fix    : forall a. (a -> a) -> a``
* ``fst    : forall a b. [(a * b) -> a / L(a) => L(b)]``
* ``snd    : forall a b. [(a * b) -> b / L(b) => L(a)]``
* ``mkpar  : forall a. [(int -> a) -> (a par) / L(a)]``
* ``apply  : forall a b. [((a -> b) par * (a par)) -> (b par) / L(a) /\\ L(b)]``
* ``put    : forall a. [(int -> a) par -> (int -> a) par / L(a)]``
* ``nc     : forall a. unit -> a``
* ``isnc   : forall a. [a -> bool / L(a)]``

plus the arithmetic/boolean operators, which take pairs as in the paper
(``+ : (int * int) -> int``), and ``nproc : int``, the static number of
processes ``p`` (the paper's ``bsp_p()``).

The ``fst``/``snd`` constraints are the heart of section 2.1's projection
examples: the scheme itself is unconstrained enough to allow the first
three uses, and instantiating it at ``(int * int par)`` turns
``L(a) => L(b)`` into ``True => False``, rejecting the fourth.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.constraints import CLoc, conj, imp
from repro.core.schemes import TypeScheme, scheme_of
from repro.core.types import (
    BOOL,
    INT,
    TArrow,
    TPair,
    TPar,
    TRef,
    TVar,
    UNIT_TYPE,
    Type,
)
from repro.lang.ast import Const, ConstValue, UnitType

_A = TVar("a")
_B = TVar("b")

_INT_PAIR = TPair(INT, INT)
_BOOL_PAIR = TPair(BOOL, BOOL)


def _op(domain: Type, codomain: Type) -> TypeScheme:
    return scheme_of(TArrow(domain, codomain))


#: Schemes of every primitive operation (the ``op`` cases of ``TC``).
PRIMITIVE_SCHEMES: Dict[str, TypeScheme] = {
    # arithmetic on integer pairs
    "+": _op(_INT_PAIR, INT),
    "-": _op(_INT_PAIR, INT),
    "*": _op(_INT_PAIR, INT),
    "/": _op(_INT_PAIR, INT),
    "mod": _op(_INT_PAIR, INT),
    # comparisons on integer pairs
    "=": _op(_INT_PAIR, BOOL),
    "<>": _op(_INT_PAIR, BOOL),
    "<": _op(_INT_PAIR, BOOL),
    "<=": _op(_INT_PAIR, BOOL),
    ">": _op(_INT_PAIR, BOOL),
    ">=": _op(_INT_PAIR, BOOL),
    # booleans
    "&&": _op(_BOOL_PAIR, BOOL),
    "||": _op(_BOOL_PAIR, BOOL),
    "not": _op(BOOL, BOOL),
    # the static machine size p
    "nproc": scheme_of(INT),
    # fixpoint:  forall a. (a -> a) -> a
    "fix": scheme_of(TArrow(TArrow(_A, _A), _A)),
    # projections, with their locality implications
    "fst": scheme_of(
        TArrow(TPair(_A, _B), _A),
        imp(CLoc("a"), CLoc("b")),
    ),
    "snd": scheme_of(
        TArrow(TPair(_A, _B), _B),
        imp(CLoc("b"), CLoc("a")),
    ),
    # the None-like constructor and its test
    "nc": scheme_of(TArrow(UNIT_TYPE, _A)),
    "isnc": scheme_of(TArrow(_A, BOOL), CLoc("a")),
    # the parallel operations
    "mkpar": scheme_of(
        TArrow(TArrow(INT, _A), TPar(_A)),
        CLoc("a"),
    ),
    "apply": scheme_of(
        TArrow(TPair(TPar(TArrow(_A, _B)), TPar(_A)), TPar(_B)),
        conj(CLoc("a"), CLoc("b")),
    ),
    "put": scheme_of(
        TArrow(TPar(TArrow(INT, _A)), TPar(TArrow(INT, _A))),
        CLoc("a"),
    ),
    # imperative extension (paper section 6): references hold local values
    "ref": scheme_of(TArrow(_A, TRef(_A)), CLoc("a")),
    "!": scheme_of(TArrow(TRef(_A), _A), CLoc("a")),
    ":=": scheme_of(
        TArrow(TPair(TRef(_A), _A), UNIT_TYPE),
        CLoc("a"),
    ),
}


def primitive_scheme(name: str) -> Optional[TypeScheme]:
    """The ``TC`` scheme of a primitive, or None if unknown."""
    return PRIMITIVE_SCHEMES.get(name)


def constant_type(value: ConstValue) -> Type:
    """The ``TC`` type of a constant: int, bool or unit."""
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, UnitType):
        return UNIT_TYPE
    raise TypeError(f"constant_type: unsupported constant {value!r}")


def constant_scheme(const: Const) -> TypeScheme:
    """The (monomorphic) scheme of a constant node."""
    return scheme_of(constant_type(const.value))
