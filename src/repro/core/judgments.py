"""Rendering of typing derivations as proof trees (Figures 8, 9 and 10).

:func:`explain` runs inference (without pruning, so constraints appear as
the rules accumulate them), producing either a complete derivation tree
or — for rejected programs — the failed sub-derivation with the paper's
``?`` conclusion and the unsatisfiable constraint that caused it.

Trees render in the usual natural-deduction style::

      premise1      premise2
    ------------------------- (Rule)
           conclusion
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.errors import NestingError, TypingError
from repro.core.infer import Derivation, infer_with_derivation
from repro.core.schemes import TypeEnv
from repro.lang.ast import Expr
from repro.lang.pretty import pretty


@dataclass
class Explanation:
    """The outcome of :func:`explain`: verdict plus a renderable tree."""

    expr: Expr
    accepted: bool
    derivation: Optional[Derivation]
    error: Optional[TypingError] = None

    @property
    def verdict(self) -> str:
        return "well-typed" if self.accepted else "rejected"

    def render(self, max_width: int = 200) -> str:
        header = f"{self.verdict}: {pretty(self.expr)}"
        if self.derivation is None:
            return f"{header}\n  {self.error}"
        tree = render_derivation(self.derivation, max_width=max_width)
        if self.error is not None:
            tree += f"\n{self.error}"
        return f"{header}\n{tree}"


def explain(expr: Expr, env: Optional[TypeEnv] = None) -> Explanation:
    """Type ``expr`` and package the derivation (or failure) for display."""
    try:
        _, derivation = infer_with_derivation(expr, env)
        return Explanation(expr, True, derivation)
    except NestingError as error:
        return Explanation(expr, False, getattr(error, "derivation", None), error)
    except TypingError as error:
        return Explanation(expr, False, None, error)


# -- tree layout -----------------------------------------------------------


@dataclass
class _Block:
    """A rendered sub-tree: a list of equal-width lines plus the column
    range of its conclusion (for centering the parent rule bar)."""

    lines: List[str]
    width: int


def _conclusion_text(derivation: Derivation) -> str:
    expr_text = pretty(derivation.expr)
    if derivation.conclusion is None:
        return f"|- {expr_text} : ?"
    return f"|- {expr_text} : {derivation.conclusion}"


def _block(derivation: Derivation, max_width: int) -> _Block:
    conclusion = _conclusion_text(derivation)
    if len(conclusion) > max_width:
        conclusion = conclusion[: max_width - 3] + "..."
    label = f" ({derivation.rule})"
    if not derivation.premises:
        bar = "-" * len(conclusion) + label
        width = max(len(conclusion), len(bar))
        return _Block(
            [bar.ljust(width), conclusion.ljust(width)],
            width,
        )
    children = [_block(premise, max_width) for premise in derivation.premises]
    height = max(len(child.lines) for child in children)
    padded = []
    for child in children:
        missing = height - len(child.lines)
        padded.append([" " * child.width] * missing + child.lines)
    gap = "   "
    top_lines = [gap.join(row) for row in zip(*padded)] if children else []
    top_width = max((len(line) for line in top_lines), default=0)
    bar_core = "-" * max(len(conclusion), top_width)
    bar = bar_core + label
    width = max(top_width, len(bar), len(conclusion))
    lines = [line.ljust(width) for line in top_lines]
    lines.append(bar.ljust(width))
    lines.append(conclusion.center(len(bar_core)).ljust(width))
    return _Block(lines, width)


def render_derivation(derivation: Derivation, max_width: int = 200) -> str:
    """Render a derivation as an ASCII natural-deduction proof tree."""
    block = _block(derivation, max_width)
    return "\n".join(line.rstrip() for line in block.lines)


def render_derivation_indented(derivation: Derivation, indent: int = 0) -> str:
    """Alternative linear rendering: one judgement per line, indented by
    derivation depth — more readable for deep (let-heavy) programs."""
    pad = "  " * indent
    note = f"   -- {derivation.note}" if derivation.note else ""
    line = f"{pad}({derivation.rule}) {_conclusion_text(derivation)}{note}"
    parts = [line]
    for premise in derivation.premises:
        parts.append(render_derivation_indented(premise, indent + 1))
    return "\n".join(parts)
