"""Export typing derivations to LaTeX (bussproofs), like the paper's figures.

Figures 8-10 of the paper are natural-deduction proof trees; this module
renders our :class:`~repro.core.infer.Derivation` objects in the same
style using the ``bussproofs`` package, so the figures can be regenerated
in publishable form::

    from repro.core import infer_with_derivation, derivation_to_latex
    _, derivation = infer_with_derivation(parse("fst (mkpar (fun i -> i), 1)"))
    print(derivation_to_latex(derivation))

``explanation_to_latex`` handles rejected programs too, rendering the
failed conclusion as the paper's ``?``.

bussproofs caps inferences at 5 premises; wider rules (a ``put`` over a
big machine, say) are grouped pairwise automatically.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.infer import Derivation
from repro.core.judgments import Explanation
from repro.core.schemes import ConstrainedType
from repro.core.types import _variable_display_names, render_type
from repro.core.constraints import TRUE, render_constraint
from repro.lang.pretty import pretty

_ESCAPES = {
    "\\": r"\textbackslash{}",
    "&": r"\&",
    "%": r"\%",
    "$": r"\$",
    "#": r"\#",
    "_": r"\_",
    "{": r"\{",
    "}": r"\}",
    "~": r"\textasciitilde{}",
    "^": r"\textasciicircum{}",
}


def latex_escape(text: str) -> str:
    """Escape LaTeX special characters in plain text."""
    return "".join(_ESCAPES.get(char, char) for char in text)


def _type_to_latex(ct: Optional[ConstrainedType]) -> str:
    if ct is None:
        return "?"
    names = _variable_display_names(ct.type)
    for var in sorted(set(_constraint_vars(ct)) - set(names)):
        names[var] = f"'{var}"
    type_text = latex_escape(render_type(ct.type, names))
    if ct.constraint == TRUE:
        return rf"\mathtt{{{type_text}}}"
    constraint_text = latex_escape(render_constraint(ct.constraint, names))
    constraint_text = constraint_text.replace(r"/\textbackslash{}", r"\wedge ")
    constraint_text = constraint_text.replace("=>", r"\Rightarrow ")
    return rf"[\mathtt{{{type_text}}} \,/\, {constraint_text}]"


def _constraint_vars(ct: ConstrainedType):
    from repro.core.constraints import constraint_atoms

    return constraint_atoms(ct.constraint)


def _judgement(derivation: Derivation) -> str:
    expr_text = latex_escape(pretty(derivation.expr))
    if len(expr_text) > 120:
        expr_text = expr_text[:117] + r"\dots"
    return (
        rf"$\vdash \mathtt{{{expr_text}}} : "
        rf"{_type_to_latex(derivation.conclusion)}$"
    )


def _emit(derivation: Derivation, lines: List[str]) -> None:
    premises = list(derivation.premises)
    for premise in premises:
        _emit(premise, lines)
    # bussproofs supports Axiom + {Unary..Quinary}Inf; group wider rules.
    arity = len(premises)
    while arity > 5:
        lines.append(r"\BinaryInfC{$\cdots$}")
        arity -= 1
    command = {
        0: "AxiomC",
        1: "UnaryInfC",
        2: "BinaryInfC",
        3: "TrinaryInfC",
        4: "QuaternaryInfC",
        5: "QuinaryInfC",
    }[arity]
    lines.append(rf"\RightLabel{{\scriptsize ({derivation.rule})}}")
    if arity == 0:
        # Axioms take no label line in bussproofs; fold the rule name in.
        lines.pop()
        lines.append(rf"\AxiomC{{}}")
        lines.append(rf"\RightLabel{{\scriptsize ({derivation.rule})}}")
        lines.append(rf"\UnaryInfC{{{_judgement(derivation)}}}")
        return
    lines.append(rf"\{command}{{{_judgement(derivation)}}}")


def derivation_to_latex(derivation: Derivation, standalone: bool = False) -> str:
    """Render a derivation as a bussproofs ``prooftree`` environment.

    With ``standalone=True`` the output is a compilable document.
    """
    lines: List[str] = [r"\begin{prooftree}"]
    _emit(derivation, lines)
    lines.append(r"\end{prooftree}")
    body = "\n".join(lines)
    if not standalone:
        return body
    return "\n".join(
        [
            r"\documentclass{article}",
            r"\usepackage{bussproofs}",
            r"\usepackage[margin=1cm,landscape]{geometry}",
            r"\begin{document}",
            body,
            r"\end{document}",
        ]
    )


def explanation_to_latex(explanation: Explanation, standalone: bool = False) -> str:
    """Render an :func:`~repro.core.judgments.explain` result, verdict line
    included; works for rejected programs (the ``?`` conclusion)."""
    if explanation.derivation is None:
        verdict = latex_escape(str(explanation.error))
        return rf"\textit{{{verdict}}}"
    tree = derivation_to_latex(explanation.derivation, standalone=False)
    caption = (
        rf"\noindent\textbf{{{explanation.verdict}}}: "
        rf"\texttt{{{latex_escape(pretty(explanation.expr))}}}\par"
    )
    body = caption + "\n" + tree
    if not standalone:
        return body
    return "\n".join(
        [
            r"\documentclass{article}",
            r"\usepackage{bussproofs}",
            r"\usepackage[margin=1cm,landscape]{geometry}",
            r"\begin{document}",
            body,
            r"\end{document}",
        ]
    )
