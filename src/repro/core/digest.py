"""Content digests for mini-BSML programs.

The typecheck-and-run service caches results keyed on *what a program
means*, not on the bytes the client happened to send: two requests whose
sources differ only in whitespace, comments or layout parse to the same
AST and must hit the same cache entry.  :func:`expr_digest` computes a
SHA-256 over a canonical s-expression rendering of the parsed tree —
dataclass fields in declaration order, source locations excluded — and
:func:`program_digest` mixes in every execution parameter that changes
the observable result (machine size, BSP cost parameters, backend,
engine, fault plan, typed/untyped mode, prelude).

The rendering walks the dataclass fields generically, so new AST node
kinds digest correctly without this module changing; field *names* are
part of the rendering, so reordering or renaming fields changes digests
(as it should — it changes what the tree means structurally).

Digests are also the session tokens of :mod:`repro.core.incremental`:
a definition chain is digested link by link, so an edit invalidates
exactly its own suffix.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields, is_dataclass
from typing import Any, Iterator, Mapping, Optional, Union

from repro.lang.ast import Expr, UnitType

#: Bumped whenever the canonical rendering changes shape, so stale
#: service caches can never serve a digest computed by an older scheme.
DIGEST_VERSION = "bsml-digest-v1"


def _tokens(node: Any) -> Iterator[str]:
    """Canonical token stream of an AST (or type-syntax) tree, iterative
    so deep programs need no recursion headroom."""
    stack = [node]
    while stack:
        item = stack.pop()
        if isinstance(item, str):  # control token pushed below
            yield item
        elif is_dataclass(item) and not isinstance(item, type):
            yield f"({type(item).__name__}"
            stack.append(")")
            for field in reversed(fields(item)):
                stack.append(getattr(item, field.name))
                stack.append(f":{field.name}")
        elif isinstance(item, tuple):
            yield "(tuple"
            stack.append(")")
            stack.extend(reversed(item))
        elif isinstance(item, bool):
            yield "#t" if item else "#f"
        elif isinstance(item, int):
            yield f"i{item}"
        elif isinstance(item, UnitType):
            yield "#u"
        elif item is None:
            yield "#n"
        else:
            raise TypeError(
                f"expr_digest: unsupported node payload {type(item).__name__}"
            )


def expr_digest(expr: Expr) -> str:
    """SHA-256 hex digest of the canonical form of ``expr``.

    Location-insensitive: reformatting a program does not change its
    digest.  Structure-sensitive: any change to the tree (or to an
    ascribed type annotation) does.
    """
    hasher = hashlib.sha256()
    hasher.update(DIGEST_VERSION.encode("ascii"))
    for token in _tokens(expr):
        hasher.update(b"\x00")
        hasher.update(token.encode("utf-8"))
    return hasher.hexdigest()


def chain_digest(previous: str, *parts: str) -> str:
    """Fold ``parts`` into a running chain token (see
    :mod:`repro.core.incremental`): ``chain(t, name, digest)`` depends on
    every link before it, so equal prefixes give equal tokens and any
    edit changes every downstream token."""
    hasher = hashlib.sha256()
    hasher.update(previous.encode("ascii"))
    for part in parts:
        hasher.update(b"\x00")
        hasher.update(part.encode("utf-8"))
    return hasher.hexdigest()


def program_digest(
    expr: Expr,
    *,
    p: int,
    g: Union[int, float] = 1,
    l: Union[int, float] = 1,
    backend: str = "seq",
    engine: str = "tree",
    faults: Optional[str] = None,
    typed: bool = True,
    use_prelude: bool = True,
    extra: Optional[Mapping[str, Any]] = None,
) -> str:
    """The service's cache key: the expression digest plus every knob
    that changes the response payload.

    ``faults`` is the textual fault-spec (already deterministic — a spec
    names its seed); ``extra`` admits forward-compatible additions
    without a digest-version bump (keys are sorted).
    """
    parts = [
        expr_digest(expr),
        f"p={p}",
        f"g={g}",
        f"l={l}",
        f"backend={backend}",
        f"engine={engine}",
        f"faults={faults or ''}",
        f"typed={typed}",
        f"prelude={use_prelude}",
    ]
    for key in sorted(extra or {}):
        parts.append(f"{key}={extra[key]}")
    return chain_digest(DIGEST_VERSION, *parts)
