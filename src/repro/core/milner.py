"""Baseline: classic Milner/Damas Algorithm W *without* locality constraints.

This is "the typing of ML programs [10]" that the paper argues is not
suited to BSML (section 2.1): it happily types ``example1`` at
``(tau par) par``, ``example2`` at ``int par`` and the fourth projection
``fst (1, mkpar ...)`` at ``int`` — all of which must be rejected for the
BSP cost model to stay compositional.

The benchmark ``bench_unsafe_corpus`` runs this baseline and the paper's
system side by side over the corpus of section 2.1 programs.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import TypingError, UnboundVariableError, UnknownPrimitiveError
from repro.core.initial_env import constant_scheme, primitive_scheme
from repro.core.schemes import ConstrainedType, Subst, TypeEnv, TypeScheme, mono
from repro.core.types import (
    BOOL,
    INT,
    TArrow,
    TPair,
    TPar,
    TSum,
    TTuple,
    Type,
    fresh_tvar,
    free_type_vars,
)
from repro.core.unify import unify
from repro.lang.ast import (
    Annot,
    App,
    Case,
    Const,
    Expr,
    Fun,
    If,
    IfAt,
    Inl,
    Inr,
    Let,
    Pair,
    ParVec,
    Prim,
    Tuple as TupleE,
    Var,
)


class MilnerInferencer:
    """Algorithm W over the same type algebra, constraints dropped."""

    def __init__(self) -> None:
        self.subst = Subst.identity()

    def _unify(self, left: Type, right: Type, expr: Expr) -> None:
        extra = unify(
            self.subst.apply_type(left), self.subst.apply_type(right), expr.loc
        )
        self.subst = extra.compose(self.subst)

    def _instantiate(self, scheme: TypeScheme) -> Type:
        mapping = {old: fresh_tvar("m") for old in scheme.quantified}
        return Subst(mapping).apply_type(scheme.body.type)

    def _generalize(self, ty: Type, env: TypeEnv) -> TypeScheme:
        quantified = tuple(sorted(free_type_vars(ty) - env.free_vars()))
        return TypeScheme(quantified, ConstrainedType(ty))

    def infer(self, env: TypeEnv, expr: Expr) -> Type:
        if isinstance(expr, Var):
            scheme = env.lookup(expr.name)
            if scheme is None:
                raise UnboundVariableError(expr.name, expr.loc)
            return self.subst.apply_type(self._instantiate(scheme))
        if isinstance(expr, Const):
            return self._instantiate(constant_scheme(expr))
        if isinstance(expr, Prim):
            scheme = primitive_scheme(expr.name)
            if scheme is None:
                raise UnknownPrimitiveError(expr.name, expr.loc)
            return self._instantiate(scheme)
        if isinstance(expr, Fun):
            param_ty = fresh_tvar("p")
            body_ty = self.infer(env.extend(expr.param, mono(param_ty)), expr.body)
            return TArrow(self.subst.apply_type(param_ty), body_ty)
        if isinstance(expr, App):
            fn_ty = self.infer(env, expr.fn)
            arg_ty = self.infer(env.apply(self.subst), expr.arg)
            result_ty = fresh_tvar("r")
            self._unify(fn_ty, TArrow(arg_ty, result_ty), expr)
            return self.subst.apply_type(result_ty)
        if isinstance(expr, Let):
            bound_ty = self.subst.apply_type(self.infer(env, expr.bound))
            inner_env = env.apply(self.subst)
            scheme = self._generalize(bound_ty, inner_env)
            return self.infer(inner_env.extend(expr.name, scheme), expr.body)
        if isinstance(expr, Pair):
            first_ty = self.infer(env, expr.first)
            second_ty = self.infer(env.apply(self.subst), expr.second)
            return TPair(self.subst.apply_type(first_ty), second_ty)
        if isinstance(expr, TupleE):
            types = [self.infer(env.apply(self.subst), item) for item in expr.items]
            return TTuple(tuple(self.subst.apply_type(ty) for ty in types))
        if isinstance(expr, If):
            cond_ty = self.infer(env, expr.cond)
            self._unify(cond_ty, BOOL, expr.cond)
            then_ty = self.infer(env.apply(self.subst), expr.then_branch)
            else_ty = self.infer(env.apply(self.subst), expr.else_branch)
            self._unify(then_ty, else_ty, expr)
            return self.subst.apply_type(then_ty)
        if isinstance(expr, IfAt):
            vec_ty = self.infer(env, expr.vec)
            self._unify(vec_ty, TPar(BOOL), expr.vec)
            proc_ty = self.infer(env.apply(self.subst), expr.proc)
            self._unify(proc_ty, INT, expr.proc)
            then_ty = self.infer(env.apply(self.subst), expr.then_branch)
            else_ty = self.infer(env.apply(self.subst), expr.else_branch)
            self._unify(then_ty, else_ty, expr)
            return self.subst.apply_type(then_ty)
        if isinstance(expr, Annot):
            from repro.core.infer import type_expr_to_type

            inner = self.infer(env, expr.expr)
            self._unify(inner, type_expr_to_type(expr.annotation), expr)
            return self.subst.apply_type(inner)
        if isinstance(expr, Inl):
            return TSum(self.infer(env, expr.value), fresh_tvar("s"))
        if isinstance(expr, Inr):
            return TSum(fresh_tvar("s"), self.infer(env, expr.value))
        if isinstance(expr, Case):
            left_ty = fresh_tvar("sl")
            right_ty = fresh_tvar("sr")
            scrut_ty = self.infer(env, expr.scrutinee)
            self._unify(scrut_ty, TSum(left_ty, right_ty), expr.scrutinee)
            left_env = env.apply(self.subst).extend(
                expr.left_name, mono(self.subst.apply_type(left_ty))
            )
            left_body_ty = self.infer(left_env, expr.left_body)
            right_env = env.apply(self.subst).extend(
                expr.right_name, mono(self.subst.apply_type(right_ty))
            )
            right_body_ty = self.infer(right_env, expr.right_body)
            self._unify(left_body_ty, right_body_ty, expr)
            return self.subst.apply_type(left_body_ty)
        if isinstance(expr, ParVec):
            content_ty: Type = fresh_tvar("v")
            for item in expr.items:
                item_ty = self.infer(env.apply(self.subst), item)
                self._unify(item_ty, content_ty, item)
            return TPar(self.subst.apply_type(content_ty))
        raise TypingError(
            f"cannot type expression node {type(expr).__name__}", expr.loc
        )


def milner_infer(expr: Expr, env: Optional[TypeEnv] = None) -> Type:
    """Infer the Milner (unconstrained) type of ``expr``."""
    engine = MilnerInferencer()
    ty = engine.infer(env or TypeEnv.empty(), expr)
    return engine.subst.apply_type(ty)


def milner_typechecks(expr: Expr, env: Optional[TypeEnv] = None) -> bool:
    """True when classic ML typing accepts ``expr``."""
    try:
        milner_infer(expr, env)
        return True
    except TypingError:
        return False
