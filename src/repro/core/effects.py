"""A static effect analysis for the imperative extension (prototype).

The paper's conclusion: *"We are currently working on the typing of
effects to avoid this problem statically"* — the problem being that a
reference created in replicated (global) context and assigned inside a
parallel-vector component desynchronizes its per-process replicas, so a
later global dereference has no single value.

This module prototypes that analysis as a syntactic dataflow pass (not a
full effect *type system* — inference of latent effects through
higher-order functions is approximated conservatively):

* it tracks which variables are bound to results of ``ref`` in replicated
  context ("replicated references");
* entering a ``mkpar``/``apply``/``put`` function argument switches to
  *component* context;
* an assignment ``r := e`` or a dereference ``!r`` whose target is a
  replicated reference, occurring in component context, is reported —
  assignments because they diverge the replicas, dereferences only as
  informational notes (they are well-defined per process);
* a *global* dereference after any component assignment to the same
  reference is reported as the incoherence itself.

Higher-order escapes (a replicated ref passed into an unknown function,
stored in a data structure, or returned) are reported conservatively as
``may-escape`` warnings.  The dynamic detector in the big-step evaluator
(:class:`~repro.semantics.errors.ReplicaDivergenceError`) remains the
ground truth; the property test
``tests/core/test_effects.py::TestSoundness`` checks that every program
whose execution raises a divergence error is flagged by this analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto, unique
from typing import Dict, List, Set

from repro.lang.ast import (
    App,
    Case,
    Const,
    Expr,
    Fun,
    If,
    IfAt,
    Inl,
    Inr,
    Let,
    Pair,
    ParVec,
    Prim,
    Tuple as TupleE,
    Var,
)


@unique
class EffectKind(Enum):
    """What the analysis found."""

    COMPONENT_ASSIGNMENT = auto()  # replicated ref assigned inside a component
    GLOBAL_DEREF_AFTER_DIVERGENCE = auto()  # the incoherent read itself
    COMPONENT_DEREF = auto()  # informational: per-process read
    MAY_ESCAPE = auto()  # ref flows somewhere we cannot track


@dataclass(frozen=True)
class EffectWarning:
    """One finding: the kind, the reference's binder, and a description."""

    kind: EffectKind
    reference: str
    detail: str

    @property
    def is_error(self) -> bool:
        return self.kind in (
            EffectKind.COMPONENT_ASSIGNMENT,
            EffectKind.GLOBAL_DEREF_AFTER_DIVERGENCE,
        )

    def __str__(self) -> str:
        label = self.kind.name.lower().replace("_", " ")
        return f"[{label}] {self.reference}: {self.detail}"


#: The primitives whose functional argument runs per-process.
_COMPONENT_PRIMS = frozenset(("mkpar", "put"))


class _Analysis:
    def __init__(self) -> None:
        self.warnings: List[EffectWarning] = []
        #: replicated refs that have been assigned inside a component
        self.diverged: Set[str] = set()

    def report(self, kind: EffectKind, reference: str, detail: str) -> None:
        self.warnings.append(EffectWarning(kind, reference, detail))

    # ``refs`` maps a variable name to True when it (may) denote a
    # reference created in replicated context.  ``component`` is True
    # inside a parallel-vector computation.

    def walk(self, expr: Expr, refs: Dict[str, bool], component: bool) -> None:
        if isinstance(expr, (Const, Prim, Var)):
            return
        if isinstance(expr, Let):
            self.walk(expr.bound, refs, component)
            inner = dict(refs)
            inner[expr.name] = (not component) and _is_ref_creation(expr.bound)
            if inner[expr.name] and _creation_via_unknown_call(expr.bound):
                # e.g. let r = f () — we cannot see whether it is a ref.
                pass
            self.walk(expr.body, inner, component)
            return
        if isinstance(expr, Fun):
            inner = dict(refs)
            inner[expr.param] = False
            self.walk(expr.body, inner, component)
            return
        if isinstance(expr, Case):
            self.walk(expr.scrutinee, refs, component)
            left = dict(refs)
            left[expr.left_name] = False
            self.walk(expr.left_body, left, component)
            right = dict(refs)
            right[expr.right_name] = False
            self.walk(expr.right_body, right, component)
            return
        if isinstance(expr, App):
            self._walk_app(expr, refs, component)
            return
        if isinstance(expr, (Pair, TupleE, If, IfAt, Inl, Inr, ParVec)):
            for child in expr.children():
                self.walk(child, refs, component)
            return
        for child in expr.children():  # pragma: no cover - future nodes
            self.walk(child, refs, component)

    def _walk_app(self, expr: App, refs: Dict[str, bool], component: bool) -> None:
        fn, arg = expr.fn, expr.arg
        # r := e  — assignment to a tracked replicated ref.
        if isinstance(fn, Prim) and fn.name == ":=" and isinstance(arg, Pair):
            target = arg.first
            if isinstance(target, Var) and refs.get(target.name):
                if component:
                    self.diverged.add(target.name)
                    self.report(
                        EffectKind.COMPONENT_ASSIGNMENT,
                        target.name,
                        "replicated reference assigned inside a parallel "
                        "vector component: the per-process replicas diverge",
                    )
            self.walk(arg.first, refs, component)
            self.walk(arg.second, refs, component)
            return
        # !r — dereference.
        if isinstance(fn, Prim) and fn.name == "!":
            if isinstance(arg, Var) and refs.get(arg.name):
                if component:
                    self.report(
                        EffectKind.COMPONENT_DEREF,
                        arg.name,
                        "replicated reference read inside a component "
                        "(well-defined per process)",
                    )
                elif arg.name in self.diverged:
                    self.report(
                        EffectKind.GLOBAL_DEREF_AFTER_DIVERGENCE,
                        arg.name,
                        "global dereference after a component assignment: "
                        "the replicas no longer agree (the section 6 "
                        "incoherence)",
                    )
            self.walk(arg, refs, component)
            return
        # mkpar f / put f: f's body runs per component.
        if isinstance(fn, Prim) and fn.name in _COMPONENT_PRIMS:
            self._enter_component(arg, refs)
            return
        # apply (fv, xv): the functions inside fv run per component, but
        # fv is itself a vector expression — its construction is walked in
        # the current context and any lambda it contains is component code.
        if isinstance(fn, Prim) and fn.name == "apply" and isinstance(arg, Pair):
            self._enter_component(arg.first, refs)
            self.walk(arg.second, refs, component)
            return
        # Unknown application: a tracked ref passed as an argument (or the
        # function position) escapes the analysis.
        for part in (fn, arg):
            self._escape_check(part, refs)
        self.walk(fn, refs, component)
        self.walk(arg, refs, component)

    def _enter_component(self, expr: Expr, refs: Dict[str, bool]) -> None:
        """Walk ``expr`` with every contained lambda body in component
        context (the expression itself is still evaluated globally)."""
        if isinstance(expr, Fun):
            inner = dict(refs)
            inner[expr.param] = False
            self.walk(expr.body, inner, component=True)
            return
        if isinstance(expr, (Const, Prim)):
            return
        if isinstance(expr, Var):
            if refs.get(expr.name):
                self.report(
                    EffectKind.MAY_ESCAPE,
                    expr.name,
                    "replicated reference flows into a parallel primitive "
                    "through a variable; assuming the worst",
                )
            return
        for child in expr.children():
            self._enter_component(child, refs)

    def _escape_check(self, expr: Expr, refs: Dict[str, bool]) -> None:
        if isinstance(expr, Var) and refs.get(expr.name):
            self.report(
                EffectKind.MAY_ESCAPE,
                expr.name,
                "replicated reference passed to an unanalyzed function",
            )


def analyze_effects(expr: Expr) -> List[EffectWarning]:
    """Run the replicated-reference effect analysis over ``expr``."""
    analysis = _Analysis()
    analysis.walk(expr, {}, component=False)
    return analysis.warnings


def effect_errors(expr: Expr) -> List[EffectWarning]:
    """Only the findings that correspond to real incoherence."""
    return [warning for warning in analyze_effects(expr) if warning.is_error]


def is_effect_safe(expr: Expr) -> bool:
    """True when the analysis finds no divergence risk (errors or
    escapes); the sound side of the prototype."""
    return not any(
        warning.is_error or warning.kind is EffectKind.MAY_ESCAPE
        for warning in analyze_effects(expr)
    )


def _is_ref_creation(expr: Expr) -> bool:
    """Conservatively: is this expression certainly/possibly a new ref?"""
    return isinstance(expr, App) and expr.fn == Prim("ref")


def _creation_via_unknown_call(expr: Expr) -> bool:
    return isinstance(expr, App) and not isinstance(expr.fn, Prim)
