"""First-order unification over the simple-type algebra.

Standard Robinson unification with an occurs check.  Unification itself is
constraint-agnostic: locality constraints are pushed through the resulting
substitution by :meth:`repro.core.schemes.Subst.apply_constrained`
(Definition 1) at the call sites in the inference algorithm.
"""

from __future__ import annotations

import time
from typing import Optional

from repro import obs, perf
from repro.core.errors import OccursCheckError, UnificationError
from repro.core.schemes import Subst
from repro.core.types import (
    TArrow,
    TBase,
    TPair,
    TPar,
    TRef,
    TSum,
    TTuple,
    TVar,
    Type,
    occurs_in,
)
from repro.lang.ast import Loc


def unify(left: Type, right: Type, loc: Optional[Loc] = None) -> Subst:
    """The most general unifier of ``left`` and ``right``.

    Raises :class:`UnificationError` on a constructor clash and
    :class:`OccursCheckError` on a cyclic solution.
    """
    tracing = obs.is_tracing()
    started = time.perf_counter() if tracing else 0.0
    subst = Subst.identity()
    stack = [(left, right)]
    steps = 0
    while stack:
        steps += 1
        a, b = stack.pop()
        a = subst.apply_type(a)
        b = subst.apply_type(b)
        if a == b:
            continue
        if isinstance(a, TVar):
            subst = _bind(a.name, b, subst, loc)
            continue
        if isinstance(b, TVar):
            subst = _bind(b.name, a, subst, loc)
            continue
        if isinstance(a, TBase) and isinstance(b, TBase):
            if a.name != b.name:
                raise UnificationError(a, b, loc)
            continue
        if isinstance(a, TArrow) and isinstance(b, TArrow):
            stack.append((a.codomain, b.codomain))
            stack.append((a.domain, b.domain))
            continue
        if isinstance(a, TPair) and isinstance(b, TPair):
            stack.append((a.second, b.second))
            stack.append((a.first, b.first))
            continue
        if isinstance(a, TTuple) and isinstance(b, TTuple):
            if len(a.items) != len(b.items):
                raise UnificationError(a, b, loc)
            stack.extend(zip(a.items, b.items))
            continue
        if isinstance(a, TSum) and isinstance(b, TSum):
            stack.append((a.right, b.right))
            stack.append((a.left, b.left))
            continue
        if isinstance(a, TPar) and isinstance(b, TPar):
            stack.append((a.content, b.content))
            continue
        if isinstance(a, TRef) and isinstance(b, TRef):
            stack.append((a.content, b.content))
            continue
        raise UnificationError(a, b, loc)
    if perf.is_collecting():
        perf.increment("unify.calls")
        perf.increment("unify.steps", steps)
    if tracing:
        obs.record(
            "unify",
            obs.INFERENCE_TRACK,
            started,
            time.perf_counter() - started,
            steps=steps,
        )
    return subst


def _bind(var: str, ty: Type, subst: Subst, loc: Optional[Loc]) -> Subst:
    if isinstance(ty, TVar) and ty.name == var:
        return subst
    if occurs_in(var, ty):
        raise OccursCheckError(var, ty, loc)
    return Subst.single(var, ty).compose(subst)


def unifiable(left: Type, right: Type) -> bool:
    """True when the two types have a unifier."""
    try:
        unify(left, right)
        return True
    except (UnificationError, OccursCheckError):
        return False
