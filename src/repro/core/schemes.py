"""Constrained types ``[tau/C]``, type schemes, substitution (Def. 1),
instantiation (Def. 2) and generalization (Def. 3) from the paper.

The key subtlety reproduced here is Definition 1: applying a substitution
``phi`` to a constrained type does *not* just rewrite the atoms — it also
conjoins the *basic constraints* ``C_{phi(beta)}`` of every image of a
substituted variable that was free in the judgement.  This is what makes
an instantiation like ``alpha := int * (int par)`` for ``fst`` carry the
constraint ``L(int) => L(int par) = False`` and reject the program.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.core.constraints import (
    TRUE,
    Constraint,
    basic_constraint,
    conj,
    constraint_atoms,
    render_constraint,
    subst_constraint,
)
from repro.core.types import (
    TVar,
    Type,
    apply_type_subst,
    fresh_tvar,
    free_type_vars,
    render_type,
    _variable_display_names,
)

#: Names for the alpha-renamed bound variables of :meth:`Subst.apply_scheme`.
#: A private counter rather than :func:`repro.core.types.fresh_tvar`: the
#: renamed names never escape a scheme (instantiation replaces them with
#: fresh variables, and display names hide them), so drawing them from the
#: global counter would only make fresh-variable numbering depend on how
#: often environments are re-applied — which the differential infer-engine
#: harness relies on being engine-independent.  The ``q`` hint is reserved
#: for this counter; no other call site uses it, so the names cannot
#: collide with globally fresh variables.
_scheme_rename_counter = itertools.count()


@dataclass(frozen=True)
class ConstrainedType:
    """A constrained simple type ``[tau / C]``."""

    type: Type
    constraint: Constraint = TRUE

    def free_vars(self) -> FrozenSet[str]:
        """``F([tau/C]) = F(tau) u F(C)``."""
        return free_type_vars(self.type) | constraint_atoms(self.constraint)

    def __str__(self) -> str:
        names = _variable_display_names(self.type)
        # Constraint-only variables get display names too, deterministically.
        for var in sorted(constraint_atoms(self.constraint)):
            if var not in names:
                names[var] = f"'{var}"
        type_text = render_type(self.type, names)
        if self.constraint == TRUE:
            return type_text
        return f"[{type_text} / {render_constraint(self.constraint, names)}]"


@dataclass(frozen=True)
class TypeScheme:
    """A type scheme ``forall a1...an . [tau / C]``."""

    quantified: Tuple[str, ...]
    body: ConstrainedType

    def free_vars(self) -> FrozenSet[str]:
        return self.body.free_vars() - set(self.quantified)

    def __str__(self) -> str:
        if not self.quantified:
            return str(self.body)
        names = _variable_display_names(self.body.type)
        shown = ", ".join(names.get(q, f"'{q}") for q in self.quantified)
        return f"forall {shown}. {self.body}"


def scheme_of(ty: Type, constraint: Constraint = TRUE) -> TypeScheme:
    """A scheme quantifying every variable of ``ty`` (used for primitives)."""
    return TypeScheme(tuple(sorted(free_type_vars(ty))), ConstrainedType(ty, constraint))


def mono(ty: Type, constraint: Constraint = TRUE) -> TypeScheme:
    """A monomorphic scheme (no quantification)."""
    return TypeScheme((), ConstrainedType(ty, constraint))


class Subst:
    """A substitution: a finite map from type-variable names to types.

    Immutable.  ``apply_constrained`` implements Definition 1, which is the
    only way constraints should ever be pushed through a substitution
    during inference.
    """

    __slots__ = ("mapping",)

    def __init__(self, mapping: Optional[Mapping[str, Type]] = None) -> None:
        self.mapping: Dict[str, Type] = dict(mapping or {})

    @staticmethod
    def identity() -> "Subst":
        return Subst()

    @staticmethod
    def single(var: str, ty: Type) -> "Subst":
        return Subst({var: ty})

    def __bool__(self) -> bool:
        return bool(self.mapping)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Subst) and self.mapping == other.mapping

    def __repr__(self) -> str:
        inner = ", ".join(
            f"'{var} := {render_type(ty)}" for var, ty in sorted(self.mapping.items())
        )
        return f"Subst({inner})"

    @property
    def domain(self) -> FrozenSet[str]:
        return frozenset(self.mapping)

    def apply_type(self, ty: Type) -> Type:
        return apply_type_subst(self.mapping, ty)

    def apply_constraint(self, constraint: Constraint) -> Constraint:
        """Atom rewriting only — use :meth:`apply_constrained` during
        inference so Definition 1's basic constraints are not lost."""
        return subst_constraint(self.mapping, constraint)

    def apply_constrained(self, ct: ConstrainedType) -> ConstrainedType:
        """Definition 1 on an unquantified constrained type::

            phi([tau/C]) = [phi(tau) / phi(C) /\\ AND C_{phi(beta_i)}]

        for every ``beta_i`` in ``Dom(phi)`` free in ``[tau/C]``.
        """
        touched = self.domain & ct.free_vars()
        extras = conj(*(basic_constraint(self.mapping[var]) for var in touched))
        return ConstrainedType(
            self.apply_type(ct.type),
            conj(self.apply_constraint(ct.constraint), extras),
        )

    def apply_scheme(self, scheme: TypeScheme) -> TypeScheme:
        """Definition 1 on a scheme, renaming bound variables out of reach.

        Quantified variables are alpha-renamed to fresh names first, which
        always validates the paper's "out of reach" side condition.
        """
        if not scheme.quantified:
            return TypeScheme((), self.apply_constrained(scheme.body))
        renaming = {
            old: TVar(f"q{next(_scheme_rename_counter)}")
            for old in scheme.quantified
        }
        rename = Subst({old: new for old, new in renaming.items()})
        body = ConstrainedType(
            rename.apply_type(scheme.body.type),
            rename.apply_constraint(scheme.body.constraint),
        )
        return TypeScheme(
            tuple(var.name for var in renaming.values()),
            self.apply_constrained(body),
        )

    def compose(self, earlier: "Subst") -> "Subst":
        """``self.compose(earlier)`` applies ``earlier`` first, then ``self``."""
        mapping: Dict[str, Type] = {
            var: self.apply_type(ty) for var, ty in earlier.mapping.items()
        }
        for var, ty in self.mapping.items():
            mapping.setdefault(var, ty)
        return Subst(mapping)


def instantiate(scheme: TypeScheme) -> ConstrainedType:
    """Definition 2 with fresh variables: the most general instance.

    Fresh variables have trivial basic constraints, so Definition 1 reduces
    to atom renaming here; later unifications re-introduce the images'
    basic constraints through :meth:`Subst.apply_constrained`.
    """
    mapping = {old: fresh_tvar("i") for old in scheme.quantified}
    subst = Subst(mapping)
    return ConstrainedType(
        subst.apply_type(scheme.body.type),
        subst.apply_constraint(scheme.body.constraint),
    )


def generalize(ct: ConstrainedType, env: "TypeEnv") -> TypeScheme:
    """Definition 3: ``Gen([tau/C], E)`` quantifies ``F(tau) \\ F(E)``.

    Note the paper quantifies over the *type's* free variables only;
    variables appearing only in the constraint stay free.
    """
    quantified = tuple(sorted(free_type_vars(ct.type) - env.free_vars()))
    return TypeScheme(quantified, ct)


class TypeEnv:
    """An immutable typing environment ``E``: identifiers to type schemes."""

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Optional[Mapping[str, TypeScheme]] = None) -> None:
        self._bindings: Dict[str, TypeScheme] = dict(bindings or {})

    @staticmethod
    def empty() -> "TypeEnv":
        return TypeEnv()

    def extend(self, name: str, scheme: TypeScheme) -> "TypeEnv":
        bindings = dict(self._bindings)
        bindings[name] = scheme
        return TypeEnv(bindings)

    def lookup(self, name: str) -> Optional[TypeScheme]:
        return self._bindings.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._bindings

    @property
    def domain(self) -> FrozenSet[str]:
        return frozenset(self._bindings)

    def free_vars(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for scheme in self._bindings.values():
            result |= scheme.free_vars()
        return result

    def apply(self, subst: Subst) -> "TypeEnv":
        return TypeEnv(
            {name: subst.apply_scheme(s) for name, s in self._bindings.items()}
        )

    def items(self) -> Iterable[Tuple[str, TypeScheme]]:
        return self._bindings.items()
