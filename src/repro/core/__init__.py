"""The paper's primary contribution: the locality-constrained type system.

Public surface:

* types (:mod:`repro.core.types`) and constraints
  (:mod:`repro.core.constraints`) — the type algebra of section 4;
* schemes, substitution, instantiation, generalization
  (:mod:`repro.core.schemes`) — Definitions 1-3;
* the initial environment ``TC`` (:mod:`repro.core.initial_env`) — Fig. 6;
* inference (:mod:`repro.core.infer`) — the rules of Fig. 7, with
  derivation recording, plus :mod:`repro.core.judgments` to render the
  proof trees of Figs. 8-10;
* the Milner baseline (:mod:`repro.core.milner`) — what plain ML typing
  would accept, used for the comparison benchmarks.
"""

from repro.core.constraints import (
    FALSE,
    TRUE,
    CAnd,
    CFalse,
    CImp,
    CLoc,
    Constraint,
    CTrue,
    basic_constraint,
    conj,
    conj_all,
    constraint_atoms,
    evaluate,
    imp,
    is_satisfiable,
    is_satisfiable_branching,
    is_unsatisfiable,
    is_valid,
    locality,
    render_constraint,
    satisfying_assignments,
    simplify,
    solve,
    subst_constraint,
)
from repro.core.effects import (
    EffectKind,
    EffectWarning,
    analyze_effects,
    effect_errors,
    is_effect_safe,
)
from repro.core.errors import (
    NestingError,
    OccursCheckError,
    TypingError,
    UnboundVariableError,
    UnificationError,
    UnknownPrimitiveError,
)
from repro.core.infer import (
    Derivation,
    Inferencer,
    infer,
    infer_scheme,
    infer_with_derivation,
    typechecks,
)
from repro.core.initial_env import (
    PRIMITIVE_SCHEMES,
    constant_scheme,
    constant_type,
    primitive_scheme,
)
from repro.core.latex import (
    derivation_to_latex,
    explanation_to_latex,
    latex_escape,
)
from repro.core.judgments import (
    Explanation,
    explain,
    render_derivation,
    render_derivation_indented,
)
from repro.core.milner import milner_infer, milner_typechecks
from repro.core.prelude_env import prelude_env
from repro.core.normalize import (
    eliminate_variable,
    prune_constrained,
    prune_constraint,
)
from repro.core.schemes import (
    ConstrainedType,
    Subst,
    TypeEnv,
    TypeScheme,
    generalize,
    instantiate,
    mono,
    scheme_of,
)
from repro.core.types import (
    BOOL,
    INT,
    TArrow,
    TBase,
    TPair,
    TPar,
    TRef,
    TSum,
    TTuple,
    TVar,
    Type,
    UNIT_TYPE,
    arrow,
    contains_par,
    free_type_vars,
    fresh_tvar,
    has_nested_par,
    occurs_in,
    render_type,
)
from repro.core.unify import unifiable, unify

__all__ = [
    "BOOL",
    "CAnd",
    "CFalse",
    "CImp",
    "CLoc",
    "CTrue",
    "ConstrainedType",
    "Constraint",
    "Derivation",
    "EffectKind",
    "EffectWarning",
    "Explanation",
    "FALSE",
    "INT",
    "Inferencer",
    "NestingError",
    "OccursCheckError",
    "PRIMITIVE_SCHEMES",
    "Subst",
    "TArrow",
    "TBase",
    "TPair",
    "TPar",
    "TRef",
    "TSum",
    "TRUE",
    "TTuple",
    "TVar",
    "Type",
    "TypeEnv",
    "TypeScheme",
    "TypingError",
    "UNIT_TYPE",
    "UnboundVariableError",
    "UnificationError",
    "UnknownPrimitiveError",
    "arrow",
    "basic_constraint",
    "conj",
    "analyze_effects",
    "conj_all",
    "effect_errors",
    "constant_scheme",
    "constant_type",
    "constraint_atoms",
    "derivation_to_latex",
    "contains_par",
    "eliminate_variable",
    "evaluate",
    "explain",
    "explanation_to_latex",
    "free_type_vars",
    "fresh_tvar",
    "generalize",
    "has_nested_par",
    "imp",
    "infer",
    "infer_scheme",
    "infer_with_derivation",
    "instantiate",
    "is_effect_safe",
    "is_satisfiable",
    "is_satisfiable_branching",
    "is_unsatisfiable",
    "is_valid",
    "latex_escape",
    "locality",
    "milner_infer",
    "milner_typechecks",
    "mono",
    "occurs_in",
    "prelude_env",
    "primitive_scheme",
    "prune_constrained",
    "prune_constraint",
    "render_constraint",
    "render_derivation",
    "render_derivation_indented",
    "render_type",
    "satisfying_assignments",
    "scheme_of",
    "simplify",
    "solve",
    "subst_constraint",
    "typechecks",
    "unifiable",
    "unify",
]
