"""Typing errors raised by the type system."""

from __future__ import annotations

from typing import Optional

from repro.lang.ast import Expr, Loc
from repro.lang.errors import SourceError


class TypingError(SourceError):
    """Base class of all static typing failures."""


class UnboundVariableError(TypingError):
    """A variable occurs free with no binding in the environment."""

    def __init__(self, name: str, loc: Optional[Loc] = None) -> None:
        self.name = name
        super().__init__(f"unbound variable {name!r}", loc)


class UnknownPrimitiveError(TypingError):
    """A primitive name with no scheme in the initial environment."""

    def __init__(self, name: str, loc: Optional[Loc] = None) -> None:
        self.name = name
        super().__init__(f"unknown primitive {name!r}", loc)


class UnificationError(TypingError):
    """Two types cannot be made equal."""

    def __init__(self, left, right, loc: Optional[Loc] = None) -> None:
        self.left = left
        self.right = right
        super().__init__(f"cannot unify {left} with {right}", loc)


class OccursCheckError(TypingError):
    """Unifying ``alpha`` with a type containing ``alpha`` (infinite type)."""

    def __init__(self, var: str, ty, loc: Optional[Loc] = None) -> None:
        self.var = var
        self.ty = ty
        super().__init__(f"occurs check: '{var} appears in {ty}", loc)


class NestingError(TypingError):
    """The locality constraint of a rule became unsatisfiable.

    This is the paper's rejection condition ``Solve(C) = False``: accepting
    the expression would allow a parallel vector to nest inside another
    (directly, as in ``example1``; invisibly, as in ``example2``; or
    through a polymorphic instantiation, as in ``fst (1, mkpar ...)``).
    """

    def __init__(
        self,
        rule: str,
        constraint,
        expr: Optional[Expr] = None,
        loc: Optional[Loc] = None,
        detail: str = "",
    ) -> None:
        self.rule = rule
        self.constraint = constraint
        self.expr = expr
        message = (
            f"parallel-vector nesting rejected at rule ({rule}): "
            f"constraint {constraint} is unsatisfiable"
        )
        if detail:
            message += f" — {detail}"
        super().__init__(message, loc)
