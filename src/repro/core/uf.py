"""Union-find constraint inference: the ``uf`` engine.

This is the second inference engine (the first being the substitution
threading :class:`repro.core.infer.Inferencer`), built for near-linear
scaling on large programs while producing **bit-identical** output:

* **Union-find unification** (:class:`UnionFind`): instead of composing
  an explicit substitution after every unification step — the O(n^2)
  behaviour of ``extra.compose(self.subst)`` — variables are linked to
  their representative in a mutable ``name -> Type`` table, with path
  compression on lookup.  The occurs check runs iteratively over the
  resolved structure during binding.

* **Mutable state lives outside the type layer.**  ``Type`` nodes are
  hash-consed and printable (:mod:`repro.core.types`); they never carry
  a mutable link field.  The union-find table is per-inference-run
  state, and resolved types are *frozen* back into interned nodes at
  every rule boundary (:meth:`UnionFind.resolve`), so pretty-printing,
  :mod:`repro.core.normalize`, digests and the solver-memo keys of
  :mod:`repro.core.constraints` observe exactly the interned nodes the
  substitution engine would have produced.

* **Rémy-style level-based generalization**: every variable records the
  ``let`` depth at which it was created; binding a variable demotes the
  levels of the variables reachable from the bound type (folded into
  the same iterative walk as the occurs check).  ``generalize`` then
  quantifies the variables of the frozen bound type whose level exceeds
  the ``let``'s entry level — O(vars of the bound type), with no
  free-variable sweep over the environment.

* **Lazy constraint resolution**: ``CLoc`` atoms written during
  inference keep referencing variables by name; they are rewritten to
  the locality formula of the representative (and Definition 1's basic
  constraints conjoined) only when a rule boundary resolves the
  conclusion for its ``Solve(C)`` check.  The constraint trees that come
  out are the same interned nodes the substitution engine builds.

Conformance is not accidental: every rule below consumes fresh
variables in exactly the order :class:`repro.core.infer.Inferencer`
does, and resolution reproduces Definition 1 exactly — for any chain of
substitutions ``phi2 . phi1`` the identity

    ``C_{phi2(phi1(tau))} = phi2(C_{phi1(tau)}) /\\ AND C_{phi2(v)}``
    for ``v`` free in ``phi1(tau)``

makes the substitution engine's eager per-node environment applications
telescope into the single final resolution performed here.  The
differential harness (:func:`repro.testing.differential.assert_infer_conformance`)
holds both engines to bit-identical types, constraints, derivations and
error messages.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro import obs, perf
from repro.core.constraints import (
    FALSE,
    Constraint,
    CAnd,
    CImp,
    CLoc,
    basic_constraint,
    conj,
    conj_all,
    constraint_atoms,
    imp,
    is_unsatisfiable,
    locality,
)
from repro.core.errors import (
    OccursCheckError,
    TypingError,
    UnboundVariableError,
    UnificationError,
    UnknownPrimitiveError,
)
from repro.core.infer import Derivation, raise_nesting, type_expr_to_type
from repro.core.initial_env import constant_scheme, primitive_scheme
from repro.core.normalize import prune_constrained
from repro.core.schemes import (
    ConstrainedType,
    TypeEnv,
    TypeScheme,
    generalize,
    instantiate,
    mono,
)
from repro.core.types import (
    BOOL,
    INT,
    TArrow,
    TBase,
    TPair,
    TPar,
    TRef,
    TSum,
    TTuple,
    TVar,
    Type,
    free_type_vars,
    fresh_tvar,
)
from repro.lang.ast import (
    Annot,
    App,
    Case,
    Const,
    Expr,
    Fun,
    If,
    IfAt,
    Inl,
    Inr,
    Let,
    Loc,
    Pair,
    ParVec,
    Prim,
    Tuple as TupleE,
    Var,
)
from repro.lang.limits import deep_recursion


class UnionFind:
    """Mutable unification state of one inference run.

    ``link`` maps a bound variable's name to the type it was unified
    with (possibly another variable: a var-var union).  ``level`` maps
    every variable created during the run to the ``let`` depth of its
    creation.  ``version`` counts bindings; the freeze memo tables are
    stamped with it so cached frozen nodes are reused between bindings
    and dropped the moment a binding could change a resolution.
    """

    __slots__ = (
        "link",
        "level",
        "current_level",
        "version",
        "binds",
        "compressions",
        "freezes",
        "_memo_version",
        "_frozen_types",
        "_frozen_constraints",
        "_type_fv_memo",
        "_atom_memo",
        "_scheme_fv_memo",
    )

    def __init__(self) -> None:
        self.link: Dict[str, Type] = {}
        self.level: Dict[str, int] = {}
        self.current_level = 0
        self.version = 0
        self.binds = 0
        self.compressions = 0
        self.freezes = 0
        self._memo_version = 0
        self._frozen_types: Dict[Type, Type] = {}
        self._frozen_constraints: Dict[Constraint, Constraint] = {}
        self._type_fv_memo: Dict[Type, FrozenSet[str]] = {}
        self._atom_memo: Dict[Constraint, FrozenSet[str]] = {}
        self._scheme_fv_memo: Dict[TypeScheme, FrozenSet[str]] = {}

    # -- representatives ---------------------------------------------------

    def find(self, ty: Type) -> Type:
        """The representative of ``ty``: follow links until an unbound
        variable or a structural node, compressing the walked path."""
        if not isinstance(ty, TVar):
            return ty
        link = self.link
        node: Type = ty
        path: List[str] = []
        while isinstance(node, TVar):
            target = link.get(node.name)
            if target is None:
                break
            path.append(node.name)
            node = target
        if len(path) > 1:
            # Point every variable on the path at the representative so
            # the next lookup is O(1).  Compression never changes what a
            # name resolves to, so the freeze memos stay valid.
            for name in path[:-1]:
                link[name] = node
            self.compressions += len(path) - 1
        return node

    def bind(self, var: TVar, ty: Type, loc: Optional[Loc]) -> None:
        """Link the unbound variable ``var`` to ``ty``.

        Runs the iterative occurs check over the *resolved* structure of
        ``ty`` and, in the same walk, demotes every unbound variable
        reachable from ``ty`` to ``var``'s level (Rémy's level
        discipline: a variable that becomes visible from an older
        binding can no longer be generalized at a younger ``let``).
        """
        level = self.level
        bound_level = level.get(var.name, 0)
        stack: List[Type] = [ty]
        while stack:
            node = stack.pop()
            if isinstance(node, TVar):
                root = self.find(node)
                if isinstance(root, TVar):
                    if root is var:
                        raise OccursCheckError(
                            var.name, self.freeze_type(ty), loc
                        )
                    if level.get(root.name, 0) > bound_level:
                        level[root.name] = bound_level
                    continue
                stack.append(root)
                continue
            stack.extend(node.children())
        self.link[var.name] = ty
        self.version += 1
        self.binds += 1

    # -- freezing back into interned nodes ---------------------------------

    def _sync(self) -> None:
        if self._memo_version != self.version:
            self._frozen_types.clear()
            self._frozen_constraints.clear()
            self._memo_version = self.version

    def freeze_type(self, ty: Type) -> Type:
        """The fully resolved, interned form of ``ty`` under the current
        bindings — exactly ``subst.apply_type(ty)`` of the substitution
        engine.  Memoized per interned node until the next binding."""
        self._sync()
        return self._freeze(ty)

    def _freeze(self, ty: Type) -> Type:
        memo = self._frozen_types
        cached = memo.get(ty)
        if cached is not None:
            return cached
        if isinstance(ty, TVar):
            root = self.find(ty)
            frozen = root if isinstance(root, TVar) else self._freeze(root)
        elif isinstance(ty, TBase):
            frozen = ty
        elif isinstance(ty, TArrow):
            frozen = TArrow(self._freeze(ty.domain), self._freeze(ty.codomain))
        elif isinstance(ty, TPair):
            frozen = TPair(self._freeze(ty.first), self._freeze(ty.second))
        elif isinstance(ty, TTuple):
            frozen = TTuple(tuple(self._freeze(item) for item in ty.items))
        elif isinstance(ty, TSum):
            frozen = TSum(self._freeze(ty.left), self._freeze(ty.right))
        elif isinstance(ty, TRef):
            frozen = TRef(self._freeze(ty.content))
        elif isinstance(ty, TPar):
            frozen = TPar(self._freeze(ty.content))
        else:
            raise TypeError(f"freeze: unknown type node {type(ty).__name__}")
        memo[ty] = frozen
        self.freezes += 1
        return frozen

    def freeze_constraint(self, constraint: Constraint) -> Constraint:
        """Resolve a constraint's atoms against the current bindings:
        ``L(v)`` becomes the locality formula of ``v``'s representative
        (the lazy ``CLoc`` resolution of the engine)."""
        self._sync()
        return self._freeze_c(constraint)

    def _freeze_c(self, constraint: Constraint) -> Constraint:
        memo = self._frozen_constraints
        cached = memo.get(constraint)
        if cached is not None:
            return cached
        if isinstance(constraint, CLoc):
            if constraint.var in self.link:
                frozen = locality(self._freeze(TVar(constraint.var)))
            else:
                frozen = constraint
        elif isinstance(constraint, CAnd):
            frozen = conj_all(self._freeze_c(part) for part in constraint.conjuncts)
        elif isinstance(constraint, CImp):
            frozen = imp(
                self._freeze_c(constraint.antecedent),
                self._freeze_c(constraint.consequent),
            )
        else:
            frozen = constraint
        memo[constraint] = frozen
        return frozen

    # -- Definition 1 at rule boundaries -----------------------------------

    def resolve(self, ct: ConstrainedType) -> ConstrainedType:
        """Definition 1 under the current bindings.

        Freezes the type, rewrites the constraint's atoms, and conjoins
        the basic constraint of every bound variable free in ``ct`` —
        the substitution engine's ``subst.apply_constrained``, whose
        eager intermediate applications telescope into this single
        resolution (see the module docstring)."""
        self._sync()
        link = self.link
        extras = conj(
            *(
                basic_constraint(self._freeze(TVar(name)))
                for name in self.ct_free_vars(ct)
                if name in link
            )
        )
        return ConstrainedType(
            self._freeze(ct.type),
            conj(self._freeze_c(ct.constraint), extras),
        )

    # -- syntactic free variables (cached on interned nodes) ---------------

    def type_fv(self, ty: Type) -> FrozenSet[str]:
        cached = self._type_fv_memo.get(ty)
        if cached is None:
            cached = free_type_vars(ty)
            self._type_fv_memo[ty] = cached
        return cached

    def atoms(self, constraint: Constraint) -> FrozenSet[str]:
        cached = self._atom_memo.get(constraint)
        if cached is None:
            cached = constraint_atoms(constraint)
            self._atom_memo[constraint] = cached
        return cached

    def ct_free_vars(self, ct: ConstrainedType) -> FrozenSet[str]:
        return self.type_fv(ct.type) | self.atoms(ct.constraint)

    # -- resolved environment free variables -------------------------------

    def scheme_free_vars(self, scheme: TypeScheme) -> FrozenSet[str]:
        """Free variables of ``scheme`` as the substitution engine's
        ``subst.apply_scheme(scheme).free_vars()`` would report them.

        The result depends only on the scheme and on the bindings of the
        variables *in the result*: an entry is reusable until one of its
        own variables gets bound, so the validity check is O(|result|)
        rather than a recomputation per query.
        """
        cached = self._scheme_fv_memo.get(scheme)
        if cached is not None:
            link = self.link
            if not any(name in link for name in cached):
                return cached
        result = self._compute_scheme_fv(scheme)
        self._scheme_fv_memo[scheme] = result
        return result

    def _compute_scheme_fv(self, scheme: TypeScheme) -> FrozenSet[str]:
        self._sync()
        quantified = set(scheme.quantified)
        body = scheme.body
        link = self.link
        result: Set[str] = set()
        touched: Set[str] = set()
        for name in self.type_fv(body.type):
            if name in quantified:
                continue
            if name in link:
                touched.add(name)
                result |= self.type_fv(self._freeze(TVar(name)))
            else:
                result.add(name)
        for name in self.atoms(body.constraint):
            if name in quantified:
                continue
            if name in link:
                touched.add(name)
                result |= self.atoms(locality(self._freeze(TVar(name))))
            else:
                result.add(name)
        # Definition 1's extras: the touched variables' images conjoin
        # their basic constraints into the applied scheme's body.
        for name in touched:
            result |= self.atoms(basic_constraint(self._freeze(TVar(name))))
        return frozenset(result)

    def env_free_vars(self, env: TypeEnv) -> FrozenSet[str]:
        """``env.apply(subst).free_vars()`` without building the applied
        environment."""
        result: Set[str] = set()
        for _, scheme in env.items():
            result |= self.scheme_free_vars(scheme)
        return frozenset(result)

    # -- fresh variables ----------------------------------------------------

    def fresh(self, hint: str) -> TVar:
        var = fresh_tvar(hint)
        self.level[var.name] = self.current_level
        return var

    def note_vars(self, names: FrozenSet[str]) -> None:
        """Record the current level for any not-yet-seen variable (the
        fresh instances drawn by :func:`instantiate` and annotation
        conversion; variables already levelled keep their level)."""
        level = self.level
        current = self.current_level
        for name in names:
            if name not in level:
                level[name] = current


def uf_unify(uf: UnionFind, left: Type, right: Type, loc: Optional[Loc] = None) -> None:
    """In-place unification on the union-find store.

    Mirrors :func:`repro.core.unify.unify` case for case (same stack
    discipline, same bind orientation — the left operand's variable
    links to the right operand) so the two engines make literally the
    same bindings in the same order; errors carry frozen types so the
    messages match the substitution engine's byte for byte.
    """
    tracing = obs.is_tracing()
    started = time.perf_counter() if tracing else 0.0
    stack = [(left, right)]
    steps = 0
    while stack:
        steps += 1
        a, b = stack.pop()
        a = uf.find(a)
        b = uf.find(b)
        if a is b:
            continue
        if isinstance(a, TVar):
            uf.bind(a, b, loc)
            continue
        if isinstance(b, TVar):
            uf.bind(b, a, loc)
            continue
        if isinstance(a, TBase) and isinstance(b, TBase):
            if a.name != b.name:
                raise UnificationError(a, b, loc)
            continue
        if isinstance(a, TArrow) and isinstance(b, TArrow):
            stack.append((a.codomain, b.codomain))
            stack.append((a.domain, b.domain))
            continue
        if isinstance(a, TPair) and isinstance(b, TPair):
            stack.append((a.second, b.second))
            stack.append((a.first, b.first))
            continue
        if isinstance(a, TTuple) and isinstance(b, TTuple):
            if len(a.items) != len(b.items):
                raise UnificationError(uf.freeze_type(a), uf.freeze_type(b), loc)
            stack.extend(zip(a.items, b.items))
            continue
        if isinstance(a, TSum) and isinstance(b, TSum):
            stack.append((a.right, b.right))
            stack.append((a.left, b.left))
            continue
        if isinstance(a, TPar) and isinstance(b, TPar):
            stack.append((a.content, b.content))
            continue
        if isinstance(a, TRef) and isinstance(b, TRef):
            stack.append((a.content, b.content))
            continue
        raise UnificationError(uf.freeze_type(a), uf.freeze_type(b), loc)
    if perf.is_collecting():
        perf.increment("unify.calls")
        perf.increment("unify.steps", steps)
    if tracing:
        obs.record(
            "unify",
            obs.INFERENCE_TRACK,
            started,
            time.perf_counter() - started,
            steps=steps,
        )


class UFInferencer:
    """The union-find twin of :class:`repro.core.infer.Inferencer`.

    Every rule consumes fresh variables in exactly the order the
    substitution engine does, and every conclusion is resolved through
    :meth:`UnionFind.resolve` at the rule boundary — the two engines'
    outputs (types, constraints, derivations, errors) are interned-node
    identical, which the differential harness enforces.
    """

    def __init__(self, prune: bool = True) -> None:
        self.uf = UnionFind()
        self.prune = prune

    # -- helpers ----------------------------------------------------------

    def _resolve(self, ct: ConstrainedType) -> ConstrainedType:
        return self.uf.resolve(ct)

    def _unify(self, left: Type, right: Type, expr: Expr) -> None:
        uf_unify(self.uf, left, right, expr.loc)

    def _instantiate(self, scheme: TypeScheme) -> ConstrainedType:
        ct = instantiate(scheme)
        self.uf.note_vars(self.uf.ct_free_vars(ct))
        return ct

    def _check(
        self,
        rule: str,
        expr: Expr,
        ct: ConstrainedType,
        premises: Tuple[Derivation, ...],
        note: str = "",
    ) -> Tuple[ConstrainedType, Derivation]:
        """Fail the rule if its constraint is unsatisfiable (Solve = False)."""
        resolved = self._resolve(ct)
        perf.increment("infer.solve_checks")
        if is_unsatisfiable(resolved.constraint):
            failure = Derivation(rule, expr, None, premises, note)
            raise_nesting(rule, expr, resolved, failure)
        return resolved, Derivation(rule, expr, resolved, premises, note)

    def _generalize(self, ct: ConstrainedType, entry_level: int) -> TypeScheme:
        """Definition 3 by level: quantify the frozen bound type's
        variables created strictly under this ``let`` — O(vars of the
        type), no environment sweep."""
        level = self.uf.level
        quantified = tuple(
            sorted(
                name
                for name in self.uf.type_fv(ct.type)
                if level.get(name, 0) > entry_level
            )
        )
        return TypeScheme(quantified, ct)

    def _resolve_derivation(self, derivation: Derivation) -> Derivation:
        conclusion = (
            self._resolve(derivation.conclusion)
            if derivation.conclusion is not None
            else None
        )
        return Derivation(
            derivation.rule,
            derivation.expr,
            conclusion,
            tuple(self._resolve_derivation(p) for p in derivation.premises),
            derivation.note,
        )

    # -- the rules of Figure 7 --------------------------------------------

    def infer(self, env: TypeEnv, expr: Expr) -> Tuple[ConstrainedType, Derivation]:
        perf.increment("infer.nodes")
        if obs.is_tracing():
            with obs.span(
                "judgment", obs.INFERENCE_TRACK, node=type(expr).__name__
            ) as extra:
                ct, derivation = self._infer_node(env, expr)
                extra["rule"] = derivation.rule
                return ct, derivation
        return self._infer_node(env, expr)

    def _infer_node(
        self, env: TypeEnv, expr: Expr
    ) -> Tuple[ConstrainedType, Derivation]:
        if isinstance(expr, Var):
            scheme = env.lookup(expr.name)
            if scheme is None:
                raise UnboundVariableError(expr.name, expr.loc)
            return self._check("Var", expr, self._instantiate(scheme), ())
        if isinstance(expr, Const):
            return self._check(
                "Const", expr, self._instantiate(constant_scheme(expr)), ()
            )
        if isinstance(expr, Prim):
            scheme = primitive_scheme(expr.name)
            if scheme is None:
                raise UnknownPrimitiveError(expr.name, expr.loc)
            return self._check("Op", expr, self._instantiate(scheme), ())
        if isinstance(expr, Fun):
            return self._infer_fun(env, expr)
        if isinstance(expr, App):
            return self._infer_app(env, expr)
        if isinstance(expr, Let):
            return self._infer_let(env, expr)
        if isinstance(expr, Pair):
            return self._infer_pair(env, expr)
        if isinstance(expr, TupleE):
            return self._infer_tuple(env, expr)
        if isinstance(expr, If):
            return self._infer_if(env, expr)
        if isinstance(expr, IfAt):
            return self._infer_ifat(env, expr)
        if isinstance(expr, Annot):
            return self._infer_annot(env, expr)
        if isinstance(expr, Inl):
            return self._infer_injection(env, expr, left=True)
        if isinstance(expr, Inr):
            return self._infer_injection(env, expr, left=False)
        if isinstance(expr, Case):
            return self._infer_case(env, expr)
        if isinstance(expr, ParVec):
            return self._infer_parvec(env, expr)
        raise TypingError(f"cannot type expression node {type(expr).__name__}", expr.loc)

    def _infer_annot(self, env: TypeEnv, expr: Annot):
        inner_ct, inner_d = self.infer(env, expr.expr)
        annotation = type_expr_to_type(expr.annotation)
        self.uf.note_vars(self.uf.type_fv(annotation))
        self._unify(inner_ct.type, annotation, expr)
        inner_ct = self._resolve(inner_ct)
        ct = ConstrainedType(
            inner_ct.type,
            conj(
                inner_ct.constraint,
                basic_constraint(self.uf.freeze_type(annotation)),
            ),
        )
        note = f"annotation: {expr.annotation}"
        return self._check("Annot", expr, ct, (inner_d,), note)

    def _infer_injection(self, env: TypeEnv, expr, left: bool):
        value_ct, value_d = self.infer(env, expr.value)
        other = self.uf.fresh("s")
        ty = TSum(value_ct.type, other) if left else TSum(other, value_ct.type)
        rule = "Inl" if left else "Inr"
        return self._check(rule, expr, ConstrainedType(ty, value_ct.constraint), (value_d,))

    def _infer_case(self, env: TypeEnv, expr: Case):
        left_ty = self.uf.fresh("sl")
        right_ty = self.uf.fresh("sr")
        scrut_ct, scrut_d = self.infer(env, expr.scrutinee)
        self._unify(scrut_ct.type, TSum(left_ty, right_ty), expr.scrutinee)
        left_env = env.extend(
            expr.left_name, mono(self.uf.freeze_type(left_ty))
        )
        left_ct, left_d = self.infer(left_env, expr.left_body)
        right_env = env.extend(
            expr.right_name, mono(self.uf.freeze_type(right_ty))
        )
        right_ct, right_d = self.infer(right_env, expr.right_body)
        self._unify(left_ct.type, right_ct.type, expr)
        scrut_ct = self._resolve(scrut_ct)
        left_ct = self._resolve(left_ct)
        right_ct = self._resolve(right_ct)
        ct = ConstrainedType(
            left_ct.type,
            conj(
                scrut_ct.constraint,
                left_ct.constraint,
                right_ct.constraint,
                imp(locality(left_ct.type), locality(scrut_ct.type)),
            ),
        )
        return self._check("Case", expr, ct, (scrut_d, left_d, right_d))

    def _infer_fun(self, env: TypeEnv, expr: Fun) -> Tuple[ConstrainedType, Derivation]:
        param_ty = self.uf.fresh("p")
        body_ct, body_d = self.infer(env.extend(expr.param, mono(param_ty)), expr.body)
        arrow = TArrow(self.uf.freeze_type(param_ty), body_ct.type)
        constraint = conj(basic_constraint(arrow), body_ct.constraint)
        return self._check("Fun", expr, ConstrainedType(arrow, constraint), (body_d,))

    def _infer_app(self, env: TypeEnv, expr: App) -> Tuple[ConstrainedType, Derivation]:
        fn_ct, fn_d = self.infer(env, expr.fn)
        arg_ct, arg_d = self.infer(env, expr.arg)
        result_ty = self.uf.fresh("r")
        self._unify(fn_ct.type, TArrow(arg_ct.type, result_ty), expr)
        fn_ct = self._resolve(fn_ct)
        arg_ct = self._resolve(arg_ct)
        ct = ConstrainedType(
            self.uf.freeze_type(result_ty),
            conj(fn_ct.constraint, arg_ct.constraint),
        )
        return self._check("App", expr, ct, (fn_d, arg_d))

    def _infer_let(self, env: TypeEnv, expr: Let) -> Tuple[ConstrainedType, Derivation]:
        uf = self.uf
        entry_level = uf.current_level
        uf.current_level = entry_level + 1
        try:
            bound_ct, bound_d = self.infer(env, expr.bound)
        finally:
            uf.current_level = entry_level
        bound_ct = self._resolve(bound_ct)
        # The substitution engine resolves the environment once here
        # (``inner_env = env.apply(self.subst)``) and reuses that
        # snapshot for both prunes; mirror the snapshot exactly.
        inner_fv = uf.env_free_vars(env) if self.prune else frozenset()
        if self.prune:
            bound_ct = prune_constrained(bound_ct, inner_fv)
        scheme = self._generalize(bound_ct, entry_level)
        body_ct, body_d = self.infer(env.extend(expr.name, scheme), expr.body)
        bound_ct = self._resolve(bound_ct)
        constraint = conj(
            bound_ct.constraint,
            body_ct.constraint,
            imp(locality(body_ct.type), locality(bound_ct.type)),
        )
        ct = ConstrainedType(body_ct.type, constraint)
        if self.prune:
            ct = prune_constrained(ct, inner_fv)
        note = f"{expr.name} : {scheme}"
        return self._check("Let", expr, ct, (bound_d, body_d), note)

    def _infer_pair(self, env: TypeEnv, expr: Pair) -> Tuple[ConstrainedType, Derivation]:
        first_ct, first_d = self.infer(env, expr.first)
        second_ct, second_d = self.infer(env, expr.second)
        first_ct = self._resolve(first_ct)
        ct = ConstrainedType(
            TPair(first_ct.type, second_ct.type),
            conj(first_ct.constraint, second_ct.constraint),
        )
        return self._check("Pair", expr, ct, (first_d, second_d))

    def _infer_tuple(self, env: TypeEnv, expr: TupleE) -> Tuple[ConstrainedType, Derivation]:
        premises = []
        types = []
        constraints = []
        for item in expr.items:
            item_ct, item_d = self.infer(env, item)
            premises.append(item_d)
            types.append(item_ct.type)
            constraints.append(item_ct.constraint)
        resolved = [self.uf.freeze_type(ty) for ty in types]
        ct = ConstrainedType(TTuple(tuple(resolved)), conj(*constraints))
        return self._check("Tuple", expr, ct, tuple(premises))

    def _infer_if(self, env: TypeEnv, expr: If) -> Tuple[ConstrainedType, Derivation]:
        cond_ct, cond_d = self.infer(env, expr.cond)
        self._unify(cond_ct.type, BOOL, expr.cond)
        then_ct, then_d = self.infer(env, expr.then_branch)
        else_ct, else_d = self.infer(env, expr.else_branch)
        self._unify(then_ct.type, else_ct.type, expr)
        cond_ct = self._resolve(cond_ct)
        then_ct = self._resolve(then_ct)
        else_ct = self._resolve(else_ct)
        ct = ConstrainedType(
            then_ct.type,
            conj(cond_ct.constraint, then_ct.constraint, else_ct.constraint),
        )
        return self._check("Ifthenelse", expr, ct, (cond_d, then_d, else_d))

    def _infer_ifat(self, env: TypeEnv, expr: IfAt) -> Tuple[ConstrainedType, Derivation]:
        vec_ct, vec_d = self.infer(env, expr.vec)
        self._unify(vec_ct.type, TPar(BOOL), expr.vec)
        proc_ct, proc_d = self.infer(env, expr.proc)
        self._unify(proc_ct.type, INT, expr.proc)
        then_ct, then_d = self.infer(env, expr.then_branch)
        else_ct, else_d = self.infer(env, expr.else_branch)
        self._unify(then_ct.type, else_ct.type, expr)
        vec_ct = self._resolve(vec_ct)
        proc_ct = self._resolve(proc_ct)
        then_ct = self._resolve(then_ct)
        else_ct = self._resolve(else_ct)
        ct = ConstrainedType(
            then_ct.type,
            conj(
                vec_ct.constraint,
                proc_ct.constraint,
                then_ct.constraint,
                else_ct.constraint,
                imp(locality(then_ct.type), FALSE),
            ),
        )
        return self._check(
            "Ifat",
            expr,
            ct,
            (vec_d, proc_d, then_d, else_d),
            note="adds L(tau) => False: a synchronous conditional must return a global value",
        )

    def _infer_parvec(self, env: TypeEnv, expr: ParVec) -> Tuple[ConstrainedType, Derivation]:
        premises = []
        constraints = []
        content_ty: Type = self.uf.fresh("v")
        for item in expr.items:
            item_ct, item_d = self.infer(env, item)
            self._unify(item_ct.type, content_ty, item)
            premises.append(item_d)
            constraints.append(self._resolve(item_ct).constraint)
        content = self.uf.freeze_type(content_ty)
        ct = ConstrainedType(
            TPar(content), conj(locality(content), *constraints)
        )
        return self._check("ParVec", expr, ct, tuple(premises))


def _flush_counters(engine: UFInferencer) -> None:
    """Report the run's union-find counters (zero hot-path overhead: the
    tallies are plain ints on the store, flushed once per run)."""
    if perf.is_collecting():
        uf = engine.uf
        perf.increment("infer.uf.runs")
        perf.increment("infer.uf.binds", uf.binds)
        perf.increment("infer.uf.compressions", uf.compressions)
        perf.increment("infer.uf.freezes", uf.freezes)


# -- public entry points ---------------------------------------------------


def infer(expr: Expr, env: Optional[TypeEnv] = None, prune: bool = True) -> ConstrainedType:
    """Infer the constrained type of ``expr`` with the ``uf`` engine.

    Same contract (and bit-identical results, per the differential
    harness) as :func:`repro.core.infer.infer`."""
    engine = UFInferencer(prune=prune)
    with perf.timed("infer"), obs.span("infer", obs.INFERENCE_TRACK), deep_recursion():
        ct, _ = engine.infer(env or TypeEnv.empty(), expr)
        final = engine.uf.resolve(ct)
    if prune:
        environment = env or TypeEnv.empty()
        final = prune_constrained(final, engine.uf.env_free_vars(environment))
    perf.increment("infer.runs")
    _flush_counters(engine)
    return final


def infer_with_derivation(
    expr: Expr, env: Optional[TypeEnv] = None, prune: bool = False
) -> Tuple[ConstrainedType, Derivation]:
    """Like :func:`infer` but also returns the full derivation tree."""
    engine = UFInferencer(prune=prune)
    with deep_recursion():
        ct, derivation = engine.infer(env or TypeEnv.empty(), expr)
        final = engine.uf.resolve(ct)
        resolved = engine._resolve_derivation(derivation)
    _flush_counters(engine)
    return final, resolved


def infer_scheme(
    expr: Expr, env: Optional[TypeEnv] = None, prune: bool = True
) -> TypeScheme:
    """Infer and generalize over the (empty by default) environment."""
    environment = env or TypeEnv.empty()
    ct = infer(expr, environment, prune=prune)
    return generalize(ct, environment)


def typechecks(expr: Expr, env: Optional[TypeEnv] = None) -> bool:
    """True when ``expr`` is accepted by the type system."""
    try:
        infer(expr, env)
        return True
    except TypingError:
        return False
