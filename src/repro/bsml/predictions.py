"""Closed-form BSP cost predictions for the stdlib operations.

Each function returns the predicted execution time of the matching
:mod:`repro.bsml.stdlib` operation under given
:class:`~repro.bsp.params.BspParams`, following the paper's cost algebra.
``s`` is the word size of one component (formula (1)'s ``s``).

The local-work terms are expressed in the simulator's work units (one
unit per primitive component operation); the benchmarks fit no constants:
predictions and measurements must agree exactly on the ``H`` and ``S``
terms and on the stated ``W`` terms, because the simulator charges
exactly these amounts.
"""

from __future__ import annotations

import math

from repro.bsp.params import BspParams


def cost_mkpar(params: BspParams) -> float:
    """One local op per process, no communication."""
    return 1.0


def cost_apply(params: BspParams) -> float:
    return 1.0


def cost_put(params: BspParams, h: int) -> float:
    """``p`` message evaluations per process plus an h-relation+barrier."""
    return params.p + h * params.g + params.l


def cost_bcast_direct(params: BspParams, s: int) -> float:
    """Formula (1) of the paper: ``p + (p-1)*s*g + l``.

    Breakdown in the simulator's accounting: 2 ops for building the send
    functions (mkpar+apply), ``p`` message evaluations inside ``put``, and
    2 ops for extracting the delivered value (the trailing local phase) —
    the ``p`` term; then the ``h = (p-1)*s`` relation and one barrier.
    """
    p = params.p
    return (p + 4) + (p - 1) * s * params.g + params.l


def cost_bcast_two_phase(params: BspParams, s: int) -> float:
    """Scatter + total exchange: ``~ 2*(p-1)/p * s * g + 2*l``.

    With the root's sequence of total size ``s`` (framing ignored), each
    phase moves slices of ``~ s/p`` words in an ``(p-1)``-ary pattern.
    """
    p = params.p
    h_per_phase = (p - 1) * s / p
    return 2 * (p + 4) + 2 * h_per_phase * params.g + 2 * params.l


def cost_totex(params: BspParams, s: int) -> float:
    """Total exchange: ``h = (p-1)*s`` in one superstep."""
    p = params.p
    return (p + 4) + (p - 1) * s * params.g + params.l


def cost_shift(params: BspParams, s: int) -> float:
    """A 1-relation of size ``s`` (for p > 1): ``h = s``."""
    h = s if params.p > 1 else 0
    return (params.p + 4) + h * params.g + params.l


def cost_scan_log(params: BspParams, s: int) -> float:
    """Hillis-Steele scan: ``ceil(log2 p)`` supersteps of ``h = s``."""
    rounds = max(0, math.ceil(math.log2(params.p))) if params.p > 1 else 0
    per_round = (params.p + 5) + s * params.g + params.l
    return rounds * per_round


def cost_scan_direct(params: BspParams, s: int) -> float:
    """One-superstep scan via total exchange: ``h = (p-1)*s``.

    The totex plus one local mkpar+apply pass computing the prefixes.
    """
    return cost_totex(params, s) + 2


def crossover_predicted_scan(params_g: float, params_l: float, p: int, s: int) -> str:
    """Which scan wins under the full cost model: 'log' or 'direct'.

    Uses the exact closed forms (W, H and S terms included), so it agrees
    with the simulator on every grid point; the communication-only
    approximation ``log2(p)(s*g+l)`` vs ``(p-1)s*g+l`` mispredicts near
    the boundary where local work decides.
    """
    params = BspParams(p=p, g=params_g, l=params_l)
    return "log" if cost_scan_log(params, s) < cost_scan_direct(params, s) else "direct"
