"""Errors raised by the Python-level BSMLlib."""

from __future__ import annotations

from repro.lang.errors import ReproError


class BsmlError(ReproError):
    """Base class of Python-BSMLlib failures."""


class NestingViolation(BsmlError):
    """A parallel vector was nested inside another parallel vector.

    The paper's type system rejects this statically in (mini-)BSML.  In a
    dynamically-typed host like Python the check moves to runtime — this
    is the documented substitution for the repro: same invariant, enforced
    later.  (K. Hinsen's Python BSP library, cited by the paper, leaves
    the programmer responsible; we enforce it.)
    """


class VectorWidthError(BsmlError):
    """Mixing parallel vectors of different widths (machines)."""


class ForeignVectorError(BsmlError):
    """A parallel vector was used with a context that did not create it."""
