"""BSMLlib for Python: the BSP primitives, stdlib and algorithms.

Runtime counterpart of the paper's OCaml library, executing on the BSP
machine simulator with full cost accounting.  Nesting of parallel vectors
is rejected at runtime (the static guarantee lives in :mod:`repro.core`
for mini-BSML programs).
"""

from repro.bsml.algorithms import (
    block_distribute,
    collect,
    histogram,
    inner_product,
    matrix_multiply,
    matrix_vector,
    prefix_sums,
    sample_sort,
)
from repro.bsml.graphs import (
    UNREACHED,
    bfs,
    connected_components,
    distribute_graph,
)
from repro.bsml.errors import (
    BsmlError,
    ForeignVectorError,
    NestingViolation,
    VectorWidthError,
)
from repro.bsml.predictions import (
    cost_apply,
    cost_bcast_direct,
    cost_bcast_two_phase,
    cost_mkpar,
    cost_put,
    cost_scan_direct,
    cost_scan_log,
    cost_shift,
    cost_totex,
)
from repro.bsml.primitives import NO_MESSAGE, Bsml, ParVector
from repro.bsml.sizes import words_of
from repro.bsml.stdlib import (
    applyat,
    bcast_direct,
    bcast_two_phase,
    fold,
    gather_to,
    parfun,
    parfun2,
    proj,
    replicate,
    scan,
    scan_direct,
    scatter_from,
    shift,
    totex,
)

__all__ = [
    "Bsml",
    "BsmlError",
    "ForeignVectorError",
    "NO_MESSAGE",
    "NestingViolation",
    "ParVector",
    "VectorWidthError",
    "UNREACHED",
    "applyat",
    "bfs",
    "bcast_direct",
    "bcast_two_phase",
    "block_distribute",
    "collect",
    "connected_components",
    "cost_apply",
    "cost_bcast_direct",
    "cost_bcast_two_phase",
    "cost_mkpar",
    "cost_put",
    "cost_scan_direct",
    "cost_scan_log",
    "cost_shift",
    "cost_totex",
    "distribute_graph",
    "fold",
    "gather_to",
    "histogram",
    "inner_product",
    "matrix_multiply",
    "matrix_vector",
    "parfun",
    "parfun2",
    "prefix_sums",
    "proj",
    "replicate",
    "sample_sort",
    "scan",
    "scan_direct",
    "scatter_from",
    "shift",
    "totex",
    "words_of",
]
