"""Level-synchronous BSP graph algorithms on the Python BSMLlib.

Graphs are the textbook BSP application: each superstep expands one
frontier/level and exchanges boundary updates.  Vertices ``0..n-1`` are
block-distributed; edges live with their source vertex.

* :func:`bfs` — breadth-first levels from a root: one superstep per BFS
  level, ``h`` proportional to the cross-processor frontier edges;
* :func:`connected_components` — label propagation (every vertex adopts
  the minimum label in its neighbourhood until a fixpoint): one superstep
  per propagation round, ``O(diameter)`` rounds.

Both return replicated verdicts through the cost-accounted primitives
only, so their superstep counts show up on the machine like any other
algorithm (tested in ``tests/bsml/test_graphs.py``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.bsp.machine import NO_MESSAGE
from repro.bsml.primitives import Bsml, ParVector
from repro.bsml.stdlib import fold, parfun, parfun2

Edge = Tuple[int, int]

#: Level marker for unreached vertices.
UNREACHED = -1


def _owner_bounds(n: int, p: int) -> List[int]:
    return [(n * k) // p for k in range(p + 1)]


def _owner_of(bounds: Sequence[int], vertex: int) -> int:
    # Binary search is overkill for the p we simulate.
    for proc in range(len(bounds) - 1):
        if bounds[proc] <= vertex < bounds[proc + 1]:
            return proc
    raise ValueError(f"vertex {vertex} outside 0..{bounds[-1] - 1}")


def distribute_graph(
    ctx: Bsml, n: int, edges: Iterable[Edge], directed: bool = False
) -> ParVector:
    """Block-distribute adjacency lists: process i owns a contiguous
    vertex range and the out-edges of its vertices."""
    adjacency: List[List[int]] = [[] for _ in range(n)]
    for u, v in edges:
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u}, {v}) outside 0..{n - 1}")
        adjacency[u].append(v)
        if not directed:
            adjacency[v].append(u)
    bounds = _owner_bounds(n, ctx.p)
    return ctx.mkpar(
        lambda i: {
            "base": bounds[i],
            "adjacency": [sorted(set(adjacency[v])) for v in range(bounds[i], bounds[i + 1])],
        }
    )


def bfs(ctx: Bsml, n: int, graph: ParVector, root: int) -> ParVector:
    """Breadth-first levels from ``root``; one superstep per level.

    Returns the block-distributed level array (``UNREACHED`` = -1 for
    vertices not connected to the root).
    """
    if not 0 <= root < n:
        raise ValueError(f"root {root} outside 0..{n - 1}")
    p = ctx.p
    bounds = _owner_bounds(n, p)

    # state per process: levels of owned vertices + current local frontier
    def initial(block: Dict[str, Any]) -> Dict[str, Any]:
        base = block["base"]
        size = len(block["adjacency"])
        levels = [UNREACHED] * size
        frontier = []
        if base <= root < base + size:
            levels[root - base] = 0
            frontier = [root]
        return {"levels": levels, "frontier": frontier, **block}

    state = parfun(ctx, initial, graph)
    level = 0
    while True:
        # Termination: is any frontier non-empty?  (fold = 1 superstep)
        active = fold(
            ctx,
            lambda a, b: a or b,
            parfun(ctx, lambda s: bool(s["frontier"]), state),
        )
        if not active[0]:
            return parfun(ctx, lambda s: list(s["levels"]), state)
        level += 1

        def make_sender(s: Dict[str, Any]):
            outgoing: Dict[int, set] = {}
            for u in s["frontier"]:
                for v in s["adjacency"][u - s["base"]]:
                    outgoing.setdefault(_owner_of(bounds, v), set()).add(v)

            def sender(dst: int):
                batch = outgoing.get(dst)
                return sorted(batch) if batch else NO_MESSAGE

            return sender

        delivered = ctx.put(parfun(ctx, make_sender, state))

        current_level = level

        def advance(s_f: Any) -> Dict[str, Any]:
            s, f = s_f
            incoming = set()
            for src in range(p):
                batch = f(src)
                if batch:
                    incoming.update(batch)
            frontier = []
            for v in sorted(incoming):
                index = v - s["base"]
                if s["levels"][index] == UNREACHED:
                    s["levels"][index] = current_level
                    frontier.append(v)
            return {**s, "frontier": frontier}

        paired = parfun2(ctx, lambda s, f: (s, f), state, delivered)
        state = parfun(ctx, advance, paired)


def connected_components(ctx: Bsml, n: int, graph: ParVector) -> ParVector:
    """Connected components by min-label propagation.

    Every vertex starts labelled with itself; each round every vertex
    adopts the minimum label among itself and its neighbours, and only
    *changed* labels are sent to neighbouring owners.  Terminates when a
    round changes nothing (checked with a one-superstep fold), after
    ``O(diameter)`` rounds.  Returns block-distributed labels: two
    vertices are connected iff they end with the same label.
    """
    p = ctx.p
    bounds = _owner_bounds(n, p)

    def initial(block: Dict[str, Any]) -> Dict[str, Any]:
        base = block["base"]
        size = len(block["adjacency"])
        labels = list(range(base, base + size))
        return {"labels": labels, "changed": list(range(base, base + size)), **block}

    state = parfun(ctx, initial, graph)
    while True:
        any_changed = fold(
            ctx,
            lambda a, b: a or b,
            parfun(ctx, lambda s: bool(s["changed"]), state),
        )
        if not any_changed[0]:
            return parfun(ctx, lambda s: list(s["labels"]), state)

        def make_sender(s: Dict[str, Any]):
            outgoing: Dict[int, List[Tuple[int, int]]] = {}
            for u in s["changed"]:
                label = s["labels"][u - s["base"]]
                for v in s["adjacency"][u - s["base"]]:
                    outgoing.setdefault(_owner_of(bounds, v), []).append((v, label))

            def sender(dst: int):
                batch = outgoing.get(dst)
                return batch if batch else NO_MESSAGE

            return sender

        delivered = ctx.put(parfun(ctx, make_sender, state))

        def relabel(s_f: Any) -> Dict[str, Any]:
            s, f = s_f
            best: Dict[int, int] = {}
            for src in range(p):
                batch = f(src)
                if batch:
                    for vertex, label in batch:
                        index = vertex - s["base"]
                        if label < best.get(vertex, s["labels"][index]):
                            best[vertex] = label
            changed = []
            for vertex, label in best.items():
                index = vertex - s["base"]
                if label < s["labels"][index]:
                    s["labels"][index] = label
                    changed.append(vertex)
            return {**s, "changed": sorted(changed)}

        paired = parfun2(ctx, lambda s, f: (s, f), state, delivered)
        state = parfun(ctx, relabel, paired)
