"""Direct-mode BSP algorithms written against the Python BSMLlib.

These are the kind of programs the paper's introduction motivates:
direct-mode BSP algorithms with explicit process structure and
predictable cost.  Each returns its result as a :class:`ParVector` and
leaves its cost on the context's machine.

* :func:`prefix_sums` — distributed prefix over block-distributed data;
* :func:`sample_sort` — one-round parallel sorting by regular sampling
  (PSRS), the classic BSP sorting algorithm;
* :func:`matrix_vector` — dense matrix-vector product with row-block
  distribution and a broadcast of the input vector.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, List, Sequence

from repro.bsp.machine import NO_MESSAGE
from repro.bsml.primitives import Bsml, ParVector
from repro.bsml.stdlib import bcast_direct, fold, parfun, parfun2, scan, totex


def block_distribute(ctx: Bsml, data: Sequence[Any]) -> ParVector:
    """Deal ``data`` into p contiguous blocks, one per process."""
    n = len(data)
    p = ctx.p
    bounds = [(n * k) // p for k in range(p + 1)]
    return ctx.mkpar(lambda i: list(data[bounds[i] : bounds[i + 1]]))


def collect(vector: ParVector) -> List[Any]:
    """Concatenate all block components (observation helper)."""
    result: List[Any] = []
    for block in vector:
        result.extend(block)
    return result


def prefix_sums(ctx: Bsml, blocks: ParVector) -> ParVector:
    """Inclusive prefix sums of block-distributed numbers.

    Local prefix per block, a parallel ``scan`` of the block totals
    (log2 p supersteps of 1-word messages), then a local fix-up shift.
    """

    def local_prefix(block: List[float]) -> List[float]:
        sums = []
        total = 0
        for value in block:
            total += value
            sums.append(total)
        return sums

    local = parfun(ctx, local_prefix, blocks)
    totals = parfun(ctx, lambda sums: sums[-1] if sums else 0, local)
    scanned = scan(ctx, lambda a, b: a + b, totals)

    def fixup(pid_sums: Any, scanned_total: Any) -> List[float]:
        pid, sums = pid_sums
        offset = scanned_total - (sums[-1] if sums else 0)
        return [value + offset for value in sums]

    tagged = parfun2(ctx, lambda pid, sums: (pid, sums), ctx.mkpar(lambda i: i), local)
    return parfun2(ctx, fixup, tagged, scanned)


def sample_sort(ctx: Bsml, blocks: ParVector, oversampling: int = 8) -> ParVector:
    """Parallel sorting by regular sampling (PSRS) — one all-to-all round.

    1. sort locally and pick ``oversampling`` regular samples per process;
    2. total-exchange the samples; everyone deterministically picks the
       same ``p-1`` splitters;
    3. partition the local block by the splitters and send bucket ``k`` to
       process ``k`` (the all-to-all);
    4. merge the received buckets locally.

    Output: block-distributed, globally sorted.  BSP structure: two
    supersteps (sample exchange + bucket exchange); with balanced data the
    second superstep's ``h`` is ``O(n/p)``.
    """
    p = ctx.p

    def sort_and_sample(block: List[Any]) -> Any:
        ordered = sorted(block)
        if not ordered:
            return (ordered, [])
        step = max(1, len(ordered) // oversampling)
        samples = ordered[::step][:oversampling]
        return (ordered, samples)

    prepared = parfun(ctx, sort_and_sample, blocks)
    sample_lists = parfun(ctx, lambda pair: pair[1], prepared)
    all_samples = totex(ctx, sample_lists)

    def choose_splitters(sample_groups: List[List[Any]]) -> List[Any]:
        merged = sorted(x for group in sample_groups for x in group)
        if not merged or p == 1:
            return []
        return [merged[(len(merged) * k) // p] for k in range(1, p)]

    splitters = parfun(ctx, choose_splitters, all_samples)

    def make_sender(pair_splitters: Any) -> Callable[[int], Any]:
        (ordered, _samples), cuts = pair_splitters
        bounds = [0] + [bisect_left(ordered, cut) for cut in cuts] + [len(ordered)]
        # With no splitters (empty input or p == 1) everything goes to
        # bucket 0; pad so every destination has a (possibly empty) bucket.
        while len(bounds) < p + 1:
            bounds.append(len(ordered))

        def sender(dst: int) -> Any:
            bucket = ordered[bounds[dst] : bounds[dst + 1]]
            return bucket if bucket else NO_MESSAGE

        return sender

    paired = parfun2(ctx, lambda a, b: (a, b), prepared, splitters)
    senders = parfun(ctx, make_sender, paired)
    delivered = ctx.put(senders)

    def merge(f: Any) -> List[Any]:
        buckets = [f(j) for j in range(p)]
        merged: List[Any] = []
        for bucket in buckets:
            if bucket:
                merged.extend(bucket)
        merged.sort()
        return merged

    return parfun(ctx, merge, delivered)


def matrix_vector(ctx: Bsml, matrix: Sequence[Sequence[float]], vector: Sequence[float]) -> ParVector:
    """Dense ``y = A x`` with row-block distribution of ``A``.

    ``x`` starts on process 0 and is broadcast (formula (1) cost), then
    each process computes its block of rows locally: one superstep.
    """
    rows = block_distribute(ctx, [list(row) for row in matrix])
    x_at_root = ctx.mkpar(lambda i: list(vector) if i == 0 else None)
    x_everywhere = bcast_direct(ctx, 0, x_at_root)

    def multiply(block_x: Any) -> List[float]:
        block, x = block_x
        return [sum(a * b for a, b in zip(row, x)) for row in block]

    paired = parfun2(ctx, lambda block, x: (block, x), rows, x_everywhere)
    return parfun(ctx, multiply, paired)


def histogram(
    ctx: Bsml, blocks: ParVector, bins: int, low: float, high: float
) -> ParVector:
    """Histogram of block-distributed numbers; counts replicated everywhere.

    One local counting pass and one total-exchange reduction: a single
    superstep with ``h = O(bins * p)``.
    """
    if bins < 1:
        raise ValueError("need at least one bin")
    width = (high - low) / bins

    def count(block: List[float]) -> List[int]:
        counts = [0] * bins
        for value in block:
            if low <= value < high:
                counts[min(bins - 1, int((value - low) / width))] += 1
            elif value == high:
                counts[bins - 1] += 1
        return counts

    local = parfun(ctx, count, blocks)
    return fold(
        ctx, lambda a, b: [x + y for x, y in zip(a, b)], local
    )


def matrix_multiply(
    ctx: Bsml,
    left: Sequence[Sequence[float]],
    right: Sequence[Sequence[float]],
) -> ParVector:
    """Dense ``C = A B`` with row-block distribution of ``A``.

    ``B`` starts on process 0 and is broadcast (one superstep, formula (1)
    with ``s = n*k`` words); each process then computes its row block of
    ``C`` locally.  The classic memory/communication trade-off against
    grid (Fox/Cannon) algorithms, in the simplest BSP shape.
    """
    if left and right and len(left[0]) != len(right):
        raise ValueError(
            f"inner dimensions differ: {len(left[0])} vs {len(right)}"
        )
    rows = block_distribute(ctx, [list(row) for row in left])
    b_at_root = ctx.mkpar(
        lambda i: [list(row) for row in right] if i == 0 else None
    )
    b_everywhere = bcast_direct(ctx, 0, b_at_root)

    def multiply(block_b: Any) -> List[List[float]]:
        block, b = block_b
        if not b:
            return [[] for _ in block]
        columns = len(b[0])
        return [
            [
                sum(a_ik * b[k][j] for k, a_ik in enumerate(row))
                for j in range(columns)
            ]
            for row in block
        ]

    paired = parfun2(ctx, lambda block, b: (block, b), rows, b_everywhere)
    return parfun(ctx, multiply, paired)


def inner_product(ctx: Bsml, left: ParVector, right: ParVector) -> ParVector:
    """Dot product of two block-distributed vectors; replicated result."""
    partial = parfun2(
        ctx,
        lambda xs, ys: sum(a * b for a, b in zip(xs, ys)),
        left,
        right,
    )
    return fold(ctx, lambda a, b: a + b, partial)
