"""Word-size model for Python values transmitted by the BSMLlib.

The BSP cost of a communication phase depends on the number of *words*
moved; this module fixes a deterministic serialization model for the
Python values user code sends through ``put``:

* :data:`~repro.bsp.machine.NO_MESSAGE` is "no message" — it is never
  transmitted (size 0);
* ``None`` is an ordinary (unit-like) transmissible value of one word;
* booleans, integers and floats weigh one word;
* strings and bytes weigh one word per 8 characters/bytes (rounded up);
* lists, tuples, sets and dicts weigh the sum of their elements plus one
  word of framing;
* anything exposing ``nbytes`` (numpy arrays) weighs ``nbytes / 8``.

The absolute scale is a convention; the cost-shape experiments only rely
on sizes being additive and proportional to payload, which this is.
"""

from __future__ import annotations

import math
from typing import Any

from repro.bsp.machine import NO_MESSAGE

#: Bytes per machine word in the size model.
WORD_BYTES = 8


def words_of(value: Any) -> int:
    """The communication size of ``value`` in words.

    :data:`NO_MESSAGE` weighs 0 (nothing is transmitted); ``None`` is a
    real unit-like value and weighs one word like other scalars.
    """
    if value is NO_MESSAGE:
        return 0
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 1
    if isinstance(value, (str, bytes)):
        return max(1, math.ceil(len(value) / WORD_BYTES))
    if isinstance(value, (list, tuple, set, frozenset)):
        return 1 + sum(words_of(item) for item in value)
    if isinstance(value, dict):
        return 1 + sum(words_of(k) + words_of(v) for k, v in value.items())
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return max(1, math.ceil(int(nbytes) / WORD_BYTES))
    raise TypeError(
        f"no word-size model for {type(value).__name__}; "
        "send scalars, strings, containers or buffer objects"
    )
