"""Derived BSML operations (the BSMLlib "standard library") in Python.

Everything here is built from the four primitives of
:class:`~repro.bsml.primitives.Bsml` only — like the paper builds
``replicate`` and ``bcast`` in section 2.1 — so the BSP cost of each
operation is exactly the sum of its primitives' costs.  Closed-form cost
predictions live in :mod:`repro.bsml.predictions` and are checked against
the simulator by the benchmarks.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence

from repro.bsp.machine import NO_MESSAGE
from repro.bsml.primitives import Bsml, ParVector


def replicate(ctx: Bsml, value: Any) -> ParVector:
    """``replicate x``: the vector holding ``x`` on every process."""
    return ctx.mkpar(lambda _pid: value)


def parfun(ctx: Bsml, f: Callable[[Any], Any], vector: ParVector) -> ParVector:
    """Map ``f`` over a vector: ``apply (replicate f) v``."""
    return ctx.apply(replicate(ctx, f), vector)


def parfun2(
    ctx: Bsml, f: Callable[[Any, Any], Any], left: ParVector, right: ParVector
) -> ParVector:
    """Zip two vectors with a binary ``f``."""
    curried = replicate(ctx, lambda a: (lambda b: f(a, b)))
    return ctx.apply(ctx.apply(curried, left), right)


def applyat(
    ctx: Bsml,
    n: int,
    f_at: Callable[[Any], Any],
    f_elsewhere: Callable[[Any], Any],
    vector: ParVector,
) -> ParVector:
    """Apply ``f_at`` on process ``n`` and ``f_elsewhere`` everywhere else."""
    selector = ctx.mkpar(lambda i: f_at if i == n else f_elsewhere)
    return ctx.apply(selector, vector)


def bcast_direct(ctx: Bsml, root: int, vector: ParVector) -> ParVector:
    """Broadcast the value held at ``root`` to every process — the paper's
    ``bcast`` (section 2.1), one superstep with ``h = (p-1) * s``:
    cost ``p + (p-1)*s*g + l`` (formula (1))."""
    senders = ctx.apply(
        ctx.mkpar(
            lambda i: (lambda v: (lambda dst: v if i == root else NO_MESSAGE))
        ),
        vector,
    )
    delivered = ctx.put(senders)
    return parfun(ctx, lambda f: f(root), delivered)


def bcast_two_phase(ctx: Bsml, root: int, vector: ParVector) -> ParVector:
    """Two-phase broadcast of a *sequence*: scatter then total exchange.

    The classic BSP alternative to :func:`bcast_direct`: the root first
    scatters slices of size ``s/p`` (an ``h = s(p-1)/p`` relation), then a
    total exchange of slices (same arity) reassembles the sequence
    everywhere.  Cost ``~ 2*s*g*(p-1)/p + 2*l`` — beats the direct
    broadcast's ``(p-1)*s*g + l`` once ``s*g`` outweighs ``l``
    (ablation experiment E15)."""
    p = ctx.p

    def cuts(sequence: Sequence[Any]) -> List[Sequence[Any]]:
        n = len(sequence)
        bounds = [(n * k) // p for k in range(p + 1)]
        return [sequence[bounds[k] : bounds[k + 1]] for k in range(p)]

    # Phase 1: root scatters its slices.
    scatter_senders = ctx.apply(
        ctx.mkpar(
            lambda i: (
                lambda v: (
                    lambda dst: list(cuts(v)[dst]) if i == root else NO_MESSAGE
                )
            )
        ),
        vector,
    )
    slices = parfun(ctx, lambda f: f(root), ctx.put(scatter_senders))
    # Phase 2: total exchange of slices, then local reassembly.
    gathered = totex(ctx, slices)
    return parfun(
        ctx, lambda pieces: [x for piece in pieces for x in piece], gathered
    )


def totex(ctx: Bsml, vector: ParVector) -> ParVector:
    """Total exchange: every process ends with the list of all components."""
    senders = ctx.apply(ctx.mkpar(lambda i: (lambda v: (lambda dst: v))), vector)
    delivered = ctx.put(senders)
    return parfun(ctx, lambda f: [f(j) for j in range(ctx.p)], delivered)


def shift(ctx: Bsml, distance: int, vector: ParVector) -> ParVector:
    """Cyclic shift: process ``i`` receives the value of ``i - distance``."""
    p = ctx.p
    d = distance % p
    senders = ctx.apply(
        ctx.mkpar(
            lambda i: (
                lambda v: (lambda dst: v if dst == (i + d) % p else NO_MESSAGE)
            )
        ),
        vector,
    )
    delivered = ctx.put(senders)
    return ctx.apply(
        ctx.mkpar(lambda i: (lambda f: f((i - d) % p))), delivered
    )


def scan(ctx: Bsml, op: Callable[[Any, Any], Any], vector: ParVector) -> ParVector:
    """Inclusive prefix (Hillis-Steele): ``ceil(log2 p)`` supersteps, each
    an ``h = s`` relation — cost ``~ log2(p) * (s*g + l)``."""
    p = ctx.p
    current = vector
    stride = 1
    while stride < p:
        s = stride  # bind for the closures below
        senders = ctx.apply(
            ctx.mkpar(
                lambda i: (
                    lambda v: (lambda dst: v if dst == i + s else NO_MESSAGE)
                )
            ),
            current,
        )
        delivered = ctx.put(senders)
        combine = ctx.mkpar(
            lambda i: (
                lambda f: (
                    lambda v: op(f(i - s), v) if i >= s else v
                )
            )
        )
        current = ctx.apply(ctx.apply(combine, delivered), current)
        stride *= 2
    return current


def scan_direct(
    ctx: Bsml, op: Callable[[Any, Any], Any], vector: ParVector
) -> ParVector:
    """Prefix in ONE superstep via total exchange: ``h = (p-1)*s`` but a
    single ``l`` — the latency-friendly alternative to :func:`scan`
    (ablation experiment: crossover in ``l`` vs ``g``)."""
    gathered = totex(ctx, vector)

    def prefix_at(i: int) -> Callable[[List[Any]], Any]:
        def compute(values: List[Any]) -> Any:
            accumulator = values[0]
            for value in values[1 : i + 1]:
                accumulator = op(accumulator, value)
            return accumulator

        return compute

    return ctx.apply(ctx.mkpar(prefix_at), gathered)


def fold(ctx: Bsml, op: Callable[[Any, Any], Any], vector: ParVector) -> ParVector:
    """Reduce the whole vector with ``op``; result replicated everywhere."""
    gathered = totex(ctx, vector)

    def reduce_all(values: List[Any]) -> Any:
        accumulator = values[0]
        for value in values[1:]:
            accumulator = op(accumulator, value)
        return accumulator

    return parfun(ctx, reduce_all, gathered)


def proj(ctx: Bsml, vector: ParVector) -> Callable[[int], Any]:
    """BSMLlib's ``proj``: the inverse of ``mkpar``.

    Turns an ``'a par`` into an ``int -> 'a`` usable in *global* code —
    the only legitimate way to observe a vector from replicated context.
    Costs a total exchange (one superstep, ``h = (p-1)*s``), because every
    process must be able to answer every query identically.
    """
    gathered = totex(ctx, vector)
    values = gathered[0]  # replicated: identical on every process

    def lookup(pid: int) -> Any:
        if not 0 <= pid < ctx.p:
            raise IndexError(f"process index {pid} out of range (p = {ctx.p})")
        return values[pid]

    return lookup


def gather_to(ctx: Bsml, root: int, vector: ParVector) -> ParVector:
    """All components to ``root`` (a list there, None elsewhere)."""
    senders = ctx.apply(
        ctx.mkpar(
            lambda i: (lambda v: (lambda dst: v if dst == root else NO_MESSAGE))
        ),
        vector,
    )
    delivered = ctx.put(senders)
    return ctx.apply(
        ctx.mkpar(
            lambda i: (
                lambda f: [f(j) for j in range(ctx.p)] if i == root else None
            )
        ),
        delivered,
    )


def scatter_from(ctx: Bsml, root: int, vector: ParVector) -> ParVector:
    """Slice the sequence held at ``root`` across all processes."""
    p = ctx.p

    def cuts(sequence: Sequence[Any]) -> List[Sequence[Any]]:
        n = len(sequence)
        bounds = [(n * k) // p for k in range(p + 1)]
        return [sequence[bounds[k] : bounds[k + 1]] for k in range(p)]

    senders = ctx.apply(
        ctx.mkpar(
            lambda i: (
                lambda v: (
                    lambda dst: list(cuts(v)[dst]) if i == root else NO_MESSAGE
                )
            )
        ),
        vector,
    )
    delivered = ctx.put(senders)
    return parfun(ctx, lambda f: f(root), delivered)
