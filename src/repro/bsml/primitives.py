"""The BSMLlib primitives for Python, running on the BSP simulator.

Mirrors the OCaml library's interface (section 2 of the paper)::

    bsp_p : unit -> int                     ->  Bsml.p
    mkpar : (int -> 'a) -> 'a par           ->  Bsml.mkpar(f)
    apply : ('a -> 'b) par -> 'a par -> 'b par -> Bsml.apply(fv, xv)
    put   : (int -> 'a option) par -> ...   ->  Bsml.put(fv)
    at    : bool par -> int -> bool         ->  Bsml.at(bv, n)

with BSP cost accounting per operation and *runtime* rejection of nested
parallel vectors — the invariant the paper's type system guarantees
statically for (mini-)BSML, enforced dynamically in this dynamically
typed host (documented substitution; see DESIGN.md).

OCaml's ``'a option`` distinguishes ``None`` from ``Some None``-like
payloads for free; the Python wrapper uses the distinct
:data:`NO_MESSAGE` sentinel for "no message" (the mini-BSML ``nc ()``),
so ``None`` itself is an ordinary transmissible value.  Sender functions
passed to :meth:`Bsml.put` return :data:`NO_MESSAGE` for destinations
they do not message; the delivered function likewise returns
:data:`NO_MESSAGE` (which is falsy) for sources that sent nothing.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.bsp.cost import BspCost
from repro.bsp.machine import NO_MESSAGE, BspMachine
from repro.bsp.params import BspParams
from repro.bsml.errors import ForeignVectorError, NestingViolation, VectorWidthError
from repro.bsml.sizes import words_of


class ParVector:
    """An immutable p-wide parallel vector of per-process Python values.

    Create one through :meth:`Bsml.mkpar`; vectors remember their creating
    context and can only be consumed by it.
    """

    __slots__ = ("_values", "_context")

    def __init__(self, values: Tuple[Any, ...], context: "Bsml") -> None:
        for index, value in enumerate(values):
            if _contains_vector(value):
                raise NestingViolation(
                    f"component {index} of a parallel vector contains a "
                    "parallel vector — nesting is not allowed (the BSP cost "
                    "model would stop being compositional, paper section 2.1)"
                )
        self._values = tuple(values)
        self._context = context

    @property
    def width(self) -> int:
        return len(self._values)

    def to_list(self) -> List[Any]:
        """Project to a Python list (an observation outside the language —
        convenient in examples and tests, like BSMLlib's ``proj``)."""
        return list(self._values)

    def __iter__(self):
        return iter(self._values)

    def __getitem__(self, proc: int) -> Any:
        return self._values[proc]

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ParVector) and self._values == other._values

    def __hash__(self) -> int:
        return hash(self._values)

    def __repr__(self) -> str:
        inner = ", ".join(repr(value) for value in self._values)
        return f"<{inner}>"


def _contains_vector(value: Any) -> bool:
    if isinstance(value, ParVector):
        return True
    if isinstance(value, (list, tuple, set, frozenset)):
        return any(_contains_vector(item) for item in value)
    if isinstance(value, dict):
        return any(
            _contains_vector(k) or _contains_vector(v) for k, v in value.items()
        )
    return False


# -- per-process tasks for the execution backends ----------------------------
#
# Module-level so a ``functools.partial`` over them pickles whenever the
# user's function does (a module-level function crosses to a process-pool
# worker; a lambda or a closure over the context falls back to inline
# execution — see ``repro.bsp.executor.ProcessExecutor``).  Each returns
# ``(value, ops)``: one abstract op per component application, exactly
# what the primitives used to charge in-line.


def _call_task(fn: Callable[..., Any], *args: Any):
    return fn(*args), 1.0


def _sender_row_task(p: int, sender: Callable[[int], Any]):
    """Evaluate one sender's message function at every destination."""
    return [sender(i) for i in range(p)], float(p)


class Bsml:
    """A BSML programming context: the primitives bound to one machine.

    >>> ctx = Bsml(BspParams(p=4))
    >>> ctx.mkpar(lambda i: i * i).to_list()
    [0, 1, 4, 9]
    """

    def __init__(
        self,
        params: BspParams,
        machine: Optional[BspMachine] = None,
        backend: Optional[str] = None,
        faults=None,
        retry=None,
    ) -> None:
        """``faults``/``retry`` optionally arm a
        :class:`~repro.bsp.faults.FaultPlan` and
        :class:`~repro.bsp.faults.RetryPolicy` on the context's machine
        (whether freshly built or passed in) — every primitive then runs
        with transactional, retried supersteps."""
        if machine is None:
            from repro.bsp.executor import get_executor

            machine = BspMachine(params, executor=get_executor(backend or "seq"))
        elif backend is not None:
            machine.use_backend(backend)
        if faults is not None or retry is not None:
            machine.arm_faults(faults, retry)
        self.params = params
        self.machine = machine
        if self.machine.p != params.p:
            raise VectorWidthError(
                f"machine width {self.machine.p} differs from p={params.p}"
            )

    # -- introspection -------------------------------------------------------

    @property
    def p(self) -> int:
        """The static number of processes (the paper's ``bsp_p()``)."""
        return self.params.p

    def cost(self) -> BspCost:
        """The BSP cost accumulated so far on this context's machine."""
        return self.machine.cost()

    def total_time(self) -> float:
        return self.cost().total(self.params)

    def reset_cost(self) -> None:
        self.machine.reset()

    # -- the four primitives ---------------------------------------------------

    def mkpar(self, f: Callable[[int], Any]) -> ParVector:
        """``mkpar f`` holds ``f(i)`` on process ``i`` (asynchronous).

        Runs on the machine's execution backend (one task per process);
        the accounting — one op per component — is backend-independent.
        """
        tasks = [partial(_call_task, f, i) for i in range(self.p)]
        return ParVector(tuple(self.machine.run_superstep(tasks)), self)

    def apply(self, functions: ParVector, arguments: ParVector) -> ParVector:
        """``apply fv xv`` applies component-wise (asynchronous, no barrier)."""
        self._own(functions)
        self._own(arguments)
        tasks = [
            partial(_call_task, functions[i], arguments[i]) for i in range(self.p)
        ]
        return ParVector(tuple(self.machine.run_superstep(tasks)), self)

    def put(self, senders: ParVector) -> ParVector:
        """``put fv``: global communication, ends the superstep.

        ``senders[j]`` maps each destination pid to the value to send, or
        :data:`NO_MESSAGE` for no message (``nc ()``).  The result holds,
        on each process ``i``, a function from source pid to the delivered
        value (or :data:`NO_MESSAGE`) — exactly the paper's semantics,
        with the h-relation and the barrier accounted on the machine.

        A transmitted ``None`` is a real one-word value, distinct from
        "no message".  Remote payloads are routed through the machine's
        mailboxes, so the exchange validates that every delivered value
        is accounted in the traffic matrix; self-sends stay local (the
        h-relation ignores the diagonal) and are delivered directly.
        """
        self._own(senders)
        p = self.p
        tasks = [partial(_sender_row_task, p, senders[j]) for j in range(p)]
        outgoing: List[List[Any]] = self.machine.run_superstep(tasks)
        sent = [[words_of(outgoing[j][i]) for i in range(p)] for j in range(p)]
        payloads = {
            (j, i): outgoing[j][i]
            for j in range(p)
            for i in range(p)
            if j != i and outgoing[j][i] is not NO_MESSAGE
        }
        self.machine.exchange(sent, payloads=payloads, label="put")
        deliveries = tuple(
            _Delivered(tuple(outgoing[j][i] for j in range(p))) for i in range(p)
        )
        return ParVector(deliveries, self)

    def at(self, booleans: ParVector, proc: int) -> bool:
        """``at bv n``: the boolean held at process ``n``, made global.

        Expresses a communication (a broadcast of one word from ``n``) and
        a synchronization phase; to be used as ``if ctx.at(bv, n): ...``
        like the paper's ``if ... at ... then ... else`` construct.
        """
        self._own(booleans)
        if not 0 <= proc < self.p:
            raise ValueError(f"process index {proc} out of range (p = {self.p})")
        value = booleans[proc]
        if not isinstance(value, bool):
            raise TypeError("'at' needs a parallel vector of booleans")
        sent = [[0] * self.p for _ in range(self.p)]
        for destination in range(self.p):
            if destination != proc:
                sent[proc][destination] = 1
        self.machine.exchange(sent, label="if-at")
        return value

    # -- helpers ---------------------------------------------------------------

    def vector(self, values: Iterable[Any]) -> ParVector:
        """Build a vector directly from ``p`` Python values (test helper)."""
        items = tuple(values)
        if len(items) != self.p:
            raise VectorWidthError(f"expected {self.p} values, got {len(items)}")
        return ParVector(items, self)

    def _own(self, vector: ParVector) -> None:
        if vector._context is not self:
            raise ForeignVectorError(
                "this parallel vector belongs to a different Bsml context"
            )
        if vector.width != self.p:
            raise VectorWidthError(
                f"vector width {vector.width} differs from p={self.p}"
            )


class _Delivered:
    """The function of delivered messages ``put`` leaves on a process.

    Sources that sent nothing — and out-of-range source pids — yield
    :data:`NO_MESSAGE`, never ``None``, so a transmitted ``None`` payload
    is observable as such.
    """

    __slots__ = ("_messages",)

    def __init__(self, messages: Tuple[Any, ...]) -> None:
        self._messages = messages

    def __call__(self, source: int) -> Any:
        if 0 <= source < len(self._messages):
            return self._messages[source]
        return NO_MESSAGE

    def __repr__(self) -> str:
        return f"<delivered {list(self._messages)!r}>"
