"""Differential conformance harness for the execution backends.

The BSP cost model is deterministic by construction: the abstract op
counts, traffic matrices and superstep structure of a program depend only
on the program, never on scheduling.  So the executor layer
(:mod:`repro.bsp.executor`) admits a brutally effective correctness
check: run the *same* program under every backend and require

* **bit-identical values** (compared by ``repr``, which is structural
  for every runtime value and distinguishes ``True`` from ``1``), and
* **bit-identical cost decompositions** — the full
  :class:`~repro.bsp.cost.BspCost` superstep list, work tuples included
  (wall-clock ``measured`` timings are excluded from
  :class:`~repro.bsp.cost.SuperstepCost` equality precisely so this
  comparison stays exact).

Any divergence is a backend bug, not noise.  This is the "check the
parallel implementation against the sequential specification" discipline
of *Verified Scalable Parallel Computing with Why3* (Proust & Loulergue,
2023), done empirically: :class:`SequentialExecutor` is the reference
semantics and the concurrent backends must be observationally equal.

Programs can be given three ways:

* source text (parsed, optionally prelude-linked, evaluated costed);
* a mini-BSML AST (:class:`~repro.lang.ast.Expr`);
* a Python BSMLlib program — any callable taking a
  :class:`~repro.bsml.primitives.Bsml` context and returning a value.

A program that *raises* still conforms if every backend raises the same
error (same type, same message) — the backends must agree on failure
too.

**Chaos conformance** (:func:`run_chaos`, :func:`assert_chaos_conformance`)
extends the discipline to the fault layer (:mod:`repro.bsp.faults`): the
same program runs once cleanly (the sequential reference) and then on
every backend under a seeded :class:`~repro.bsp.faults.FaultPlan` with a
:class:`~repro.bsp.faults.RetryPolicy`.  Because the plan's decisions are
drawn at machine level in program order, all backends see the *same*
fault schedule, so the verdict is sharp: a **survivable** plan (the run
completes) must be observationally invisible — values and ``BspCost``
bit-identical to the clean reference — and an **unsurvivable** plan must
fail atomically on every backend with the same
:class:`~repro.bsp.faults.SuperstepFault` and the machine rolled back to
its pre-superstep state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.bsp.cost import BspCost
from repro.bsp.executor import BACKENDS, get_executor
from repro.bsp.faults import FaultPlan, RetryPolicy, SuperstepFault
from repro.bsp.machine import BspMachine
from repro.bsp.params import BspParams
from repro.bsml.primitives import Bsml, ParVector
from repro.lang.ast import Expr
from repro.lang.parser import parse_program
from repro.semantics.costed import run_costed

#: Anything the harness can execute.
Program = Union[str, Expr, Callable[[Bsml], Any]]


@dataclass
class BackendRun:
    """One backend's observation of a program: value, cost, or error."""

    backend: str
    value_repr: Optional[str] = None
    value: Any = None
    cost: Optional[BspCost] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class DifferentialReport:
    """All backends' observations of one program, with the verdict."""

    description: str
    runs: List[BackendRun] = field(default_factory=list)

    @property
    def reference(self) -> BackendRun:
        """The first backend run — by convention the sequential one."""
        return self.runs[0]

    @property
    def conforms(self) -> bool:
        """True when every backend observed exactly the same thing."""
        reference = self.reference
        for run in self.runs[1:]:
            if run.error != reference.error:
                return False
            if reference.ok and (
                run.value_repr != reference.value_repr
                or run.cost != reference.cost
            ):
                return False
        return True

    @property
    def succeeded(self) -> bool:
        """True when the program ran without error on every backend."""
        return all(run.ok for run in self.runs)

    def explain(self) -> str:
        """A human-readable account, detailed enough to debug from."""
        lines = [
            f"differential run of {self.description}:",
            f"  verdict: {'CONFORMS' if self.conforms else 'DIVERGES'}",
        ]
        reference = self.reference
        for run in self.runs:
            lines.append(f"  [{run.backend}]")
            if run.error is not None:
                lines.append(f"    error: {run.error}")
                continue
            lines.append(f"    value: {run.value_repr}")
            if run.cost is not None:
                w, h, s = run.cost.W, run.cost.H, run.cost.S
                lines.append(f"    cost:  W={w} H={h} S={s}")
                if run is not reference and run.cost != reference.cost:
                    lines.append("    cost differs from reference:")
                    for line in run.cost.render().splitlines():
                        lines.append(f"      {line}")
        if not self.conforms and reference.ok and reference.cost is not None:
            lines.append("  reference cost:")
            for line in reference.cost.render().splitlines():
                lines.append(f"    {line}")
        return "\n".join(lines)


def _describe(program: Program) -> str:
    if isinstance(program, str):
        head = " ".join(program.split())
        return repr(head if len(head) <= 60 else head[:57] + "...")
    if isinstance(program, Expr):
        return f"<AST {type(program).__name__}>"
    return f"<BSMLlib {getattr(program, '__name__', 'program')}>"


def _observe_error(error: Exception) -> str:
    return f"{type(error).__name__}: {error}"


def run_differential(
    program: Program,
    params: Optional[BspParams] = None,
    backends: Sequence[str] = BACKENDS,
    use_prelude: Optional[bool] = None,
) -> DifferentialReport:
    """Run ``program`` under every backend and collect the observations.

    ``use_prelude`` defaults to True for source text (so the shipped
    ``programs/*.bsml`` and the curated corpora just work) and False for
    a bare AST (generated programs are closed).  The first backend in
    ``backends`` is the reference the others are compared against.
    """
    params = params or BspParams(p=4)
    report = DifferentialReport(_describe(program))
    if isinstance(program, (str, Expr)):
        expr = parse_program(program) if isinstance(program, str) else program
        prelude = use_prelude if use_prelude is not None else isinstance(program, str)
        for backend in backends:
            try:
                result = run_costed(expr, params, use_prelude=prelude, backend=backend)
            except Exception as error:
                report.runs.append(BackendRun(backend, error=_observe_error(error)))
                continue
            report.runs.append(
                BackendRun(
                    backend,
                    value_repr=repr(result.value),
                    value=result.value,
                    cost=result.cost,
                )
            )
        return report
    for backend in backends:
        machine = BspMachine(params, executor=get_executor(backend))
        context = Bsml(params, machine)
        try:
            value = program(context)
        except Exception as error:
            report.runs.append(BackendRun(backend, error=_observe_error(error)))
            continue
        shown = value.to_list() if isinstance(value, ParVector) else value
        report.runs.append(
            BackendRun(
                backend,
                value_repr=repr(shown),
                value=shown,
                cost=machine.cost(),
            )
        )
    return report


def assert_conformance(
    program: Program,
    params: Optional[BspParams] = None,
    backends: Sequence[str] = BACKENDS,
    use_prelude: Optional[bool] = None,
    require_success: bool = False,
) -> DifferentialReport:
    """Run differentially and raise :class:`AssertionError` on divergence.

    With ``require_success`` the program must also evaluate cleanly on
    every backend (an agreed-upon error is otherwise conforming).
    Returns the report so callers can make further assertions.
    """
    report = run_differential(program, params, backends, use_prelude)
    if not report.conforms:
        raise AssertionError(report.explain())
    if require_success and not report.succeeded:
        raise AssertionError(report.explain())
    return report


# -- chaos conformance --------------------------------------------------------

#: Default per-site fault rates for the chaos sweep: high enough that
#: most plans inject *something*, low enough that the default retry
#: policy survives the large majority of them.
DEFAULT_CHAOS_RATES: Dict[str, float] = {
    "crash": 0.08,
    "timeout": 0.05,
    "drop": 0.06,
    "dup": 0.03,
    "corrupt": 0.03,
    "pool": 0.01,
}

#: Default retry policy for chaos runs (no real sleeping in test sweeps).
DEFAULT_CHAOS_POLICY = RetryPolicy(max_attempts=4, base_delay=0.0)


@dataclass
class ChaosRun:
    """One backend's observation of a program under an armed fault plan."""

    backend: str
    value_repr: Optional[str] = None
    cost: Optional[BspCost] = None
    error: Optional[str] = None
    faulted: bool = False  # the run ended in a SuperstepFault
    state_restored: Optional[bool] = None  # SuperstepFault's atomicity bit

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class ChaosReport:
    """A clean reference plus every backend's run under the same plan."""

    description: str
    seed: int
    reference: BackendRun
    runs: List[ChaosRun] = field(default_factory=list)

    @property
    def survivable(self) -> bool:
        """True when every faulted backend run completed."""
        return all(run.ok for run in self.runs)

    @property
    def conforms(self) -> bool:
        """The chaos verdict.

        * Every run completed: each must match the clean reference
          bit-for-bit (value ``repr`` and full ``BspCost``).
        * Some run raised :class:`SuperstepFault`: *every* run must have
          raised the same one (same message — the plan is deterministic,
          so the failing phase and outcome table agree), each atomically.
        * The reference itself failed (a program bug): every run must
          fail the same way.
        """
        reference = self.reference
        if reference.error is not None:
            return all(run.error == reference.error for run in self.runs)
        if any(run.faulted for run in self.runs):
            first = self.runs[0]
            return all(
                run.faulted
                and run.state_restored
                and run.error == first.error
                for run in self.runs
            )
        return all(
            run.ok
            and run.value_repr == reference.value_repr
            and run.cost == reference.cost
            for run in self.runs
        )

    def explain(self) -> str:
        lines = [
            f"chaos run of {self.description} (plan seed {self.seed}):",
            f"  verdict: {'CONFORMS' if self.conforms else 'DIVERGES'} "
            f"({'survivable' if self.survivable else 'unsurvivable'})",
            f"  [clean reference] value: {self.reference.value_repr}"
            if self.reference.ok
            else f"  [clean reference] error: {self.reference.error}",
        ]
        for run in self.runs:
            lines.append(f"  [{run.backend}]")
            if run.error is not None:
                kind = "superstep fault" if run.faulted else "error"
                lines.append(f"    {kind}: {run.error}")
                if run.faulted:
                    lines.append(f"    state restored: {run.state_restored}")
                continue
            lines.append(f"    value: {run.value_repr}")
            if run.cost is not None:
                lines.append(
                    f"    cost:  W={run.cost.W} H={run.cost.H} S={run.cost.S}"
                    + (
                        ""
                        if run.cost == self.reference.cost
                        else "  (differs from clean reference)"
                    )
                )
        return "\n".join(lines)


def _chaos_observe(
    program: Program,
    params: BspParams,
    backend: str,
    plan: Optional[FaultPlan],
    policy: Optional[RetryPolicy],
    use_prelude: Optional[bool],
):
    """Run once; return ``(value_repr, cost, error, faulted, restored)``."""
    if isinstance(program, (str, Expr)):
        expr = parse_program(program) if isinstance(program, str) else program
        prelude = use_prelude if use_prelude is not None else isinstance(program, str)
        try:
            result = run_costed(
                expr,
                params,
                use_prelude=prelude,
                backend=backend,
                faults=plan,
                retry=policy,
            )
        except SuperstepFault as fault:
            return None, None, _observe_error(fault), True, fault.state_restored
        except Exception as error:
            return None, None, _observe_error(error), False, None
        return repr(result.value), result.cost, None, False, None
    machine = BspMachine(
        params, executor=get_executor(backend), faults=plan, retry=policy
    )
    context = Bsml(params, machine)
    try:
        value = program(context)
    except SuperstepFault as fault:
        # The machine promises atomicity; double-check that whatever
        # committed before the failed phase still decomposes cleanly.
        restored = fault.state_restored and machine.cost().check_decomposition(
            params
        )
        return None, None, _observe_error(fault), True, restored
    except Exception as error:
        return None, None, _observe_error(error), False, None
    shown = value.to_list() if isinstance(value, ParVector) else value
    return repr(shown), machine.cost(), None, False, None


def run_chaos(
    program: Program,
    params: Optional[BspParams] = None,
    seed: int = 0,
    rates: Optional[Dict[str, float]] = None,
    policy: Optional[RetryPolicy] = DEFAULT_CHAOS_POLICY,
    backends: Sequence[str] = BACKENDS,
    use_prelude: Optional[bool] = None,
) -> ChaosReport:
    """Run ``program`` cleanly once, then under the seeded fault plan on
    every backend, and collect the observations.

    Each backend gets a **fresh plan from the same seed and rates**, so
    all of them replay the identical fault schedule; the clean sequential
    run is the reference the faulted runs must be indistinguishable from.
    """
    params = params or BspParams(p=4)
    rates = dict(DEFAULT_CHAOS_RATES if rates is None else rates)
    value_repr, cost, error, _, _ = _chaos_observe(
        program, params, "seq", None, None, use_prelude
    )
    reference = BackendRun(
        "seq (clean)", value_repr=value_repr, cost=cost, error=error
    )
    report = ChaosReport(_describe(program), seed, reference)
    for backend in backends:
        plan = FaultPlan(seed=seed, **rates)
        value_repr, cost, error, faulted, restored = _chaos_observe(
            program, params, backend, plan, policy, use_prelude
        )
        report.runs.append(
            ChaosRun(
                backend,
                value_repr=value_repr,
                cost=cost,
                error=error,
                faulted=faulted,
                state_restored=restored,
            )
        )
    return report


def assert_chaos_conformance(
    program: Program,
    params: Optional[BspParams] = None,
    seed: int = 0,
    rates: Optional[Dict[str, float]] = None,
    policy: Optional[RetryPolicy] = DEFAULT_CHAOS_POLICY,
    backends: Sequence[str] = BACKENDS,
    use_prelude: Optional[bool] = None,
) -> ChaosReport:
    """Run :func:`run_chaos` and raise :class:`AssertionError` unless the
    chaos verdict holds.  Returns the report for further assertions."""
    report = run_chaos(program, params, seed, rates, policy, backends, use_prelude)
    if not report.conforms:
        raise AssertionError(report.explain())
    return report


def conformance_corpus() -> List[Tuple[str, str]]:
    """The standard corpus the sweep runs: every curated well-typed
    program plus every shipped ``programs/*.bsml`` file, as
    ``(name, source)`` pairs."""
    from pathlib import Path

    from repro.testing.generators import CORPUS_GLOBAL, CORPUS_IMPERATIVE, CORPUS_LOCAL

    corpus: List[Tuple[str, str]] = []
    for group, sources in (
        ("local", CORPUS_LOCAL),
        ("global", CORPUS_GLOBAL),
        ("imperative", CORPUS_IMPERATIVE),
    ):
        for index, source in enumerate(sources):
            corpus.append((f"{group}[{index}]", source))
    programs_dir = Path(__file__).resolve().parents[3] / "programs"
    for path in sorted(programs_dir.glob("*.bsml")):
        corpus.append((path.name, path.read_text(encoding="utf-8")))
    return corpus
