"""Differential conformance harness for the execution backends.

The BSP cost model is deterministic by construction: the abstract op
counts, traffic matrices and superstep structure of a program depend only
on the program, never on scheduling.  So the executor layer
(:mod:`repro.bsp.executor`) admits a brutally effective correctness
check: run the *same* program under every backend and require

* **bit-identical values** (compared by ``repr``, which is structural
  for every runtime value and distinguishes ``True`` from ``1``), and
* **bit-identical cost decompositions** — the full
  :class:`~repro.bsp.cost.BspCost` superstep list, work tuples included
  (wall-clock ``measured`` timings are excluded from
  :class:`~repro.bsp.cost.SuperstepCost` equality precisely so this
  comparison stays exact).

Any divergence is a backend bug, not noise.  This is the "check the
parallel implementation against the sequential specification" discipline
of *Verified Scalable Parallel Computing with Why3* (Proust & Loulergue,
2023), done empirically: :class:`SequentialExecutor` is the reference
semantics and the concurrent backends must be observationally equal.

Programs can be given three ways:

* source text (parsed, optionally prelude-linked, evaluated costed);
* a mini-BSML AST (:class:`~repro.lang.ast.Expr`);
* a Python BSMLlib program — any callable taking a
  :class:`~repro.bsml.primitives.Bsml` context and returning a value.

A program that *raises* still conforms if every backend raises the same
error (same type, same message) — the backends must agree on failure
too.

**Chaos conformance** (:func:`run_chaos`, :func:`assert_chaos_conformance`)
extends the discipline to the fault layer (:mod:`repro.bsp.faults`): the
same program runs once cleanly (the sequential reference) and then on
every backend under a seeded :class:`~repro.bsp.faults.FaultPlan` with a
:class:`~repro.bsp.faults.RetryPolicy`.  Because the plan's decisions are
drawn at machine level in program order, all backends see the *same*
fault schedule, so the verdict is sharp: a **survivable** plan (the run
completes) must be observationally invisible — values and ``BspCost``
bit-identical to the clean reference — and an **unsurvivable** plan must
fail atomically on every backend with the same
:class:`~repro.bsp.faults.SuperstepFault` and the machine rolled back to
its pre-superstep state.

**Engine conformance** (:func:`run_engines`,
:func:`assert_engine_conformance`, :func:`assert_engine_chaos_conformance`)
turns the same discipline on the evaluation engines: the tree-walking
big-step evaluator (the reference semantics) and the closure-compiling
engine (:mod:`repro.semantics.compiled`) must observe the same value,
the same full :class:`~repro.bsp.cost.BspCost` decomposition and the
same abstract trace signature — on every backend, and under armed chaos
plans.  Values are compared by *fingerprint* (the pretty-printed
reification) rather than raw ``repr``, because the engines represent
closures differently (``VClosure`` vs ``VCompiledClosure``) while
denoting the same function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.bsp.cost import BspCost
from repro.bsp.executor import BACKENDS, get_executor
from repro.bsp.faults import FaultPlan, RetryPolicy, SuperstepFault
from repro.bsp.machine import BspMachine
from repro.bsp.params import BspParams
from repro.bsml.primitives import Bsml, ParVector
from repro.lang.ast import Expr
from repro.lang.limits import deep_recursion
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty
from repro.semantics.compiled import ENGINES
from repro.semantics.costed import run_costed
from repro.semantics.errors import EvalError
from repro.semantics.values import VClosure, VCompiledClosure, reify

#: Anything the harness can execute.
Program = Union[str, Expr, Callable[[Bsml], Any]]


@dataclass
class BackendRun:
    """One backend's observation of a program: value, cost, or error.

    ``trace_signature`` is populated only when the harness ran with
    ``check_trace``: the deterministic projection of the run's structured
    trace (:meth:`repro.obs.Trace.abstract_signature` — superstep
    structure, h-relations, abstract op counts, fault outcomes; never
    timestamps or backend identity)."""

    backend: str
    value_repr: Optional[str] = None
    value: Any = None
    cost: Optional[BspCost] = None
    error: Optional[str] = None
    trace_signature: Optional[Tuple] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class DifferentialReport:
    """All backends' observations of one program, with the verdict."""

    description: str
    runs: List[BackendRun] = field(default_factory=list)

    @property
    def reference(self) -> BackendRun:
        """The first backend run — by convention the sequential one."""
        return self.runs[0]

    @property
    def conforms(self) -> bool:
        """True when every backend observed exactly the same thing.

        When runs carry trace signatures (``check_trace``) those are part
        of "the same thing": the abstract trace — superstep structure,
        h-relations, op counts, fault outcomes — must be bit-identical,
        the tracing analogue of the exact ``BspCost`` comparison.  Error
        runs are exempt (a failing phase cuts the trace short at a
        backend-dependent record)."""
        reference = self.reference
        for run in self.runs[1:]:
            if run.error != reference.error:
                return False
            if reference.ok and (
                run.value_repr != reference.value_repr
                or run.cost != reference.cost
            ):
                return False
            if (
                reference.ok
                and reference.trace_signature is not None
                and run.trace_signature is not None
                and run.trace_signature != reference.trace_signature
            ):
                return False
        return True

    @property
    def succeeded(self) -> bool:
        """True when the program ran without error on every backend."""
        return all(run.ok for run in self.runs)

    def explain(self) -> str:
        """A human-readable account, detailed enough to debug from."""
        lines = [
            f"differential run of {self.description}:",
            f"  verdict: {'CONFORMS' if self.conforms else 'DIVERGES'}",
        ]
        reference = self.reference
        for run in self.runs:
            lines.append(f"  [{run.backend}]")
            if run.error is not None:
                lines.append(f"    error: {run.error}")
                continue
            lines.append(f"    value: {run.value_repr}")
            if run.cost is not None:
                w, h, s = run.cost.W, run.cost.H, run.cost.S
                lines.append(f"    cost:  W={w} H={h} S={s}")
                if run is not reference and run.cost != reference.cost:
                    lines.append("    cost differs from reference:")
                    for line in run.cost.render().splitlines():
                        lines.append(f"      {line}")
            if (
                run is not reference
                and run.trace_signature is not None
                and reference.trace_signature is not None
                and run.trace_signature != reference.trace_signature
            ):
                lines.append(
                    "    "
                    + _first_trace_divergence(
                        reference.trace_signature, run.trace_signature
                    )
                )
        if not self.conforms and reference.ok and reference.cost is not None:
            lines.append("  reference cost:")
            for line in reference.cost.render().splitlines():
                lines.append(f"    {line}")
        return "\n".join(lines)


def _first_trace_divergence(reference: Tuple, other: Tuple) -> str:
    """Pinpoint where two abstract trace signatures first disagree."""
    for index, (expected, got) in enumerate(zip(reference, other)):
        if expected != got:
            return (
                f"trace diverges at record {index}: "
                f"expected {expected!r}, got {got!r}"
            )
    return (
        f"trace diverges in length: reference has {len(reference)} "
        f"abstract records, this run has {len(other)}"
    )


def _describe(program: Program) -> str:
    if isinstance(program, str):
        head = " ".join(program.split())
        return repr(head if len(head) <= 60 else head[:57] + "...")
    if isinstance(program, Expr):
        return f"<AST {type(program).__name__}>"
    return f"<BSMLlib {getattr(program, '__name__', 'program')}>"


def _observe_error(error: Exception) -> str:
    return f"{type(error).__name__}: {error}"


def _value_fingerprint(value: Any) -> str:
    """An engine-independent observation of a runtime value.

    Ground values fingerprint as their pretty-printed reification, which
    is structural and identical across engines.  Function values reify to
    the same source term whichever engine built them (the compiled
    closure's capture list is exactly the free variables a tree closure
    would substitute).  Values that cannot reify into a finite term —
    recursive closures, mutable references — normalize to a kind tag, the
    same tag for both engines' closure representations.
    """
    try:
        with deep_recursion():
            return pretty(reify(value))
    except (EvalError, TypeError, RecursionError):
        if isinstance(value, (VClosure, VCompiledClosure)):
            return "<unreifiable closure>"
        return f"<unreifiable {type(value).__name__}>"


def run_differential(
    program: Program,
    params: Optional[BspParams] = None,
    backends: Sequence[str] = BACKENDS,
    use_prelude: Optional[bool] = None,
    check_trace: bool = False,
    engine: str = "tree",
) -> DifferentialReport:
    """Run ``program`` under every backend and collect the observations.

    ``use_prelude`` defaults to True for source text (so the shipped
    ``programs/*.bsml`` and the curated corpora just work) and False for
    a bare AST (generated programs are closed).  The first backend in
    ``backends`` is the reference the others are compared against.

    With ``check_trace`` every run is additionally collected under a
    structured trace (:mod:`repro.obs`) and its
    :meth:`~repro.obs.Trace.abstract_signature` stored on the
    :class:`BackendRun`; :attr:`DifferentialReport.conforms` then also
    demands those signatures be bit-identical.
    """
    params = params or BspParams(p=4)
    report = DifferentialReport(_describe(program))
    if isinstance(program, (str, Expr)):
        expr = parse_program(program) if isinstance(program, str) else program
        prelude = use_prelude if use_prelude is not None else isinstance(program, str)
        for backend in backends:
            signature = None
            try:
                if check_trace:
                    with obs.trace() as collected:
                        result = run_costed(
                            expr,
                            params,
                            use_prelude=prelude,
                            backend=backend,
                            engine=engine,
                        )
                    signature = collected.abstract_signature()
                else:
                    result = run_costed(
                        expr,
                        params,
                        use_prelude=prelude,
                        backend=backend,
                        engine=engine,
                    )
            except Exception as error:
                report.runs.append(BackendRun(backend, error=_observe_error(error)))
                continue
            report.runs.append(
                BackendRun(
                    backend,
                    value_repr=repr(result.value),
                    value=result.value,
                    cost=result.cost,
                    trace_signature=signature,
                )
            )
        return report
    for backend in backends:
        machine = BspMachine(params, executor=get_executor(backend))
        context = Bsml(params, machine)
        signature = None
        try:
            if check_trace:
                with obs.trace() as collected:
                    value = program(context)
                signature = collected.abstract_signature()
            else:
                value = program(context)
        except Exception as error:
            report.runs.append(BackendRun(backend, error=_observe_error(error)))
            continue
        shown = value.to_list() if isinstance(value, ParVector) else value
        report.runs.append(
            BackendRun(
                backend,
                value_repr=repr(shown),
                value=shown,
                cost=machine.cost(),
                trace_signature=signature,
            )
        )
    return report


def assert_conformance(
    program: Program,
    params: Optional[BspParams] = None,
    backends: Sequence[str] = BACKENDS,
    use_prelude: Optional[bool] = None,
    require_success: bool = False,
    check_trace: bool = False,
    engine: str = "tree",
) -> DifferentialReport:
    """Run differentially and raise :class:`AssertionError` on divergence.

    With ``require_success`` the program must also evaluate cleanly on
    every backend (an agreed-upon error is otherwise conforming); with
    ``check_trace`` the abstract trace signatures must also agree.
    Returns the report so callers can make further assertions.
    """
    report = run_differential(
        program, params, backends, use_prelude, check_trace, engine
    )
    if not report.conforms:
        raise AssertionError(report.explain())
    if require_success and not report.succeeded:
        raise AssertionError(report.explain())
    return report


# -- engine conformance -------------------------------------------------------


def run_engines(
    program: Union[str, Expr],
    params: Optional[BspParams] = None,
    engines: Sequence[str] = ENGINES,
    backends: Sequence[str] = BACKENDS,
    use_prelude: Optional[bool] = None,
    check_trace: bool = False,
) -> DifferentialReport:
    """Run ``program`` under every ``engine × backend`` combination.

    The report's runs are named ``engine/backend``; the first combination
    (by convention ``tree/seq`` — the reference semantics on the
    reference backend) is what every other combination is compared
    against.  Values are observed by :func:`_value_fingerprint`, so
    function results compare by their reified source term rather than by
    engine-specific closure ``repr``.  With ``check_trace`` the abstract
    trace signatures must agree across every combination too.

    Only mini-BSML programs (source text or AST) make sense here —
    BSMLlib callables never touch the evaluator, so there is nothing for
    an engine sweep to vary.
    """
    if not isinstance(program, (str, Expr)):
        raise TypeError(
            "check_engines needs a mini-BSML program (source text or AST); "
            "a BSMLlib callable never runs through an evaluation engine"
        )
    params = params or BspParams(p=4)
    expr = parse_program(program) if isinstance(program, str) else program
    prelude = use_prelude if use_prelude is not None else isinstance(program, str)
    report = DifferentialReport(_describe(program))
    for engine in engines:
        for backend in backends:
            name = f"{engine}/{backend}"
            signature = None
            try:
                if check_trace:
                    with obs.trace() as collected:
                        result = run_costed(
                            expr,
                            params,
                            use_prelude=prelude,
                            backend=backend,
                            engine=engine,
                        )
                    signature = collected.abstract_signature()
                else:
                    result = run_costed(
                        expr,
                        params,
                        use_prelude=prelude,
                        backend=backend,
                        engine=engine,
                    )
            except Exception as error:
                report.runs.append(BackendRun(name, error=_observe_error(error)))
                continue
            report.runs.append(
                BackendRun(
                    name,
                    value_repr=_value_fingerprint(result.value),
                    value=result.value,
                    cost=result.cost,
                    trace_signature=signature,
                )
            )
    return report


def assert_engine_conformance(
    program: Union[str, Expr],
    params: Optional[BspParams] = None,
    engines: Sequence[str] = ENGINES,
    backends: Sequence[str] = BACKENDS,
    use_prelude: Optional[bool] = None,
    require_success: bool = False,
    check_trace: bool = False,
) -> DifferentialReport:
    """Run the engine × backend sweep and raise on any divergence."""
    report = run_engines(
        program, params, engines, backends, use_prelude, check_trace
    )
    if not report.conforms:
        raise AssertionError(report.explain())
    if require_success and not report.succeeded:
        raise AssertionError(report.explain())
    return report


# -- infer-engine conformance -------------------------------------------------


@dataclass
class InferRun:
    """One inference engine's observation of a program.

    ``conclusion`` is the pruned constrained type (the :func:`repro.core.infer`
    contract); ``full`` and ``derivation`` come from the unpruned
    ``infer_with_derivation`` pass, so the sweep checks the exact
    constraint trees the paper's rules accumulate, not just the pruned
    summary."""

    engine: str
    conclusion: Any = None
    full: Any = None
    derivation: Any = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _derivations_identical(left, right) -> bool:
    """Structural identity of two derivation trees: same rules, notes,
    and *interned-node-identical* conclusions at every node."""
    if left.rule != right.rule or left.note != right.note:
        return False
    if (left.conclusion is None) != (right.conclusion is None):
        return False
    if left.conclusion is not None and (
        left.conclusion.type is not right.conclusion.type
        or left.conclusion.constraint is not right.conclusion.constraint
    ):
        return False
    if len(left.premises) != len(right.premises):
        return False
    return all(
        _derivations_identical(a, b)
        for a, b in zip(left.premises, right.premises)
    )


@dataclass
class InferReport:
    """Every inference engine's observation of one program."""

    description: str
    runs: List[InferRun] = field(default_factory=list)

    @property
    def reference(self) -> InferRun:
        """The first engine run — by convention the substitution engine."""
        return self.runs[0]

    @property
    def conforms(self) -> bool:
        """True when every engine observed **bit-identical** results:
        the same interned type and constraint nodes (pruned and
        unpruned), identical derivation trees, and — on rejected
        programs — the same error type and message."""
        reference = self.reference
        for run in self.runs[1:]:
            if run.error != reference.error:
                return False
            if not reference.ok:
                continue
            if (
                run.conclusion.type is not reference.conclusion.type
                or run.conclusion.constraint is not reference.conclusion.constraint
            ):
                return False
            if (
                run.full.type is not reference.full.type
                or run.full.constraint is not reference.full.constraint
            ):
                return False
            if not _derivations_identical(run.derivation, reference.derivation):
                return False
        return True

    def explain(self) -> str:
        lines = [
            f"infer-engine run of {self.description}:",
            f"  verdict: {'CONFORMS' if self.conforms else 'DIVERGES'}",
        ]
        reference = self.reference
        for run in self.runs:
            lines.append(f"  [{run.engine}]")
            if run.error is not None:
                lines.append(f"    error: {run.error}")
                continue
            lines.append(f"    type: {run.conclusion}")
            if run is not reference and reference.ok:
                if run.full.constraint is not reference.full.constraint:
                    lines.append(
                        f"    unpruned constraint differs: {run.full}"
                        f" vs {reference.full}"
                    )
                if not _derivations_identical(run.derivation, reference.derivation):
                    lines.append("    derivation tree differs from reference")
        return "\n".join(lines)


def run_infer_engines(
    program: Union[str, Expr],
    engines: Optional[Sequence[str]] = None,
    use_prelude: Optional[bool] = None,
) -> InferReport:
    """Infer the type of ``program`` under every inference engine.

    Both engines draw their fresh type variables from
    ``repro.core.types._fresh_counter``; the sweep snapshots the counter
    and rewinds it before each engine's runs so the engines see literally
    the same fresh names — with hash-consing, equal results are then
    *identical* interned nodes, and the comparison (and the raw variable
    names inside error messages) is exact.  The prelude environment is
    forced before the snapshot so its one-time construction cannot skew
    the first engine's numbering.

    Each engine runs twice from the same counter position: once through
    :func:`repro.core.infer.infer` (pruned, the public contract) and once
    through ``infer_with_derivation`` (unpruned, full derivation tree).
    """
    import itertools

    import repro.core.types as core_types
    from repro.core.errors import TypingError
    from repro.core.infer import (
        INFER_ENGINES,
        infer,
        infer_with_derivation,
    )
    from repro.core.prelude_env import prelude_env

    if engines is None:
        engines = INFER_ENGINES
    expr = parse_program(program) if isinstance(program, str) else program
    prelude = use_prelude if use_prelude is not None else isinstance(program, str)
    env = prelude_env() if prelude else None
    report = InferReport(_describe(program))
    base = next(core_types._fresh_counter)
    for engine in engines:
        run = InferRun(engine)
        core_types._fresh_counter = itertools.count(base)
        try:
            run.conclusion = infer(expr, env, engine=engine)
            core_types._fresh_counter = itertools.count(base)
            run.full, run.derivation = infer_with_derivation(
                expr, env, engine=engine
            )
        except TypingError as error:
            run.error = _observe_error(error)
        report.runs.append(run)
    return report


def assert_infer_conformance(
    program: Union[str, Expr],
    engines: Optional[Sequence[str]] = None,
    use_prelude: Optional[bool] = None,
    require_success: bool = False,
) -> InferReport:
    """Run the infer-engine sweep and raise on any divergence.

    With ``require_success`` the program must also typecheck (an
    agreed-upon rejection is otherwise conforming — *error parity* is
    part of the contract)."""
    report = run_infer_engines(program, engines, use_prelude)
    if not report.conforms:
        raise AssertionError(report.explain())
    if require_success and not all(run.ok for run in report.runs):
        raise AssertionError(report.explain())
    return report


def infer_conformance_corpus() -> List[Tuple[str, str]]:
    """The corpus the infer-engine sweep runs: everything
    :func:`conformance_corpus` covers **plus** the curated rejected
    programs (the sweep checks error parity on those)."""
    from repro.testing.generators import CORPUS_REJECTED

    corpus = conformance_corpus()
    for index, source in enumerate(CORPUS_REJECTED):
        corpus.append((f"rejected[{index}]", source))
    return corpus


# -- chaos conformance --------------------------------------------------------

#: Default per-site fault rates for the chaos sweep: high enough that
#: most plans inject *something*, low enough that the default retry
#: policy survives the large majority of them.
DEFAULT_CHAOS_RATES: Dict[str, float] = {
    "crash": 0.08,
    "timeout": 0.05,
    "drop": 0.06,
    "dup": 0.03,
    "corrupt": 0.03,
    "pool": 0.01,
}

#: Default retry policy for chaos runs (no real sleeping in test sweeps).
DEFAULT_CHAOS_POLICY = RetryPolicy(max_attempts=4, base_delay=0.0)


@dataclass
class ChaosRun:
    """One backend's observation of a program under an armed fault plan."""

    backend: str
    value_repr: Optional[str] = None
    cost: Optional[BspCost] = None
    error: Optional[str] = None
    faulted: bool = False  # the run ended in a SuperstepFault
    state_restored: Optional[bool] = None  # SuperstepFault's atomicity bit
    trace_signature: Optional[Tuple] = None  # abstract trace (check_trace)

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class ChaosReport:
    """A clean reference plus every backend's run under the same plan."""

    description: str
    seed: int
    reference: BackendRun
    runs: List[ChaosRun] = field(default_factory=list)

    @property
    def survivable(self) -> bool:
        """True when every faulted backend run completed."""
        return all(run.ok for run in self.runs)

    @property
    def conforms(self) -> bool:
        """The chaos verdict.

        * Every run completed: each must match the clean reference
          bit-for-bit (value ``repr`` and full ``BspCost``).
        * Some run raised :class:`SuperstepFault`: *every* run must have
          raised the same one (same message — the plan is deterministic,
          so the failing phase and outcome table agree), each atomically.
        * The reference itself failed (a program bug): every run must
          fail the same way.
        """
        reference = self.reference
        if reference.error is not None:
            return all(run.error == reference.error for run in self.runs)
        if any(run.faulted for run in self.runs):
            first = self.runs[0]
            return all(
                run.faulted
                and run.state_restored
                and run.error == first.error
                for run in self.runs
            )
        if not all(
            run.ok
            and run.value_repr == reference.value_repr
            and run.cost == reference.cost
            for run in self.runs
        ):
            return False
        # Trace conformance (check_trace): the chaos runs are compared
        # against *each other*, not the clean reference — fault draws and
        # retry events legitimately appear only under an armed plan, but
        # the seeded plan must replay identically on every backend.
        signatures = [
            run.trace_signature
            for run in self.runs
            if run.trace_signature is not None
        ]
        return all(signature == signatures[0] for signature in signatures[1:])

    def explain(self) -> str:
        lines = [
            f"chaos run of {self.description} (plan seed {self.seed}):",
            f"  verdict: {'CONFORMS' if self.conforms else 'DIVERGES'} "
            f"({'survivable' if self.survivable else 'unsurvivable'})",
            f"  [clean reference] value: {self.reference.value_repr}"
            if self.reference.ok
            else f"  [clean reference] error: {self.reference.error}",
        ]
        for run in self.runs:
            lines.append(f"  [{run.backend}]")
            if run.error is not None:
                kind = "superstep fault" if run.faulted else "error"
                lines.append(f"    {kind}: {run.error}")
                if run.faulted:
                    lines.append(f"    state restored: {run.state_restored}")
                continue
            lines.append(f"    value: {run.value_repr}")
            if run.cost is not None:
                lines.append(
                    f"    cost:  W={run.cost.W} H={run.cost.H} S={run.cost.S}"
                    + (
                        ""
                        if run.cost == self.reference.cost
                        else "  (differs from clean reference)"
                    )
                )
        return "\n".join(lines)


def _chaos_observe(
    program: Program,
    params: BspParams,
    backend: str,
    plan: Optional[FaultPlan],
    policy: Optional[RetryPolicy],
    use_prelude: Optional[bool],
    check_trace: bool = False,
    engine: str = "tree",
    value_key: Callable[[Any], str] = repr,
):
    """Run once; return ``(value_repr, cost, error, faulted, restored,
    trace_signature)``.

    ``value_key`` projects the resulting value to its compared-by string
    (``repr`` for the backend sweep, :func:`_value_fingerprint` for the
    cross-engine one); it only applies to evaluator-built values, BSMLlib
    results keep their ``repr``.
    """
    collected: Optional[obs.Trace] = obs.start() if check_trace else None

    def signature():
        if collected is None:
            return None
        obs.stop(collected)
        return collected.abstract_signature()

    try:
        if isinstance(program, (str, Expr)):
            expr = parse_program(program) if isinstance(program, str) else program
            prelude = (
                use_prelude if use_prelude is not None else isinstance(program, str)
            )
            try:
                result = run_costed(
                    expr,
                    params,
                    use_prelude=prelude,
                    backend=backend,
                    faults=plan,
                    retry=policy,
                    engine=engine,
                )
            except SuperstepFault as fault:
                return (
                    None,
                    None,
                    _observe_error(fault),
                    True,
                    fault.state_restored,
                    signature(),
                )
            except Exception as error:
                return None, None, _observe_error(error), False, None, signature()
            return (
                value_key(result.value),
                result.cost,
                None,
                False,
                None,
                signature(),
            )
        machine = BspMachine(
            params, executor=get_executor(backend), faults=plan, retry=policy
        )
        context = Bsml(params, machine)
        try:
            value = program(context)
        except SuperstepFault as fault:
            # The machine promises atomicity; double-check that whatever
            # committed before the failed phase still decomposes cleanly.
            restored = fault.state_restored and machine.cost().check_decomposition(
                params
            )
            return None, None, _observe_error(fault), True, restored, signature()
        except Exception as error:
            return None, None, _observe_error(error), False, None, signature()
        shown = value.to_list() if isinstance(value, ParVector) else value
        return repr(shown), machine.cost(), None, False, None, signature()
    finally:
        if collected is not None:
            obs.stop(collected)


def run_chaos(
    program: Program,
    params: Optional[BspParams] = None,
    seed: int = 0,
    rates: Optional[Dict[str, float]] = None,
    policy: Optional[RetryPolicy] = DEFAULT_CHAOS_POLICY,
    backends: Sequence[str] = BACKENDS,
    use_prelude: Optional[bool] = None,
    check_trace: bool = False,
    engine: str = "tree",
    value_key: Callable[[Any], str] = repr,
) -> ChaosReport:
    """Run ``program`` cleanly once, then under the seeded fault plan on
    every backend, and collect the observations.

    Each backend gets a **fresh plan from the same seed and rates**, so
    all of them replay the identical fault schedule; the clean sequential
    run is the reference the faulted runs must be indistinguishable from.
    With ``check_trace`` the faulted runs' abstract trace signatures —
    which include every injected fault and retry outcome — must agree
    *with each other* (the clean reference legitimately lacks fault
    events).
    """
    params = params or BspParams(p=4)
    rates = dict(DEFAULT_CHAOS_RATES if rates is None else rates)
    value_repr, cost, error, _, _, _ = _chaos_observe(
        program, params, "seq", None, None, use_prelude,
        engine=engine, value_key=value_key,
    )
    reference = BackendRun(
        "seq (clean)", value_repr=value_repr, cost=cost, error=error
    )
    report = ChaosReport(_describe(program), seed, reference)
    for backend in backends:
        plan = FaultPlan(seed=seed, **rates)
        value_repr, cost, error, faulted, restored, signature = _chaos_observe(
            program, params, backend, plan, policy, use_prelude, check_trace,
            engine=engine, value_key=value_key,
        )
        report.runs.append(
            ChaosRun(
                backend,
                value_repr=value_repr,
                cost=cost,
                error=error,
                faulted=faulted,
                state_restored=restored,
                trace_signature=signature,
            )
        )
    return report


def assert_chaos_conformance(
    program: Program,
    params: Optional[BspParams] = None,
    seed: int = 0,
    rates: Optional[Dict[str, float]] = None,
    policy: Optional[RetryPolicy] = DEFAULT_CHAOS_POLICY,
    backends: Sequence[str] = BACKENDS,
    use_prelude: Optional[bool] = None,
    check_trace: bool = False,
    engine: str = "tree",
) -> ChaosReport:
    """Run :func:`run_chaos` and raise :class:`AssertionError` unless the
    chaos verdict holds.  Returns the report for further assertions."""
    report = run_chaos(
        program,
        params,
        seed,
        rates,
        policy,
        backends,
        use_prelude,
        check_trace,
        engine,
    )
    if not report.conforms:
        raise AssertionError(report.explain())
    return report


def assert_engine_chaos_conformance(
    program: Union[str, Expr],
    params: Optional[BspParams] = None,
    seed: int = 0,
    rates: Optional[Dict[str, float]] = None,
    policy: Optional[RetryPolicy] = DEFAULT_CHAOS_POLICY,
    backends: Sequence[str] = BACKENDS,
    use_prelude: Optional[bool] = None,
    check_trace: bool = False,
    engines: Sequence[str] = ENGINES,
) -> List[ChaosReport]:
    """Chaos conformance across engines: the same seeded fault plan must
    be observationally identical whichever engine evaluates the program.

    Runs the full chaos sweep once per engine (each must conform on its
    own), then cross-compares the per-backend observations between
    engines: error, value fingerprint, ``BspCost`` and (with
    ``check_trace``) the abstract trace signature must match pairwise —
    the fault draws are machine-side and in program order, so an armed
    plan replays the identical schedule under either engine.  Returns
    the per-engine reports.
    """
    if not isinstance(program, (str, Expr)):
        raise TypeError(
            "check_engines needs a mini-BSML program (source text or AST); "
            "a BSMLlib callable never runs through an evaluation engine"
        )
    reports: List[ChaosReport] = []
    for engine in engines:
        report = run_chaos(
            program,
            params,
            seed,
            rates,
            policy,
            backends,
            use_prelude,
            check_trace,
            engine,
            value_key=_value_fingerprint,
        )
        if not report.conforms:
            raise AssertionError(f"[engine {engine}] " + report.explain())
        reports.append(report)
    first = reports[0]
    for engine, report in zip(engines[1:], reports[1:]):
        if (first.reference.error, first.reference.value_repr) != (
            report.reference.error,
            report.reference.value_repr,
        ):
            raise AssertionError(
                f"clean reference diverges between engines "
                f"{engines[0]} and {engine}:\n"
                + first.explain()
                + "\n"
                + report.explain()
            )
        for left, right in zip(first.runs, report.runs):
            if (
                left.error != right.error
                or left.value_repr != right.value_repr
                or left.cost != right.cost
                or left.trace_signature != right.trace_signature
            ):
                raise AssertionError(
                    f"chaos observation diverges between engines "
                    f"{engines[0]} and {engine} on backend {left.backend}:\n"
                    + first.explain()
                    + "\n"
                    + report.explain()
                )
    return reports


def conformance_corpus() -> List[Tuple[str, str]]:
    """The standard corpus the sweep runs: every curated well-typed
    program plus every shipped ``programs/*.bsml`` file, as
    ``(name, source)`` pairs."""
    from pathlib import Path

    from repro.testing.generators import CORPUS_GLOBAL, CORPUS_IMPERATIVE, CORPUS_LOCAL

    corpus: List[Tuple[str, str]] = []
    for group, sources in (
        ("local", CORPUS_LOCAL),
        ("global", CORPUS_GLOBAL),
        ("imperative", CORPUS_IMPERATIVE),
    ):
        for index, source in enumerate(sources):
            corpus.append((f"{group}[{index}]", source))
    programs_dir = Path(__file__).resolve().parents[3] / "programs"
    for path in sorted(programs_dir.glob("*.bsml")):
        corpus.append((path.name, path.read_text(encoding="utf-8")))
    return corpus
