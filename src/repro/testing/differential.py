"""Differential conformance harness for the execution backends.

The BSP cost model is deterministic by construction: the abstract op
counts, traffic matrices and superstep structure of a program depend only
on the program, never on scheduling.  So the executor layer
(:mod:`repro.bsp.executor`) admits a brutally effective correctness
check: run the *same* program under every backend and require

* **bit-identical values** (compared by ``repr``, which is structural
  for every runtime value and distinguishes ``True`` from ``1``), and
* **bit-identical cost decompositions** — the full
  :class:`~repro.bsp.cost.BspCost` superstep list, work tuples included
  (wall-clock ``measured`` timings are excluded from
  :class:`~repro.bsp.cost.SuperstepCost` equality precisely so this
  comparison stays exact).

Any divergence is a backend bug, not noise.  This is the "check the
parallel implementation against the sequential specification" discipline
of *Verified Scalable Parallel Computing with Why3* (Proust & Loulergue,
2023), done empirically: :class:`SequentialExecutor` is the reference
semantics and the concurrent backends must be observationally equal.

Programs can be given three ways:

* source text (parsed, optionally prelude-linked, evaluated costed);
* a mini-BSML AST (:class:`~repro.lang.ast.Expr`);
* a Python BSMLlib program — any callable taking a
  :class:`~repro.bsml.primitives.Bsml` context and returning a value.

A program that *raises* still conforms if every backend raises the same
error (same type, same message) — the backends must agree on failure
too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.bsp.cost import BspCost
from repro.bsp.executor import BACKENDS, get_executor
from repro.bsp.machine import BspMachine
from repro.bsp.params import BspParams
from repro.bsml.primitives import Bsml, ParVector
from repro.lang.ast import Expr
from repro.lang.parser import parse_program
from repro.semantics.costed import run_costed

#: Anything the harness can execute.
Program = Union[str, Expr, Callable[[Bsml], Any]]


@dataclass
class BackendRun:
    """One backend's observation of a program: value, cost, or error."""

    backend: str
    value_repr: Optional[str] = None
    value: Any = None
    cost: Optional[BspCost] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class DifferentialReport:
    """All backends' observations of one program, with the verdict."""

    description: str
    runs: List[BackendRun] = field(default_factory=list)

    @property
    def reference(self) -> BackendRun:
        """The first backend run — by convention the sequential one."""
        return self.runs[0]

    @property
    def conforms(self) -> bool:
        """True when every backend observed exactly the same thing."""
        reference = self.reference
        for run in self.runs[1:]:
            if run.error != reference.error:
                return False
            if reference.ok and (
                run.value_repr != reference.value_repr
                or run.cost != reference.cost
            ):
                return False
        return True

    @property
    def succeeded(self) -> bool:
        """True when the program ran without error on every backend."""
        return all(run.ok for run in self.runs)

    def explain(self) -> str:
        """A human-readable account, detailed enough to debug from."""
        lines = [
            f"differential run of {self.description}:",
            f"  verdict: {'CONFORMS' if self.conforms else 'DIVERGES'}",
        ]
        reference = self.reference
        for run in self.runs:
            lines.append(f"  [{run.backend}]")
            if run.error is not None:
                lines.append(f"    error: {run.error}")
                continue
            lines.append(f"    value: {run.value_repr}")
            if run.cost is not None:
                w, h, s = run.cost.W, run.cost.H, run.cost.S
                lines.append(f"    cost:  W={w} H={h} S={s}")
                if run is not reference and run.cost != reference.cost:
                    lines.append("    cost differs from reference:")
                    for line in run.cost.render().splitlines():
                        lines.append(f"      {line}")
        if not self.conforms and reference.ok and reference.cost is not None:
            lines.append("  reference cost:")
            for line in reference.cost.render().splitlines():
                lines.append(f"    {line}")
        return "\n".join(lines)


def _describe(program: Program) -> str:
    if isinstance(program, str):
        head = " ".join(program.split())
        return repr(head if len(head) <= 60 else head[:57] + "...")
    if isinstance(program, Expr):
        return f"<AST {type(program).__name__}>"
    return f"<BSMLlib {getattr(program, '__name__', 'program')}>"


def _observe_error(error: Exception) -> str:
    return f"{type(error).__name__}: {error}"


def run_differential(
    program: Program,
    params: Optional[BspParams] = None,
    backends: Sequence[str] = BACKENDS,
    use_prelude: Optional[bool] = None,
) -> DifferentialReport:
    """Run ``program`` under every backend and collect the observations.

    ``use_prelude`` defaults to True for source text (so the shipped
    ``programs/*.bsml`` and the curated corpora just work) and False for
    a bare AST (generated programs are closed).  The first backend in
    ``backends`` is the reference the others are compared against.
    """
    params = params or BspParams(p=4)
    report = DifferentialReport(_describe(program))
    if isinstance(program, (str, Expr)):
        expr = parse_program(program) if isinstance(program, str) else program
        prelude = use_prelude if use_prelude is not None else isinstance(program, str)
        for backend in backends:
            try:
                result = run_costed(expr, params, use_prelude=prelude, backend=backend)
            except Exception as error:
                report.runs.append(BackendRun(backend, error=_observe_error(error)))
                continue
            report.runs.append(
                BackendRun(
                    backend,
                    value_repr=repr(result.value),
                    value=result.value,
                    cost=result.cost,
                )
            )
        return report
    for backend in backends:
        machine = BspMachine(params, executor=get_executor(backend))
        context = Bsml(params, machine)
        try:
            value = program(context)
        except Exception as error:
            report.runs.append(BackendRun(backend, error=_observe_error(error)))
            continue
        shown = value.to_list() if isinstance(value, ParVector) else value
        report.runs.append(
            BackendRun(
                backend,
                value_repr=repr(shown),
                value=shown,
                cost=machine.cost(),
            )
        )
    return report


def assert_conformance(
    program: Program,
    params: Optional[BspParams] = None,
    backends: Sequence[str] = BACKENDS,
    use_prelude: Optional[bool] = None,
    require_success: bool = False,
) -> DifferentialReport:
    """Run differentially and raise :class:`AssertionError` on divergence.

    With ``require_success`` the program must also evaluate cleanly on
    every backend (an agreed-upon error is otherwise conforming).
    Returns the report so callers can make further assertions.
    """
    report = run_differential(program, params, backends, use_prelude)
    if not report.conforms:
        raise AssertionError(report.explain())
    if require_success and not report.succeeded:
        raise AssertionError(report.explain())
    return report


def conformance_corpus() -> List[Tuple[str, str]]:
    """The standard corpus the sweep runs: every curated well-typed
    program plus every shipped ``programs/*.bsml`` file, as
    ``(name, source)`` pairs."""
    from pathlib import Path

    from repro.testing.generators import CORPUS_GLOBAL, CORPUS_IMPERATIVE, CORPUS_LOCAL

    corpus: List[Tuple[str, str]] = []
    for group, sources in (
        ("local", CORPUS_LOCAL),
        ("global", CORPUS_GLOBAL),
        ("imperative", CORPUS_IMPERATIVE),
    ):
        for index, source in enumerate(sources):
            corpus.append((f"{group}[{index}]", source))
    programs_dir = Path(__file__).resolve().parents[3] / "programs"
    for path in sorted(programs_dir.glob("*.bsml")):
        corpus.append((path.name, path.read_text(encoding="utf-8")))
    return corpus
