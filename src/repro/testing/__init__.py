"""Test support: type-directed random program generation and the
differential backend-conformance harness."""

from repro.testing.differential import (
    BackendRun,
    DifferentialReport,
    assert_conformance,
    conformance_corpus,
    run_differential,
)
from repro.testing.generators import (
    CORPUS_GLOBAL,
    CORPUS_IMPERATIVE,
    CORPUS_LOCAL,
    CORPUS_REJECTED,
    ProgramGenerator,
    unsafe_corpus,
    well_typed_corpus,
)

__all__ = [
    "BackendRun",
    "CORPUS_GLOBAL",
    "CORPUS_IMPERATIVE",
    "CORPUS_LOCAL",
    "CORPUS_REJECTED",
    "DifferentialReport",
    "ProgramGenerator",
    "assert_conformance",
    "conformance_corpus",
    "run_differential",
    "unsafe_corpus",
    "well_typed_corpus",
]
