"""Test support: type-directed random program generation and the
differential backend-conformance harness."""

from repro.testing.differential import (
    DEFAULT_CHAOS_POLICY,
    DEFAULT_CHAOS_RATES,
    BackendRun,
    ChaosReport,
    ChaosRun,
    DifferentialReport,
    assert_chaos_conformance,
    assert_conformance,
    assert_engine_chaos_conformance,
    assert_engine_conformance,
    conformance_corpus,
    run_chaos,
    run_differential,
    run_engines,
)
from repro.testing.generators import (
    CORPUS_GLOBAL,
    CORPUS_IMPERATIVE,
    CORPUS_LOCAL,
    CORPUS_REJECTED,
    ProgramGenerator,
    unsafe_corpus,
    well_typed_corpus,
)

__all__ = [
    "BackendRun",
    "CORPUS_GLOBAL",
    "CORPUS_IMPERATIVE",
    "CORPUS_LOCAL",
    "CORPUS_REJECTED",
    "ChaosReport",
    "ChaosRun",
    "DEFAULT_CHAOS_POLICY",
    "DEFAULT_CHAOS_RATES",
    "DifferentialReport",
    "ProgramGenerator",
    "assert_chaos_conformance",
    "assert_conformance",
    "assert_engine_chaos_conformance",
    "assert_engine_conformance",
    "conformance_corpus",
    "run_chaos",
    "run_differential",
    "run_engines",
    "unsafe_corpus",
    "well_typed_corpus",
]
