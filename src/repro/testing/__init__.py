"""Test support: type-directed random program generation."""

from repro.testing.generators import (
    CORPUS_GLOBAL,
    CORPUS_IMPERATIVE,
    CORPUS_LOCAL,
    CORPUS_REJECTED,
    ProgramGenerator,
    unsafe_corpus,
    well_typed_corpus,
)

__all__ = [
    "CORPUS_GLOBAL",
    "CORPUS_IMPERATIVE",
    "CORPUS_LOCAL",
    "CORPUS_REJECTED",
    "ProgramGenerator",
    "unsafe_corpus",
    "well_typed_corpus",
]
