"""Type-directed random generation of mini-BSML programs.

:class:`ProgramGenerator` produces *closed, well-typed, terminating*
programs: generation is directed by a target type and tracks the
local/global context exactly like the type system does (no parallel
construct is ever emitted inside a vector component), and it never emits
``fix`` or ``/``, so every generated program is strongly normalizing and
cannot divide by zero.  This is the workload for the empirical validation
of Theorem 1 (typing safety): every generated program must be accepted by
inference, evaluate to a value under both semantics, and its value must
retype at the inferred type.

``mutate_to_nesting`` turns a well-typed program into a nesting-unsafe
one by wrapping a globally-typed subterm under ``mkpar`` — the
``example1``/``example2`` shapes — giving the negative corpus for the
Milner-baseline comparison.

The ``divergence`` knob weights booleans generated inside vector
components toward comparisons on the component's own pid, and lets a
``let`` bind whole vectors, so sweeps can target pid-divergent control
flow and mixed uniform/divergent supersteps — the workload that forces
an SPMD-batched engine through its peeling path.  ``partial_failure``
emits the one deliberate exception to the no-``/`` rule: a program
where exactly one pid divides by zero, for per-pid error-parity sweeps.

The module also exports small curated corpora (including every program
discussed in the paper's section 2.1) used across tests and benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.types import BOOL, INT, TArrow, TPair, TPar, TSum, Type
from repro.lang.ast import (
    App,
    Case,
    Const,
    Expr,
    Fun,
    If,
    IfAt,
    Inl,
    Inr,
    Let,
    Pair,
    Prim,
    Var,
    fun,
)

# -- curated corpora --------------------------------------------------------

#: Purely local programs (no parallelism), all well-typed.
CORPUS_LOCAL: Tuple[str, ...] = (
    "1 + 2 * 3",
    "let x = 5 in x * x",
    "(fun x -> x + 1) 41",
    "if 3 < 4 then 1 else 0",
    "fst (1, true)",
    "snd (1, true) && false || true",
    "let swap = fun p -> (snd p, fst p) in swap (1, 2)",
    "let twice = fun f -> fun x -> f (f x) in twice (fun n -> n + 3) 0",
    "(fix (fun f -> fun n -> if n = 0 then 1 else n * f (n - 1))) 6",
    "let gcd = fix (fun gcd -> fun a -> fun b ->\n"
    "    if b = 0 then a else gcd b (a mod b)) in gcd 48 36",
    "isnc (nc ())",
    "isnc 3",
    "let compose = fun f -> fun g -> fun x -> f (g x) in\n"
    "  compose (fun a -> a * 2) (fun b -> b + 1) 10",
    "17 mod 5 + 17 / 5",
    "not (1 = 2)",
    # sum types (extension)
    "case inl 3 of inl x -> x + 1 | inr b -> if b then 1 else 0",
    "case inr true of inl x -> x | inr b -> if b then 10 else 20",
    "let swap_sum = fun s -> case s of inl x -> inr x | inr y -> inl y in"
    " case swap_sum (inl 5) of inl b -> 0 | inr n -> n",
    "(inl 1, inr false)",
)

#: Parallel programs, all well-typed (some use the prelude).
CORPUS_GLOBAL: Tuple[str, ...] = (
    "mkpar (fun i -> i)",
    "mkpar (fun i -> i * i + 1)",
    "apply (mkpar (fun i -> fun x -> x + i), mkpar (fun i -> 100))",
    "put (mkpar (fun i -> fun dst -> if dst = 0 then i else nc ()))",
    "if mkpar (fun i -> i < 2) at 1 then mkpar (fun i -> 1) else mkpar (fun i -> 0)",
    "fst (mkpar (fun i -> i), 1)",
    "snd (1, mkpar (fun i -> i))",
    "fst (mkpar (fun i -> i), mkpar (fun i -> true))",
    "let vec = mkpar (fun i -> i * 10) in apply (mkpar (fun i -> fun x -> x + i), vec)",
    "replicate 42",
    "parfun (fun x -> x * 2) (mkpar (fun i -> i))",
    "bcast 0 (mkpar (fun i -> i + 7))",
    "shift 1 (mkpar (fun i -> i))",
    "fold (fun ab -> fst ab + snd ab) (mkpar (fun i -> i))",
    "scan (fun ab -> fst ab + snd ab) (mkpar (fun i -> 1))",
    "totex (mkpar (fun i -> i))",
    "mkpar (fun i -> nproc - i)",
    "mkpar (fun i -> if i mod 2 = 0 then inl i else inr (i = 1))",
    "parfun (fun s -> case s of inl n -> n | inr b -> 0)"
    " (mkpar (fun i -> inl i))",
    "get 0 procs",
    "scanex (fun ab -> fst ab + snd ab) 0 (mkpar (fun i -> 1))",
)

#: Imperative programs (extension): well-typed, evaluated by the big-step
#: engine only (the faithful small-step machine covers the pure fragment).
CORPUS_IMPERATIVE: Tuple[str, ...] = (
    "let r = ref 0 in r := !r + 1 ; !r",
    "let r = ref true in r := not !r ; !r",
    "let a = ref 1 in let b = a in b := 5 ; !a",
    "let acc = ref 0 in"
    " let loop = fix (fun loop -> fun n ->"
    "   if n = 0 then !acc else (acc := !acc + n ; loop (n - 1))) in"
    " loop 10",
    "mkpar (fun i -> let c = ref i in c := !c * !c ; !c)",
    "let r = ref (1, 2) in r := (3, 4) ; fst !r + snd !r",
)

#: Programs the type system must reject (all from/inspired by section 2.1).
CORPUS_REJECTED: Tuple[str, ...] = (
    # example1: nested type (tau par) par
    "mkpar (fun pid -> bcast pid (mkpar (fun i -> i)))",
    # example2: invisible nesting, Milner type int par
    "mkpar (fun pid -> let this = mkpar (fun i -> i) in pid)",
    # fourth projection: Milner type int, needs a vector evaluated
    "fst (1, mkpar (fun i -> i))",
    "snd (mkpar (fun i -> i), 1)",
    # direct nesting
    "mkpar (fun pid -> mkpar (fun i -> i))",
    # communication inside a component (mismatched barriers)
    "mkpar (fun pid -> put (mkpar (fun i -> fun dst -> i)))",
    # the paper's vec1/vec2 example: discarded global values under mkpar
    "let vec1 = mkpar (fun pid -> pid) in\n"
    "let vec2 = put (mkpar (fun pid -> fun src -> 1 + src)) in\n"
    "let c1 = (vec1, 1) in let c2 = (vec2, 2) in\n"
    "mkpar (fun pid -> if pid < (nproc / 2) then snd c1 else snd c2)",
    # global conditional returning a local value
    "if mkpar (fun i -> true) at 0 then 1 else 2",
    # mkpar of a function whose result would be global
    "mkpar (fun i -> fun x -> mkpar (fun j -> j))",
    # apply at global content type
    "apply (mkpar (fun i -> fun x -> x), mkpar (fun i -> mkpar (fun j -> j)))",
)


def well_typed_corpus() -> List[str]:
    """Every curated well-typed source program."""
    return list(CORPUS_LOCAL) + list(CORPUS_GLOBAL)


def unsafe_corpus() -> List[str]:
    """Every curated program that must be rejected."""
    return list(CORPUS_REJECTED)


# -- random generation -------------------------------------------------------


@dataclass
class _Scope:
    """Variables in scope, grouped by their (ground) type."""

    by_type: Dict[Type, List[str]] = field(default_factory=dict)
    counter: int = 0

    def fresh(self, ty: Type) -> str:
        self.counter += 1
        name = f"x{self.counter}"
        self.by_type.setdefault(ty, []).append(name)
        return name

    def drop(self, ty: Type, name: str) -> None:
        self.by_type[ty].remove(name)

    def pick(self, rng: random.Random, ty: Type) -> Optional[str]:
        names = self.by_type.get(ty)
        return rng.choice(names) if names else None


class ProgramGenerator:
    """Generates closed, well-typed, terminating mini-BSML programs.

    ``p_hint`` bounds the literal process indices used by ``if ... at``
    so generated programs are valid on any machine with at least that
    many processes.
    """

    LOCAL_GROUND: Tuple[Type, ...] = (
        INT,
        BOOL,
        TPair(INT, INT),
        TPair(BOOL, INT),
        TSum(INT, BOOL),
    )

    def __init__(
        self, seed: int = 0, p_hint: int = 2, divergence: float = 0.0
    ) -> None:
        self.rng = random.Random(seed)
        self.p_hint = max(1, p_hint)
        #: Probability that a boolean generated inside a vector
        #: component is a comparison on the component's own pid —
        #: pid-divergent control flow that forces an SPMD engine off
        #: the uniform batch path.  The default 0.0 draws nothing from
        #: the RNG, so existing seeded sweeps are unchanged.
        self.divergence = divergence
        self._pids: List[str] = []

    # -- entry points -------------------------------------------------------

    def expression(self, depth: int = 4, parallel: bool = True) -> Expr:
        """A closed program of a random ground type."""
        target = self.random_type(parallel=parallel)
        return self.of_type(target, depth)

    def of_type(self, target: Type, depth: int = 4) -> Expr:
        """A closed program of exactly ``target`` type."""
        return self._gen(target, _Scope(), depth, local=False)

    def random_type(self, parallel: bool = True) -> Type:
        choices: List[Type] = list(self.LOCAL_GROUND)
        if parallel:
            choices += [TPar(INT), TPar(BOOL), TPar(TPair(INT, INT))]
        return self.rng.choice(choices)

    # -- the type-directed generator ------------------------------------------

    def _gen(self, target: Type, scope: _Scope, depth: int, local: bool) -> Expr:
        producers = self._producers(target, scope, depth, local)
        return self.rng.choice(producers)()

    def _producers(self, target: Type, scope: _Scope, depth: int, local: bool):
        options = []
        variable = scope.pick(self.rng, target)
        if variable is not None:
            options.append(lambda: Var(variable))
        if target == INT:
            options.append(lambda: Const(self.rng.randrange(-9, 100)))
            if depth > 0:
                options.append(lambda: self._arith(scope, depth, local))
        elif target == BOOL:
            options.append(lambda: Const(self.rng.random() < 0.5))
            if depth > 0:
                options.append(lambda: self._comparison(scope, depth, local))
        elif isinstance(target, TPair):
            options.append(
                lambda: Pair(
                    self._gen(target.first, scope, depth - 1, local),
                    self._gen(target.second, scope, depth - 1, local),
                )
            )
        elif isinstance(target, TSum):
            options.append(lambda: self._injection(target, scope, depth, local))
        elif isinstance(target, TArrow):
            options.append(lambda: self._lambda(target, scope, depth, local))
        elif isinstance(target, TPar):
            if local:
                raise AssertionError("never generate a vector in a local context")
            options.append(lambda: self._mkpar(target, scope, depth))
            if depth > 1:
                options.append(lambda: self._apply(target, scope, depth))
                options.append(lambda: self._ifat(target, scope, depth))
        if depth > 0 and not isinstance(target, TPar):
            # Constructs available at every type.
            options.append(lambda: self._if(target, scope, depth, local))
            options.append(lambda: self._projection(target, scope, depth, local))
            options.append(lambda: self._case(target, scope, depth, local))
        if depth > 0:
            options.append(lambda: self._let(target, scope, depth, local))
        if not options:  # pragma: no cover - every type has a base case
            raise AssertionError(f"no producer for {target}")
        return options

    def _arith(self, scope: _Scope, depth: int, local: bool) -> Expr:
        op = self.rng.choice(["+", "-", "*", "mod"])
        left = self._gen(INT, scope, depth - 1, local)
        right = self._gen(INT, scope, depth - 1, local)
        if op == "mod":
            # Guard against modulo by zero: |right| + 1.
            right = App(
                Prim("+"),
                Pair(App(Prim("*"), Pair(right, Const(0))), Const(self.rng.randrange(1, 7))),
            )
        return App(Prim(op), Pair(left, right))

    def _comparison(self, scope: _Scope, depth: int, local: bool) -> Expr:
        if (
            self.divergence
            and local
            and self._pids
            and self.rng.random() < self.divergence
        ):
            return self._pid_branch()
        kind = self.rng.random()
        if kind < 0.6:
            op = self.rng.choice(["=", "<>", "<", "<=", ">", ">="])
            return App(
                Prim(op),
                Pair(
                    self._gen(INT, scope, depth - 1, local),
                    self._gen(INT, scope, depth - 1, local),
                ),
            )
        if kind < 0.9:
            op = self.rng.choice(["&&", "||"])
            return App(
                Prim(op),
                Pair(
                    self._gen(BOOL, scope, depth - 1, local),
                    self._gen(BOOL, scope, depth - 1, local),
                ),
            )
        return App(Prim("not"), self._gen(BOOL, scope, depth - 1, local))

    def _pid_branch(self) -> Expr:
        """A boolean on the innermost component's pid: true on some
        strict-subset of the processes (almost always), so ``if``/``case``
        scrutinees built from it split the lanes of a batched engine."""
        pid = Var(self._pids[-1])
        kind = self.rng.random()
        bound = Const(self.rng.randrange(self.p_hint + 1))
        if kind < 0.4:
            op = self.rng.choice(("<", "<=", ">", ">="))
            return App(Prim(op), Pair(pid, bound))
        if kind < 0.8:
            op = self.rng.choice(("=", "<>"))
            return App(Prim(op), Pair(pid, bound))
        modulus = Const(self.rng.randrange(2, 4))
        return App(
            Prim("="),
            Pair(App(Prim("mod"), Pair(pid, modulus)), Const(0)),
        )

    def _lambda(self, target: TArrow, scope: _Scope, depth: int, local: bool) -> Expr:
        name = scope.fresh(target.domain)
        body = self._gen(target.codomain, scope, depth - 1, local)
        scope.drop(target.domain, name)
        return Fun(name, body)

    def _if(self, target: Type, scope: _Scope, depth: int, local: bool) -> Expr:
        return If(
            self._gen(BOOL, scope, depth - 1, local),
            self._gen(target, scope, depth - 1, local),
            self._gen(target, scope, depth - 1, local),
        )

    def _let(self, target: Type, scope: _Scope, depth: int, local: bool) -> Expr:
        if self.divergence and not local:
            # Mixed uniform/divergent supersteps: a let-bound vector is
            # computed in its own superstep(s) and can be reused by a
            # later ``apply`` through the variable producers.
            bound_ty = self.rng.choice(self.LOCAL_GROUND + (TPar(INT),))
        else:
            bound_ty = self.rng.choice(self.LOCAL_GROUND)
        bound = self._gen(bound_ty, scope, depth - 1, local)
        name = scope.fresh(bound_ty)
        body = self._gen(target, scope, depth - 1, local)
        scope.drop(bound_ty, name)
        return Let(name, bound, body)

    def _projection(self, target: Type, scope: _Scope, depth: int, local: bool) -> Expr:
        other = self.rng.choice(self.LOCAL_GROUND)
        if self.rng.random() < 0.5:
            pair = self._gen(TPair(target, other), scope, depth - 1, local)
            return App(Prim("fst"), pair)
        pair = self._gen(TPair(other, target), scope, depth - 1, local)
        return App(Prim("snd"), pair)

    def _injection(self, target: TSum, scope: _Scope, depth: int, local: bool) -> Expr:
        if self.rng.random() < 0.5:
            return Inl(self._gen(target.left, scope, depth - 1, local))
        return Inr(self._gen(target.right, scope, depth - 1, local))

    def _case(self, target: Type, scope: _Scope, depth: int, local: bool) -> Expr:
        left_ty = self.rng.choice((INT, BOOL))
        right_ty = self.rng.choice((INT, BOOL))
        scrutinee = self._gen(TSum(left_ty, right_ty), scope, depth - 1, local)
        left_name = scope.fresh(left_ty)
        left_body = self._gen(target, scope, depth - 1, local)
        scope.drop(left_ty, left_name)
        right_name = scope.fresh(right_ty)
        right_body = self._gen(target, scope, depth - 1, local)
        scope.drop(right_ty, right_name)
        return Case(scrutinee, left_name, left_body, right_name, right_body)

    def _mkpar(self, target: TPar, scope: _Scope, depth: int) -> Expr:
        name = scope.fresh(INT)
        self._pids.append(name)
        try:
            body = self._gen(target.content, scope, depth - 1, local=True)
        finally:
            self._pids.pop()
            scope.drop(INT, name)
        return App(Prim("mkpar"), Fun(name, body))

    def _apply(self, target: TPar, scope: _Scope, depth: int) -> Expr:
        domain = self.rng.choice(self.LOCAL_GROUND)
        fns = self._mkpar(TPar(TArrow(domain, target.content)), scope, depth - 1)
        args = self._gen(TPar(domain), scope, depth - 1, local=False)
        return App(Prim("apply"), Pair(fns, args))

    def _ifat(self, target: TPar, scope: _Scope, depth: int) -> Expr:
        vec = self._gen(TPar(BOOL), scope, depth - 1, local=False)
        proc = Const(self.rng.randrange(self.p_hint))
        return IfAt(
            vec,
            proc,
            self._gen(target, scope, depth - 1, local=False),
            self._gen(target, scope, depth - 1, local=False),
        )

    # -- negative mutation -------------------------------------------------------

    def mutate_to_nesting(self, depth: int = 3) -> Expr:
        """A program that is *ill-typed by nesting*: a global subterm is
        computed (and discarded or returned) under ``mkpar``."""
        inner_global = self.of_type(TPar(INT), depth)
        shape = self.rng.randrange(3)
        if shape == 0:
            # example1 shape: return the vector itself from the component.
            return App(Prim("mkpar"), fun("pid", inner_global))
        if shape == 1:
            # example2 shape: bind it, return something local.
            return App(
                Prim("mkpar"),
                fun("pid", Let("this", inner_global, Var("pid"))),
            )
        # fourth-projection shape: hide it in a discarded pair slot.
        return App(Prim("fst"), Pair(Const(self.rng.randrange(10)), inner_global))

    # -- per-pid partial failure --------------------------------------------------

    def partial_failure(self, depth: int = 3) -> Expr:
        """A well-typed parallel program in which exactly one pid raises
        (division by zero) while the others compute normally — the
        error-parity workload for a batched engine's kill/fallback lane:
        every engine must surface the same error at the same superstep,
        committing nothing from the failed superstep into the cost."""
        victim = self.rng.randrange(self.p_hint)
        scope = _Scope()
        name = scope.fresh(INT)
        self._pids.append(name)
        try:
            safe = self._gen(INT, scope, depth - 1, local=True)
        finally:
            self._pids.pop()
            scope.drop(INT, name)
        poison = App(Prim("/"), Pair(Const(100), Const(0)))
        body = If(
            App(Prim("="), Pair(Var(name), Const(victim))), poison, safe
        )
        return App(Prim("mkpar"), Fun(name, body))
