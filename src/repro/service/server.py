"""The asyncio HTTP/1.1 front end of the typecheck-and-run service.

Stdlib only: :func:`asyncio.start_server` plus a hand-rolled HTTP/1.1
request parser (request line, headers, ``Content-Length`` bodies,
keep-alive).  The event loop never runs inference or evaluation — CPU
work is pushed to a small thread pool, each request wrapped in a fresh
:class:`contextvars.Context` so its perf/obs collection windows are
invisible to every other in-flight request.

Admission control is two-layered:

* a semaphore bounds the requests *computing* at once
  (``max_concurrency``, default 8 — matched to the conformance sweep's
  in-flight floor);
* a queue-depth bound rejects rather than buffers once
  ``max_queue`` requests are already waiting: the server answers 429
  with a ``Retry-After`` hint instead of accumulating latency.

Routes::

    GET  /healthz                    liveness
    GET  /v1/metrics                 Prometheus text exposition
    GET  /v1/stats                   counters, cache + intern-pool sizes
    POST /v1/typecheck               {program, p?, prelude?}
    POST /v1/run                     {program, p?, g?, l?, backend?,
                                      engine?, faults?, typed?, prelude?}
    POST /v1/session                 {prelude?} -> {session}
    GET  /v1/session/<sid>           definitions + chain-cache size
    POST /v1/session/<sid>/define    {name, source} -> per-def schemes
    POST /v1/session/<sid>/run       {program?, ...run knobs}
    DELETE /v1/session/<sid>
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional, Tuple

from repro.bsp.executor import BACKENDS
from repro.obs import metrics
from repro.semantics import ENGINES
from repro.service.handlers import RequestError, ServiceConfig, ServiceCore, serialize

#: Parser caps — requests breaching them are answered 400/413/431.
MAX_REQUEST_LINE = 8192
MAX_HEADER_LINES = 100
DEFAULT_MAX_BODY = 1 << 20  # 1 MiB of program text is plenty

_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ReproServer:
    """One service instance bound to one host/port."""

    def __init__(
        self,
        core: Optional[ServiceCore] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_concurrency: int = 8,
        max_queue: int = 32,
        max_body: int = DEFAULT_MAX_BODY,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.core = core or ServiceCore()
        self.host = host
        self.port = port  #: replaced by the bound port after start()
        self.max_concurrency = max_concurrency
        self.max_queue = max_queue
        self.max_body = max_body
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool = ThreadPoolExecutor(
            max_workers=max_concurrency, thread_name_prefix="repro-svc"
        )
        self._waiting = 0
        self._inflight = 0
        self.peak_inflight = 0
        self.rejected = 0
        self._gauges = threading.Lock()
        self._metrics_on = False

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        if self.core.config.metrics and not self._metrics_on:
            metrics.enable()
            self._metrics_on = True
        self._semaphore = asyncio.Semaphore(self.max_concurrency)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Cancel lingering keep-alive connection handlers so the loop
        # can wind down without destroying pending tasks.
        current = asyncio.current_task()
        lingering = [task for task in asyncio.all_tasks() if task is not current]
        for task in lingering:
            task.cancel()
        if lingering:
            await asyncio.gather(*lingering, return_exceptions=True)
        self._pool.shutdown(wait=False)
        if self._metrics_on:
            metrics.disable()
            self._metrics_on = False

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as error:
                    await self._respond(
                        writer,
                        error.status,
                        serialize({"error": {"kind": "http", "message": str(error)}}),
                        close=True,
                    )
                    return
                if request is None:  # clean EOF between requests
                    return
                method, path, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                status, payload, extra = await self._dispatch(method, path, body)
                await self._respond(
                    writer, status, payload, close=not keep_alive, extra=extra
                )
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutting down mid-connection
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            line = await reader.readline()
        except ValueError as error:  # line longer than the stream limit
            raise _HttpError(431, str(error)) from error
        if not line:
            return None
        if len(line) > MAX_REQUEST_LINE:
            raise _HttpError(431, "request line too long")
        parts = line.decode("latin-1").rstrip("\r\n").split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, "malformed request line")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        for _ in range(MAX_HEADER_LINES + 1):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n"):
                break
            if not raw:
                raise _HttpError(400, "connection closed inside headers")
            if len(raw) > MAX_REQUEST_LINE:
                raise _HttpError(431, "header line too long")
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header line {raw!r}")
            headers[name.strip().lower()] = value.strip().lower() if (
                name.strip().lower() == "connection"
            ) else value.strip()
        else:
            raise _HttpError(431, "too many header lines")
        body = b""
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise _HttpError(400, "malformed Content-Length") from None
            if length < 0:
                raise _HttpError(400, "malformed Content-Length")
            if length > self.max_body:
                raise _HttpError(413, f"body exceeds {self.max_body} bytes")
            body = await reader.readexactly(length)
        elif headers.get("transfer-encoding"):
            raise _HttpError(400, "chunked bodies are not supported")
        return method, path, headers, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        close: bool = False,
        extra: Optional[Dict[str, str]] = None,
    ) -> None:
        reason = _STATUS_TEXT.get(status, "Unknown")
        # extra headers override the defaults (case-insensitively), so a
        # route can replace Content-Type — /v1/metrics answers text/plain.
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(payload)),
            "Connection": "close" if close else "keep-alive",
        }
        canonical = {name.lower(): name for name in headers}
        for name, value in (extra or {}).items():
            headers[canonical.get(name.lower(), name)] = value
        lines = [f"HTTP/1.1 {status} {reason}"]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + payload)
        await writer.drain()

    # -- routing ----------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, bytes, Dict[str, str]]:
        path = path.split("?", 1)[0]
        if method == "GET" and path == "/healthz":
            return 200, serialize({"status": "ok"}), {}
        if method == "GET" and path == "/v1/stats":
            return 200, serialize(self.stats()), {}
        if method == "GET" and path == "/v1/metrics":
            # Served inline (like /healthz, bypassing admission control):
            # a scrape must succeed even when the service is saturated —
            # that is precisely when its numbers matter most.
            return (
                200,
                metrics.render_global().encode("utf-8"),
                {"Content-Type": metrics.PROMETHEUS_CONTENT_TYPE},
            )

        route, handler = self._route(method, path)
        if handler is None:
            return (
                404,
                serialize({"error": {"kind": "not-found", "message": path}}),
                {},
            )

        payload = self._parse_body(body)
        if isinstance(payload, tuple):  # (status, error-bytes)
            return payload[0], payload[1], {}
        return await self._run_limited(route, handler, payload)

    def _route(
        self, method: str, path: str
    ) -> Tuple[str, Optional[Callable[[Dict[str, Any]], Tuple[int, bytes, str]]]]:
        """Resolve ``(route name, handler)``.

        The route name is the *pattern* (``/v1/session/{sid}/run``), not
        the concrete path — session ids must not become metric labels.
        """
        core = self.core
        if method == "POST":
            if path == "/v1/typecheck":
                return "/v1/typecheck", core.handle_typecheck
            if path == "/v1/run":
                return "/v1/run", core.handle_run
            if path == "/v1/session":
                return "/v1/session", core.handle_session_create
        segments = path.strip("/").split("/")
        if len(segments) >= 2 and segments[0] == "v1" and segments[1] == "session":
            if len(segments) == 3:
                sid = segments[2]
                if method == "GET":
                    return (
                        "/v1/session/{sid}",
                        lambda _payload: core.handle_session_info(sid),
                    )
                if method == "DELETE":
                    return (
                        "/v1/session/{sid}",
                        lambda _payload: core.handle_session_delete(sid),
                    )
            if len(segments) == 4 and method == "POST":
                sid, action = segments[2], segments[3]
                if action == "define":
                    return (
                        "/v1/session/{sid}/define",
                        lambda payload: core.handle_session_define(sid, payload),
                    )
                if action == "run":
                    return (
                        "/v1/session/{sid}/run",
                        lambda payload: core.handle_session_run(sid, payload),
                    )
        return "", None

    def _parse_body(self, body: bytes):
        if not body:
            return {}
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return (
                400,
                serialize({"error": {"kind": "json", "message": str(error)}}),
            )
        if not isinstance(payload, dict):
            return (
                400,
                serialize(
                    {"error": {"kind": "json", "message": "body must be a JSON object"}}
                ),
            )
        return payload

    # -- admission control + worker offload -------------------------------

    async def _run_limited(
        self,
        route: str,
        handler: Callable[[Dict[str, Any]], Tuple[int, bytes, str]],
        payload: Dict[str, Any],
    ) -> Tuple[int, bytes, Dict[str, str]]:
        assert self._semaphore is not None, "server not started"
        recording = metrics.is_enabled()
        if self._semaphore.locked() and self._waiting >= self.max_queue:
            with self._gauges:
                self.rejected += 1
            if recording:
                metrics.REJECTED_TOTAL.inc()
                metrics.REQUESTS_TOTAL.inc(route=route, status="429")
            return (
                429,
                serialize(
                    {
                        "error": {
                            "kind": "overload",
                            "message": (
                                f"{self.max_concurrency} requests in flight and "
                                f"{self._waiting} queued; retry shortly"
                            ),
                        }
                    }
                ),
                {"Retry-After": "1"},
            )
        self._waiting += 1
        if recording:
            metrics.WAITING_REQUESTS.inc()
        async with self._semaphore:
            self._waiting -= 1
            with self._gauges:
                self._inflight += 1
                self.peak_inflight = max(self.peak_inflight, self._inflight)
                inflight = self._inflight
            if recording:
                metrics.WAITING_REQUESTS.dec()
                metrics.INFLIGHT_REQUESTS.inc()
                metrics.PEAK_INFLIGHT.set_to_max(inflight)
            try:
                return await self._offload(route, handler, payload)
            finally:
                with self._gauges:
                    self._inflight -= 1
                if recording:
                    metrics.INFLIGHT_REQUESTS.dec()

    @staticmethod
    def _request_labels(payload: Dict[str, Any]) -> Tuple[str, str]:
        """Bounded (engine, backend) labels for the latency histogram.

        Values are client-supplied, so anything outside the known engine
        and backend vocabularies is bucketed as ``other`` — one bad (or
        adversarial) client must not mint unbounded label cardinality.
        """
        engine = payload.get("engine", "-")
        backend = payload.get("backend", "-")
        if engine != "-" and engine not in ENGINES:
            engine = "other"
        if backend != "-" and backend not in BACKENDS:
            backend = "other"
        return str(engine), str(backend)

    async def _offload(
        self,
        route: str,
        handler: Callable[[Dict[str, Any]], Tuple[int, bytes, str]],
        payload: Dict[str, Any],
    ) -> Tuple[int, bytes, Dict[str, str]]:
        loop = asyncio.get_running_loop()

        def call() -> Tuple[int, bytes, Dict[str, str]]:
            # A fresh Context per request: collection windows the handler
            # opens (perf counters, trace spans for trace_summary) are
            # request-local, whatever worker thread picks this up.  The
            # metrics observations below are the deliberate exception —
            # they go to the process-global registry.
            context = contextvars.Context()
            recording = metrics.is_enabled()
            started = time.perf_counter() if recording else 0.0
            cache_state = ""
            try:
                status, body, cache_state = context.run(handler, payload)
                extra = {"X-Repro-Cache": cache_state} if cache_state else {}
                return status, body, extra
            except RequestError as error:
                status = error.status
                return error.status, serialize(error.payload()), {}
            except Exception as error:  # noqa: BLE001 - last-resort boundary
                status = 500
                return (
                    500,
                    serialize(
                        {
                            "error": {
                                "kind": "internal",
                                "message": f"{type(error).__name__}: {error}",
                            }
                        }
                    ),
                    {},
                )
            finally:
                if recording:
                    engine, backend = self._request_labels(payload)
                    metrics.REQUEST_SECONDS.observe(
                        time.perf_counter() - started,
                        route=route,
                        engine=engine,
                        backend=backend,
                        cache=cache_state or "-",
                    )
                    metrics.REQUESTS_TOTAL.inc(route=route, status=str(status))

        return await loop.run_in_executor(self._pool, call)

    # -- introspection ----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        stats = self.core.stats()
        with self._gauges:
            stats["server"] = {
                "inflight": self._inflight,
                "peak_inflight": self.peak_inflight,
                "waiting": self._waiting,
                "rejected": self.rejected,
                "max_concurrency": self.max_concurrency,
                "max_queue": self.max_queue,
            }
        return stats


# -- embedding helpers --------------------------------------------------------


class ServerHandle:
    """A running server on a daemon thread — the embedding the tests,
    the benchmark and ``minibsml serve`` (foreground variant aside) use."""

    def __init__(self, server: ReproServer, loop: asyncio.AbstractEventLoop, thread: threading.Thread) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def stop(self, timeout: float = 5.0) -> None:
        if self._loop.is_running():
            future = asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop)
            try:
                future.result(timeout=timeout)
            except Exception:
                pass  # best effort; the loop stops regardless
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)


def start_in_background(
    core: Optional[ServiceCore] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    **server_options: Any,
) -> ServerHandle:
    """Boot a :class:`ReproServer` on a fresh daemon thread and return
    once it is accepting connections."""
    server = ReproServer(core, host=host, port=port, **server_options)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)

        async def boot() -> None:
            await server.start()
            started.set()

        loop.run_until_complete(boot())
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=run, name="repro-service", daemon=True)
    thread.start()
    if not started.wait(timeout=10):
        raise RuntimeError("service failed to start within 10s")
    return ServerHandle(server, loop, thread)
