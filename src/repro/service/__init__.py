"""The typecheck-and-run service: mini-BSML over HTTP.

A long-running stdlib-only HTTP/1.1 server (no dependencies beyond
:mod:`asyncio`) that accepts mini-BSML programs and answers with their
inferred type, locality constraints, value and BSP cost::

    $ minibsml serve --port 8100 &
    $ curl -s -d '{"program": "bcast 2 (mkpar (fun i -> i * i))", "p": 4}' \\
          http://127.0.0.1:8100/v1/run | python -m json.tool

Layout:

* :mod:`repro.service.cache` — sharded LRU over serialized responses,
  keyed on :func:`repro.core.digest.program_digest`;
* :mod:`repro.service.handlers` — transport-free request handling:
  payload dict in, ``(status, payload)`` out; owns the sessions that
  give :mod:`repro.core.incremental` its re-inference wins;
* :mod:`repro.service.server` — the asyncio HTTP front end with the
  concurrency limiter and per-request :mod:`contextvars` isolation.
"""

from repro.service.cache import ShardedCache
from repro.service.handlers import ServiceConfig, ServiceCore
from repro.service.server import ReproServer, ServerHandle, start_in_background

__all__ = [
    "ReproServer",
    "ServerHandle",
    "ServiceConfig",
    "ServiceCore",
    "ShardedCache",
    "start_in_background",
]
