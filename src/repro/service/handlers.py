"""Transport-free request handling for the typecheck-and-run service.

:class:`ServiceCore` is the whole service minus HTTP: JSON-shaped dicts
in, ``(status, payload)`` out.  The asyncio front end
(:mod:`repro.service.server`) calls it from worker threads, each request
inside a fresh :class:`contextvars.Context`, so the perf/obs collection
a request opens (for its ``trace_summary``) is invisible to every other
in-flight request — the property tests/obs/test_request_isolation.py
pins down.

Determinism contract: the ``type``, ``constraints``, ``value`` and
``cost`` fields of a successful response are pure functions of the
request (fault plans included — a survivable plan is bit-identical to a
clean run), and cached replays return the originally serialized bytes.
Only ``trace_summary`` carries wall-clock measurements and is excluded
from that promise.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import obs, perf
from repro.bsp import BspFaultError, BspParams, FaultSpecError, parse_fault_spec
from repro.core.constraints import TRUE, constraint_atoms, render_constraint
from repro.core.digest import expr_digest, program_digest
from repro.core.errors import TypingError
from repro.core.incremental import Definition, IncrementalChecker
from repro.core.infer import INFER_ENGINES, infer
from repro.core.prelude_env import prelude_env
from repro.core.schemes import ConstrainedType, TypeEnv, generalize
from repro.core.types import _variable_display_names, intern_pool_stats, render_type
from repro.lang import parse_program, pretty, with_prelude
from repro.lang.ast import Expr, Let
from repro.lang.errors import ParseError, ReproError
from repro.lang.limits import deep_recursion
from repro.semantics import ENGINES, CostedResult, StuckError, run_costed
from repro.semantics.values import reify
from repro.service.cache import ShardedCache

#: Execution knobs a request may override, with the service defaults.
_REQUEST_KNOBS = (
    "p", "g", "l", "backend", "engine", "infer_engine", "typed", "prelude"
)


@dataclass
class ServiceConfig:
    """Boot-time configuration of a :class:`ServiceCore`."""

    p: int = 4
    g: float = 1.0
    l: float = 20.0
    backend: str = "seq"
    engine: str = "tree"
    #: Type-inference engine (``w`` or ``uf``); responses are
    #: engine-independent, ``uf`` is just faster on cold typechecks.
    infer_engine: str = "uf"
    cache_capacity: int = 1024
    cache_shards: int = 8
    max_sessions: int = 256
    trace_summaries: bool = True
    #: Enable the process-global metrics registry (the /v1/metrics
    #: exposition) for the lifetime of the server.
    metrics: bool = True


class RequestError(Exception):
    """A client-side problem, carrying the HTTP status to answer with."""

    def __init__(self, status: int, kind: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.kind = kind

    def payload(self) -> Dict[str, Any]:
        return {"error": {"kind": self.kind, "message": str(self)}}


def _render_constrained(ct: ConstrainedType) -> Tuple[str, str]:
    """``(type, constraints)`` with one shared display-name mapping, so
    ``'a`` means the same variable in both fields."""
    names = _variable_display_names(ct.type)
    for var in sorted(constraint_atoms(ct.constraint)):
        if var not in names:
            names[var] = f"'{var}"
    type_text = render_type(ct.type, names)
    if ct.constraint == TRUE:
        return type_text, "True"
    return type_text, render_constraint(ct.constraint, names)


def _value_text(result: CostedResult) -> str:
    """Deterministic rendering of a runtime value: the pretty-printed
    reified term (identical across engines and backends), falling back
    to a kind tag for values with no finite term form."""
    try:
        with deep_recursion():
            return pretty(reify(result.value))
    except Exception:
        return f"<{type(result.value).__name__}>"


def _cost_payload(result: CostedResult) -> Dict[str, Any]:
    cost, params = result.cost, result.params
    return {
        "p": cost.p,
        "g": params.g,
        "l": params.l,
        "W": cost.W,
        "H": cost.H,
        "S": cost.S,
        "total": cost.total(params),
        "supersteps": [
            {
                "work": list(step.work),
                "h": step.h,
                "synchronized": step.synchronized,
                "label": step.label,
            }
            for step in cost.supersteps
        ],
    }


def serialize(payload: Dict[str, Any]) -> bytes:
    """The service's canonical JSON bytes (sorted keys, tight separators
    — byte-stable for equal payloads)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


class _Session:
    """One editing session: an ordered chain of named definitions whose
    inference is cached per chain prefix (:class:`IncrementalChecker`)."""

    def __init__(self, sid: str, use_prelude: bool) -> None:
        self.sid = sid
        self.use_prelude = use_prelude
        self.lock = threading.Lock()
        self.checker = IncrementalChecker(use_prelude=use_prelude)
        self.names: List[str] = []
        self.definitions: Dict[str, Definition] = {}

    def define(self, name: str, source: str) -> Dict[str, Any]:
        with self.lock:
            definition = Definition(name, _parse(source))
            previous = self.definitions.get(name)
            if previous is None:
                self.names.append(name)
            self.definitions[name] = definition
            chain = [self.definitions[n] for n in self.names]
            try:
                checked = self.checker.check(chain)
            except (TypingError, ReproError):
                # Reject the edit wholesale: the session stays at its
                # last well-typed state.
                if previous is None:
                    self.names.remove(name)
                    del self.definitions[name]
                else:
                    self.definitions[name] = previous
                raise
            return {
                "session": self.sid,
                "definitions": [
                    {"name": item.name, "type": str(item.scheme), "reused": item.reused}
                    for item in checked
                ],
            }

    def program(self, body_source: str) -> Expr:
        with self.lock:
            body = _parse(body_source)
            result = body
            for name in reversed(self.names):
                definition = self.definitions[name]
                result = Let(name, definition.expr, result)
            return result

    def info(self) -> Dict[str, Any]:
        with self.lock:
            return {
                "session": self.sid,
                "definitions": list(self.names),
                "prelude": self.use_prelude,
                "chain_cache_entries": self.checker.cache_size(),
            }


def _parse(source: Any) -> Expr:
    if not isinstance(source, str) or not source.strip():
        raise RequestError(400, "bad-request", "expected a non-empty program string")
    try:
        return parse_program(source)
    except ParseError as error:
        raise RequestError(400, "parse", str(error)) from error


class ServiceCore:
    """The service behind the HTTP front end.  Thread-safe."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.cache: ShardedCache[bytes] = ShardedCache(
            self.config.cache_capacity, self.config.cache_shards
        )
        self.started_at = time.time()
        self.requests = 0
        self._requests_lock = threading.Lock()
        self._sessions: Dict[str, _Session] = {}
        self._sessions_lock = threading.Lock()
        self._session_ids = itertools.count(1)

    # -- request plumbing -------------------------------------------------

    def _count_request(self) -> None:
        with self._requests_lock:
            self.requests += 1

    def _options(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        config = self.config
        options = {
            "p": payload.get("p", config.p),
            "g": payload.get("g", config.g),
            "l": payload.get("l", config.l),
            "backend": payload.get("backend", config.backend),
            "engine": payload.get("engine", config.engine),
            "infer_engine": payload.get("infer_engine", config.infer_engine),
            "typed": payload.get("typed", True),
            "prelude": payload.get("prelude", True),
            "faults": payload.get("faults"),
        }
        if not isinstance(options["p"], int) or options["p"] < 1:
            raise RequestError(400, "bad-request", f"p must be a positive int, got {options['p']!r}")
        for knob in ("g", "l"):
            if not isinstance(options[knob], (int, float)) or options[knob] < 0:
                raise RequestError(
                    400, "bad-request", f"{knob} must be a non-negative number"
                )
        for knob in ("typed", "prelude"):
            if not isinstance(options[knob], bool):
                raise RequestError(400, "bad-request", f"{knob} must be a boolean")
        if options["engine"] not in ENGINES:
            raise RequestError(
                400,
                "bad-request",
                f"engine must be one of {', '.join(ENGINES)}, "
                f"got {options['engine']!r}",
            )
        if options["infer_engine"] not in INFER_ENGINES:
            raise RequestError(
                400,
                "bad-request",
                f"infer_engine must be one of {', '.join(INFER_ENGINES)}, "
                f"got {options['infer_engine']!r}",
            )
        if options["faults"] is not None and not isinstance(options["faults"], str):
            raise RequestError(400, "bad-request", "faults must be a spec string")
        return options

    # -- endpoints --------------------------------------------------------

    def handle_typecheck(self, payload: Dict[str, Any]) -> Tuple[int, bytes, str]:
        self._count_request()
        options = self._options(payload)
        expr = _parse(payload.get("program"))
        digest = program_digest(
            expr,
            p=options["p"],
            use_prelude=options["prelude"],
            extra={
                "endpoint": "typecheck",
                # The engines answer bit-identically, but each caches its
                # own entry so per-engine cold latencies stay measurable.
                "infer_engine": options["infer_engine"],
            },
        )
        cached = self.cache.get(digest)
        if cached is not None:
            return 200, cached, "hit"
        env = prelude_env() if options["prelude"] else TypeEnv.empty()
        try:
            ct = infer(expr, env, engine=options["infer_engine"])
        except TypingError as error:
            raise RequestError(422, "type", str(error)) from error
        type_text, constraint_text = _render_constrained(ct)
        scheme = generalize(ct, env)
        body = serialize(
            {
                "digest": digest,
                "type": type_text,
                "constraints": constraint_text,
                "scheme": str(scheme),
            }
        )
        self.cache.put(digest, body)
        return 200, body, "miss"

    def handle_run(self, payload: Dict[str, Any]) -> Tuple[int, bytes, str]:
        self._count_request()
        options = self._options(payload)
        expr = _parse(payload.get("program"))
        digest = program_digest(
            expr,
            p=options["p"],
            g=options["g"],
            l=options["l"],
            backend=options["backend"],
            engine=options["engine"],
            faults=options["faults"],
            typed=options["typed"],
            use_prelude=options["prelude"],
        )
        cached = self.cache.get(digest)
        if cached is not None:
            return 200, cached, "hit"
        body = serialize(self._run_payload(expr, digest, options))
        self.cache.put(digest, body)
        return 200, body, "miss"

    def _run_payload(
        self, expr: Expr, digest: str, options: Dict[str, Any]
    ) -> Dict[str, Any]:
        faults = retry = None
        if options["faults"]:
            try:
                faults, retry = parse_fault_spec(options["faults"])
            except FaultSpecError as error:
                raise RequestError(400, "bad-request", str(error)) from error

        type_text = constraint_text = None
        if options["typed"]:
            env = prelude_env() if options["prelude"] else None
            try:
                ct = infer(expr, env, engine=options["infer_engine"])
            except TypingError as error:
                raise RequestError(422, "type", str(error)) from error
            type_text, constraint_text = _render_constrained(ct)

        runnable = with_prelude(expr) if options["prelude"] else expr
        params = BspParams(p=options["p"], g=options["g"], l=options["l"])
        trace_window = obs.trace() if self.config.trace_summaries else None
        try:
            if trace_window is not None:
                with trace_window as collected:
                    result = run_costed(
                        runnable,
                        params,
                        backend=options["backend"],
                        faults=faults,
                        retry=retry,
                        engine=options["engine"],
                    )
                trace_summary = obs.summarize(collected)
            else:
                result = run_costed(
                    runnable,
                    params,
                    backend=options["backend"],
                    faults=faults,
                    retry=retry,
                    engine=options["engine"],
                )
                trace_summary = None
        except StuckError as error:
            raise RequestError(422, "stuck", str(error)) from error
        except BspFaultError as error:
            # A fatal (non-survivable) injected fault: the superstep
            # aborted atomically; report it as the request's outcome.
            raise RequestError(422, "fault", str(error)) from error
        except RecursionError as error:
            raise RequestError(422, "recursion", "program exceeds evaluation depth") from error
        except ValueError as error:
            raise RequestError(400, "bad-request", str(error)) from error

        return {
            "digest": digest,
            "type": type_text,
            "constraints": constraint_text,
            "value": _value_text(result),
            "cost": _cost_payload(result),
            "trace_summary": trace_summary,
        }

    # -- sessions ---------------------------------------------------------

    def handle_session_create(self, payload: Dict[str, Any]) -> Tuple[int, bytes, str]:
        self._count_request()
        use_prelude = payload.get("prelude", True)
        if not isinstance(use_prelude, bool):
            raise RequestError(400, "bad-request", "prelude must be a boolean")
        with self._sessions_lock:
            if len(self._sessions) >= self.config.max_sessions:
                raise RequestError(
                    429, "overload", "too many live sessions; delete one first"
                )
            sid = f"s{next(self._session_ids)}"
            self._sessions[sid] = _Session(sid, use_prelude)
            live = len(self._sessions)
        if obs.metrics.is_enabled():
            obs.metrics.SESSIONS.set(live)
        return 201, serialize({"session": sid, "prelude": use_prelude}), "miss"

    def _session(self, sid: str) -> _Session:
        with self._sessions_lock:
            session = self._sessions.get(sid)
        if session is None:
            raise RequestError(404, "not-found", f"no session {sid!r}")
        return session

    def handle_session_define(
        self, sid: str, payload: Dict[str, Any]
    ) -> Tuple[int, bytes, str]:
        self._count_request()
        session = self._session(sid)
        name = payload.get("name")
        if not isinstance(name, str) or not name.isidentifier():
            raise RequestError(400, "bad-request", "name must be an identifier")
        try:
            summary = session.define(name, payload.get("source"))
        except TypingError as error:
            raise RequestError(422, "type", str(error)) from error
        return 200, serialize(summary), "miss"

    def handle_session_run(
        self, sid: str, payload: Dict[str, Any]
    ) -> Tuple[int, bytes, str]:
        self._count_request()
        session = self._session(sid)
        options = self._options(payload)
        options["prelude"] = session.use_prelude
        expr = session.program(payload.get("program", "()"))
        digest = program_digest(
            expr,
            p=options["p"],
            g=options["g"],
            l=options["l"],
            backend=options["backend"],
            engine=options["engine"],
            faults=options["faults"],
            typed=options["typed"],
            use_prelude=options["prelude"],
        )
        cached = self.cache.get(digest)
        if cached is not None:
            return 200, cached, "hit"
        body = serialize(self._run_payload(expr, digest, options))
        self.cache.put(digest, body)
        return 200, body, "miss"

    def handle_session_info(self, sid: str) -> Tuple[int, bytes, str]:
        self._count_request()
        return 200, serialize(self._session(sid).info()), "miss"

    def handle_session_delete(self, sid: str) -> Tuple[int, bytes, str]:
        self._count_request()
        with self._sessions_lock:
            if self._sessions.pop(sid, None) is None:
                raise RequestError(404, "not-found", f"no session {sid!r}")
            live = len(self._sessions)
        if obs.metrics.is_enabled():
            obs.metrics.SESSIONS.set(live)
        return 200, serialize({"deleted": sid}), "miss"

    # -- introspection ----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._sessions_lock:
            sessions = len(self._sessions)
        solver = {
            name: fn.cache_info()._asdict()
            for name, fn in perf.registered_caches().items()
        }
        return {
            "uptime_s": time.time() - self.started_at,
            "requests": self.requests,
            "sessions": sessions,
            "response_cache": self.cache.stats(),
            "solver_caches": solver,
            "intern_pools": intern_pool_stats(),
        }
