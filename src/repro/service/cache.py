"""A sharded in-process LRU for serialized service responses.

Keys are :func:`repro.core.digest.program_digest` hex strings, so two
requests for the same program under the same execution parameters map
to the same entry — and a hit returns the *serialized bytes* of the
original response, making cache replays byte-identical by construction.

Sharding bounds lock contention: a key's leading hex digits pick its
shard, each shard is an independently locked LRU, and concurrent
requests for different programs almost always hit different locks.  The
capacity bound is global but enforced per shard (``capacity / shards``
each), which keeps eviction O(1) and is within one entry per shard of
the exact global bound.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Generic, List, Optional, Tuple, TypeVar

from repro.obs import metrics
from repro.perf import counters

V = TypeVar("V")


class _Shard(Generic[V]):
    __slots__ = ("data", "lock", "capacity", "hits", "misses", "evictions")

    def __init__(self, capacity: int) -> None:
        self.data: "OrderedDict[str, V]" = OrderedDict()
        self.lock = threading.Lock()
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class ShardedCache(Generic[V]):
    """A bounded, sharded, thread-safe LRU mapping digests to values."""

    def __init__(self, capacity: int = 1024, shards: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        if shards < 1:
            raise ValueError(f"cache needs >= 1 shard, got {shards}")
        shards = min(shards, capacity)
        per_shard = max(1, (capacity + shards - 1) // shards)
        self._shards: List[_Shard[V]] = [_Shard(per_shard) for _ in range(shards)]

    def _shard(self, key: str) -> _Shard[V]:
        # Digests are uniform hex; the leading 8 digits are an adequate
        # shard selector and cheaper than hashing the whole string.
        try:
            index = int(key[:8], 16)
        except ValueError:
            index = hash(key)
        return self._shards[index % len(self._shards)]

    def get(self, key: str) -> Optional[V]:
        shard = self._shard(key)
        with shard.lock:
            try:
                value = shard.data[key]
            except KeyError:
                shard.misses += 1
                counters.increment("service.cache.miss")
                if metrics.is_enabled():
                    metrics.CACHE_REQUESTS_TOTAL.inc(result="miss")
                return None
            shard.data.move_to_end(key)
            shard.hits += 1
            counters.increment("service.cache.hit")
            if metrics.is_enabled():
                metrics.CACHE_REQUESTS_TOTAL.inc(result="hit")
            return value

    def put(self, key: str, value: V) -> None:
        shard = self._shard(key)
        with shard.lock:
            shard.data[key] = value
            shard.data.move_to_end(key)
            while len(shard.data) > shard.capacity:
                shard.data.popitem(last=False)
                shard.evictions += 1
                counters.increment("service.cache.evict")
                if metrics.is_enabled():
                    metrics.CACHE_REQUESTS_TOTAL.inc(result="evict")

    def __contains__(self, key: str) -> bool:
        shard = self._shard(key)
        with shard.lock:
            return key in shard.data

    def __len__(self) -> int:
        return sum(len(shard.data) for shard in self._shards)

    def clear(self) -> None:
        for shard in self._shards:
            with shard.lock:
                shard.data.clear()

    def stats(self) -> Dict[str, int]:
        """Aggregate counters across shards (point-in-time, unlocked
        aggregation: each shard's numbers are individually consistent)."""
        totals = {"hits": 0, "misses": 0, "evictions": 0, "entries": 0}
        for shard in self._shards:
            totals["hits"] += shard.hits
            totals["misses"] += shard.misses
            totals["evictions"] += shard.evictions
            totals["entries"] += len(shard.data)
        totals["shards"] = len(self._shards)
        totals["capacity"] = sum(shard.capacity for shard in self._shards)
        return totals

    def shard_sizes(self) -> Tuple[int, ...]:
        return tuple(len(shard.data) for shard in self._shards)
