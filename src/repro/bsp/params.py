"""BSP machine parameters (section 2 of the paper).

A BSP computer is characterized by three parameters, all expressed as
multiples of the local processing speed:

* ``p`` — the number of processor-memory pairs;
* ``g`` — the time to collectively deliver a 1-relation (so an h-relation
  costs ``g * h``);
* ``l`` — the time of a global synchronization barrier.

``PREDEFINED`` offers a few classic machine profiles for benchmarks; the
values are in "operations" units and only their ratios matter for the
cost-shape experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class BspParams:
    """The BSP cost parameters ``(p, g, l)``."""

    p: int
    g: float = 1.0
    l: float = 20.0

    def __post_init__(self) -> None:
        if self.p < 1:
            raise ValueError(f"a BSP machine needs p >= 1 processes, got {self.p}")
        if self.g < 0 or self.l < 0:
            raise ValueError("BSP parameters g and l must be non-negative")

    def superstep_time(self, w_max: float, h_max: float) -> float:
        """``Time(s) = max_i w_i + max_i h_i * g + l``."""
        return w_max + h_max * self.g + self.l

    def describe(self) -> str:
        return f"p={self.p}, g={self.g}, l={self.l}"


#: Classic machine shapes used by the benchmark sweeps (ratios matter, not
#: absolute values): a low-latency cluster, a commodity cluster with slow
#: barriers, and a shared-memory-like machine with cheap communication.
PREDEFINED: Dict[str, BspParams] = {
    "cluster": BspParams(p=8, g=4.0, l=200.0),
    "slow-network": BspParams(p=8, g=32.0, l=5000.0),
    "shared-memory": BspParams(p=8, g=1.0, l=50.0),
}
