"""The BSP machine simulator: superstep engine with cost accounting.

The machine is the substrate on which both the Python BSMLlib
(:mod:`repro.bsml`) and the costed mini-BSML interpreter
(:mod:`repro.semantics.costed`) run.  It does not execute code itself —
the callers do — it *accounts*: callers report local work per process and
hand over traffic matrices for the communication phases, and the machine
folds everything into the paper's cost model ``W + H*g + S*l``.

A superstep is, per the BSP model, (1) local computation, (2) delivery of
the requested h-relation, (3) a synchronization barrier.  ``exchange``
performs (2)+(3) and opens the next superstep; ``barrier`` is an exchange
with an empty relation (``if ... at ...`` uses an explicit small one).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro import perf
from repro.bsp.cost import BspCost, SuperstepCost
from repro.bsp.network import HRelation, h_relation_of_matrix
from repro.bsp.params import BspParams


class _NoMessage:
    """Singleton marker for "no message was delivered".

    Distinct from every user value — in particular from a transmitted
    ``None`` — so :meth:`BspMachine.receive` never conflates "the mailbox
    is empty" with "the sender sent the value ``None``" (the BSML
    ``nc ()`` versus a sent value).  Falsy, like the absence it denotes.
    """

    _instance: Optional["_NoMessage"] = None

    def __new__(cls) -> "_NoMessage":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "NO_MESSAGE"


#: The unique "mailbox empty" marker.
NO_MESSAGE = _NoMessage()


class BspMachine:
    """A ``p``-process BSP machine accumulating a :class:`BspCost`."""

    def __init__(self, params: BspParams) -> None:
        self.params = params
        self._work: List[float] = [0.0] * params.p
        self._steps: List[SuperstepCost] = []
        self._mailboxes: List[Dict[int, object]] = [dict() for _ in range(params.p)]

    @property
    def p(self) -> int:
        return self.params.p

    # -- computation phase --------------------------------------------------

    def local(self, proc: int, ops: float = 1.0) -> None:
        """Account ``ops`` units of work on process ``proc``."""
        if not 0 <= proc < self.p:
            raise ValueError(f"process {proc} out of range (p = {self.p})")
        self._work[proc] += ops

    def replicated(self, ops: float = 1.0) -> None:
        """Account work executed identically by every process (the
        replicated global control of an SPMD BSML program)."""
        for proc in range(self.p):
            self._work[proc] += ops

    # -- communication + synchronization phases ------------------------------

    def exchange(
        self,
        sent_words: Sequence[Sequence[int]],
        payloads: Optional[Dict[Tuple[int, int], object]] = None,
        label: str = "",
    ) -> HRelation:
        """Deliver an h-relation and pass the barrier, closing the superstep.

        ``sent_words[i][j]`` is the number of words process ``i`` sends to
        process ``j`` (diagonal ignored).  ``payloads`` optionally carries
        the actual values; they become readable via :meth:`receive` during
        the next superstep, which is how the BSML ``put`` is built.

        Every payload key must be accounted in the traffic matrix:
        endpoints are range-checked, diagonal self-sends are rejected
        (the h-relation ignores the diagonal, so delivering them would
        undercount communication), and a payload for a ``(src, dst)``
        pair whose matrix entry is zero raises :class:`ValueError` — cost
        accounting can never miss traffic that was actually delivered.
        """
        relation = h_relation_of_matrix(sent_words)
        if payloads:
            for src, dst in payloads:
                if not (0 <= src < self.p and 0 <= dst < self.p):
                    raise ValueError(
                        f"payload endpoints ({src}, {dst}) out of range (p = {self.p})"
                    )
                if src == dst:
                    raise ValueError(
                        f"payload ({src}, {dst}) is a diagonal self-send: the "
                        "h-relation does not account it; keep local data local"
                    )
                if sent_words[src][dst] == 0:
                    raise ValueError(
                        f"payload for ({src}, {dst}) but the traffic matrix "
                        "records 0 words sent — unaccounted communication"
                    )
        self._mailboxes = [dict() for _ in range(self.p)]
        if payloads:
            for (src, dst), value in payloads.items():
                self._mailboxes[dst][src] = value
        self._close(relation, label)
        return relation

    def barrier(self, label: str = "barrier") -> None:
        """A pure synchronization: empty relation, still costs ``l``."""
        self._close(HRelation((0,) * self.p, (0,) * self.p), label)

    def receive(self, proc: int, source: int):
        """The payload ``source`` sent to ``proc`` in the last exchange,
        or :data:`NO_MESSAGE` when nothing was sent.

        A transmitted ``None`` is a real value and is returned as such;
        only the distinct :data:`NO_MESSAGE` sentinel means "no message"
        (use :meth:`has_message` for the boolean question).
        """
        return self._mailboxes[proc].get(source, NO_MESSAGE)

    def has_message(self, proc: int, source: int) -> bool:
        """True when ``source`` delivered a payload to ``proc`` in the
        last exchange — even if that payload was ``None``."""
        return source in self._mailboxes[proc]

    # -- results --------------------------------------------------------------

    def _close(self, relation: HRelation, label: str) -> None:
        self._steps.append(
            SuperstepCost(tuple(self._work), relation, synchronized=True, label=label)
        )
        self._work = [0.0] * self.p
        if perf.is_collecting():
            perf.increment("bsp.supersteps")
            perf.increment("bsp.words_exchanged", relation.total_words)

    def cost(self) -> BspCost:
        """The cost so far, including any unfinished local-only phase."""
        steps = list(self._steps)
        if any(work > 0 for work in self._work):
            steps.append(
                SuperstepCost(
                    tuple(self._work), None, synchronized=False, label="trailing local"
                )
            )
        return BspCost(self.p, steps)

    def total_time(self) -> float:
        return self.cost().total(self.params)

    def reset(self) -> None:
        """Forget all accounting (mailboxes included)."""
        self._work = [0.0] * self.p
        self._steps = []
        self._mailboxes = [dict() for _ in range(self.p)]
