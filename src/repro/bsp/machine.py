"""The BSP machine simulator: superstep engine with cost accounting.

The machine is the substrate on which both the Python BSMLlib
(:mod:`repro.bsml`) and the costed mini-BSML interpreter
(:mod:`repro.semantics.costed`) run.  It does not execute code itself —
the callers do — it *accounts*: callers report local work per process and
hand over traffic matrices for the communication phases, and the machine
folds everything into the paper's cost model ``W + H*g + S*l``.

A superstep is, per the BSP model, (1) local computation, (2) delivery of
the requested h-relation, (3) a synchronization barrier.  ``exchange``
performs (2)+(3) and opens the next superstep; ``barrier`` is an exchange
with an empty relation (``if ... at ...`` uses an explicit small one).

Since the executor layer (:mod:`repro.bsp.executor`) the machine also
*executes*: :meth:`BspMachine.run_superstep` runs one task per process on
a pluggable backend (sequential, threads, processes), folds the tasks'
abstract op counts into the ``w_i`` work accounting, and records their
measured wall-clock seconds alongside (carried on
:class:`~repro.bsp.cost.SuperstepCost` but excluded from equality, so
cost accounting stays backend-independent).

Since the fault layer (:mod:`repro.bsp.faults`) every phase is also
**transactional**: :meth:`run_superstep` and :meth:`exchange` either
commit — values, cost rows, mailboxes — or leave the machine exactly as
it was and raise (a :class:`~repro.bsp.faults.SuperstepFault` for
transient faults that retries could not absorb, the original error for a
genuine program failure).  A machine can arm a deterministic
:class:`~repro.bsp.faults.FaultPlan` (injected crashes, timeouts,
message drops/duplications/corruptions, broken pools) and a
:class:`~repro.bsp.faults.RetryPolicy` (bounded retry with backoff);
with both armed, any *survivable* fault schedule is observationally
invisible — identical values, bit-identical :class:`BspCost` — which is
exactly what the chaos conformance sweep checks.
"""

from __future__ import annotations

import time
from functools import partial
from typing import Any, Dict, List, Optional, Sequence, Tuple

from concurrent.futures import BrokenExecutor

from repro import obs, perf
from repro.bsp.cost import BspCost, SuperstepCost
from repro.bsp.executor import (
    SequentialExecutor,
    Task,
    TaskOutcome,
    _timed,
    get_executor,
)
from repro.bsp.faults import (
    INJECTED_TASKS,
    BrokenPool,
    FaultPlan,
    ProcOutcome,
    RetryPolicy,
    SuperstepFault,
    TaskTimeout,
    TransientFault,
    WorkerCrash,
)
from repro.bsp.network import HRelation, h_relation_of_matrix
from repro.bsp.params import BspParams


class _NoMessage:
    """Singleton marker for "no message was delivered".

    Distinct from every user value — in particular from a transmitted
    ``None`` — so :meth:`BspMachine.receive` never conflates "the mailbox
    is empty" with "the sender sent the value ``None``" (the BSML
    ``nc ()`` versus a sent value).  Falsy, like the absence it denotes.
    """

    _instance: Optional["_NoMessage"] = None

    def __new__(cls) -> "_NoMessage":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "NO_MESSAGE"


#: The unique "mailbox empty" marker.
NO_MESSAGE = _NoMessage()


def _fault_kind(error: BaseException) -> str:
    """The outcome-table status for a transient fault."""
    if isinstance(error, WorkerCrash):
        return "crash"
    if isinstance(error, TaskTimeout):
        return "timeout"
    if isinstance(error, (BrokenPool, BrokenExecutor)):
        return "pool"
    return "error"


class BspMachine:
    """A ``p``-process BSP machine accumulating a :class:`BspCost`.

    ``faults`` optionally arms a deterministic
    :class:`~repro.bsp.faults.FaultPlan`; ``retry`` optionally sets the
    :class:`~repro.bsp.faults.RetryPolicy` applied to transient faults
    (injected ones *and* genuine broken pools).  Without a policy every
    transient fault is fatal — but still atomic.
    """

    def __init__(
        self,
        params: BspParams,
        executor=None,
        faults: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.params = params
        self.executor = executor if executor is not None else SequentialExecutor()
        self._faults = faults
        self._retry = retry
        self._work: List[float] = [0.0] * params.p
        self._elapsed: List[float] = [0.0] * params.p
        self._steps: List[SuperstepCost] = []
        self._mailboxes: List[Dict[int, object]] = [dict() for _ in range(params.p)]

    @property
    def p(self) -> int:
        return self.params.p

    def use_backend(self, name: str) -> None:
        """Switch to the (shared) executor named ``name``.

        Only the execution strategy changes; accumulated cost, mailboxes
        and the current superstep all carry over, because accounting is
        backend-independent by construction.  Raises :class:`ValueError`
        (naming the valid backends) for an unknown name.
        """
        self.executor = get_executor(name)

    # -- fault layer ---------------------------------------------------------

    @property
    def faults(self) -> Optional[FaultPlan]:
        return self._faults

    @property
    def retry(self) -> Optional[RetryPolicy]:
        return self._retry

    def arm_faults(
        self,
        plan: Optional[FaultPlan],
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        """Arm a fault plan (and optionally a retry policy)."""
        self._faults = plan
        if retry is not None:
            self._retry = retry

    def disarm_faults(self) -> None:
        """Drop the fault plan and the retry policy."""
        self._faults = None
        self._retry = None

    def set_retry(self, policy: Optional[RetryPolicy]) -> None:
        self._retry = policy

    def state_fingerprint(self) -> Tuple:
        """A structural snapshot of all superstep-visible machine state:
        work, elapsed seconds, committed cost rows and mailboxes.  Two
        equal fingerprints mean the machine is observationally in the
        same place — the atomicity assertions of the chaos harness
        compare fingerprints taken before and after a failed phase."""
        return (
            tuple(self._work),
            tuple(self._elapsed),
            tuple(self._steps),
            tuple(
                tuple(sorted(mailbox.items())) for mailbox in self._mailboxes
            ),
        )

    # -- computation phase --------------------------------------------------

    def local(self, proc: int, ops: float = 1.0) -> None:
        """Account ``ops`` units of work on process ``proc``."""
        if not 0 <= proc < self.p:
            raise ValueError(f"process {proc} out of range (p = {self.p})")
        self._work[proc] += ops

    def replicated(self, ops: float = 1.0) -> None:
        """Account work executed identically by every process (the
        replicated global control of an SPMD BSML program)."""
        for proc in range(self.p):
            self._work[proc] += ops

    def run_superstep(self, tasks: Sequence[Task]) -> List[Any]:
        """Execute the computation phase of a superstep on the backend.

        ``tasks[i]`` is a zero-argument callable — process ``i``'s local
        computation — returning ``(value, ops)``.  The abstract ``ops``
        are folded into process ``i``'s ``w_i`` (exactly what the callers
        used to account in-line, so costs are backend-independent), and
        the measured wall-clock seconds accumulate separately until the
        superstep closes.  Returns the values in process order.

        The superstep is *not* closed: like ``mkpar``/``apply`` these are
        asynchronous phases; the barrier still comes from
        :meth:`exchange` or :meth:`barrier`.

        The phase is **transactional**.  Work and elapsed time commit
        only when every process has a value; on any failure the machine
        is left exactly as it was.  Transient faults — injected crashes,
        timeouts and pool breaks from an armed
        :class:`~repro.bsp.faults.FaultPlan`, or a genuine
        ``BrokenExecutor`` — are retried under the machine's
        :class:`~repro.bsp.faults.RetryPolicy` (only the processes that
        failed re-run, so recovered user code executes exactly once);
        when retries are exhausted (or no policy is set) a
        :class:`~repro.bsp.faults.SuperstepFault` carrying the
        per-process outcome table is raised.  A genuine program error
        re-raises the lowest-index task error, which keeps the propagated
        exception deterministic across backends.
        """
        if len(tasks) != self.p:
            raise ValueError(f"expected {self.p} tasks, got {len(tasks)}")
        if obs.is_tracing():
            with obs.span(
                "superstep.compute",
                obs.MACHINE_TRACK,
                superstep=len(self._steps),
                procs=self.p,
                backend=self.executor.name,
            ) as extra:
                return self._compute(tasks, extra)
        return self._compute(tasks, None)

    def _compute(self, tasks: Sequence[Task], extra) -> List[Any]:
        """The (transactional) body of :meth:`run_superstep`; ``extra``
        is the enclosing trace span's arg dict (None when not tracing)."""
        tracing = extra is not None
        step_index = len(self._steps)
        plan, policy = self._faults, self._retry
        max_attempts = policy.max_attempts if policy is not None else 1
        final: List[Optional[TaskOutcome]] = [None] * self.p
        status: List[str] = ["pending"] * self.p
        detail: List[str] = [""] * self.p
        pending = list(range(self.p))
        attempt = 0
        while True:
            attempt += 1
            if attempt > 1:
                if perf.is_collecting():
                    perf.increment("bsp.retry.attempts")
                if tracing:
                    obs.event(
                        "retry",
                        obs.MACHINE_TRACK,
                        phase="compute",
                        superstep=step_index,
                        attempt=attempt,
                    )
            if plan is not None and plan.draw_pool_break():
                if perf.is_collecting():
                    perf.increment("bsp.fault.pool")
                self.executor.recycle()
                error: BaseException = BrokenPool(
                    f"injected pool break (attempt {attempt})"
                )
                attempt_outcomes = {
                    proc: TaskOutcome(error=error) for proc in pending
                }
            else:
                injected = (
                    plan.draw_task_faults(pending) if plan is not None else {}
                )
                run_tasks: List[Task] = []
                for proc in pending:
                    kind = injected.get(proc)
                    if kind is None:
                        run_tasks.append(tasks[proc])
                    else:
                        if perf.is_collecting():
                            perf.increment(f"bsp.fault.{kind}")
                        run_tasks.append(
                            partial(INJECTED_TASKS[kind], proc, attempt)
                        )
                # With a plan armed, every backend must observe the same
                # set of per-attempt failures, or the deterministic fault
                # stream would diverge between backends — so the
                # sequential backend's fail-fast skipping is suspended
                # (it exists to mirror the historical in-line semantics
                # of *unrecovered* errors, which faults never are).
                if plan is not None and isinstance(
                    self.executor, SequentialExecutor
                ):
                    outcomes = [_timed(task) for task in run_tasks]
                else:
                    outcomes = self.executor.run(run_tasks)
                attempt_outcomes = dict(zip(pending, outcomes))
            first_user_error: Optional[BaseException] = None
            still_pending: List[int] = []
            for proc in pending:
                outcome = attempt_outcomes[proc]
                if outcome.skipped:
                    still_pending.append(proc)
                    status[proc], detail[proc] = "pending", "skipped by fail-fast"
                elif outcome.error is None:
                    final[proc] = outcome
                    status[proc], detail[proc] = "ok", ""
                elif isinstance(outcome.error, (TransientFault, BrokenExecutor)):
                    still_pending.append(proc)
                    status[proc] = _fault_kind(outcome.error)
                    detail[proc] = str(outcome.error)
                elif first_user_error is None:
                    first_user_error = outcome.error
            if first_user_error is not None:
                # A genuine program error: nothing was committed, so the
                # machine state is untouched — re-raise it as the callers
                # have always seen it.
                raise first_user_error
            pending = still_pending
            if not pending:
                break
            if attempt >= max_attempts:
                if perf.is_collecting():
                    perf.increment("bsp.fault.supersteps_failed")
                    if policy is not None:
                        perf.increment("bsp.retry.exhausted")
                table = [
                    ProcOutcome(f"proc {proc}", status[proc], detail[proc])
                    for proc in range(self.p)
                ]
                if tracing:
                    obs.event(
                        "rollback",
                        obs.MACHINE_TRACK,
                        phase="compute",
                        superstep=step_index,
                        attempts=attempt,
                        outcomes=";".join(
                            f"{row.site}:{row.status}" for row in table
                        ),
                    )
                raise SuperstepFault("compute", "", attempt, table)
            if policy is not None:
                delay = policy.delay(attempt)
                if delay > 0:
                    time.sleep(delay)
                    if perf.is_collecting():
                        perf.add_time("bsp.retry.sleep", delay)
        # Commit: every process has a successful outcome.
        values: List[Any] = []
        total_seconds = 0.0
        for proc, outcome in enumerate(final):
            value, ops = outcome.value
            self._work[proc] += ops
            self._elapsed[proc] += outcome.seconds
            total_seconds += outcome.seconds
            values.append(value)
            if tracing:
                obs.record(
                    "task",
                    obs.process_track(proc),
                    outcome.started,
                    outcome.seconds,
                    proc=proc,
                    ops=ops,
                    superstep=step_index,
                )
        if tracing:
            extra["attempts"] = attempt
            if attempt > 1:
                obs.event(
                    "retry.recovered",
                    obs.MACHINE_TRACK,
                    phase="compute",
                    superstep=step_index,
                    attempts=attempt,
                )
        if perf.is_collecting():
            if attempt > 1:
                perf.increment("bsp.retry.recovered")
            perf.increment(f"bsp.backend.{self.executor.name}.phases")
            perf.increment(f"bsp.backend.{self.executor.name}.tasks", self.p)
            perf.add_time(f"bsp.backend.{self.executor.name}.compute", total_seconds)
        return values

    # -- communication + synchronization phases ------------------------------

    def exchange(
        self,
        sent_words: Sequence[Sequence[int]],
        payloads: Optional[Dict[Tuple[int, int], object]] = None,
        label: str = "",
    ) -> HRelation:
        """Deliver an h-relation and pass the barrier, closing the superstep.

        ``sent_words[i][j]`` is the number of words process ``i`` sends to
        process ``j`` (diagonal ignored).  ``payloads`` optionally carries
        the actual values; they become readable via :meth:`receive` during
        the next superstep, which is how the BSML ``put`` is built.

        Every payload key must be accounted in the traffic matrix:
        endpoints are range-checked, diagonal self-sends are rejected
        (the h-relation ignores the diagonal, so delivering them would
        undercount communication), and a payload for a ``(src, dst)``
        pair whose matrix entry is zero raises :class:`ValueError` — cost
        accounting can never miss traffic that was actually delivered.

        The delivery is **transactional**.  With a fault plan armed, each
        in-flight message may be dropped, duplicated or corrupted; all
        three are *detected* faults (acknowledgements and checksums in a
        real runtime), so an injured delivery attempt never lands a wrong
        value — it is retried whole under the retry policy, and when
        retries are exhausted a
        :class:`~repro.bsp.faults.SuperstepFault` is raised with the
        machine untouched: no cost row, mailboxes still holding the
        previous superstep's deliveries.
        """
        relation = h_relation_of_matrix(sent_words)
        if payloads:
            for src, dst in payloads:
                if not (0 <= src < self.p and 0 <= dst < self.p):
                    raise ValueError(
                        f"payload endpoints ({src}, {dst}) out of range (p = {self.p})"
                    )
                if src == dst:
                    raise ValueError(
                        f"payload ({src}, {dst}) is a diagonal self-send: the "
                        "h-relation does not account it; keep local data local"
                    )
                if sent_words[src][dst] == 0:
                    raise ValueError(
                        f"payload for ({src}, {dst}) but the traffic matrix "
                        "records 0 words sent — unaccounted communication"
                    )
        if obs.is_tracing():
            # The full traffic matrix rides on the span (deterministic,
            # so abstract signatures stay backend-identical): the trace
            # analyzer aggregates it into the per-pair communication
            # report without re-deriving routing from payload keys.
            with obs.span(
                "superstep.exchange",
                obs.MACHINE_TRACK,
                superstep=len(self._steps),
                label=label,
                h=relation.h,
                words=relation.total_words,
                matrix=tuple(tuple(int(w) for w in row) for row in sent_words),
            ):
                self._deliver(relation, payloads, label)
        else:
            self._deliver(relation, payloads, label)
        return relation

    def _deliver(
        self,
        relation: HRelation,
        payloads: Optional[Dict[Tuple[int, int], object]],
        label: str,
    ) -> None:
        """The (transactional) delivery + barrier of :meth:`exchange`."""
        tracing = obs.is_tracing()
        step_index = len(self._steps)
        plan, policy = self._faults, self._retry
        if plan is not None and payloads and plan.message_faults_active:
            keys = sorted(payloads)
            max_attempts = policy.max_attempts if policy is not None else 1
            attempt = 0
            while True:
                attempt += 1
                if attempt > 1:
                    if perf.is_collecting():
                        perf.increment("bsp.retry.attempts")
                    if tracing:
                        obs.event(
                            "retry",
                            obs.MACHINE_TRACK,
                            phase="exchange",
                            superstep=step_index,
                            attempt=attempt,
                        )
                injured = plan.draw_message_faults(keys)
                if not injured:
                    if attempt > 1:
                        if perf.is_collecting():
                            perf.increment("bsp.retry.recovered")
                        if tracing:
                            obs.event(
                                "retry.recovered",
                                obs.MACHINE_TRACK,
                                phase="exchange",
                                superstep=step_index,
                                attempts=attempt,
                            )
                    break
                if perf.is_collecting():
                    for kind in injured.values():
                        perf.increment(f"bsp.fault.{kind}")
                if attempt >= max_attempts:
                    if perf.is_collecting():
                        perf.increment("bsp.fault.supersteps_failed")
                        if policy is not None:
                            perf.increment("bsp.retry.exhausted")
                    table = [
                        ProcOutcome(
                            f"{src}->{dst}",
                            injured.get((src, dst), "ok"),
                        )
                        for src, dst in keys
                    ]
                    if tracing:
                        obs.event(
                            "rollback",
                            obs.MACHINE_TRACK,
                            phase="exchange",
                            superstep=step_index,
                            attempts=attempt,
                            outcomes=";".join(
                                f"{row.site}:{row.status}" for row in table
                            ),
                        )
                    raise SuperstepFault("exchange", label, attempt, table)
                if policy is not None:
                    delay = policy.delay(attempt)
                    if delay > 0:
                        time.sleep(delay)
                        if perf.is_collecting():
                            perf.add_time("bsp.retry.sleep", delay)
        self._close(relation, label, deliveries=payloads)

    def barrier(self, label: str = "barrier") -> None:
        """A pure synchronization: empty relation, still costs ``l``.

        Like every barrier passage it clears the mailboxes: a payload is
        readable only during the superstep immediately after its
        exchange, never across a later barrier.
        """
        relation = HRelation((0,) * self.p, (0,) * self.p)
        if obs.is_tracing():
            with obs.span(
                "superstep.barrier",
                obs.MACHINE_TRACK,
                superstep=len(self._steps),
                label=label,
            ):
                self._close(relation, label)
        else:
            self._close(relation, label)

    def receive(self, proc: int, source: int):
        """The payload ``source`` sent to ``proc`` in the last exchange,
        or :data:`NO_MESSAGE` when nothing was sent.

        A transmitted ``None`` is a real value and is returned as such;
        only the distinct :data:`NO_MESSAGE` sentinel means "no message"
        (use :meth:`has_message` for the boolean question).
        """
        return self._mailboxes[proc].get(source, NO_MESSAGE)

    def has_message(self, proc: int, source: int) -> bool:
        """True when ``source`` delivered a payload to ``proc`` in the
        last exchange — even if that payload was ``None``."""
        return source in self._mailboxes[proc]

    # -- results --------------------------------------------------------------

    def _close(
        self,
        relation: HRelation,
        label: str,
        deliveries: Optional[Dict[Tuple[int, int], object]] = None,
    ) -> None:
        """End the superstep: record its cost, clear delivery state, and
        deliver the new payloads (if any) for the next superstep.

        Clearing happens here — on *every* barrier passage — rather than
        in :meth:`exchange`: a ``barrier()`` between an exchange and a
        read must not leave stale payloads readable (regression: it did).
        """
        step = SuperstepCost(
            tuple(self._work),
            relation,
            synchronized=True,
            label=label,
            measured=tuple(self._elapsed) if any(self._elapsed) else None,
        )
        self._steps.append(step)
        if obs.is_tracing():
            # The committed BspCost row rides on the trace so modelled
            # cost can be read next to the measured phase spans.
            obs.event(
                "superstep",
                obs.MACHINE_TRACK,
                superstep=len(self._steps) - 1,
                w_max=step.w_max,
                h=step.h,
                words=relation.total_words,
                label=label,
            )
        self._work = [0.0] * self.p
        self._elapsed = [0.0] * self.p
        self._mailboxes = [dict() for _ in range(self.p)]
        if deliveries:
            for (src, dst), value in deliveries.items():
                self._mailboxes[dst][src] = value
        if perf.is_collecting():
            perf.increment("bsp.supersteps")
            perf.increment("bsp.words_exchanged", relation.total_words)

    def cost(self) -> BspCost:
        """The cost so far, including any unfinished local-only phase."""
        steps = list(self._steps)
        if any(work > 0 for work in self._work):
            steps.append(
                SuperstepCost(
                    tuple(self._work),
                    None,
                    synchronized=False,
                    label="trailing local",
                    measured=tuple(self._elapsed) if any(self._elapsed) else None,
                )
            )
        return BspCost(self.p, steps)

    def total_time(self) -> float:
        return self.cost().total(self.params)

    def reset(self) -> None:
        """Forget all accounting (mailboxes included)."""
        self._work = [0.0] * self.p
        self._elapsed = [0.0] * self.p
        self._steps = []
        self._mailboxes = [dict() for _ in range(self.p)]
