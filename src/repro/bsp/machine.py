"""The BSP machine simulator: superstep engine with cost accounting.

The machine is the substrate on which both the Python BSMLlib
(:mod:`repro.bsml`) and the costed mini-BSML interpreter
(:mod:`repro.semantics.costed`) run.  It does not execute code itself —
the callers do — it *accounts*: callers report local work per process and
hand over traffic matrices for the communication phases, and the machine
folds everything into the paper's cost model ``W + H*g + S*l``.

A superstep is, per the BSP model, (1) local computation, (2) delivery of
the requested h-relation, (3) a synchronization barrier.  ``exchange``
performs (2)+(3) and opens the next superstep; ``barrier`` is an exchange
with an empty relation (``if ... at ...`` uses an explicit small one).

Since the executor layer (:mod:`repro.bsp.executor`) the machine also
*executes*: :meth:`BspMachine.run_superstep` runs one task per process on
a pluggable backend (sequential, threads, processes), folds the tasks'
abstract op counts into the ``w_i`` work accounting, and records their
measured wall-clock seconds alongside (carried on
:class:`~repro.bsp.cost.SuperstepCost` but excluded from equality, so
cost accounting stays backend-independent).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import perf
from repro.bsp.cost import BspCost, SuperstepCost
from repro.bsp.executor import SequentialExecutor, Task, get_executor
from repro.bsp.network import HRelation, h_relation_of_matrix
from repro.bsp.params import BspParams


class _NoMessage:
    """Singleton marker for "no message was delivered".

    Distinct from every user value — in particular from a transmitted
    ``None`` — so :meth:`BspMachine.receive` never conflates "the mailbox
    is empty" with "the sender sent the value ``None``" (the BSML
    ``nc ()`` versus a sent value).  Falsy, like the absence it denotes.
    """

    _instance: Optional["_NoMessage"] = None

    def __new__(cls) -> "_NoMessage":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "NO_MESSAGE"


#: The unique "mailbox empty" marker.
NO_MESSAGE = _NoMessage()


class BspMachine:
    """A ``p``-process BSP machine accumulating a :class:`BspCost`."""

    def __init__(self, params: BspParams, executor=None) -> None:
        self.params = params
        self.executor = executor if executor is not None else SequentialExecutor()
        self._work: List[float] = [0.0] * params.p
        self._elapsed: List[float] = [0.0] * params.p
        self._steps: List[SuperstepCost] = []
        self._mailboxes: List[Dict[int, object]] = [dict() for _ in range(params.p)]

    @property
    def p(self) -> int:
        return self.params.p

    def use_backend(self, name: str) -> None:
        """Switch to the (shared) executor named ``name``.

        Only the execution strategy changes; accumulated cost, mailboxes
        and the current superstep all carry over, because accounting is
        backend-independent by construction.
        """
        self.executor = get_executor(name)

    # -- computation phase --------------------------------------------------

    def local(self, proc: int, ops: float = 1.0) -> None:
        """Account ``ops`` units of work on process ``proc``."""
        if not 0 <= proc < self.p:
            raise ValueError(f"process {proc} out of range (p = {self.p})")
        self._work[proc] += ops

    def replicated(self, ops: float = 1.0) -> None:
        """Account work executed identically by every process (the
        replicated global control of an SPMD BSML program)."""
        for proc in range(self.p):
            self._work[proc] += ops

    def run_superstep(self, tasks: Sequence[Task]) -> List[Any]:
        """Execute the computation phase of a superstep on the backend.

        ``tasks[i]`` is a zero-argument callable — process ``i``'s local
        computation — returning ``(value, ops)``.  The abstract ``ops``
        are folded into process ``i``'s ``w_i`` (exactly what the callers
        used to account in-line, so costs are backend-independent), and
        the measured wall-clock seconds accumulate separately until the
        superstep closes.  Returns the values in process order.

        The superstep is *not* closed: like ``mkpar``/``apply`` these are
        asynchronous phases; the barrier still comes from
        :meth:`exchange` or :meth:`barrier`.

        When tasks fail, the lowest-index error is re-raised (after
        accounting the tasks that did complete), which keeps the
        propagated exception deterministic across backends.
        """
        if len(tasks) != self.p:
            raise ValueError(f"expected {self.p} tasks, got {len(tasks)}")
        outcomes = self.executor.run(tasks)
        values: List[Any] = []
        first_error: Optional[BaseException] = None
        total_seconds = 0.0
        for proc, outcome in enumerate(outcomes):
            if outcome.error is not None:
                if first_error is None:
                    first_error = outcome.error
                continue
            if outcome.skipped:
                continue
            value, ops = outcome.value
            self._work[proc] += ops
            self._elapsed[proc] += outcome.seconds
            total_seconds += outcome.seconds
        if perf.is_collecting():
            perf.increment(f"bsp.backend.{self.executor.name}.phases")
            perf.increment(f"bsp.backend.{self.executor.name}.tasks", self.p)
            perf.add_time(f"bsp.backend.{self.executor.name}.compute", total_seconds)
        if first_error is not None:
            raise first_error
        for outcome in outcomes:
            values.append(outcome.value[0])
        return values

    # -- communication + synchronization phases ------------------------------

    def exchange(
        self,
        sent_words: Sequence[Sequence[int]],
        payloads: Optional[Dict[Tuple[int, int], object]] = None,
        label: str = "",
    ) -> HRelation:
        """Deliver an h-relation and pass the barrier, closing the superstep.

        ``sent_words[i][j]`` is the number of words process ``i`` sends to
        process ``j`` (diagonal ignored).  ``payloads`` optionally carries
        the actual values; they become readable via :meth:`receive` during
        the next superstep, which is how the BSML ``put`` is built.

        Every payload key must be accounted in the traffic matrix:
        endpoints are range-checked, diagonal self-sends are rejected
        (the h-relation ignores the diagonal, so delivering them would
        undercount communication), and a payload for a ``(src, dst)``
        pair whose matrix entry is zero raises :class:`ValueError` — cost
        accounting can never miss traffic that was actually delivered.
        """
        relation = h_relation_of_matrix(sent_words)
        if payloads:
            for src, dst in payloads:
                if not (0 <= src < self.p and 0 <= dst < self.p):
                    raise ValueError(
                        f"payload endpoints ({src}, {dst}) out of range (p = {self.p})"
                    )
                if src == dst:
                    raise ValueError(
                        f"payload ({src}, {dst}) is a diagonal self-send: the "
                        "h-relation does not account it; keep local data local"
                    )
                if sent_words[src][dst] == 0:
                    raise ValueError(
                        f"payload for ({src}, {dst}) but the traffic matrix "
                        "records 0 words sent — unaccounted communication"
                    )
        self._close(relation, label, deliveries=payloads)
        return relation

    def barrier(self, label: str = "barrier") -> None:
        """A pure synchronization: empty relation, still costs ``l``.

        Like every barrier passage it clears the mailboxes: a payload is
        readable only during the superstep immediately after its
        exchange, never across a later barrier.
        """
        self._close(HRelation((0,) * self.p, (0,) * self.p), label)

    def receive(self, proc: int, source: int):
        """The payload ``source`` sent to ``proc`` in the last exchange,
        or :data:`NO_MESSAGE` when nothing was sent.

        A transmitted ``None`` is a real value and is returned as such;
        only the distinct :data:`NO_MESSAGE` sentinel means "no message"
        (use :meth:`has_message` for the boolean question).
        """
        return self._mailboxes[proc].get(source, NO_MESSAGE)

    def has_message(self, proc: int, source: int) -> bool:
        """True when ``source`` delivered a payload to ``proc`` in the
        last exchange — even if that payload was ``None``."""
        return source in self._mailboxes[proc]

    # -- results --------------------------------------------------------------

    def _close(
        self,
        relation: HRelation,
        label: str,
        deliveries: Optional[Dict[Tuple[int, int], object]] = None,
    ) -> None:
        """End the superstep: record its cost, clear delivery state, and
        deliver the new payloads (if any) for the next superstep.

        Clearing happens here — on *every* barrier passage — rather than
        in :meth:`exchange`: a ``barrier()`` between an exchange and a
        read must not leave stale payloads readable (regression: it did).
        """
        self._steps.append(
            SuperstepCost(
                tuple(self._work),
                relation,
                synchronized=True,
                label=label,
                measured=tuple(self._elapsed) if any(self._elapsed) else None,
            )
        )
        self._work = [0.0] * self.p
        self._elapsed = [0.0] * self.p
        self._mailboxes = [dict() for _ in range(self.p)]
        if deliveries:
            for (src, dst), value in deliveries.items():
                self._mailboxes[dst][src] = value
        if perf.is_collecting():
            perf.increment("bsp.supersteps")
            perf.increment("bsp.words_exchanged", relation.total_words)

    def cost(self) -> BspCost:
        """The cost so far, including any unfinished local-only phase."""
        steps = list(self._steps)
        if any(work > 0 for work in self._work):
            steps.append(
                SuperstepCost(
                    tuple(self._work),
                    None,
                    synchronized=False,
                    label="trailing local",
                    measured=tuple(self._elapsed) if any(self._elapsed) else None,
                )
            )
        return BspCost(self.p, steps)

    def total_time(self) -> float:
        return self.cost().total(self.params)

    def reset(self) -> None:
        """Forget all accounting (mailboxes included)."""
        self._work = [0.0] * self.p
        self._elapsed = [0.0] * self.p
        self._steps = []
        self._mailboxes = [dict() for _ in range(self.p)]
