"""The BSP machine simulator: superstep engine with cost accounting.

The machine is the substrate on which both the Python BSMLlib
(:mod:`repro.bsml`) and the costed mini-BSML interpreter
(:mod:`repro.semantics.costed`) run.  It does not execute code itself —
the callers do — it *accounts*: callers report local work per process and
hand over traffic matrices for the communication phases, and the machine
folds everything into the paper's cost model ``W + H*g + S*l``.

A superstep is, per the BSP model, (1) local computation, (2) delivery of
the requested h-relation, (3) a synchronization barrier.  ``exchange``
performs (2)+(3) and opens the next superstep; ``barrier`` is an exchange
with an empty relation (``if ... at ...`` uses an explicit small one).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bsp.cost import BspCost, SuperstepCost
from repro.bsp.network import HRelation, h_relation_of_matrix
from repro.bsp.params import BspParams


class BspMachine:
    """A ``p``-process BSP machine accumulating a :class:`BspCost`."""

    def __init__(self, params: BspParams) -> None:
        self.params = params
        self._work: List[float] = [0.0] * params.p
        self._steps: List[SuperstepCost] = []
        self._mailboxes: List[Dict[int, object]] = [dict() for _ in range(params.p)]

    @property
    def p(self) -> int:
        return self.params.p

    # -- computation phase --------------------------------------------------

    def local(self, proc: int, ops: float = 1.0) -> None:
        """Account ``ops`` units of work on process ``proc``."""
        if not 0 <= proc < self.p:
            raise ValueError(f"process {proc} out of range (p = {self.p})")
        self._work[proc] += ops

    def replicated(self, ops: float = 1.0) -> None:
        """Account work executed identically by every process (the
        replicated global control of an SPMD BSML program)."""
        for proc in range(self.p):
            self._work[proc] += ops

    # -- communication + synchronization phases ------------------------------

    def exchange(
        self,
        sent_words: Sequence[Sequence[int]],
        payloads: Optional[Dict[Tuple[int, int], object]] = None,
        label: str = "",
    ) -> HRelation:
        """Deliver an h-relation and pass the barrier, closing the superstep.

        ``sent_words[i][j]`` is the number of words process ``i`` sends to
        process ``j`` (diagonal ignored).  ``payloads`` optionally carries
        the actual values; they become readable via :meth:`receive` during
        the next superstep, which is how the BSML ``put`` is built.
        """
        relation = h_relation_of_matrix(sent_words)
        self._mailboxes = [dict() for _ in range(self.p)]
        if payloads:
            for (src, dst), value in payloads.items():
                self._mailboxes[dst][src] = value
        self._close(relation, label)
        return relation

    def barrier(self, label: str = "barrier") -> None:
        """A pure synchronization: empty relation, still costs ``l``."""
        self._close(HRelation((0,) * self.p, (0,) * self.p), label)

    def receive(self, proc: int, source: int):
        """The payload ``source`` sent to ``proc`` in the last exchange,
        or None when nothing was sent (the BSML ``None``/``nc ()``)."""
        return self._mailboxes[proc].get(source)

    # -- results --------------------------------------------------------------

    def _close(self, relation: HRelation, label: str) -> None:
        self._steps.append(
            SuperstepCost(tuple(self._work), relation, synchronized=True, label=label)
        )
        self._work = [0.0] * self.p

    def cost(self) -> BspCost:
        """The cost so far, including any unfinished local-only phase."""
        steps = list(self._steps)
        if any(work > 0 for work in self._work):
            steps.append(
                SuperstepCost(
                    tuple(self._work), None, synchronized=False, label="trailing local"
                )
            )
        return BspCost(self.p, steps)

    def total_time(self) -> float:
        return self.cost().total(self.params)

    def reset(self) -> None:
        """Forget all accounting (mailboxes included)."""
        self._work = [0.0] * self.p
        self._steps = []
        self._mailboxes = [dict() for _ in range(self.p)]
